"""Compile Conv/BN/Pool networks to encrypted CKKS inference.

The paper's headline workloads are CNNs, but CKKS has no native
convolution: everything must become slot arithmetic.  This module lowers
a ``repro.nn`` conv stack onto the exact machinery the encrypted MLP
path already uses, so one executor (:class:`~repro.fhe.network.EncryptedNetwork`)
serves both workloads:

* **Conv2d → structured sparse matvec.**  im2col happens at *compile
  time*: the convolution over a ``(C, H, W)`` activation is materialised
  as a matrix acting on the slot vector (``out[(oc, oh, ow)] = Σ
  w[oc, ic, i, j] · x[slot_of(ic, oh·s+i-p, ow·s+j-p)]``), whose
  generalised diagonals are few and banded — exactly what
  :func:`~repro.fhe.linear.plan_matvec` turns into an ``O(√D)``-keyswitch
  BSGS plan.
* **BatchNorm2d → folded into the adjacent conv.**  With frozen
  statistics BN is the per-channel affine ``y = s_c·x + t_c``; folding
  multiplies the conv's output-channel rows by ``s_c`` and adjusts the
  bias — zero runtime cost.  ``fold_bn=False`` keeps BN as a standalone
  slot-wise ``affine`` layer instead (one plaintext multiply + add, one
  level), which the differential tests compare against.
* **AvgPool2d / GlobalAvgPool2d → rotate-and-sum plans.**  Window sums
  are separable: ``k-1`` hoisted rotations by the column stride, then
  ``k-1`` by the row stride, then a single masked plaintext multiply by
  ``1/k²``.  The output is *not* compacted — each pooled value stays at
  its window's corner slot, tracked by
  :class:`~repro.fhe.packing.GridLayout`, and the next layer's matrix is
  lowered against that strided grid (garbage slots meet zero matrix
  columns).
* **Linear → column-permuted matvec** reading the current grid (an
  explicit ``Flatten`` is a pure relabelling — slot positions don't
  move).

Exact ``ReLU``/``MaxPool2d`` are rejected like in :func:`compile_mlp`
(replace with PAF layers first); ``PAFMaxPool2d`` lowering (a tournament
of ciphertext multiplies over shifted copies) is not implemented yet.
"""

from __future__ import annotations

import numpy as np

from repro.ckks import CkksParams
from repro.core.paf_layer import PAFMaxPool2d, PAFReLU
from repro.fhe.ir import (
    AffineNode,
    ConvNode,
    Graph,
    IRNode,
    MatvecNode,
    MergeNode,
    PafNode,
    PoolNode,
    ResidualTapNode,
)
from repro.fhe.network import EncryptedNetwork
from repro.fhe.packing import GridLayout, MultiGridLayout
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.models.resnet import BasicBlock
from repro.nn.module import Module

__all__ = [
    "conv2d_layout_matrix",
    "linear_layout_matrix",
    "conv2d_shard_matrices",
    "linear_shard_matrices",
    "fold_bn_into_conv",
    "bn_affine_vectors",
    "avg_pool_shifts",
    "compile_cnn",
    "compile_resnet",
]


# ----------------------------------------------------------------------
# layer lowering (pure numpy, compile time only)
# ----------------------------------------------------------------------
def conv2d_layout_matrix(
    weight: np.ndarray,
    bias: np.ndarray | None,
    layout: GridLayout,
    stride: int = 1,
    padding: int = 0,
) -> tuple:
    """Lower one Conv2d to a slot-space matrix (compile-time im2col).

    ``weight`` is ``(OC, IC, KH, KW)``; the returned matrix has one row
    per output element ``(oc, oh, ow)`` (dense channel-major order) and
    one column per *slot* of the input grid, so it composes with any
    strided :class:`GridLayout` a previous pool left behind.  Returns
    ``(matrix, bias_vector, output_layout)`` — the output layout is
    always dense.
    """
    oc, ic, kh, kw = weight.shape
    if ic != layout.channels:
        raise ValueError(f"channel mismatch: layout {layout.channels} vs weight {ic}")
    oh = (layout.height + 2 * padding - kh) // stride + 1
    ow = (layout.width + 2 * padding - kw) // stride + 1
    if oh < 1 or ow < 1:
        raise ValueError(f"kernel {kh}x{kw} exceeds padded input {layout}")
    mat = np.zeros((oc * oh * ow, layout.span))
    for o_c in range(oc):
        for o_h in range(oh):
            for o_w in range(ow):
                row = (o_c * oh + o_h) * ow + o_w
                for i_c in range(ic):
                    for i in range(kh):
                        h_in = o_h * stride + i - padding
                        if not 0 <= h_in < layout.height:
                            continue
                        for j in range(kw):
                            w_in = o_w * stride + j - padding
                            if not 0 <= w_in < layout.width:
                                continue
                            col = layout.slot_of(i_c, h_in, w_in)
                            mat[row, col] += weight[o_c, i_c, i, j]
    bias_vec = None
    if bias is not None:
        bias_vec = np.repeat(np.asarray(bias, dtype=np.float64), oh * ow)
    return mat, bias_vec, GridLayout.dense(oc, oh, ow)


def linear_layout_matrix(weight: np.ndarray, positions: np.ndarray) -> np.ndarray:
    """Lower a Linear layer reading its inputs from ``positions``.

    ``positions[j]`` is the slot holding logical input ``j`` (the
    flattened NCHW order of the preceding grid); the returned matrix has
    the weight columns scattered to those slots, zero everywhere a
    garbage slot would be read.
    """
    positions = np.asarray(positions, dtype=np.int64).ravel()
    out_f, in_f = weight.shape
    if in_f != len(positions):
        raise ValueError(
            f"linear expects {in_f} inputs, layout provides {len(positions)}"
        )
    mat = np.zeros((out_f, int(positions.max()) + 1))
    mat[:, positions] = weight
    return mat


def conv2d_shard_matrices(
    weight: np.ndarray,
    bias: np.ndarray | None,
    mgrid: MultiGridLayout,
    stride: int = 1,
    padding: int = 0,
    num_shards: int = 1,
) -> tuple:
    """Lower one Conv2d against a channel-sharded input to block matrices.

    The convolution splits along both channel axes: input channels are
    already sharded by ``mgrid``; output channels shard across
    ``min(num_shards, OC)`` ciphertexts with a balanced contiguous split.
    Block ``(j, i)`` is :func:`conv2d_layout_matrix` of the weight slice
    ``W[oc_j, ic_i]`` against input shard ``i``'s grid — all-zero blocks
    come back as ``None`` so the executor skips them.  Returns
    ``(blocks, bias_shards, output multi-grid)``; output shards are
    dense, and the per-output-shard bias lands once per shard (not once
    per block).
    """
    oc, ic, kh, kw = weight.shape
    if ic != mgrid.total_channels:
        raise ValueError(
            f"channel mismatch: multi-grid {mgrid.total_channels} vs weight {ic}"
        )
    out_parts = np.array_split(np.arange(oc), min(max(num_shards, 1), oc))
    in_offsets = mgrid.channel_offsets
    blocks: list = []
    bias_shards: list = []
    out_grids: list = []
    for part in out_parts:
        row: list = []
        out_grid = None
        for i, g in enumerate(mgrid.shards):
            w_block = weight[
                np.ix_(part, np.arange(in_offsets[i], in_offsets[i] + g.channels))
            ]
            mat, _, out_grid = conv2d_layout_matrix(
                w_block, None, g, stride=stride, padding=padding
            )
            row.append(mat if np.any(mat) else None)
        blocks.append(row)
        out_grids.append(out_grid)
        if bias is None:
            bias_shards.append(None)
        else:
            bias_shards.append(
                np.repeat(
                    np.asarray(bias, dtype=np.float64)[part],
                    out_grid.height * out_grid.width,
                )
            )
    return blocks, bias_shards, MultiGridLayout(tuple(out_grids))


def linear_shard_matrices(weight: np.ndarray, mgrid: MultiGridLayout) -> list:
    """Lower a Linear head reading a sharded activation to a 1 × K row.

    Logical input ``j`` is the ``j``-th element of the concatenated
    per-shard NCHW flattenings (the same order
    :meth:`MultiGridLayout.split_values` packs inputs in); each shard's
    weight columns scatter to that shard's slot positions.  The output
    lands whole on shard 0 — classifier heads are narrow, so the result
    of a sharded network is always a single ciphertext.
    """
    out_f, in_f = weight.shape
    if in_f != mgrid.num_elements:
        raise ValueError(
            f"linear expects {in_f} inputs, sharded layout provides "
            f"{mgrid.num_elements}"
        )
    row: list = []
    start = 0
    for g in mgrid.shards:
        cols = weight[:, start : start + g.num_elements]
        start += g.num_elements
        mat = linear_layout_matrix(cols, g.positions().ravel())
        row.append(mat if np.any(mat) else None)
    return [row]


def _bn_scale_shift(bn: BatchNorm2d) -> tuple:
    """Frozen per-channel ``(s, t)`` with ``bn(x) = s·x + t``.

    Requires frozen statistics: with ``track_running_stats=False`` the
    layer normalises by *batch* statistics even in eval mode (the
    paper's Tab. 5 training configuration), which is data-dependent and
    has no FHE equivalent.
    """
    if not bn.track_running_stats:
        raise ValueError(
            "BatchNorm2d must be built with track_running_stats=True to be "
            "compiled: batch statistics are data-dependent, and CKKS has no "
            "data-dependent ops (freeze the running statistics first)"
        )
    s = bn.gamma.data / np.sqrt(bn.running_var + bn.eps)
    t = bn.beta.data - bn.running_mean * s
    return s, t


def fold_bn_into_conv(
    weight: np.ndarray, bias: np.ndarray | None, bn: BatchNorm2d
) -> tuple:
    """Fold a frozen BatchNorm2d into the preceding conv's weights.

    ``bn(conv(x)) = (s_c · W) x + (s_c · b + t_c)`` — the scale multiplies
    every kernel of output channel ``c``, the shift lands in the bias.
    Returns the folded ``(weight, bias)``.
    """
    s, t = _bn_scale_shift(bn)
    if len(s) != weight.shape[0]:
        raise ValueError(
            f"BN features {len(s)} != conv output channels {weight.shape[0]}"
        )
    folded_w = weight * s[:, None, None, None]
    folded_b = t if bias is None else s * bias + t
    return folded_w, folded_b


def bn_affine_vectors(bn: BatchNorm2d, layout: GridLayout) -> tuple:
    """Slot-wise ``(scale, shift)`` vectors for an *unfolded* BatchNorm.

    Each occupied slot of the grid gets its channel's ``s_c`` / ``t_c``;
    garbage slots get zero (so the affine layer also re-zeroes whatever
    it scales outside the grid, and shifts nothing there).
    """
    s, t = _bn_scale_shift(bn)
    if len(s) != layout.channels:
        raise ValueError(f"BN features {len(s)} != layout channels {layout.channels}")
    scale_vec = np.zeros(layout.span)
    shift_vec = np.zeros(layout.span)
    pos = layout.positions()
    for c in range(layout.channels):
        scale_vec[pos[c].ravel()] = s[c]
        shift_vec[pos[c].ravel()] = t[c]
    return scale_vec, shift_vec


def avg_pool_shifts(layout: GridLayout, kernel_h: int, kernel_w: int) -> tuple:
    """Rotate-and-sum steps for a pooling window over ``layout``.

    Separable accumulation: ``(column shifts, row shifts)`` in slot
    units — each stage's rotations act on one ciphertext, so they share
    a hoisted keyswitch decomposition at runtime.
    """
    if kernel_h > layout.height or kernel_w > layout.width:
        raise ValueError(f"pool window {kernel_h}x{kernel_w} exceeds grid {layout}")
    cols = tuple(j * layout.col_stride for j in range(1, kernel_w))
    rows = tuple(i * layout.row_stride for i in range(1, kernel_h))
    return cols, rows


# ----------------------------------------------------------------------
# the compiler
# ----------------------------------------------------------------------
_SKIPPED = (Dropout, Identity)
_MATCHED = (
    Conv2d,
    BatchNorm2d,
    PAFReLU,
    AvgPool2d,
    GlobalAvgPool2d,
    Flatten,
    Linear,
)


def _op_sequence(model: Module) -> list:
    """The compilable leaf modules of ``model`` in definition order.

    Containers are traversed (the compiler assumes, like ``compile_mlp``,
    that they execute their children sequentially in definition order);
    matched layers are taken whole (a ``PAFReLU``'s internal ``PAFSign``
    is part of its lowering, not a separate op); inference no-ops
    (Dropout, Identity) are dropped.  Any *other* leaf is an operation
    this compiler cannot lower — silently skipping it would produce a
    network that decrypts to wrong logits, so it raises instead.
    """
    ops: list = []

    def visit(name: str, mod: Module) -> None:
        if isinstance(mod, ReLU):
            raise TypeError(
                f"layer {name!r} is an exact ReLU — run SMART-PAF replacement "
                "before compiling to FHE (CKKS has no non-polynomial ops)"
            )
        if isinstance(mod, MaxPool2d):
            raise TypeError(
                f"layer {name!r} is an exact MaxPool2d — replace it with a PAF "
                "max-pool (or retrain with AvgPool2d) before compiling to FHE"
            )
        if isinstance(mod, PAFMaxPool2d):
            raise NotImplementedError(
                f"layer {name!r}: encrypted PAF max-pool lowering (a tournament "
                "of ciphertext multiplies over shifted copies) is not compiled "
                "yet — retrain the model with AvgPool2d"
            )
        if isinstance(mod, BasicBlock):
            # kept whole: the skip connection is part of its lowering
            ops.append((name, mod))
            return
        if isinstance(mod, _MATCHED):
            ops.append((name, mod))
            return
        if isinstance(mod, _SKIPPED):
            return
        if mod._modules:  # container: recurse in definition order
            for attr, child in mod._modules.items():
                visit(f"{name}.{attr}" if name else attr, child)
            return
        raise TypeError(
            f"layer {name!r} ({type(mod).__name__}) has no encrypted lowering — "
            "the CNN compiler supports Conv2d, BatchNorm2d, PAFReLU, AvgPool2d, "
            "GlobalAvgPool2d, Flatten, Linear (plus Dropout/Identity no-ops)"
        )

    visit("", model)
    return ops


def compile_cnn(
    model: Module,
    input_shape: tuple,
    params: CkksParams,
    seed: int = 0,
    reference_keys: bool = False,
    fold_bn: bool = True,
    policy=None,
) -> EncryptedNetwork:
    """Compile a (PAF-approximated) conv net for encrypted inference.

    ``input_shape`` is the single-image ``(C, H, W)``; the client packs
    the flattened image exactly like an MLP input vector
    (:meth:`EncryptedNetwork.encrypt_batch` / ``pack_batch``).  The
    module tree may contain Conv2d, BatchNorm2d (frozen statistics),
    PAFReLU, AvgPool2d, GlobalAvgPool2d, Flatten and Linear layers
    (Dropout/Identity are inference no-ops and skipped).  ``fold_bn``
    folds each BatchNorm into the directly preceding conv (the default —
    zero runtime cost); otherwise BN compiles to a standalone slot-wise
    affine layer costing one extra level.

    Every conv/linear is lowered to a slot-space matrix against the
    running :class:`~repro.fhe.packing.GridLayout` and compiled to a
    :class:`~repro.fhe.linear.MatvecPlan` by the shared
    :class:`EncryptedNetwork` machinery; pools become rotate-and-sum
    plans.  ``reference_keys`` additionally generates the naive-path
    Galois keys (differential testing), exactly like :func:`compile_mlp`.
    """
    if policy is not None:
        seed, reference_keys = policy.seed, policy.reference_keys
        fold_bn = policy.fold_bn
    if len(input_shape) != 3:
        raise ValueError(f"input_shape must be (C, H, W), got {input_shape}")
    ops = _op_sequence(model)
    grid: GridLayout | None = GridLayout.dense(*input_shape)
    positions: np.ndarray | None = None  # set once the activation is flat
    layers: list[IRNode] = []
    spans: list[int] = [grid.span]

    def _require_grid(name: str) -> GridLayout:
        if grid is None:
            raise TypeError(f"layer {name!r} needs an image grid, but the "
                            "activation was already flattened")
        return grid

    i = 0
    while i < len(ops):
        name, mod = ops[i]
        if isinstance(mod, BasicBlock):
            raise TypeError(
                f"layer {name!r} is a residual block — compile_cnn lowers "
                "straight-line networks only; use compile_resnet (it also "
                "handles channel sharding)"
            )
        if isinstance(mod, Conv2d):
            g = _require_grid(name)
            w = mod.weight.data.copy()
            b = mod.bias.data.copy() if mod.bias is not None else None
            if fold_bn and i + 1 < len(ops) and isinstance(ops[i + 1][1], BatchNorm2d):
                w, b = fold_bn_into_conv(w, b, ops[i + 1][1])
                i += 1  # the BN is consumed by the fold
            mat, bias_vec, grid = conv2d_layout_matrix(
                w, b, g, stride=mod.stride, padding=mod.padding
            )
            layers.append(
                ConvNode(
                    weight=mat,
                    bias=bias_vec,
                    in_channels=g.channels,
                    out_channels=grid.channels,
                    kernel_size=mod.kernel_size,
                    stride=mod.stride,
                    padding=mod.padding,
                    layout=grid,
                )
            )
            spans.extend(mat.shape)
        elif isinstance(mod, BatchNorm2d):
            g = _require_grid(name)
            scale_vec, shift_vec = bn_affine_vectors(mod, g)
            layers.append(
                AffineNode(affine_scale=scale_vec, affine_shift=shift_vec)
            )
        elif isinstance(mod, PAFReLU):
            layers.append(
                PafNode(paf=mod.sign.to_composite(), scale=mod.static_scale)
            )
        elif isinstance(mod, AvgPool2d):
            g = _require_grid(name)
            k = mod.kernel_size
            grid = g.pooled(k, mod.stride)
            layers.append(
                PoolNode(
                    shifts=avg_pool_shifts(g, k, k),
                    pool_scale=1.0 / (k * k),
                    layout=grid,
                )
            )
        elif isinstance(mod, GlobalAvgPool2d):
            g = _require_grid(name)
            grid = g.global_pooled()
            layers.append(
                PoolNode(
                    shifts=avg_pool_shifts(g, g.height, g.width),
                    pool_scale=1.0 / (g.height * g.width),
                    layout=grid,
                )
            )
        elif isinstance(mod, Flatten):
            positions = _require_grid(name).positions().ravel()
            grid = None
        elif isinstance(mod, Linear):
            if positions is None:
                # implicit flatten (e.g. GlobalAvgPool2d straight into the head)
                positions = _require_grid(name).positions().ravel()
                grid = None
            mat = linear_layout_matrix(mod.weight.data, positions)
            bias_vec = mod.bias.data.copy() if mod.bias is not None else None
            layers.append(MatvecNode(weight=mat, bias=bias_vec))
            spans.extend(mat.shape)
            positions = np.arange(mod.out_features)
        i += 1

    if not any(isinstance(layer, MatvecNode) for layer in layers):
        raise ValueError("model has no Conv2d or Linear layers to compile")
    size = max(spans)
    # zero-pad every lowered matrix to square so the diagonal layout is uniform
    for layer in layers:
        if isinstance(layer, MatvecNode):
            padded = np.zeros((size, size))
            padded[: layer.weight.shape[0], : layer.weight.shape[1]] = layer.weight
            layer.weight = padded
    return EncryptedNetwork(
        Graph(layers, size=size),
        params=params,
        seed=seed,
        reference_keys=reference_keys,
        policy=policy,
    )


def compile_resnet(
    model: Module,
    input_shape: tuple,
    params: CkksParams,
    num_shards: int = 2,
    seed: int = 0,
    reference_keys: bool = False,
    policy=None,
) -> EncryptedNetwork:
    """Compile a (PAF-approximated) residual CNN to multi-ciphertext FHE.

    The sharded twin of :func:`compile_cnn`: activations are channel-
    sharded across up to ``num_shards`` ciphertexts
    (:class:`~repro.fhe.packing.MultiGridLayout` — never more shards than
    channels, so a 1-channel input still enters as one ciphertext), every
    conv/linear lowers to a ``K_out × K_in`` grid of per-shard-pair
    matvec blocks, and :class:`~repro.nn.models.resnet.BasicBlock`
    modules lower to ``residual``-tap / ``merge`` layer pairs:

    * the tap saves the live shard list (zero cost, zero levels);
    * the main branch is ``conv1 (+BN folded) → PAF → conv2 (+BN
      folded)``;
    * the merge applies the block's downsample — the folded
      1×1-projection conv for stride/width changes, nothing for an
      identity skip — to the *saved* branch, aligns it to the main
      branch's exact (level, scale) and adds shard-wise;
    * the post-add PAF follows.

    Strided convolutions (``conv1`` of a downsampling block and its 1×1
    projection) emit dense output grids at the reduced resolution through
    the ordinary :class:`GridLayout` machinery, so both branches of a
    downsampling block meet in the same layout.  BatchNorm is always
    folded into its preceding conv here (a standalone sharded affine is
    not lowered); exact ReLU / MaxPool are rejected exactly like in
    :func:`compile_cnn`.  The model must open with a stem conv (or
    linear) — the packed input carries its wraparound replica, and only
    a matvec re-establishes the replica-zero invariant taps rely on.
    """
    if policy is not None:
        seed, reference_keys = policy.seed, policy.reference_keys
    if len(input_shape) != 3:
        raise ValueError(f"input_shape must be (C, H, W), got {input_shape}")
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    ops = _op_sequence(model)
    mgrid = MultiGridLayout.split(*input_shape, num_shards=num_shards)
    input_mgrid = mgrid
    layers: list[IRNode] = []
    spans: list[int] = [mgrid.span]

    def lower_conv(conv: Conv2d, bn: BatchNorm2d | None, grid_in: MultiGridLayout):
        w = conv.weight.data.copy()
        b = conv.bias.data.copy() if conv.bias is not None else None
        if bn is not None:
            w, b = fold_bn_into_conv(w, b, bn)
        blocks, bias_shards, out = conv2d_shard_matrices(
            w, b, grid_in, stride=conv.stride, padding=conv.padding,
            num_shards=num_shards,
        )
        for row in blocks:
            for mat in row:
                if mat is not None:
                    spans.extend(mat.shape)
        return blocks, bias_shards, out

    def lower_paf(name: str, mod) -> PafNode:
        if isinstance(mod, ReLU):
            raise TypeError(
                f"layer {name!r} is an exact ReLU — run SMART-PAF replacement "
                "before compiling to FHE (CKKS has no non-polynomial ops)"
            )
        if not isinstance(mod, PAFReLU):
            raise TypeError(f"layer {name!r}: expected a PAF activation")
        return PafNode(paf=mod.sign.to_composite(), scale=mod.static_scale)

    def consume_bn(seq: list, idx: int) -> tuple:
        """(BN to fold or None, next index) — BN must follow its conv."""
        if idx + 1 < len(seq) and isinstance(seq[idx + 1][1], BatchNorm2d):
            _bn_scale_shift(seq[idx + 1][1])  # validate frozen stats early
            return seq[idx + 1][1], idx + 2
        return None, idx + 1

    i = 0
    while i < len(ops):
        name, mod = ops[i]
        if isinstance(mod, Conv2d):
            bn, i = consume_bn(ops, i)
            in_channels = mgrid.total_channels
            blocks, bias_shards, mgrid = lower_conv(mod, bn, mgrid)
            layers.append(
                ConvNode(
                    blocks=blocks,
                    bias_shards=bias_shards,
                    in_channels=in_channels,
                    out_channels=mgrid.total_channels,
                    kernel_size=mod.kernel_size,
                    stride=mod.stride,
                    padding=mod.padding,
                    layout=mgrid,
                )
            )
            continue
        if isinstance(mod, BasicBlock):
            if not layers:
                raise TypeError(
                    f"block {name!r} is the first compiled layer — the sharded "
                    "compiler needs a stem conv before the first residual tap "
                    "(the packed input still carries its replica half)"
                )
            tap_grid = mgrid
            layers.append(ResidualTapNode())
            tap_idx = len(layers) - 1
            inner = [
                (f"{name}.conv1", mod.conv1), (f"{name}.bn1", mod.bn1),
                (f"{name}.relu1", mod.relu1),
                (f"{name}.conv2", mod.conv2), (f"{name}.bn2", mod.bn2),
            ]
            j = 0
            while j < len(inner):
                iname, imod = inner[j]
                if isinstance(imod, Conv2d):
                    bn, j = consume_bn(inner, j)
                    in_channels = mgrid.total_channels
                    blocks, bias_shards, mgrid = lower_conv(imod, bn, mgrid)
                    layers.append(
                        ConvNode(
                            blocks=blocks,
                            bias_shards=bias_shards,
                            in_channels=in_channels,
                            out_channels=mgrid.total_channels,
                            kernel_size=imod.kernel_size,
                            stride=imod.stride,
                            padding=imod.padding,
                            layout=mgrid,
                        )
                    )
                    continue
                layers.append(lower_paf(iname, imod))
                j += 1
            if isinstance(mod.downsample, Identity):
                if tap_grid != mgrid:
                    raise ValueError(
                        f"block {name!r}: identity skip but the main branch "
                        f"changed the layout ({tap_grid} -> {mgrid}) — the "
                        "block needs a projection downsample"
                    )
                layers.append(MergeNode(tap=tap_idx))
            else:
                ds = list(mod.downsample._modules.values())
                if len(ds) != 2 or not isinstance(ds[0], Conv2d) \
                        or not isinstance(ds[1], BatchNorm2d):
                    raise TypeError(
                        f"block {name!r}: downsample must be Conv2d + BatchNorm2d"
                    )
                proj_blocks, proj_bias, proj_grid = lower_conv(ds[0], ds[1], tap_grid)
                if proj_grid != mgrid:
                    raise ValueError(
                        f"block {name!r}: projection lands on {proj_grid} but "
                        f"the main branch on {mgrid}"
                    )
                layers.append(
                    MergeNode(
                        blocks=proj_blocks, bias_shards=proj_bias, tap=tap_idx
                    )
                )
            layers.append(lower_paf(f"{name}.relu2", mod.relu2))
            i += 1
            continue
        if isinstance(mod, BatchNorm2d):
            raise TypeError(
                f"layer {name!r}: a standalone BatchNorm has no sharded "
                "lowering — place it directly after a conv so it folds"
            )
        if isinstance(mod, PAFReLU):
            layers.append(lower_paf(name, mod))
        elif isinstance(mod, AvgPool2d):
            k = mod.kernel_size
            shifts = avg_pool_shifts(mgrid.shards[0], k, k)
            mgrid = mgrid.pooled(k, mod.stride)
            layers.append(
                PoolNode(shifts=shifts, pool_scale=1.0 / (k * k), layout=mgrid)
            )
        elif isinstance(mod, GlobalAvgPool2d):
            g = mgrid.shards[0]
            shifts = avg_pool_shifts(g, g.height, g.width)
            mgrid = mgrid.global_pooled()
            layers.append(
                PoolNode(
                    shifts=shifts,
                    pool_scale=1.0 / (g.height * g.width),
                    layout=mgrid,
                )
            )
        elif isinstance(mod, Flatten):
            pass  # pure relabelling: linear heads read the grid directly
        elif isinstance(mod, Linear):
            blocks = linear_shard_matrices(mod.weight.data, mgrid)
            bias_vec = mod.bias.data.copy() if mod.bias is not None else None
            layers.append(MatvecNode(blocks=blocks, bias_shards=[bias_vec]))
            for row in blocks:
                for mat in row:
                    if mat is not None:
                        spans.extend(mat.shape)
            mgrid = MultiGridLayout.split(mod.out_features, 1, 1, num_shards=1)
        else:
            raise TypeError(
                f"layer {name!r} ({type(mod).__name__}) has no sharded "
                "encrypted lowering"
            )
        i += 1

    if not any(isinstance(layer, MatvecNode) for layer in layers):
        raise ValueError("model has no Conv2d or Linear layers to compile")
    if not isinstance(layers[0], MatvecNode):
        raise TypeError(
            "the sharded compiler needs the first compiled layer to be a "
            "conv/linear (the packed input still carries its replica half)"
        )
    size = max(spans)
    for layer in layers:
        if layer.blocks is not None:
            for row in layer.blocks:
                for k, mat in enumerate(row):
                    if mat is None:
                        continue
                    padded = np.zeros((size, size))
                    padded[: mat.shape[0], : mat.shape[1]] = mat
                    row[k] = padded
    return EncryptedNetwork(
        Graph(
            layers,
            size=size,
            input_shards=input_mgrid.num_shards,
            input_splits=[g.num_elements for g in input_mgrid.shards],
        ),
        params=params,
        seed=seed,
        reference_keys=reference_keys,
        policy=policy,
    )
