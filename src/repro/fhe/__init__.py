"""Encrypted inference on top of ``repro.ckks`` + the latency harness."""

from repro.fhe.latency import (
    LatencyResult,
    analytic_relu_cost,
    measure_op_micros,
    measure_relu_latency,
    paf_op_counts,
)
from repro.fhe.linear import diagonals_of, encrypted_matvec, required_rotation_steps
from repro.fhe.network import EncryptedMLP, compile_mlp
from repro.fhe.packing import BlockLayout, pack_batch, unpack_blocks

__all__ = [
    "LatencyResult",
    "measure_relu_latency",
    "measure_op_micros",
    "analytic_relu_cost",
    "paf_op_counts",
    "encrypted_matvec",
    "diagonals_of",
    "required_rotation_steps",
    "EncryptedMLP",
    "compile_mlp",
    "BlockLayout",
    "pack_batch",
    "unpack_blocks",
]
