"""Encrypted inference on top of ``repro.ckks`` + the latency harness."""

from repro.fhe.latency import (
    LatencyResult,
    activation_op_counts,
    analytic_activation_cost,
    analytic_matvec_cost,
    analytic_relu_cost,
    matvec_op_counts,
    measure_op_micros,
    measure_relu_latency,
    paf_op_counts,
)
from repro.fhe.linear import (
    MatvecPlan,
    bsgs_diagonals,
    diagonals_of,
    encrypted_matvec,
    encrypted_matvec_bsgs,
    plan_matvec,
    required_rotation_steps,
)
from repro.fhe.network import EncryptedMLP, compile_mlp
from repro.fhe.packing import BlockLayout, pack_batch, unpack_blocks

__all__ = [
    "LatencyResult",
    "measure_relu_latency",
    "measure_op_micros",
    "analytic_relu_cost",
    "analytic_activation_cost",
    "analytic_matvec_cost",
    "paf_op_counts",
    "activation_op_counts",
    "matvec_op_counts",
    "encrypted_matvec",
    "encrypted_matvec_bsgs",
    "diagonals_of",
    "required_rotation_steps",
    "MatvecPlan",
    "plan_matvec",
    "bsgs_diagonals",
    "EncryptedMLP",
    "compile_mlp",
    "BlockLayout",
    "pack_batch",
    "unpack_blocks",
]
