"""Encrypted inference on top of ``repro.ckks`` + the latency harness."""

from repro.fhe.cnn import (
    avg_pool_shifts,
    bn_affine_vectors,
    compile_cnn,
    compile_resnet,
    conv2d_layout_matrix,
    conv2d_shard_matrices,
    fold_bn_into_conv,
    linear_layout_matrix,
    linear_shard_matrices,
)
from repro.fhe.latency import (
    LatencyResult,
    activation_op_counts,
    analytic_activation_cost,
    analytic_matvec_cost,
    analytic_pool_cost,
    analytic_relu_cost,
    analytic_residual_merge_cost,
    analytic_sharded_matvec_cost,
    matvec_op_counts,
    measure_op_micros,
    measure_relu_latency,
    paf_op_counts,
    pool_op_counts,
    residual_merge_op_counts,
    sharded_matvec_op_counts,
)
from repro.fhe.linear import (
    MatvecPlan,
    bsgs_diagonals,
    diagonals_of,
    encrypted_matvec,
    encrypted_matvec_bsgs,
    encrypted_matvec_shards,
    plan_matvec,
    required_rotation_steps,
)
from repro.fhe.ir import (
    AffineNode,
    AttentionNode,
    ConvNode,
    Graph,
    IRNode,
    MatvecNode,
    MergeNode,
    PafNode,
    PolyNode,
    PoolNode,
    ReduceNode,
    ResidualTapNode,
    compile_network,
    propagate_intervals,
)
from repro.fhe.network import EncryptedNetwork, compile_mlp
from repro.fhe.packing import (
    BlockLayout,
    GridLayout,
    MultiGridLayout,
    pack_batch,
    unpack_blocks,
)


def __getattr__(name: str):
    # lazy so importing the package doesn't itself warn; the alias warns
    # at first *use*, from here or from repro.fhe.network
    if name == "EncryptedMLP":
        import warnings

        warnings.warn(
            "EncryptedMLP is a deprecated alias; use EncryptedNetwork",
            DeprecationWarning,
            stacklevel=2,
        )
        return EncryptedNetwork
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "LatencyResult",
    "measure_relu_latency",
    "measure_op_micros",
    "analytic_relu_cost",
    "analytic_activation_cost",
    "analytic_matvec_cost",
    "paf_op_counts",
    "activation_op_counts",
    "matvec_op_counts",
    "encrypted_matvec",
    "encrypted_matvec_bsgs",
    "diagonals_of",
    "required_rotation_steps",
    "MatvecPlan",
    "plan_matvec",
    "bsgs_diagonals",
    "EncryptedMLP",
    "EncryptedNetwork",
    "compile_network",
    "compile_mlp",
    "compile_cnn",
    "IRNode",
    "Graph",
    "MatvecNode",
    "ConvNode",
    "PoolNode",
    "PafNode",
    "PolyNode",
    "AffineNode",
    "ResidualTapNode",
    "MergeNode",
    "ReduceNode",
    "AttentionNode",
    "propagate_intervals",
    "conv2d_layout_matrix",
    "linear_layout_matrix",
    "fold_bn_into_conv",
    "bn_affine_vectors",
    "avg_pool_shifts",
    "pool_op_counts",
    "analytic_pool_cost",
    "BlockLayout",
    "GridLayout",
    "MultiGridLayout",
    "pack_batch",
    "unpack_blocks",
    "compile_resnet",
    "conv2d_shard_matrices",
    "linear_shard_matrices",
    "encrypted_matvec_shards",
    "sharded_matvec_op_counts",
    "residual_merge_op_counts",
    "analytic_sharded_matvec_cost",
    "analytic_residual_merge_cost",
]
