"""Encrypted inference on top of ``repro.ckks`` + the latency harness."""

from repro.fhe.latency import (
    LatencyResult,
    activation_op_counts,
    analytic_activation_cost,
    analytic_matvec_cost,
    analytic_relu_cost,
    analytic_pool_cost,
    matvec_op_counts,
    measure_op_micros,
    measure_relu_latency,
    paf_op_counts,
    pool_op_counts,
)
from repro.fhe.linear import (
    MatvecPlan,
    bsgs_diagonals,
    diagonals_of,
    encrypted_matvec,
    encrypted_matvec_bsgs,
    plan_matvec,
    required_rotation_steps,
)
from repro.fhe.cnn import (
    avg_pool_shifts,
    bn_affine_vectors,
    compile_cnn,
    conv2d_layout_matrix,
    fold_bn_into_conv,
    linear_layout_matrix,
)
from repro.fhe.network import EncryptedMLP, EncryptedNetwork, compile_mlp
from repro.fhe.packing import BlockLayout, GridLayout, pack_batch, unpack_blocks

__all__ = [
    "LatencyResult",
    "measure_relu_latency",
    "measure_op_micros",
    "analytic_relu_cost",
    "analytic_activation_cost",
    "analytic_matvec_cost",
    "paf_op_counts",
    "activation_op_counts",
    "matvec_op_counts",
    "encrypted_matvec",
    "encrypted_matvec_bsgs",
    "diagonals_of",
    "required_rotation_steps",
    "MatvecPlan",
    "plan_matvec",
    "bsgs_diagonals",
    "EncryptedMLP",
    "EncryptedNetwork",
    "compile_mlp",
    "compile_cnn",
    "conv2d_layout_matrix",
    "linear_layout_matrix",
    "fold_bn_into_conv",
    "bn_affine_vectors",
    "avg_pool_shifts",
    "pool_op_counts",
    "analytic_pool_cost",
    "BlockLayout",
    "GridLayout",
    "pack_batch",
    "unpack_blocks",
]
