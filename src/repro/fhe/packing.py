"""SIMD block layout: pure (no-crypto) geometry of batched ciphertexts.

One CKKS ciphertext has ``slots = N/2`` plaintext slots; a single
request of a compiled square-width-``size`` model needs only ``2·size``
of them (vector + the wraparound replica that keeps the Halevi-Shoup
cyclic diagonals aligned).  Up to ``slots // (2·size)`` independent
requests therefore share one ciphertext in disjoint *blocks*.  This
module is the single source of truth for that geometry — used by
:class:`repro.fhe.network.EncryptedNetwork` on ciphertexts and
re-exported by :mod:`repro.serve.packing` for the serving layer.

:class:`GridLayout` is the second geometry this module owns: where the
elements of an NCHW activation tensor sit inside one request block.
Convolutions emit densely packed channel-major activations; strided
pools leave their outputs at the window-corner slots of the *input*
grid (rotate-and-sum never compacts), so downstream layers read through
a strided grid.  The CNN compiler (:mod:`repro.fhe.cnn`) threads one
``GridLayout`` through the network and lowers every conv/pool/linear
against it.

:class:`MultiGridLayout` is the third: a channel-sharded activation
spread over ``K`` ciphertexts.  Wide layers overflow one request block
(``C·H·W > size``), so the channel axis is split into contiguous shards
— shard ``s`` holds channels ``[offset_s, offset_s + C_s)`` in its *own*
ciphertext, laid out by a per-shard :class:`GridLayout` that shares the
spatial geometry of every other shard.  Convs/linears lowered against a
multi-grid become ``K_out × K_in`` block matrices
(:func:`repro.fhe.cnn.conv2d_shard_matrices`); pools and activations
apply shard-by-shard because they never mix channels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "BlockLayout",
    "GridLayout",
    "MultiGridLayout",
    "pack_batch",
    "unpack_blocks",
]


@dataclass(frozen=True)
class BlockLayout:
    """Geometry of the SIMD request blocks inside one ciphertext."""

    size: int   #: square layer width of the compiled model
    slots: int  #: CKKS slot count (ring degree / 2)

    def __post_init__(self):
        if self.size < 1 or self.slots < 1:
            raise ValueError(f"invalid layout: size={self.size}, slots={self.slots}")
        if self.size > self.slots:
            raise ValueError(f"layer size {self.size} exceeds slot count {self.slots}")

    @property
    def stride(self) -> int:
        """Slots consumed per request (vector + replica half)."""
        return 2 * self.size

    @property
    def max_batch(self) -> int:
        """How many requests fit one ciphertext."""
        return max(1, self.slots // self.stride)

    def offset(self, block: int) -> int:
        """First slot of block ``block``."""
        if not 0 <= block < self.max_batch:
            raise ValueError(f"block {block} out of range 0..{self.max_batch - 1}")
        return block * self.stride


@dataclass(frozen=True)
class GridLayout:
    """Slot positions of a ``(C, H, W)`` activation inside one block.

    Element ``(c, h, w)`` lives at slot
    ``c·chan_stride + h·row_stride + w·col_stride``.  A dense layout has
    ``(chan_stride, row_stride, col_stride) = (H·W, W, 1)``; a stride-s
    pool multiplies the spatial strides by ``s`` while shrinking the
    logical extent, leaving the grid *strided* (valid values at window
    corners, garbage in between — downstream matvec matrices simply have
    zero columns at the garbage slots).
    """

    channels: int
    height: int
    width: int
    chan_stride: int
    row_stride: int
    col_stride: int

    def __post_init__(self):
        if min(self.channels, self.height, self.width) < 1:
            raise ValueError(f"invalid grid extent: {self}")
        if min(self.chan_stride, self.row_stride, self.col_stride) < 1:
            raise ValueError(f"invalid grid strides: {self}")
        pos = self.positions()
        if len(np.unique(pos)) != pos.size:
            raise ValueError(f"grid layout is not injective: {self}")

    @classmethod
    def dense(cls, channels: int, height: int, width: int) -> "GridLayout":
        """Channel-major packed layout (what conv outputs are lowered to)."""
        return cls(
            channels=channels,
            height=height,
            width=width,
            chan_stride=height * width,
            row_stride=width,
            col_stride=1,
        )

    @property
    def num_elements(self) -> int:
        return self.channels * self.height * self.width

    @property
    def span(self) -> int:
        """Slots needed to hold the grid (max occupied slot + 1)."""
        return (
            (self.channels - 1) * self.chan_stride
            + (self.height - 1) * self.row_stride
            + (self.width - 1) * self.col_stride
            + 1
        )

    def slot_of(self, c: int, h: int, w: int) -> int:
        """Slot index of element ``(c, h, w)``."""
        if not (0 <= c < self.channels and 0 <= h < self.height and 0 <= w < self.width):
            raise ValueError(f"({c}, {h}, {w}) outside grid {self}")
        return c * self.chan_stride + h * self.row_stride + w * self.col_stride

    def positions(self) -> np.ndarray:
        """``(C, H, W)`` array of slot indices (flattens to NCHW order)."""
        c = np.arange(self.channels)[:, None, None] * self.chan_stride
        h = np.arange(self.height)[None, :, None] * self.row_stride
        w = np.arange(self.width)[None, None, :] * self.col_stride
        return c + h + w

    def pooled(self, kernel: int, stride: int) -> "GridLayout":
        """Layout after a ``kernel``×``kernel`` stride-``stride`` pool.

        Rotate-and-sum leaves each output at its window's top-left corner
        slot, so the spatial strides grow by the pool stride and the
        extents shrink to the output resolution.
        """
        if kernel < 1 or stride < 1:
            raise ValueError(f"invalid pool kernel={kernel} stride={stride}")
        if kernel > self.height or kernel > self.width:
            raise ValueError(f"pool window {kernel} exceeds grid {self}")
        return GridLayout(
            channels=self.channels,
            height=(self.height - kernel) // stride + 1,
            width=(self.width - kernel) // stride + 1,
            chan_stride=self.chan_stride,
            row_stride=self.row_stride * stride,
            col_stride=self.col_stride * stride,
        )

    def global_pooled(self) -> "GridLayout":
        """Layout after a global average pool (one value per channel)."""
        return GridLayout(
            channels=self.channels,
            height=1,
            width=1,
            chan_stride=self.chan_stride,
            row_stride=self.row_stride,
            col_stride=self.col_stride,
        )


@dataclass(frozen=True)
class MultiGridLayout:
    """A ``(C, H, W)`` activation channel-sharded across ``K`` ciphertexts.

    ``shards[s]`` is the :class:`GridLayout` of shard ``s``'s *own* slot
    space (every shard starts at slot 0 of its ciphertext); channels are
    split contiguously, so global channel ``c`` lives in the shard whose
    ``[offset, offset + channels)`` range contains it.  All shards share
    one spatial geometry — heights, widths and strides agree — which is
    what lets pools and activations run shard-by-shard with identical
    rotation steps.
    """

    shards: tuple

    def __post_init__(self):
        if not self.shards:
            raise ValueError("multi-grid needs at least one shard")
        g0 = self.shards[0]
        for g in self.shards[1:]:
            if (g.height, g.width, g.chan_stride, g.row_stride, g.col_stride) != (
                g0.height, g0.width, g0.chan_stride, g0.row_stride, g0.col_stride
            ):
                raise ValueError(f"shard geometries disagree: {g0} vs {g}")

    @classmethod
    def split(
        cls, channels: int, height: int, width: int, num_shards: int
    ) -> "MultiGridLayout":
        """Shard a dense ``(C, H, W)`` activation across ``min(K, C)``
        ciphertexts with a balanced contiguous channel split."""
        return cls.from_grid(GridLayout.dense(channels, height, width), num_shards)

    @classmethod
    def from_grid(cls, grid: GridLayout, num_shards: int) -> "MultiGridLayout":
        """Shard an existing (possibly strided) grid's channel axis.

        Shard counts follow ``np.array_split`` — as balanced as a
        contiguous split allows, never more shards than channels.
        """
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        counts = [
            len(part)
            for part in np.array_split(
                np.arange(grid.channels), min(num_shards, grid.channels)
            )
        ]
        shards = tuple(
            GridLayout(
                channels=c,
                height=grid.height,
                width=grid.width,
                chan_stride=grid.chan_stride,
                row_stride=grid.row_stride,
                col_stride=grid.col_stride,
            )
            for c in counts
        )
        return cls(shards=shards)

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def total_channels(self) -> int:
        return sum(g.channels for g in self.shards)

    @property
    def channel_offsets(self) -> tuple:
        """First global channel of each shard."""
        offsets = []
        total = 0
        for g in self.shards:
            offsets.append(total)
            total += g.channels
        return tuple(offsets)

    @property
    def span(self) -> int:
        """Slots the widest shard needs in its ciphertext."""
        return max(g.span for g in self.shards)

    @property
    def num_elements(self) -> int:
        return sum(g.num_elements for g in self.shards)

    def shard_of(self, c: int) -> tuple:
        """``(shard index, local channel)`` holding global channel ``c``."""
        if not 0 <= c < self.total_channels:
            raise ValueError(f"channel {c} outside 0..{self.total_channels - 1}")
        for s, off in enumerate(self.channel_offsets):
            if c < off + self.shards[s].channels:
                return s, c - off
        raise AssertionError("unreachable")  # pragma: no cover

    def positions(self) -> list:
        """Per-shard ``(C_s, H, W)`` slot-index arrays (channel order)."""
        return [g.positions() for g in self.shards]

    def pooled(self, kernel: int, stride: int) -> "MultiGridLayout":
        """Every shard pooled identically (geometry stays shared)."""
        return MultiGridLayout(tuple(g.pooled(kernel, stride) for g in self.shards))

    def global_pooled(self) -> "MultiGridLayout":
        return MultiGridLayout(tuple(g.global_pooled() for g in self.shards))

    def split_values(self, values: np.ndarray) -> list:
        """Split a flat NCHW activation into per-shard flat vectors.

        Channels are contiguous in NCHW order, so each shard's elements
        are one slice of the flat vector — the client-side packing rule
        for sharded inputs (each part then packs like an MLP vector).
        """
        values = np.asarray(values, dtype=np.float64).ravel()
        g0 = self.shards[0]
        per_channel = g0.height * g0.width
        if len(values) != self.total_channels * per_channel:
            raise ValueError(
                f"expected {self.total_channels * per_channel} values, got {len(values)}"
            )
        bounds = np.cumsum(
            [g.channels * per_channel for g in self.shards[:-1]]
        )
        return [part for part in np.split(values, bounds)]


def pack_batch(xs, layout: BlockLayout) -> np.ndarray:
    """Pack a batch of input vectors into one slot vector.

    Block ``b`` holds vector ``b`` twice: at ``offset(b)`` and again at
    ``offset(b) + size`` (the wraparound replica the cyclic diagonals
    need).  Unused trailing blocks stay zero.
    """
    xs = [np.asarray(x, dtype=np.float64).ravel() for x in xs]
    if not xs:
        raise ValueError("empty batch")
    if len(xs) > layout.max_batch:
        raise ValueError(f"batch {len(xs)} exceeds SIMD capacity {layout.max_batch}")
    packed = np.zeros(layout.slots)
    for b, x in enumerate(xs):
        if len(x) > layout.size:
            raise ValueError(f"input dim {len(x)} exceeds layer size {layout.size}")
        off = layout.offset(b)
        packed[off : off + len(x)] = x
        packed[off + layout.size : off + layout.size + len(x)] = x
    return packed


def unpack_blocks(
    values: np.ndarray, layout: BlockLayout, width: int, batch: int
) -> np.ndarray:
    """Demultiplex per-client results: ``(batch, width)`` from slot values.

    ``values`` may be truncated anywhere past the last needed slot
    (decryption only decodes the leading span).
    """
    if not 1 <= batch <= layout.max_batch:
        raise ValueError(f"batch {batch} out of range 1..{layout.max_batch}")
    if width > layout.size:
        raise ValueError(f"width {width} exceeds layer size {layout.size}")
    values = np.asarray(values).ravel()
    need = layout.offset(batch - 1) + width
    if len(values) < need:
        raise ValueError(f"need {need} slot values for batch {batch}, got {len(values)}")
    return np.stack(
        [values[layout.offset(b) : layout.offset(b) + width] for b in range(batch)]
    )
