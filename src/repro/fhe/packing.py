"""SIMD block layout: pure (no-crypto) geometry of batched ciphertexts.

One CKKS ciphertext has ``slots = N/2`` plaintext slots; a single
request of a compiled square-width-``size`` model needs only ``2·size``
of them (vector + the wraparound replica that keeps the Halevi-Shoup
cyclic diagonals aligned).  Up to ``slots // (2·size)`` independent
requests therefore share one ciphertext in disjoint *blocks*.  This
module is the single source of truth for that geometry — used by
:class:`repro.fhe.network.EncryptedMLP` on ciphertexts and re-exported
by :mod:`repro.serve.packing` for the serving layer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BlockLayout", "pack_batch", "unpack_blocks"]


@dataclass(frozen=True)
class BlockLayout:
    """Geometry of the SIMD request blocks inside one ciphertext."""

    size: int   #: square layer width of the compiled model
    slots: int  #: CKKS slot count (ring degree / 2)

    def __post_init__(self):
        if self.size < 1 or self.slots < 1:
            raise ValueError(f"invalid layout: size={self.size}, slots={self.slots}")
        if self.size > self.slots:
            raise ValueError(f"layer size {self.size} exceeds slot count {self.slots}")

    @property
    def stride(self) -> int:
        """Slots consumed per request (vector + replica half)."""
        return 2 * self.size

    @property
    def max_batch(self) -> int:
        """How many requests fit one ciphertext."""
        return max(1, self.slots // self.stride)

    def offset(self, block: int) -> int:
        """First slot of block ``block``."""
        if not 0 <= block < self.max_batch:
            raise ValueError(f"block {block} out of range 0..{self.max_batch - 1}")
        return block * self.stride


def pack_batch(xs, layout: BlockLayout) -> np.ndarray:
    """Pack a batch of input vectors into one slot vector.

    Block ``b`` holds vector ``b`` twice: at ``offset(b)`` and again at
    ``offset(b) + size`` (the wraparound replica the cyclic diagonals
    need).  Unused trailing blocks stay zero.
    """
    xs = [np.asarray(x, dtype=np.float64).ravel() for x in xs]
    if not xs:
        raise ValueError("empty batch")
    if len(xs) > layout.max_batch:
        raise ValueError(f"batch {len(xs)} exceeds SIMD capacity {layout.max_batch}")
    packed = np.zeros(layout.slots)
    for b, x in enumerate(xs):
        if len(x) > layout.size:
            raise ValueError(f"input dim {len(x)} exceeds layer size {layout.size}")
        off = layout.offset(b)
        packed[off : off + len(x)] = x
        packed[off + layout.size : off + layout.size + len(x)] = x
    return packed


def unpack_blocks(
    values: np.ndarray, layout: BlockLayout, width: int, batch: int
) -> np.ndarray:
    """Demultiplex per-client results: ``(batch, width)`` from slot values.

    ``values`` may be truncated anywhere past the last needed slot
    (decryption only decodes the leading span).
    """
    if not 1 <= batch <= layout.max_batch:
        raise ValueError(f"batch {batch} out of range 1..{layout.max_batch}")
    if width > layout.size:
        raise ValueError(f"width {width} exceeds layer size {layout.size}")
    values = np.asarray(values).ravel()
    need = layout.offset(batch - 1) + width
    if len(values) < need:
        raise ValueError(f"need {need} slot values for batch {batch}, got {len(values)}")
    return np.stack(
        [values[layout.offset(b) : layout.offset(b) + width] for b in range(batch)]
    )
