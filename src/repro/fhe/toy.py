"""The canonical toy serving model: an 8 -> 6 -> 3 MLP with an f1∘g2 PAF.

One shared build used by the fhe/serve test suites, the serving
benchmarks and the CI op-count summary, so the toy geometry (and the
op-count regression anchors derived from it) cannot silently diverge
between them.  Compiles in ~1 s; one encrypted forward ≈ 0.5 s at n=512.
"""

from __future__ import annotations

import numpy as np

from repro.ckks import CkksParams
from repro.fhe.network import EncryptedMLP, compile_mlp

__all__ = ["compiled_toy", "TOY_PARAMS"]

#: the toy's CKKS parameter set (small ring, depth for one f1∘g2 PAF)
TOY_PARAMS = CkksParams(n=512, scale_bits=25, depth=9)


def compiled_toy(
    reference_keys: bool = False, with_model: bool = False
) -> EncryptedMLP | tuple:
    """Build, PAF-replace, calibrate and compile the toy MLP.

    ``reference_keys`` additionally generates the naive-path Galois keys
    (differential / op-count testing); ``with_model`` also returns the
    plaintext model (in eval mode).
    """
    # imported here: repro.core pulls in the full training stack, which
    # ordinary repro.fhe users (and its import time) should not pay for
    from repro.core import calibrate_static_scales, convert_to_static, replace_all
    from repro.nn.models import mlp
    from repro.paf import get_paf

    rng = np.random.default_rng(0)
    model = mlp(8, hidden=(6,), num_classes=3, seed=0)
    replace_all(model, get_paf("f1g2"), np.zeros((1, 8)))
    calibrate_static_scales(model, [rng.normal(size=(64, 8))])
    convert_to_static(model)
    enc = compile_mlp(model, TOY_PARAMS, seed=0, reference_keys=reference_keys)
    model.eval()
    return (model, enc) if with_model else enc
