"""The canonical toy serving models, shared by tests, benchmarks and CI.

Three builds, each used by the fhe/serve test suites, the serving
benchmarks and the CI op-count summary so the toy geometry (and the
op-count regression anchors derived from it) cannot silently diverge
between them:

* :func:`compiled_toy` — an 8 → 6 → 3 MLP with an f1∘g2 PAF.  Compiles
  in ~1 s; one encrypted forward ≈ 0.5 s at n=512.
* :func:`compiled_toy_cnn` — a *trained* 2-conv CNN on 1×8×8 pattern
  images (conv-BN-PAF → avgpool → conv → dense, 3 classes), compiled by
  :func:`repro.fhe.cnn.compile_cnn`.  Compiles in a few seconds; one
  encrypted forward ≈ 5 s at n=1024.
* :func:`compiled_toy_resnet` — a *trained* 2-block residual CNN
  (stem conv-BN → BasicBlock(identity skip) → BasicBlock(stride-2,
  1×1-projection skip) → global pool → dense) on the same pattern
  images, channel-sharded across 2 ciphertexts and compiled by
  :func:`repro.fhe.cnn.compile_resnet`.  Depth 31; one encrypted
  forward is a few seconds at n=512.
"""

from __future__ import annotations

import numpy as np

from repro.ckks import CkksParams
from repro.fhe.network import EncryptedNetwork, compile_mlp

__all__ = [
    "compiled_toy",
    "compiled_toy_cnn",
    "compiled_toy_resnet",
    "compiled_toy_transformer",
    "compiled_toy_transformer_stacked",
    "toy_cnn_model",
    "toy_resnet_model",
    "toy_transformer_model",
    "toy_transformer_stacked_model",
    "TOY_PARAMS",
    "TOY_CNN_PARAMS",
    "TOY_CNN_INPUT_SHAPE",
    "TOY_RESNET_PARAMS",
    "TOY_RESNET_INPUT_SHAPE",
    "TOY_RESNET_SHARDS",
    "TOY_TRANSFORMER_PARAMS",
]

#: the toy MLP's CKKS parameter set (small ring, depth for one f1∘g2 PAF)
TOY_PARAMS = CkksParams(n=512, scale_bits=25, depth=9)

#: the toy CNN's CKKS parameter set — depth 10 covers conv(1) + PAF(6) +
#: pool(1) + conv(1) + dense(1); n=1024 gives two SIMD request blocks at
#: the CNN's square size of 128
TOY_CNN_PARAMS = CkksParams(n=1024, scale_bits=26, depth=10)

#: single-image shape of the toy CNN (1 channel, 8×8 pixels)
TOY_CNN_INPUT_SHAPE = (1, 8, 8)

#: the toy ResNet's CKKS parameter set — depth 31 covers stem conv(1) +
#: 2 BasicBlocks of conv(1)+PAF(6)+conv(1)+merge(0)+PAF(6) + pool(1) +
#: dense(1); n=512 gives two SIMD request blocks at the square size 64.
#: ``scale_tracking`` is mandatory at this depth: nearest-to-Δ primes let
#: the canonical scale schedule collapse past ~20 levels
TOY_RESNET_PARAMS = CkksParams(n=512, scale_bits=27, depth=31, scale_tracking=True)

#: single-image shape of the toy ResNet (1 channel, 8×8 pixels)
TOY_RESNET_INPUT_SHAPE = (1, 8, 8)

#: ciphertexts the toy ResNet's channels shard across
TOY_RESNET_SHARDS = 2

#: the toy transformer's CKKS parameter set — depth 33 covers the
#: identity embed(1) + attention(25: 9 fixed + deg-5 exp(3) + 3
#: squarings + 5 Newton iterations(10)) + fc1(1) + deg-12 GELU(4) +
#: fc2(1) + head(1); n=512 gives 8 SIMD request blocks at square size
#: 16.  ``scale_tracking`` is mandatory past ~20 levels
TOY_TRANSFORMER_PARAMS = CkksParams(n=512, scale_bits=27, depth=33, scale_tracking=True)


def compiled_toy(
    reference_keys: bool = False, with_model: bool = False
) -> EncryptedNetwork | tuple:
    """Build, PAF-replace, calibrate and compile the toy MLP.

    ``reference_keys`` additionally generates the naive-path Galois keys
    (differential / op-count testing); ``with_model`` also returns the
    plaintext model (in eval mode).
    """
    # imported here: repro.core pulls in the full training stack, which
    # ordinary repro.fhe users (and its import time) should not pay for
    from repro.core import calibrate_static_scales, convert_to_static, replace_all
    from repro.nn.models import mlp
    from repro.paf import get_paf

    rng = np.random.default_rng(0)
    model = mlp(8, hidden=(6,), num_classes=3, seed=0)
    replace_all(model, get_paf("f1g2"), np.zeros((1, 8)))
    calibrate_static_scales(model, [rng.normal(size=(64, 8))])
    convert_to_static(model)
    enc = compile_mlp(model, TOY_PARAMS, seed=0, reference_keys=reference_keys)
    model.eval()
    return (model, enc) if with_model else enc


def toy_cnn_model(epochs: int = 2, seed: int = 0):
    """Train the plaintext toy CNN on synthetic 8×8 pattern images.

    Architecture: Conv(1→2, 3×3, pad 1) - BN - ReLU - AvgPool(2) -
    Conv(2→2, 3×3, pad 1) - Flatten - Linear(32→3).  BatchNorm tracks
    running statistics (``track_running_stats=True``) so its frozen
    stats can be folded into the conv at FHE compile time; a couple of
    SGD epochs on the pattern dataset both train the weights and
    populate those statistics.  Deterministic for a fixed ``seed``.

    Returns ``(model, dataset)`` with the model left in train mode
    (callers decide when to PAF-replace and freeze).
    """
    from repro.data.synthetic import make_pattern_dataset
    from repro.nn.functional import cross_entropy
    from repro.nn.layers import (
        AvgPool2d,
        BatchNorm2d,
        Conv2d,
        Flatten,
        Linear,
        ReLU,
    )
    from repro.nn.module import Sequential
    from repro.nn.optim import SGD
    from repro.nn.tensor import Tensor

    rng = np.random.default_rng(seed)
    model = Sequential(
        Conv2d(1, 2, 3, padding=1, bias=False, rng=rng),
        BatchNorm2d(2, track_running_stats=True),
        ReLU(),
        AvgPool2d(2),
        Conv2d(2, 2, 3, padding=1, rng=rng),
        Flatten(),
        Linear(32, 3, rng=rng),
    )
    data = make_pattern_dataset(
        num_classes=3, n_train=96, n_val=24, image_size=8, channels=1, seed=seed
    )
    opt = SGD(model.parameters(), lr=0.05, momentum=0.9)
    batch = 16
    for _ in range(epochs):
        for start in range(0, data.n_train, batch):
            xb = data.x_train[start : start + batch]
            yb = data.y_train[start : start + batch]
            loss = cross_entropy(model(Tensor(xb)), yb)
            opt.zero_grad()
            loss.backward()
            opt.step()
    return model, data


def toy_resnet_model(epochs: int = 2, seed: int = 0):
    """Train the plaintext toy ResNet on synthetic 8×8 pattern images.

    Architecture: :class:`repro.nn.models.resnet.ToyResNet` at width 2 —
    stem Conv(1→2, 3×3, pad 1)-BN, BasicBlock(2→2, identity skip),
    BasicBlock(2→4, stride 2, 1×1-projection skip), GlobalAvgPool,
    Linear(4→3).  All BatchNorms track running statistics so they fold
    at FHE compile time.  Deterministic for a fixed ``seed``; returns
    ``(model, dataset)`` with the model left in train mode.
    """
    from repro.data.synthetic import make_pattern_dataset
    from repro.nn.functional import cross_entropy
    from repro.nn.models.resnet import toy_resnet
    from repro.nn.optim import SGD
    from repro.nn.tensor import Tensor

    model = toy_resnet(num_classes=3, width=2, in_channels=1, seed=seed)
    data = make_pattern_dataset(
        num_classes=3, n_train=96, n_val=24, image_size=8, channels=1, seed=seed
    )
    opt = SGD(model.parameters(), lr=0.05, momentum=0.9)
    batch = 16
    for _ in range(epochs):
        for start in range(0, data.n_train, batch):
            xb = data.x_train[start : start + batch]
            yb = data.y_train[start : start + batch]
            loss = cross_entropy(model(Tensor(xb)), yb)
            opt.zero_grad()
            loss.backward()
            opt.step()
    return model, data


def compiled_toy_resnet(
    with_model: bool = False,
    num_shards: int = TOY_RESNET_SHARDS,
    params: CkksParams | None = None,
) -> EncryptedNetwork | tuple:
    """Train, PAF-replace, calibrate and compile the toy ResNet.

    The shared fixture behind the residual differential tests, the
    sharded op-count gate and ``bench_resnet_forward``.  Channels shard
    across ``num_shards`` ciphertexts (2 by default — the acceptance
    geometry); ``with_model`` also returns the plaintext model (in eval
    mode).
    """
    from repro.core import calibrate_static_scales, convert_to_static, replace_all
    from repro.fhe.cnn import compile_resnet
    from repro.paf import get_paf

    model, data = toy_resnet_model()
    replace_all(model, get_paf("f1g2"), data.x_train[:2])
    calibrate_static_scales(model, [data.x_train])
    convert_to_static(model)
    model.eval()
    enc = compile_resnet(
        model,
        TOY_RESNET_INPUT_SHAPE,
        params or TOY_RESNET_PARAMS,
        num_shards=num_shards,
        seed=0,
    )
    return (model, enc) if with_model else enc


def toy_transformer_model(epochs: int = 2, seed: int = 0):
    """Train the plaintext toy transformer on synthetic token sequences.

    Architecture: :class:`repro.nn.models.transformer.ToyTransformer`
    with seq=4, dim=8, ff=16, 3 classes — one self-attention block and
    a GELU MLP, both residual, mean-pooled into a linear head.  The
    light schedule (2 epochs, lr 0.02) reaches full validation accuracy
    while leaving the centred attention scores and GELU pre-activations
    inside the ranges the dense PAFs approximate to ~1e-4 — heavier
    training sharpens attention into exp ranges no low-degree
    polynomial tracks.  Deterministic for a fixed ``seed``; returns
    ``(model, dataset)`` with the model left in train mode (callers
    decide when to PAF-replace).
    """
    from repro.data.synthetic import make_sequence_dataset
    from repro.nn.functional import cross_entropy
    from repro.nn.models import toy_transformer
    from repro.nn.optim import SGD
    from repro.nn.tensor import Tensor

    model = toy_transformer(seq=4, dim=8, ff=16, num_classes=3, seed=seed)
    data = make_sequence_dataset(
        num_classes=3, n_train=96, n_val=24, seq=4, dim=8, seed=seed
    )
    opt = SGD(model.parameters(), lr=0.02, momentum=0.9)
    batch = 16
    for _ in range(epochs):
        for start in range(0, data.n_train, batch):
            xb = data.x_train[start : start + batch]
            yb = data.y_train[start : start + batch]
            loss = cross_entropy(model(Tensor(xb)), yb)
            opt.zero_grad()
            loss.backward()
            opt.step()
    return model, data


def compiled_toy_transformer(
    reference_keys: bool = False,
    with_model: bool = False,
    params: CkksParams | None = None,
) -> EncryptedNetwork | tuple:
    """Train, PAF-replace, calibrate and compile the toy transformer.

    The shared fixture behind the encrypted-attention differential
    tests, the transformer op-count gate and
    ``bench_transformer_forward``: trains the plaintext model, swaps
    its softmax / GELU for calibrated dense PAFs
    (:func:`repro.core.surgery.replace_transformer_nonpoly` on the
    training set), and lowers through the token-sharded transformer
    path of :func:`repro.fhe.ir.compile_network`.  ``with_model`` also
    returns the PAF-approximated plaintext model (in eval mode) — the
    rtol reference for decrypted logits.
    """
    from repro.core.surgery import replace_transformer_nonpoly
    from repro.fhe.ir import CompilePolicy, compile_network

    model, data = toy_transformer_model()
    # deg-12 GELU costs the same 4 levels as deg-8 (ceil(log2(d+1)));
    # 5 Newton iterations cover the calibrated sum interval's ~12x ratio
    replace_transformer_nonpoly(
        model,
        data.x_train,
        exp_degree=5,
        exp_squarings=3,
        gelu_degree=12,
        recip_iters=5,
    )
    model.eval()
    enc = compile_network(
        model,
        params or TOY_TRANSFORMER_PARAMS,
        policy=CompilePolicy(seed=0, reference_keys=reference_keys),
    )
    return (model, enc) if with_model else enc


def toy_transformer_stacked_model(epochs: int = 2, seed: int = 0):
    """Train the 2-block stacked toy transformer (same data/schedule).

    :class:`repro.nn.models.transformer.StackedToyTransformer` with
    seq=4, dim=8, ff=16, 3 classes, two blocks — the refresh demo model:
    each block costs ~32 encrypted levels, so the stack cannot fit any
    practical prime chain without a mid-network refresh.  Returns
    ``(model, dataset)`` with the model in train mode.
    """
    from repro.data.synthetic import make_sequence_dataset
    from repro.nn.functional import cross_entropy
    from repro.nn.models import toy_transformer_stacked
    from repro.nn.optim import SGD
    from repro.nn.tensor import Tensor

    model = toy_transformer_stacked(
        seq=4, dim=8, ff=16, num_classes=3, num_blocks=2, seed=seed
    )
    data = make_sequence_dataset(
        num_classes=3, n_train=96, n_val=24, seq=4, dim=8, seed=seed
    )
    opt = SGD(model.parameters(), lr=0.02, momentum=0.9)
    batch = 16
    for _ in range(epochs):
        for start in range(0, data.n_train, batch):
            xb = data.x_train[start : start + batch]
            yb = data.y_train[start : start + batch]
            loss = cross_entropy(model(Tensor(xb)), yb)
            opt.zero_grad()
            loss.backward()
            opt.step()
    return model, data


def compiled_toy_transformer_stacked(
    reference_keys: bool = False,
    with_model: bool = False,
    params: CkksParams | None = None,
) -> EncryptedNetwork | tuple:
    """Train, PAF-replace and compile the 2-block stacked transformer.

    The depth-wall fixture: both blocks together validate to ~64 levels
    against a 33-level chain, so :class:`repro.fhe.ir.CompilePolicy`'s
    automatic placement must insert a :class:`repro.fhe.ir.RefreshNode`
    between the blocks for compilation to succeed at all.  The refresh is
    exactness-gated at rtol 1e-3; decrypted logits are pinned against
    the PAF-approximated plaintext model at the same tolerance by the
    differential tests and the stacked op-count/bench gates.
    """
    from repro.core.surgery import replace_transformer_nonpoly
    from repro.fhe.ir import CompilePolicy, compile_network

    model, data = toy_transformer_stacked_model()
    replace_transformer_nonpoly(
        model,
        data.x_train,
        exp_degree=5,
        exp_squarings=3,
        gelu_degree=12,
        recip_iters=5,
    )
    model.eval()
    policy = CompilePolicy(
        refresh="auto",
        refresh_method="recrypt",
        rtol=1e-3,
        seed=0,
        reference_keys=reference_keys,
    )
    enc = compile_network(model, params or TOY_TRANSFORMER_PARAMS, policy=policy)
    return (model, enc) if with_model else enc


def compiled_toy_cnn(
    reference_keys: bool = False,
    with_model: bool = False,
    fold_bn: bool = True,
    params: CkksParams | None = None,
) -> EncryptedNetwork | tuple:
    """Train, PAF-replace, calibrate and compile the toy CNN.

    The shared fixture behind the CNN differential tests, the serving
    suite and the CI op-count gate.  ``reference_keys`` additionally
    generates the naive-path Galois keys; ``fold_bn=False`` keeps
    BatchNorm as a standalone affine layer (one extra level — pass
    ``params`` with ``depth >= 11``); ``with_model`` also returns the
    plaintext model (in eval mode).
    """
    from repro.core import calibrate_static_scales, convert_to_static, replace_all
    from repro.fhe.cnn import compile_cnn
    from repro.paf import get_paf

    model, data = toy_cnn_model()
    replace_all(model, get_paf("f1g2"), data.x_train[:2])
    calibrate_static_scales(model, [data.x_train])
    convert_to_static(model)
    model.eval()
    enc = compile_cnn(
        model,
        TOY_CNN_INPUT_SHAPE,
        params or TOY_CNN_PARAMS,
        seed=0,
        reference_keys=reference_keys,
        fold_bn=fold_bn,
    )
    return (model, enc) if with_model else enc
