"""Encrypted single-head self-attention and the transformer lowering.

Tokens are ciphertext shards: a ``seq``-token block runs with one
ciphertext per token, each packed like any other request vector
(``dim`` features zero-padded to ``size`` with wraparound replication,
SIMD-tiled across blocks).  Matmuls against *plaintext* weights are the
usual per-shard Halevi-Shoup matvecs; the two ciphertext-ciphertext
matmuls of attention (``Q Kᵀ`` and ``P V``) decompose into all-pairs
slot-wise products with rotate-and-sum dot-product reduction and
mask-place/broadcast glue:

* **scores** — ``m = q_i ⊙ k_j`` (1 level), doubling rotations sum the
  ``dim`` feature lanes into slot 0 of every block, a placement mask
  (``1/√dim`` folded in) parks ``s_ij`` at slot ``j`` (1 level); the
  same reduced products accumulate through a ``1/(seq·√dim)`` mask into
  the broadcast window-mean used for stabilisation — a parallel branch
  at the same level, so centring is level-free;
* **softmax PAF** — the centred scores feed the range-reduced ``exp``
  polynomial (Paterson-Stockmeyer plan + ``exp_squarings`` squarings),
  doubling rotations sum the window, a mask + right-rotation doubling
  broadcasts the sum (1 level), and the affine-seeded Newton reciprocal
  (1 + 2·``recip_iters`` levels) normalises;
* **mixing** — each probability is extracted by a slot mask (1 level),
  broadcast across the whole block by right-rotation doubling, and
  multiplied into the corresponding value shard (1 level); the
  accumulated mix takes the output projection like any linear layer.

Level budget: ``AttentionNode.level_cost()`` — 9 fixed + exp depth +
squarings + 2 per Newton iteration; the executor consumes exactly that.
"""

from __future__ import annotations

import numpy as np

from repro.ckks.instrumentation import span as trace_span
from repro.ckks.poly_eval import eval_dense_poly
from repro.ckks.poly_plan import plan_dense_poly
from repro.fhe.linear import (
    bsgs_diagonals,
    diagonals_of,
    encrypted_matvec,
    encrypted_matvec_bsgs,
    plan_matvec,
    tile_blocks,
)

__all__ = [
    "compile_attention_state",
    "attention_forward",
    "compile_transformer",
]


def _pad_square(w: np.ndarray, size: int) -> np.ndarray:
    out_dim, in_dim = w.shape
    if out_dim > size or in_dim > size:
        raise ValueError(f"weight {w.shape} exceeds layer size {size}")
    mat = np.zeros((size, size))
    mat[:out_dim, :in_dim] = w
    return mat


def _doubling_steps(span: int) -> list:
    """Left-rotation steps 1, 2, 4, ... summing a ``span``-slot window."""
    if span & (span - 1):
        raise ValueError(f"rotate-and-sum window must be a power of two, got {span}")
    return [1 << t for t in range(span.bit_length() - 1)]


def compile_attention_state(net, i: int, node) -> dict:
    """Build the per-node caches the attention executor reads.

    Registers every rotation step the dance needs on the network's
    shared Galois-step set (keygen runs after the compile loop), plans
    the four projection matvecs exactly like standalone linear layers,
    plans the ``exp`` polynomial, and tiles the placement / mean / sum /
    extraction masks across the SIMD blocks.
    """
    seq, dim = node.seq, node.dim
    slots = net.ctx.slots
    size = net.size
    if dim > size or seq > size:
        raise ValueError(f"attention layer {i}: seq/dim exceed size {size}")
    state: dict = {"proj": {}}
    for name, w, b in (
        ("q", node.wq, node.bq),
        ("k", node.wk, node.bk),
        ("v", node.wv, node.bv),
        ("o", node.wo, node.bo),
    ):
        diags = diagonals_of(
            _pad_square(w, size),
            slots,
            num_blocks=net.max_batch,
            block_stride=net.block_stride,
        )
        plan = plan_matvec(diags.keys(), size)
        net._shard_steps.update(plan.rotation_steps())
        if net._reference_keys:
            net._shard_steps.update(plan.diag_steps)
        groups = bsgs_diagonals(diags, plan) if plan.use_bsgs else None
        if plan.use_bsgs and not net._reference_keys:
            diags = None
        bias_slots = None
        if b is not None:
            base = np.zeros(size)
            base[: len(b)] = b
            bias_slots = tile_blocks(base, slots, net.max_batch, net.block_stride)
        state["proj"][name] = (plan, groups, diags, bias_slots)

    score_scale = node.score_scale or 1.0 / np.sqrt(dim)
    place, extract = [], []
    for j in range(seq):
        e_j = np.zeros(size)
        e_j[j] = 1.0
        place.append(
            tile_blocks(e_j * score_scale, slots, net.max_batch, net.block_stride)
        )
        extract.append(tile_blocks(e_j, slots, net.max_batch, net.block_stride))
    e_0 = np.zeros(size)
    e_0[0] = 1.0
    state["place_masks"] = place
    state["extract_masks"] = extract
    state["mean_mask"] = tile_blocks(
        e_0 * (score_scale / seq), slots, net.max_batch, net.block_stride
    )
    state["sum_mask"] = tile_blocks(e_0, slots, net.max_batch, net.block_stride)

    # rotation steps: feature-lane reduce, window reduce, right-rotation
    # window broadcast, score placement, probability extraction, and the
    # full-block broadcast that spreads one slot over vector + replica
    steps = set(_doubling_steps(dim)) | set(_doubling_steps(seq))
    steps |= {slots - s for s in _doubling_steps(seq)}
    steps |= {slots - j for j in range(1, seq)}
    steps |= set(range(1, seq))
    steps |= {slots - s for s in _doubling_steps(net.block_stride)}
    net._shard_steps.update(steps)

    state["exp_plan"] = plan_dense_poly(node.exp_poly, exact_scales=True)
    return state


def _proj_matvec(net, ev, state: dict, name: str, ct, reference: bool):
    """One Q/K/V/O projection: per-shard matvec following its plan."""
    plan, groups, diags, bias_slots = state["proj"][name]
    bsgs = plan.use_bsgs and not reference
    if not bsgs and diags is None:
        raise ValueError(
            "naive reference path unavailable: compile with "
            "reference_keys=True to retain flat diagonals and keys"
        )
    if bsgs:
        return encrypted_matvec_bsgs(ev, ct, groups=groups, bias_slots=bias_slots)
    return encrypted_matvec(ev, ct, diagonals=diags, bias_slots=bias_slots)


def _rotate_sum(ev, ct, steps: list):
    """Accumulate ``ct`` with its rotations by doubling ``steps``."""
    for s in steps:
        ct = ev.add(ct, ev.rotate(ct, s))
    return ct


def _broadcast_right(ev, ct, steps: list, slots: int):
    """Spread slot 0 of every block over a window by right rotations."""
    for s in steps:
        ct = ev.add(ct, ev.rotate(ct, slots - s))
    return ct


def attention_forward(
    net, i: int, node, cts, ev, *, reference: bool = False, executor=None
) -> list:
    """Execute one attention node over the per-token ciphertext shards.

    Returns one output shard per token, ``level_cost()`` levels below
    the input, with zeroed replica halves (the output projection's
    masked matvec restores the block invariant the next layer relies
    on).  ``reference`` selects the naive matvec and ladder-``exp``
    paths, as everywhere else.
    """
    state = net.attention_states[i]
    seq, dim = node.seq, node.dim
    if len(cts) != seq:
        raise ValueError(
            f"attention layer {i}: expected {seq} token shards, got {len(cts)}"
        )
    slots = net.ctx.slots
    dim_steps = _doubling_steps(dim)
    seq_steps = _doubling_steps(seq)
    block_steps = _doubling_steps(net.block_stride)

    with trace_span(ev, "attention:qkv", kind="exec", shards=seq) as sp:
        sp.ct_entry(cts)
        xs = [net._replicate(ct, ev) for ct in cts]
        qs = net._map_shards(
            executor,
            [
                lambda x=x: _proj_matvec(net, ev, state, "q", x, reference)
                for x in xs
            ],
        )
        ks = net._map_shards(
            executor,
            [
                lambda x=x: _proj_matvec(net, ev, state, "k", x, reference)
                for x in xs
            ],
        )
        vs = net._map_shards(
            executor,
            [
                lambda x=x: _proj_matvec(net, ev, state, "v", x, reference)
                for x in xs
            ],
        )
        sp.ct_exit(qs)

    def one_query(qi):
        # all-pairs reduced products: dot(q_i, k_j) at slot 0 per block
        reduced = []
        for kj in ks:
            m = ev.mul_rescale(qi, kj)
            reduced.append(_rotate_sum(ev, m, dim_steps))
        # place s_ij at slot j (1/sqrt(dim) in the mask) and, from the
        # same products, accumulate the stabilising window mean — a
        # parallel branch at the same level, so centring is level-free
        score_acc = None
        mean_acc = None
        for j, red in enumerate(reduced):
            placed = ev.rotate(red, slots - j) if j else red
            term = ev.mul_plain(placed, state["place_masks"][j])
            score_acc = term if score_acc is None else ev.add(score_acc, term)
            mterm = ev.mul_plain(red, state["mean_mask"])
            mean_acc = mterm if mean_acc is None else ev.add(mean_acc, mterm)
        scores = ev.rescale(score_acc)
        mean = _broadcast_right(ev, ev.rescale(mean_acc), seq_steps, slots)
        z = ev.sub(scores, mean)

        # softmax PAF: range-reduced exp, window sum, Newton reciprocal
        e = eval_dense_poly(
            ev, z, node.exp_poly, plan=state["exp_plan"], reference=reference
        )
        for _ in range(node.exp_squarings):
            e = ev.rescale(ev.square(e))
        total = _rotate_sum(ev, e, seq_steps)
        total = ev.rescale(ev.mul_plain(total, state["sum_mask"]))
        total = _broadcast_right(ev, total, seq_steps, slots)
        a, b = node.recip_init
        y = ev.add_plain(
            ev.rescale(ev.mul_plain(total, np.full(slots, b))), np.full(slots, a)
        )
        for _ in range(node.recip_iters):
            t = ev.mul_rescale(ev.align_to(total, y.level, y.scale, rtol=0.0), y)
            u = ev.add_plain(ev.negate(t), np.full(slots, 2.0))
            y = ev.mul_rescale(ev.align_to(y, u.level, u.scale, rtol=0.0), u)
        probs = ev.mul_rescale(ev.align_to(e, y.level, y.scale, rtol=0.0), y)

        # mix: extract p_ij, broadcast over the whole block, weight v_j
        mix = None
        for j, vj in enumerate(vs):
            p = ev.rescale(ev.mul_plain(probs, state["extract_masks"][j]))
            if j:
                p = ev.rotate(p, j)
            p = _broadcast_right(ev, p, block_steps, slots)
            term = ev.mul_rescale(
                ev.align_to(vj, p.level, p.scale, rtol=0.0), p
            )
            mix = term if mix is None else ev.add(mix, term)
        out = net._replicate(mix, ev)
        return _proj_matvec(net, ev, state, "o", out, reference)

    with trace_span(ev, "attention:mix", kind="exec", shards=seq) as sp:
        sp.ct_entry(cts)
        outs = net._map_shards(
            executor, [lambda q=q: one_query(q) for q in qs]
        )
        sp.ct_exit(outs)
    return outs


def compile_transformer(model, params, *, seed: int = 0, reference_keys: bool = False,
                        policy=None):
    """Lower a :class:`~repro.nn.models.transformer.ToyTransformer`.

    One ciphertext shard per token.  The lowering opens with an
    identity "embed" matvec: the packed input carries live wraparound
    replicas, but every downstream consumer (``_replicate`` before each
    linear layer, the residual adds) relies on matvec outputs having
    *zero* replica halves — the embed's masked diagonal-0 multiply (no
    rotations) re-establishes that invariant, so the first residual tap
    saves a clean copy of the input.  Each block's residual adds become
    tap/merge pairs; the GELU MLP is a diagonal shard grid (the same
    weights applied to every token shard); the mean pool is a shard-sum
    reduce with ``1/seq`` folded into the classification head.  The
    model must already carry its calibrated PAF modules
    (:func:`repro.core.surgery.replace_transformer_nonpoly`) — the
    softmax/GELU domains are frozen into the IR, exactly like the
    static scales of a compiled MLP.

    A :class:`~repro.nn.models.transformer.StackedToyTransformer`
    (``model.blocks``) lowers block by block onto the same shard layout;
    when the stacked depth exceeds ``params.depth``, ``policy``'s refresh
    placement (:class:`repro.fhe.ir.CompilePolicy`, default ``"auto"``)
    is what makes the graph schedulable at all.
    """
    from repro.core.paf_layer import PAFGELU, PAFSoftmax
    from repro.fhe.ir import (
        AttentionNode,
        Graph,
        MatvecNode,
        MergeNode,
        PolyNode,
        ReduceNode,
        ResidualTapNode,
    )
    from repro.fhe.network import EncryptedNetwork

    if policy is not None:
        seed, reference_keys = policy.seed, policy.reference_keys
    blocks = getattr(model, "blocks", None) or [model]
    for blk in blocks:
        if not isinstance(blk.softmax, PAFSoftmax) or not isinstance(
            blk.act, PAFGELU
        ):
            raise ValueError(
                "transformer compilation needs calibrated PAF modules — run "
                "replace_transformer_nonpoly(model, samples) first"
            )
    seq, dim, ff = model.seq, model.dim, model.ff
    size = 1
    while size < max(dim, ff, model.num_classes):
        size *= 2
    weight = lambda lin: np.asarray(lin.weight.data, dtype=np.float64)
    bias = lambda lin: np.asarray(lin.bias.data, dtype=np.float64)

    def diag_grid(w: np.ndarray) -> list:
        mat = _pad_square(w, size)
        return [
            [mat if i == j else None for j in range(seq)] for i in range(seq)
        ]

    nodes = [MatvecNode(blocks=diag_grid(np.eye(dim)))]
    for blk in blocks:
        sm = blk.softmax
        attention = AttentionNode(
            seq=seq,
            dim=dim,
            score_scale=getattr(blk, "score_scale", 0.0) or 1.0 / np.sqrt(dim),
            wq=weight(blk.wq),
            wk=weight(blk.wk),
            wv=weight(blk.wv),
            wo=weight(blk.wo),
            bq=bias(blk.wq),
            bk=bias(blk.wk),
            bv=bias(blk.wv),
            bo=bias(blk.wo),
            exp_poly=sm.exp.poly,
            exp_squarings=sm.exp.squarings,
            recip_init=sm.recip_init,
            recip_iters=sm.recip_iters,
        )
        attn_tap = len(nodes)
        nodes += [
            ResidualTapNode(),
            attention,
            MergeNode(tap=attn_tap),
        ]
        mlp_tap = len(nodes)
        nodes += [
            ResidualTapNode(),
            MatvecNode(blocks=diag_grid(weight(blk.fc1)), bias_shards=[bias(blk.fc1)] * seq),
            PolyNode(poly=blk.act.poly),
            MatvecNode(blocks=diag_grid(weight(blk.fc2)), bias_shards=[bias(blk.fc2)] * seq),
            MergeNode(tap=mlp_tap),
        ]
    nodes += [
        ReduceNode(),
        MatvecNode(
            blocks=[[_pad_square(weight(model.head) / seq, size)]],
            bias_shards=[bias(model.head)],
        ),
    ]
    name = "toy_transformer" if len(blocks) == 1 else "toy_transformer_stacked"
    graph = Graph(
        nodes,
        size=size,
        input_shards=seq,
        input_splits=[dim] * seq,
        metadata={"model": name, "num_blocks": len(blocks)},
    )
    return EncryptedNetwork(
        graph, params=params, seed=seed, reference_keys=reference_keys,
        policy=policy,
    )
