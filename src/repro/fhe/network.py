"""Compile a PAF-approximated MLP to fully-encrypted CKKS inference.

The end-to-end private-inference path of the paper's Fig. 2: the client
encrypts an input vector; the server evaluates linear layers (Halevi-Shoup
matmul) and PAF activations (depth-optimal composite evaluation) on
ciphertexts only; the client decrypts logits.

Square layer layout: every Linear weight is zero-padded to ``size×size``
(``size`` = max layer width) so rotations align, and inputs are packed
with wraparound replication.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ckks import (
    Ciphertext,
    CkksContext,
    CkksEvaluator,
    CkksParams,
    eval_paf_relu,
    keygen,
)
from repro.core.paf_layer import PAFReLU
from repro.fhe.linear import diagonals_of, encrypted_matvec
from repro.nn.layers import Linear, ReLU
from repro.nn.module import Module
from repro.paf.polynomial import CompositePAF
from repro.paf.relu import relu_mult_depth

__all__ = ["EncryptedMLP", "compile_mlp"]


@dataclass
class _Layer:
    kind: str                   # "linear" | "paf"
    weight: np.ndarray | None = None
    bias: np.ndarray | None = None
    paf: CompositePAF | None = None
    scale: float = 1.0


class EncryptedMLP:
    """An MLP compiled for encrypted inference."""

    def __init__(self, layers, size: int, params: CkksParams, seed: int = 0):
        self.layers = layers
        self.size = size
        depth_needed = sum(
            relu_mult_depth(l.paf) if l.kind == "paf" else 1 for l in layers
        )
        if params.depth < depth_needed:
            raise ValueError(
                f"context depth {params.depth} < required {depth_needed}"
            )
        self.ctx = CkksContext(params)
        steps = set()
        for l in layers:
            if l.kind == "linear":
                steps.update(
                    d for d in diagonals_of(l.weight, self.ctx.slots) if d != 0
                )
        # right-rotation by `size` restores the wraparound replica block
        # before each linear layer (the matvec zeroes slots >= size)
        self._replicate_step = self.ctx.slots - self.size
        steps.add(self._replicate_step)
        self.keys = keygen(self.ctx, seed=seed, galois_steps=tuple(sorted(steps)))
        self.ev = CkksEvaluator(self.ctx, self.keys)

    # ------------------------------------------------------------------
    def encrypt_input(self, x: np.ndarray) -> Ciphertext:
        """Pack + encrypt one input vector (wraparound replication)."""
        x = np.asarray(x, dtype=np.float64).ravel()
        packed = np.zeros(self.ctx.slots)
        packed[: len(x)] = x
        # replicate so cyclic diagonals wrap correctly within the block
        packed[self.size : self.size + len(x)] = x
        return self.ev.encrypt(packed)

    def _replicate(self, ct: Ciphertext) -> Ciphertext:
        """Restore the replica block: out[i+size] = in[i] (tail is zero)."""
        return self.ev.add(ct, self.ev.rotate(ct, self._replicate_step))

    def forward(self, ct: Ciphertext, first: bool = True) -> Ciphertext:
        for i, l in enumerate(self.layers):
            if l.kind == "linear":
                if i > 0:
                    ct = self._replicate(ct)
                ct = encrypted_matvec(self.ev, ct, l.weight, l.bias)
            else:
                ct = eval_paf_relu(self.ev, ct, l.paf, scale=l.scale)
        return ct

    def decrypt_logits(self, ct: Ciphertext, num_classes: int) -> np.ndarray:
        return self.ev.decrypt(ct, num_values=num_classes)

    def predict(self, x: np.ndarray, num_classes: int) -> int:
        """Full round trip: encrypt -> encrypted forward -> decrypt -> argmax."""
        logits = self.decrypt_logits(self.forward(self.encrypt_input(x)), num_classes)
        return int(np.argmax(logits))


def compile_mlp(model: Module, params: CkksParams, seed: int = 0) -> EncryptedMLP:
    """Compile a (PAF-approximated) ``repro.nn`` MLP for encrypted inference.

    Accepts models whose module tree is Linear / ReLU / PAFReLU layers
    only (e.g. ``repro.nn.models.MLP`` after SMART-PAF replacement).
    Exact ReLU layers are rejected — replace them first; that is the whole
    point of the paper.
    """
    layers: list[_Layer] = []
    widths: list[int] = []
    for name, mod in model.named_modules():
        if isinstance(mod, Linear):
            w = mod.weight.data.copy()
            b = mod.bias.data.copy() if mod.bias is not None else None
            layers.append(_Layer(kind="linear", weight=w, bias=b))
            widths.extend(w.shape)
        elif isinstance(mod, PAFReLU):
            layers.append(
                _Layer(
                    kind="paf",
                    paf=mod.sign.to_composite(),
                    scale=mod.static_scale,
                )
            )
        elif isinstance(mod, ReLU):
            raise TypeError(
                f"layer {name!r} is an exact ReLU — run SMART-PAF replacement "
                "before compiling to FHE (CKKS has no non-polynomial ops)"
            )
    size = max(widths)
    # zero-pad weights to square so the diagonal layout is uniform
    for l in layers:
        if l.kind == "linear":
            padded = np.zeros((size, size))
            padded[: l.weight.shape[0], : l.weight.shape[1]] = l.weight
            l.weight = padded
    return EncryptedMLP(layers, size=size, params=params, seed=seed)
