"""Compile a PAF-approximated network to fully-encrypted CKKS inference.

The end-to-end private-inference path of the paper's Fig. 2: the client
encrypts an input vector; the server evaluates linear layers (Halevi-Shoup
matmul) and PAF activations (depth-preserving Paterson–Stockmeyer
composite evaluation) on ciphertexts only; the client decrypts logits.

Square layer layout: every linear-algebra layer (Linear weights, and the
compile-time-lowered Conv2d matrices from :mod:`repro.fhe.cnn`) is
zero-padded to ``size×size`` (``size`` = max layer slot span) so rotations
align.  Slots are divided into ``max_batch`` disjoint *blocks* of
``2·size`` slots each; block ``b`` carries one input vector packed with
wraparound replication (``slots[b·2s : b·2s+size]`` = x,
``slots[b·2s+size : b·2s+2s]`` = x), so a single ciphertext serves up to
``slots // (2·size)`` independent requests through the same sequence of
homomorphic ops — the SIMD batching that :mod:`repro.serve` builds on.
Diagonals are tiled across all blocks once at compile time; rotation
steps (and hence the Galois key set) are identical to the
single-request layout.

Four layer kinds execute on ciphertexts:

* ``linear`` — a :class:`~repro.fhe.linear.MatvecPlan`-compiled matvec:
  BSGS (``O(√D)`` keyswitches, hoisted baby rotations, pre-rotated
  diagonals cached at compile time) where strictly cheaper, the naive
  diagonal loop otherwise;
* ``paf`` — a compiled :class:`~repro.ckks.poly_plan.ReluPlan`
  (Paterson–Stockmeyer vs ladder per component);
* ``pool`` — average pooling as two hoisted rotate-and-sum stages
  (column shifts then row shifts) followed by one masked plaintext
  scalar multiply (``1/window``, tiled over ``[0, size)`` of each block
  — which simultaneously re-zeroes the replica halves the rotations
  smeared into);
* ``affine`` — a slot-wise plaintext scale-and-shift (an *unfolded*
  BatchNorm; the CNN compiler folds BN into the adjacent conv by
  default, so this kind only appears with ``fold_bn=False``).

The Galois key set is sized from the union of the chosen matvec plans'
rotation steps, every pool's shift steps, and the replication step — for
BSGS layers that is ``n1 + n2 - 2`` keys instead of one per nonzero
diagonal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ckks import (
    Ciphertext,
    CkksContext,
    CkksEvaluator,
    CkksParams,
    eval_paf_relu,
    keygen,
    plan_paf_relu,
)
from repro.core.paf_layer import PAFReLU
from repro.fhe.linear import (
    bsgs_diagonals,
    diagonals_of,
    encrypted_matvec,
    encrypted_matvec_bsgs,
    plan_matvec,
    tile_blocks,
)
from repro.fhe.packing import BlockLayout, pack_batch, unpack_blocks
from repro.nn.layers import Linear, ReLU
from repro.nn.module import Module
from repro.paf.polynomial import CompositePAF
from repro.paf.relu import relu_mult_depth

__all__ = ["EncryptedNetwork", "EncryptedMLP", "compile_mlp"]


@dataclass
class _Layer:
    kind: str                   # "linear" | "paf" | "pool" | "affine"
    weight: np.ndarray | None = None
    bias: np.ndarray | None = None
    paf: CompositePAF | None = None
    scale: float = 1.0
    #: pool: per-stage nonzero rotation steps ((col shifts), (row shifts))
    shifts: tuple = field(default_factory=tuple)
    #: pool: the plaintext scalar (1 / window area)
    pool_scale: float = 1.0
    #: affine: per-slot multiplier / addend over ``[0, size)`` of a block
    affine_scale: np.ndarray | None = None
    affine_shift: np.ndarray | None = None


class EncryptedNetwork:
    """A network compiled for encrypted inference (single or SIMD-batched).

    Built by :func:`compile_mlp` (Linear/PAF stacks) and
    :func:`repro.fhe.cnn.compile_cnn` (Conv/BN/Pool stacks lowered to the
    same layer kinds).  ``EncryptedMLP`` is a backwards-compatible alias.
    """

    def __init__(
        self,
        layers,
        size: int,
        params: CkksParams,
        seed: int = 0,
        reference_keys: bool = False,
    ):
        self.layers = layers
        self.size = size
        depth_needed = sum(self._layer_depth(l) for l in layers)
        if params.depth < depth_needed:
            raise ValueError(
                f"context depth {params.depth} < required {depth_needed}"
            )
        self.ctx = CkksContext(params)
        slots = self.ctx.slots
        #: SIMD block geometry (shared with :mod:`repro.serve.packing`)
        self.layout = BlockLayout(size=size, slots=slots)
        #: one request occupies ``2·size`` slots (vector + wraparound replica)
        self.block_stride = self.layout.stride
        #: SIMD capacity: how many requests fit one ciphertext
        self.max_batch = self.layout.max_batch
        # Diagonals / biases are tiled across *all* blocks once; a partial
        # batch leaves trailing blocks at zero input, which just compute
        # f(0) in-range — so every batch size shares these plaintexts (and,
        # downstream, the serve artifact's encoding cache).  BSGS layers
        # keep only their pre-rotated groups: the flat diagonals are
        # retained just where something can actually read them (naive-plan
        # layers, or every layer when ``reference_keys`` enables the
        # reference path) — holding both would double plaintext memory.
        self.linear_diagonals: dict[int, dict] = {}
        self.linear_bias_slots: dict[int, np.ndarray] = {}
        #: per-layer matvec execution plan (BSGS vs naive reference)
        self.matvec_plans: dict = {}
        #: pre-rotated giant-step diagonal groups for the BSGS layers
        self.linear_groups: dict[int, dict] = {}
        #: per-activation :class:`~repro.ckks.poly_plan.ReluPlan`
        #: (Paterson–Stockmeyer vs ladder chosen per component, with the
        #: static scale and the ReLU ½ already folded into coefficients)
        self.paf_plans: dict = {}
        #: pool masks: ``1/window`` over ``[0, size)`` of every block, zero
        #: elsewhere — the pool's scalar multiply doubles as the cleanup
        #: that re-zeroes replica halves after the rotate-and-sum stages
        self.pool_masks: dict[int, np.ndarray] = {}
        #: affine (unfolded BN) slot vectors, tiled like the biases
        self.affine_scale_slots: dict[int, np.ndarray] = {}
        self.affine_shift_slots: dict[int, np.ndarray] = {}
        pool_steps: set = set()
        for i, l in enumerate(layers):
            if l.kind == "paf":
                self.paf_plans[i] = plan_paf_relu(l.paf, l.scale)
            if l.kind == "pool":
                for stage in l.shifts:
                    pool_steps.update(s for s in stage if s)
                self.pool_masks[i] = tile_blocks(
                    np.full(size, l.pool_scale),
                    slots,
                    self.max_batch,
                    self.block_stride,
                )
            if l.kind == "affine":
                for name, vec, store in (
                    ("scale", l.affine_scale, self.affine_scale_slots),
                    ("shift", l.affine_shift, self.affine_shift_slots),
                ):
                    if vec is None or len(vec) > size:
                        raise ValueError(
                            f"affine layer {i} needs a {name} vector of length <= {size}"
                        )
                    base = np.zeros(size)
                    base[: len(vec)] = vec
                    store[i] = tile_blocks(
                        base, slots, self.max_batch, self.block_stride
                    )
            if l.kind == "linear":
                diags = diagonals_of(
                    l.weight,
                    slots,
                    num_blocks=self.max_batch,
                    block_stride=self.block_stride,
                )
                plan = plan_matvec(diags.keys(), size)
                self.matvec_plans[i] = plan
                if plan.use_bsgs:
                    self.linear_groups[i] = bsgs_diagonals(diags, plan)
                if not plan.use_bsgs or reference_keys:
                    self.linear_diagonals[i] = diags
                if l.bias is not None:
                    bias = np.zeros(size)
                    bias[: len(l.bias)] = l.bias
                    self.linear_bias_slots[i] = tile_blocks(
                        bias, slots, self.max_batch, self.block_stride
                    )
        # Galois keys cover exactly the planned rotation steps (baby +
        # giant for BSGS layers, per-diagonal for naive ones);
        # ``reference_keys`` additionally covers the naive path of every
        # layer so the reference implementation can run side by side.
        steps = {s for plan in self.matvec_plans.values() for s in plan.rotation_steps()}
        steps |= pool_steps
        if reference_keys:
            steps |= {d for plan in self.matvec_plans.values() for d in plan.diag_steps}
        # right-rotation by `size` restores the wraparound replica block
        # before each linear layer (the matvec zeroes slots >= size within
        # each block, so the shifted-in neighbour-block slots are zero)
        self._replicate_step = slots - self.size
        steps.add(self._replicate_step)
        self.keys = keygen(self.ctx, seed=seed, galois_steps=tuple(sorted(steps)))
        self.ev = CkksEvaluator(self.ctx, self.keys)

    @staticmethod
    def _layer_depth(l: _Layer) -> int:
        """Levels one layer consumes: matvec/pool/affine rescale once,
        PAF activations their full multiplication depth."""
        return relu_mult_depth(l.paf) if l.kind == "paf" else 1

    # ------------------------------------------------------------------
    # packing
    # ------------------------------------------------------------------
    def pack_batch(self, xs) -> np.ndarray:
        """Pack up to ``max_batch`` input vectors into one slot vector.

        Each vector lands in its own ``2·size`` block with wraparound
        replication so the cyclic diagonals line up per block.
        """
        return pack_batch(xs, self.layout)

    def encrypt_batch(self, xs, ev: CkksEvaluator | None = None) -> Ciphertext:
        """Pack + encrypt a batch of input vectors into one ciphertext."""
        return (ev or self.ev).encrypt(self.pack_batch(xs))

    def encrypt_input(self, x: np.ndarray) -> Ciphertext:
        """Pack + encrypt one input vector (block 0 of the batched layout)."""
        return self.encrypt_batch([x])

    # ------------------------------------------------------------------
    # encrypted forward
    # ------------------------------------------------------------------
    def _replicate(self, ct: Ciphertext, ev: CkksEvaluator) -> Ciphertext:
        """Restore every block's replica half: out[i+size] = in[i]."""
        return ev.add(ct, ev.rotate(ct, self._replicate_step))

    def forward(
        self,
        ct: Ciphertext,
        *,
        encoded=None,
        ev: CkksEvaluator | None = None,
        reference: bool = False,
    ) -> Ciphertext:
        """Encrypted forward pass over all packed blocks at once.

        Linear layers (Linear weights and compile-time-lowered convs
        alike) follow their compiled :class:`MatvecPlan` — BSGS with
        hoisted baby rotations where that is strictly cheaper, the naive
        diagonal loop otherwise.  PAF activations follow their compiled
        :class:`~repro.ckks.poly_plan.ReluPlan` — Paterson–Stockmeyer
        per component where strictly fewer nonscalar mults, the
        term-by-term ladder otherwise.  Pool layers run their
        rotate-and-sum plan (:meth:`_pool_forward`); affine layers one
        slot-wise multiply + shift.  ``reference=True`` forces the
        reference implementations everywhere: the naive diagonal loop
        for every linear layer (compile with ``reference_keys=True`` so
        its Galois keys exist), per-step rotations instead of hoisted
        batches for every pool, *and* the ladder for every activation —
        the differential-testing baseline.

        ``encoded`` is an optional provider of pre-encoded plaintexts for
        the linear layers — ``encoded(layer_index, level, scale)`` must
        return ``(payload, bias_slots)`` as :class:`~repro.ckks.Plaintext`
        values, where ``payload`` matches the layer's plan (grouped
        ``{giant: {baby: pt}}`` for BSGS layers, flat ``{d: pt}`` for
        naive ones — see :class:`repro.serve.artifact.ModelArtifact`);
        without it the cached raw diagonal vectors are encoded on the
        fly.  ``ev`` overrides the evaluator (worker pools run one
        evaluator per thread against the shared keys).
        """
        if reference and encoded is not None:
            raise ValueError(
                "pre-encoded payloads follow the per-layer plans; the "
                "reference path takes raw diagonals only"
            )
        ev = ev or self.ev
        for i, l in enumerate(self.layers):
            if l.kind == "linear":
                if i > 0:
                    ct = self._replicate(ct, ev)
                bsgs = self.matvec_plans[i].use_bsgs and not reference
                if not bsgs and i not in self.linear_diagonals:
                    raise ValueError(
                        "naive reference path unavailable: compile with "
                        "reference_keys=True to retain flat diagonals and keys"
                    )
                if encoded is not None:
                    payload, bias_slots = encoded(i, ct.level, ct.scale)
                else:
                    payload = self.linear_groups[i] if bsgs else self.linear_diagonals[i]
                    bias_slots = self.linear_bias_slots.get(i)
                if bsgs:
                    ct = encrypted_matvec_bsgs(
                        ev, ct, groups=payload, bias_slots=bias_slots
                    )
                else:
                    ct = encrypted_matvec(
                        ev, ct, diagonals=payload, bias_slots=bias_slots
                    )
            elif l.kind == "pool":
                ct = self._pool_forward(ct, i, ev, reference=reference)
            elif l.kind == "affine":
                ct = ev.rescale(ev.mul_plain(ct, self.affine_scale_slots[i]))
                ct = ev.add_plain(ct, self.affine_shift_slots[i])
            else:
                ct = eval_paf_relu(
                    ev,
                    ct,
                    l.paf,
                    scale=l.scale,
                    plan=self.paf_plans[i],
                    reference=reference,
                )
        return ct

    def _pool_forward(
        self, ct: Ciphertext, i: int, ev: CkksEvaluator, reference: bool = False
    ) -> Ciphertext:
        """Average pool: rotate-and-sum per axis, then one masked scalar mult.

        Stage 1 sums the window columns (``k-1`` hoisted rotations by the
        column stride), stage 2 the window rows — separable, so ``2(k-1)``
        keyswitches instead of ``k²-1``.  Each stage's rotations act on
        one ciphertext and share a hoisted decomposition
        (``reference=True`` rotates one by one instead).  Valid sums land
        at the window-corner slots of the input grid (the compile-time
        :class:`~repro.fhe.packing.GridLayout` the next layer's matrix is
        lowered against); everything else — including the replica halves
        and the neighbour-block spill the full-slot rotations produce —
        is garbage, and the final ``1/window`` multiply is *masked* to
        ``[0, size)`` of each block so the replica halves leave this
        layer exactly zero again, preserving the invariant
        :meth:`_replicate` relies on.  One rescale: the pool consumes one
        level, like a linear layer.
        """
        for stage in self.layers[i].shifts:
            stage = [s for s in stage if s]
            if not stage:
                continue
            if reference:
                rotated = {s: ev.rotate(ct, s) for s in stage}
            else:
                rotated = ev.rotate_many(ct, stage)
            for s in stage:
                ct = ev.add(ct, rotated[s])
        return ev.rescale(ev.mul_plain(ct, self.pool_masks[i]))

    # ------------------------------------------------------------------
    # static schedule
    # ------------------------------------------------------------------
    def layer_input_levels(self) -> dict:
        """Chain level at which the ciphertext enters each layer.

        A fixed network visits every layer at one deterministic level:
        each linear, pool and affine layer consumes one (its single
        rescale), each PAF activation ``mult_depth + 1``.
        ``repro.serve.artifact`` uses this to pre-encode activation
        constants without running a forward pass.
        """
        level = self.ctx.max_level
        levels = {}
        for i, l in enumerate(self.layers):
            levels[i] = level
            level -= self._layer_depth(l)
        return levels

    # ------------------------------------------------------------------
    # decrypt
    # ------------------------------------------------------------------
    def decrypt_logits(
        self,
        ct: Ciphertext,
        num_classes: int,
        batch: int | None = None,
        ev: CkksEvaluator | None = None,
    ) -> np.ndarray:
        """Decrypt logits; 1-D for a single request, ``(batch, C)`` when
        ``batch`` is given (demultiplexes the per-client slot blocks)."""
        ev = ev or self.ev
        if batch is None:
            return ev.decrypt(ct, num_values=num_classes)
        if not 1 <= batch <= self.max_batch:
            raise ValueError(f"batch {batch} out of range 1..{self.max_batch}")
        span = self.layout.offset(batch - 1) + num_classes
        values = ev.decrypt(ct, num_values=span)
        return unpack_blocks(values, self.layout, num_classes, batch)

    def predict(self, x: np.ndarray, num_classes: int) -> int:
        """Full round trip: encrypt -> encrypted forward -> decrypt -> argmax."""
        logits = self.decrypt_logits(self.forward(self.encrypt_input(x)), num_classes)
        return int(np.argmax(logits))

    def predict_batch(self, xs, num_classes: int) -> np.ndarray:
        """One SIMD round trip for up to ``max_batch`` inputs; argmax per row."""
        ct = self.forward(self.encrypt_batch(xs))
        logits = self.decrypt_logits(ct, num_classes, batch=len(xs))
        return logits.argmax(axis=1)


#: Backwards-compatible alias (the MLP compiler predates the CNN one).
EncryptedMLP = EncryptedNetwork


def compile_mlp(
    model: Module, params: CkksParams, seed: int = 0, reference_keys: bool = False
) -> EncryptedNetwork:
    """Compile a (PAF-approximated) ``repro.nn`` MLP for encrypted inference.

    Accepts models whose module tree is Linear / ReLU / PAFReLU layers
    only (e.g. ``repro.nn.models.MLP`` after SMART-PAF replacement).
    Exact ReLU layers are rejected — replace them first; that is the whole
    point of the paper.  ``reference_keys`` additionally generates the
    Galois keys the naive reference path needs (differential testing).
    """
    layers: list[_Layer] = []
    widths: list[int] = []
    for name, mod in model.named_modules():
        if isinstance(mod, Linear):
            w = mod.weight.data.copy()
            b = mod.bias.data.copy() if mod.bias is not None else None
            layers.append(_Layer(kind="linear", weight=w, bias=b))
            widths.extend(w.shape)
        elif isinstance(mod, PAFReLU):
            layers.append(
                _Layer(
                    kind="paf",
                    paf=mod.sign.to_composite(),
                    scale=mod.static_scale,
                )
            )
        elif isinstance(mod, ReLU):
            raise TypeError(
                f"layer {name!r} is an exact ReLU — run SMART-PAF replacement "
                "before compiling to FHE (CKKS has no non-polynomial ops)"
            )
    size = max(widths)
    # zero-pad weights to square so the diagonal layout is uniform
    for l in layers:
        if l.kind == "linear":
            padded = np.zeros((size, size))
            padded[: l.weight.shape[0], : l.weight.shape[1]] = l.weight
            l.weight = padded
    return EncryptedNetwork(
        layers, size=size, params=params, seed=seed, reference_keys=reference_keys
    )
