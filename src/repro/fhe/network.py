"""Compile a PAF-approximated network to fully-encrypted CKKS inference.

The end-to-end private-inference path of the paper's Fig. 2: the client
encrypts an input vector; the server evaluates linear layers (Halevi-Shoup
matmul) and PAF activations (depth-preserving Paterson–Stockmeyer
composite evaluation) on ciphertexts only; the client decrypts logits.

Square layer layout: every linear-algebra layer (Linear weights, and the
compile-time-lowered Conv2d matrices from :mod:`repro.fhe.cnn`) is
zero-padded to ``size×size`` (``size`` = max layer slot span) so rotations
align.  Slots are divided into ``max_batch`` disjoint *blocks* of
``2·size`` slots each; block ``b`` carries one input vector packed with
wraparound replication (``slots[b·2s : b·2s+size]`` = x,
``slots[b·2s+size : b·2s+2s]`` = x), so a single ciphertext serves up to
``slots // (2·size)`` independent requests through the same sequence of
homomorphic ops — the SIMD batching that :mod:`repro.serve` builds on.
Diagonals are tiled across all blocks once at compile time; rotation
steps (and hence the Galois key set) are identical to the
single-request layout.

Wide CNNs overflow a single request block, so the network also supports
**multi-ciphertext channel-parallel packing**: activations are sharded
across ``K`` ciphertexts (:class:`~repro.fhe.packing.MultiGridLayout`),
linear layers become ``K_out × K_in`` grids of per-shard-pair matvec
blocks executed by :func:`~repro.fhe.linear.encrypted_matvec_shards`
(per-input-shard hoisted baby rotations, cross-shard accumulation via
ct-ct adds, one rescale per output shard), and pools / activations /
affines apply shard-by-shard.  :meth:`EncryptedNetwork.forward_shards`
is the sharded executor; the single-ciphertext :meth:`forward` path is
unchanged for networks compiled without sharding.

Six layer kinds execute on ciphertexts:

* ``linear`` — a :class:`~repro.fhe.linear.MatvecPlan`-compiled matvec:
  BSGS (``O(√D)`` keyswitches, hoisted baby rotations, pre-rotated
  diagonals cached at compile time) where strictly cheaper, the naive
  diagonal loop otherwise;
* ``paf`` — a compiled :class:`~repro.ckks.poly_plan.ReluPlan`
  (Paterson–Stockmeyer vs ladder per component);
* ``pool`` — average pooling as two hoisted rotate-and-sum stages
  (column shifts then row shifts) followed by one masked plaintext
  scalar multiply (``1/window``, tiled over ``[0, size)`` of each block
  — which simultaneously re-zeroes the replica halves the rotations
  smeared into);
* ``affine`` — a slot-wise plaintext scale-and-shift (an *unfolded*
  BatchNorm; the CNN compiler folds BN into the adjacent conv by
  default, so this kind only appears with ``fold_bn=False``);
* ``residual`` — a *tap*: pushes the live shard list onto a branch
  stack (zero homomorphic cost, zero levels);
* ``merge`` — pops the matching tap, optionally applies a 1×1-projection
  block matvec to the saved (skip) branch, **aligns the shallow branch
  to the deep branch's (level, scale)** with
  :meth:`~repro.ckks.evaluator.CkksEvaluator.align_to` (an exact
  plaintext correction riding the level gap — no extra depth), and adds
  shard-by-shard.  The chain level after a merge equals the main
  branch's, so taps and merges consume zero levels of the schedule.

The Galois key set is sized from the union of the chosen matvec plans'
rotation steps, every pool's shift steps, and the replication step — for
BSGS layers that is ``n1 + n2 - 2`` keys instead of one per nonzero
diagonal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ckks import (
    Ciphertext,
    CkksContext,
    CkksEvaluator,
    CkksParams,
    eval_paf_relu,
    keygen,
    plan_paf_relu,
)
from repro.ckks.instrumentation import span as trace_span
from repro.core.paf_layer import PAFReLU
from repro.fhe.linear import (
    bsgs_diagonals,
    diagonals_of,
    encrypted_matvec,
    encrypted_matvec_bsgs,
    encrypted_matvec_shards,
    grouped_diagonals,
    plan_matvec,
    tile_blocks,
)
from repro.fhe.packing import BlockLayout, pack_batch, unpack_blocks
from repro.nn.layers import Linear, ReLU
from repro.nn.module import Module
from repro.paf.polynomial import CompositePAF
from repro.paf.relu import relu_mult_depth

__all__ = ["EncryptedNetwork", "EncryptedMLP", "compile_mlp"]


@dataclass
class _Layer:
    kind: str  # "linear" | "paf" | "pool" | "affine" | "residual" | "merge"
    weight: np.ndarray | None = None
    bias: np.ndarray | None = None
    paf: CompositePAF | None = None
    scale: float = 1.0
    #: pool: per-stage nonzero rotation steps ((col shifts), (row shifts))
    shifts: tuple = field(default_factory=tuple)
    #: pool: the plaintext scalar (1 / window area)
    pool_scale: float = 1.0
    #: affine: per-slot multiplier / addend over ``[0, size)`` of a block
    affine_scale: np.ndarray | None = None
    affine_shift: np.ndarray | None = None
    #: sharded linear / merge projection: K_out x K_in grid of slot-space
    #: matrices (``None`` marks an all-zero block)
    blocks: list | None = None
    #: sharded linear / merge projection: per-output-shard bias vectors
    bias_shards: list | None = None
    #: merge: layer index of the matching ``residual`` tap
    tap: int | None = None


class EncryptedNetwork:
    """A network compiled for encrypted inference (single or SIMD-batched).

    Built by :func:`compile_mlp` (Linear/PAF stacks) and
    :func:`repro.fhe.cnn.compile_cnn` (Conv/BN/Pool stacks lowered to the
    same layer kinds).  ``EncryptedMLP`` is a backwards-compatible alias.
    """

    def __init__(
        self,
        layers,
        size: int,
        params: CkksParams,
        seed: int = 0,
        reference_keys: bool = False,
        input_shards: int = 1,
    ):
        self.layers = layers
        self.size = size
        #: ciphertexts per request on the sharded path (1 = single-ct)
        self.num_input_shards = input_shards
        #: True when any layer is sharded or residual — forward must go
        #: through :meth:`forward_shards`
        self.sharded = input_shards > 1 or any(
            layer.blocks is not None or layer.kind in ("residual", "merge") for layer in layers
        )
        depth_needed = self._validate_schedule(layers)
        if params.depth < depth_needed:
            raise ValueError(
                f"context depth {params.depth} < required {depth_needed}"
            )
        # suffix depths of the static schedule: levels the layers *after* i
        # still need — a traced forward reports each layer's remaining
        # level slack (exit level minus this) against them
        depths = [self._layer_depth(layer) for layer in layers]
        self._depth_after = [sum(depths[i + 1 :]) for i in range(len(layers))]
        self.ctx = CkksContext(params)
        slots = self.ctx.slots
        #: SIMD block geometry (shared with :mod:`repro.serve.packing`)
        self.layout = BlockLayout(size=size, slots=slots)
        #: one request occupies ``2·size`` slots (vector + wraparound replica)
        self.block_stride = self.layout.stride
        #: SIMD capacity: how many requests fit one ciphertext
        self.max_batch = self.layout.max_batch
        # Diagonals / biases are tiled across *all* blocks once; a partial
        # batch leaves trailing blocks at zero input, which just compute
        # f(0) in-range — so every batch size shares these plaintexts (and,
        # downstream, the serve artifact's encoding cache).  BSGS layers
        # keep only their pre-rotated groups: the flat diagonals are
        # retained just where something can actually read them (naive-plan
        # layers, or every layer when ``reference_keys`` enables the
        # reference path) — holding both would double plaintext memory.
        self.linear_diagonals: dict[int, dict] = {}
        self.linear_bias_slots: dict[int, np.ndarray] = {}
        #: per-layer matvec execution plan (BSGS vs naive reference)
        self.matvec_plans: dict = {}
        #: pre-rotated giant-step diagonal groups for the BSGS layers
        self.linear_groups: dict[int, dict] = {}
        #: per-activation :class:`~repro.ckks.poly_plan.ReluPlan`
        #: (Paterson–Stockmeyer vs ladder chosen per component, with the
        #: static scale and the ReLU ½ already folded into coefficients)
        self.paf_plans: dict = {}
        #: pool masks: ``1/window`` over ``[0, size)`` of every block, zero
        #: elsewhere — the pool's scalar multiply doubles as the cleanup
        #: that re-zeroes replica halves after the rotate-and-sum stages
        self.pool_masks: dict[int, np.ndarray] = {}
        #: affine (unfolded BN) slot vectors, tiled like the biases
        self.affine_scale_slots: dict[int, np.ndarray] = {}
        self.affine_shift_slots: dict[int, np.ndarray] = {}
        #: sharded linear / merge-projection layers: K_out x K_in grids of
        #: MatvecPlans (None = all-zero block), grouped diagonal payloads
        #: and per-output-shard tiled biases
        self.shard_plans: dict[int, list] = {}
        self.shard_groups: dict[int, list] = {}
        self.shard_bias_slots: dict[int, list] = {}
        #: merge layer index -> matching residual tap index
        self.merge_taps: dict[int, int] = {}
        pool_steps: set = set()
        shard_steps: set = set()
        for i, layer in enumerate(layers):
            if layer.blocks is not None:  # sharded linear or merge projection
                plans_grid: list = []
                groups_grid: list = []
                for row in layer.blocks:
                    plan_row: list = []
                    group_row: list = []
                    for mat in row:
                        if mat is None or not np.any(mat):
                            plan_row.append(None)
                            group_row.append(None)
                            continue
                        diags = diagonals_of(
                            mat,
                            slots,
                            num_blocks=self.max_batch,
                            block_stride=self.block_stride,
                        )
                        plan = plan_matvec(diags.keys(), size)
                        plan_row.append(plan)
                        group_row.append(grouped_diagonals(diags, plan))
                        shard_steps.update(plan.rotation_steps())
                    if not any(g is not None for g in group_row):
                        # fail at compile like the single-ct path's
                        # all-zero-weight rejection, not at forward time
                        raise ValueError(
                            f"layer {i}: output shard {len(plans_grid)} reads "
                            "no nonzero block (all-zero weight row)"
                        )
                    plans_grid.append(plan_row)
                    groups_grid.append(group_row)
                self.shard_plans[i] = plans_grid
                self.shard_groups[i] = groups_grid
                if layer.bias_shards is not None:
                    tiled = []
                    for vec in layer.bias_shards:
                        if vec is None:
                            tiled.append(None)
                            continue
                        base = np.zeros(size)
                        base[: len(vec)] = vec
                        tiled.append(
                            tile_blocks(base, slots, self.max_batch, self.block_stride)
                        )
                    self.shard_bias_slots[i] = tiled
            if layer.kind == "merge":
                if layer.tap is None:
                    raise ValueError(f"merge layer {i} has no matching residual tap")
                self.merge_taps[i] = layer.tap
                continue
            if layer.kind == "paf":
                # sharded (deep residual) networks need exact-scale plans:
                # ladder-tolerated sub-percent drift doubles per rescale
                # and overflows the modulus past ~20 levels
                self.paf_plans[i] = plan_paf_relu(
                    layer.paf, layer.scale, exact_scales=self.sharded
                )
            if layer.kind == "pool":
                for stage in layer.shifts:
                    pool_steps.update(s for s in stage if s)
                self.pool_masks[i] = tile_blocks(
                    np.full(size, layer.pool_scale),
                    slots,
                    self.max_batch,
                    self.block_stride,
                )
            if layer.kind == "affine":
                for name, vec, store in (
                    ("scale", layer.affine_scale, self.affine_scale_slots),
                    ("shift", layer.affine_shift, self.affine_shift_slots),
                ):
                    if vec is None or len(vec) > size:
                        raise ValueError(
                            f"affine layer {i} needs a {name} vector of length <= {size}"
                        )
                    base = np.zeros(size)
                    base[: len(vec)] = vec
                    store[i] = tile_blocks(
                        base, slots, self.max_batch, self.block_stride
                    )
            if layer.kind == "linear" and layer.blocks is None:
                diags = diagonals_of(
                    layer.weight,
                    slots,
                    num_blocks=self.max_batch,
                    block_stride=self.block_stride,
                )
                plan = plan_matvec(diags.keys(), size)
                self.matvec_plans[i] = plan
                if plan.use_bsgs:
                    self.linear_groups[i] = bsgs_diagonals(diags, plan)
                if not plan.use_bsgs or reference_keys:
                    self.linear_diagonals[i] = diags
                if layer.bias is not None:
                    bias = np.zeros(size)
                    bias[: len(layer.bias)] = layer.bias
                    self.linear_bias_slots[i] = tile_blocks(
                        bias, slots, self.max_batch, self.block_stride
                    )
        # Galois keys cover exactly the planned rotation steps (baby +
        # giant for BSGS layers, per-diagonal for naive ones);
        # ``reference_keys`` additionally covers the naive path of every
        # layer so the reference implementation can run side by side.
        steps = {s for plan in self.matvec_plans.values() for s in plan.rotation_steps()}
        steps |= pool_steps
        steps |= shard_steps
        if reference_keys:
            steps |= {d for plan in self.matvec_plans.values() for d in plan.diag_steps}
        # right-rotation by `size` restores the wraparound replica block
        # before each linear layer (the matvec zeroes slots >= size within
        # each block, so the shifted-in neighbour-block slots are zero)
        self._replicate_step = slots - self.size
        steps.add(self._replicate_step)
        self.keys = keygen(self.ctx, seed=seed, galois_steps=tuple(sorted(steps)))
        self.ev = CkksEvaluator(self.ctx, self.keys)

    @staticmethod
    def _layer_depth(layer: _Layer) -> int:
        """Levels one layer consumes *on the main chain*: matvec/pool/
        affine rescale once, PAF activations their full multiplication
        depth.  Residual taps and merges are free — the skip branch's
        projection and alignment ride the level gap the main branch
        already opened."""
        if layer.kind in ("residual", "merge"):
            return 0
        return relu_mult_depth(layer.paf) if layer.kind == "paf" else 1

    @classmethod
    def _validate_schedule(cls, layers) -> int:
        """Total main-chain depth, validating the residual structure.

        Taps and merges must pair up like brackets, and a merge whose
        skip branch carries a projection needs a main-branch gap of at
        least one level (the projection's own rescale descends through
        it; the alignment correction needs no level of its own).
        """
        level = 0  # counts consumed levels from the top
        stack: list = []
        for i, layer in enumerate(layers):
            if layer.kind == "residual":
                stack.append(level)
            elif layer.kind == "merge":
                if not stack:
                    raise ValueError(f"merge layer {i} has no open residual tap")
                gap = level - stack.pop()
                if layer.blocks is not None and gap < 1:
                    raise ValueError(
                        f"merge layer {i}: projection skip needs a main-branch "
                        f"depth of >= 1 level, got {gap}"
                    )
            else:
                level += cls._layer_depth(layer)
        if stack:
            raise ValueError(f"{len(stack)} residual tap(s) never merged")
        return level

    # ------------------------------------------------------------------
    # packing
    # ------------------------------------------------------------------
    def pack_batch(self, xs) -> np.ndarray:
        """Pack up to ``max_batch`` input vectors into one slot vector.

        Each vector lands in its own ``2·size`` block with wraparound
        replication so the cyclic diagonals line up per block.
        """
        return pack_batch(xs, self.layout)

    def encrypt_batch(self, xs, ev: CkksEvaluator | None = None) -> Ciphertext:
        """Pack + encrypt a batch of input vectors into one ciphertext."""
        return (ev or self.ev).encrypt(self.pack_batch(xs))

    def encrypt_input(self, x: np.ndarray) -> Ciphertext:
        """Pack + encrypt one input vector (block 0 of the batched layout)."""
        return self.encrypt_batch([x])

    # ------------------------------------------------------------------
    # sharded packing
    # ------------------------------------------------------------------
    #: element counts per input shard (set by the sharded compiler); the
    #: flat NCHW input splits contiguously into these
    input_splits: list | None = None

    def split_input(self, x) -> list:
        """Split one flat input vector into per-shard flat vectors."""
        x = np.asarray(x, dtype=np.float64).ravel()
        if self.num_input_shards == 1:
            return [x]
        if self.input_splits is None:
            raise ValueError("sharded network has no input_splits recorded")
        if len(x) != sum(self.input_splits):
            raise ValueError(
                f"input dim {len(x)} != sharded total {sum(self.input_splits)}"
            )
        return list(np.split(x, np.cumsum(self.input_splits)[:-1]))

    def encrypt_batch_shards(self, xs, ev: CkksEvaluator | None = None) -> list:
        """Pack + encrypt a batch into one ciphertext *per input shard*.

        Every shard uses the same :class:`BlockLayout` (request ``b`` of
        every shard sits in block ``b``), so the SIMD batch geometry —
        and the serving layer built on it — is unchanged by sharding.
        """
        ev = ev or self.ev
        parts = [self.split_input(x) for x in xs]
        return [
            ev.encrypt(pack_batch([p[s] for p in parts], self.layout))
            for s in range(self.num_input_shards)
        ]

    def encrypt_input_shards(self, x: np.ndarray) -> list:
        """Pack + encrypt one input as a list of shard ciphertexts."""
        return self.encrypt_batch_shards([x])

    # ------------------------------------------------------------------
    # encrypted forward
    # ------------------------------------------------------------------
    def _replicate(self, ct: Ciphertext, ev: CkksEvaluator) -> Ciphertext:
        """Restore every block's replica half: out[i+size] = in[i]."""
        return ev.add(ct, ev.rotate(ct, self._replicate_step))

    def forward(
        self,
        ct: Ciphertext,
        *,
        encoded=None,
        ev: CkksEvaluator | None = None,
        reference: bool = False,
    ) -> Ciphertext:
        """Encrypted forward pass over all packed blocks at once.

        Linear layers (Linear weights and compile-time-lowered convs
        alike) follow their compiled :class:`MatvecPlan` — BSGS with
        hoisted baby rotations where that is strictly cheaper, the naive
        diagonal loop otherwise.  PAF activations follow their compiled
        :class:`~repro.ckks.poly_plan.ReluPlan` — Paterson–Stockmeyer
        per component where strictly fewer nonscalar mults, the
        term-by-term ladder otherwise.  Pool layers run their
        rotate-and-sum plan (:meth:`_pool_forward`); affine layers one
        slot-wise multiply + shift.  ``reference=True`` forces the
        reference implementations everywhere: the naive diagonal loop
        for every linear layer (compile with ``reference_keys=True`` so
        its Galois keys exist), per-step rotations instead of hoisted
        batches for every pool, *and* the ladder for every activation —
        the differential-testing baseline.

        ``encoded`` is an optional provider of pre-encoded plaintexts for
        the linear layers — ``encoded(layer_index, level, scale)`` must
        return ``(payload, bias_slots)`` as :class:`~repro.ckks.Plaintext`
        values, where ``payload`` matches the layer's plan (grouped
        ``{giant: {baby: pt}}`` for BSGS layers, flat ``{d: pt}`` for
        naive ones — see :class:`repro.serve.artifact.ModelArtifact`);
        without it the cached raw diagonal vectors are encoded on the
        fly.  ``ev`` overrides the evaluator (worker pools run one
        evaluator per thread against the shared keys).
        """
        if self.sharded:
            raise ValueError(
                "this network is compiled for multi-ciphertext execution — "
                "use forward_shards(encrypt_batch_shards(...))"
            )
        if reference and encoded is not None:
            raise ValueError(
                "pre-encoded payloads follow the per-layer plans; the "
                "reference path takes raw diagonals only"
            )
        ev = ev or self.ev
        with trace_span(
            ev,
            "forward",
            kind="forward",
            layers=len(self.layers),
            backend=self.ctx.backend.name,
        ) as root:
            root.ct_entry(ct)
            for i, layer in enumerate(self.layers):
                with self._layer_span(ev, i, layer) as sp:
                    sp.ct_entry(ct)
                    if layer.kind == "linear":
                        if i > 0:
                            ct = self._replicate(ct, ev)
                        bsgs = self.matvec_plans[i].use_bsgs and not reference
                        if not bsgs and i not in self.linear_diagonals:
                            raise ValueError(
                                "naive reference path unavailable: compile with "
                                "reference_keys=True to retain flat diagonals and keys"
                            )
                        if encoded is not None:
                            payload, bias_slots = encoded(i, ct.level, ct.scale)
                        else:
                            payload = (
                                self.linear_groups[i] if bsgs else self.linear_diagonals[i]
                            )
                            bias_slots = self.linear_bias_slots.get(i)
                        if bsgs:
                            ct = encrypted_matvec_bsgs(
                                ev, ct, groups=payload, bias_slots=bias_slots
                            )
                        else:
                            ct = encrypted_matvec(
                                ev, ct, diagonals=payload, bias_slots=bias_slots
                            )
                    elif layer.kind == "pool":
                        ct = self._pool_forward(ct, i, ev, reference=reference)
                    elif layer.kind == "affine":
                        ct = ev.rescale(ev.mul_plain(ct, self.affine_scale_slots[i]))
                        ct = ev.add_plain(ct, self.affine_shift_slots[i])
                    else:
                        ct = eval_paf_relu(
                            ev,
                            ct,
                            layer.paf,
                            scale=layer.scale,
                            plan=self.paf_plans[i],
                            reference=reference,
                        )
                    sp.ct_exit(ct, level_slack=ct.level - self._depth_after[i])
            root.ct_exit(ct)
        return ct

    def _layer_span(self, ev: CkksEvaluator, i: int, layer: _Layer):
        """Per-layer tracing span (a shared no-op when ``ev`` has no tracer)."""
        return trace_span(
            ev, f"layer{i:02d}:{layer.kind}", kind="layer", layer=i, op=layer.kind
        )

    def _pool_forward(
        self, ct: Ciphertext, i: int, ev: CkksEvaluator, reference: bool = False
    ) -> Ciphertext:
        """Average pool: rotate-and-sum per axis, then one masked scalar mult.

        Stage 1 sums the window columns (``k-1`` hoisted rotations by the
        column stride), stage 2 the window rows — separable, so ``2(k-1)``
        keyswitches instead of ``k²-1``.  Each stage's rotations act on
        one ciphertext and share a hoisted decomposition
        (``reference=True`` rotates one by one instead).  Valid sums land
        at the window-corner slots of the input grid (the compile-time
        :class:`~repro.fhe.packing.GridLayout` the next layer's matrix is
        lowered against); everything else — including the replica halves
        and the neighbour-block spill the full-slot rotations produce —
        is garbage, and the final ``1/window`` multiply is *masked* to
        ``[0, size)`` of each block so the replica halves leave this
        layer exactly zero again, preserving the invariant
        :meth:`_replicate` relies on.  One rescale: the pool consumes one
        level, like a linear layer.
        """
        stages = [
            [s for s in stage if s] for stage in self.layers[i].shifts
        ]
        with trace_span(
            ev, "pool:reduce", kind="exec", stages=sum(1 for s in stages if s)
        ) as sp:
            sp.ct_entry(ct)
            for stage in stages:
                if not stage:
                    continue
                if reference:
                    rotated = {s: ev.rotate(ct, s) for s in stage}
                else:
                    rotated = ev.rotate_many(ct, stage)
                for s in stage:
                    ct = ev.add(ct, rotated[s])
            ct = ev.rescale(ev.mul_plain(ct, self.pool_masks[i]))
            sp.ct_exit(ct)
        return ct

    # ------------------------------------------------------------------
    # sharded encrypted forward
    # ------------------------------------------------------------------
    def forward_shards(
        self,
        cts,
        *,
        encoded=None,
        ev: CkksEvaluator | None = None,
        reference: bool = False,
        executor=None,
    ) -> list:
        """Encrypted forward over a channel-sharded ciphertext list.

        The multi-ciphertext twin of :meth:`forward`: ``cts`` is one
        ciphertext per input shard (``encrypt_batch_shards``), and the
        return value one per output shard of the last layer (a compiled
        classifier head always lands on a single shard).  Linear layers
        run :func:`~repro.fhe.linear.encrypted_matvec_shards` over their
        ``K_out × K_in`` grouped-diagonal blocks; ``residual`` taps push
        the live shard list onto a branch stack; ``merge`` pops it,
        applies the projection blocks (if any) to the *saved* branch at
        its own — higher — level, aligns the skip to the main branch's
        exact (level, scale) via ``align_to`` and adds shard-wise.  PAF,
        pool and (unsupported here) affine layers apply per shard.

        ``encoded`` is the same pre-encoded-plaintext provider contract
        as :meth:`forward`, extended to sharded layers: for a sharded
        linear or merge layer ``encoded(i, level, scale)`` must return
        ``(blocks, biases)`` with the grid/list structure of
        ``shard_groups[i]`` / ``shard_bias_slots.get(i)`` but holding
        :class:`~repro.ckks.Plaintext` values; merges are queried at the
        *saved branch's* (level, scale).  ``reference=True`` selects the
        per-step rotation pool path and the ladder activation path, as
        in :meth:`forward` (sharded matvecs have a single, grouped
        execution — their plan already names the cheaper path per
        block).

        ``executor`` is an optional
        :class:`~repro.serve.executor.BlockExecutor` scheduling the
        independent shard-grid blocks — each linear layer's
        per-output-shard chains, and the per-shard pool / PAF
        applications between them — across threads or forked processes.
        Deterministic ops make executor choice invisible in the
        ciphertexts; it only buys wall time on multi-shard models.
        """
        ev = ev or self.ev
        cts = list(cts)
        stack: list = []
        with trace_span(
            ev,
            "forward_shards",
            kind="forward",
            layers=len(self.layers),
            shards=len(cts),
            backend=self.ctx.backend.name,
        ) as root:
            root.ct_entry(cts)
            for i, layer in enumerate(self.layers):
                with self._layer_span(ev, i, layer) as sp:
                    sp.ct_entry(cts)
                    if layer.kind == "linear":
                        if layer.blocks is None:
                            raise ValueError(
                                f"layer {i}: single-ciphertext linear inside a sharded "
                                "network (compile it with shard blocks)"
                            )
                        if i > 0:
                            cts = [self._replicate(ct, ev) for ct in cts]
                        if encoded is not None:
                            payload, biases = encoded(i, cts[0].level, cts[0].scale)
                        else:
                            payload = self.shard_groups[i]
                            biases = self.shard_bias_slots.get(i)
                        cts = encrypted_matvec_shards(
                            ev, cts, payload, bias_slots=biases, executor=executor
                        )
                    elif layer.kind == "residual":
                        stack.append(cts)
                    elif layer.kind == "merge":
                        skip = stack.pop()
                        if layer.blocks is not None:
                            skip = [self._replicate(ct, ev) for ct in skip]
                            if encoded is not None:
                                payload, biases = encoded(i, skip[0].level, skip[0].scale)
                            else:
                                payload = self.shard_groups[i]
                                biases = self.shard_bias_slots.get(i)
                            skip = encrypted_matvec_shards(
                                ev, skip, payload, bias_slots=biases, executor=executor
                            )
                        if len(skip) != len(cts):
                            raise ValueError(
                                f"merge layer {i}: skip branch has {len(skip)} shards, "
                                f"main branch {len(cts)}"
                            )
                        target = cts[0]
                        # exact (rtol 0) alignment: the skip must land on the
                        # main branch's scale precisely, or the embedded
                        # mismatch rides every later squaring
                        with trace_span(
                            ev, "merge:align", kind="exec", shards=len(cts)
                        ) as msp:
                            msp.ct_entry(skip)
                            skip = [
                                ev.align_to(s, target.level, target.scale, rtol=0.0)
                                for s in skip
                            ]
                            cts = [ev.add(c, s) for c, s in zip(cts, skip)]
                            msp.ct_exit(cts)
                    elif layer.kind == "pool":
                        cts = self._map_shards(
                            executor,
                            [
                                lambda ct=ct, i=i: self._pool_forward(
                                    ct, i, ev, reference=reference
                                )
                                for ct in cts
                            ],
                        )
                    elif layer.kind == "paf":
                        cts = self._map_shards(
                            executor,
                            [
                                lambda ct=ct, i=i: eval_paf_relu(
                                    ev, ct, layer.paf, scale=layer.scale,
                                    plan=self.paf_plans[i], reference=reference,
                                )
                                for ct in cts
                            ],
                        )
                    else:
                        raise ValueError(
                            f"layer {i} kind {layer.kind!r} has no sharded execution "
                            "(BatchNorm must be folded into a conv when sharding)"
                        )
                    sp.ct_exit(cts, level_slack=cts[0].level - self._depth_after[i])
            root.ct_exit(cts)
        return cts

    def _map_shards(self, executor, fns) -> list:
        """Run per-shard closures, optionally on a block executor."""
        if executor is None or len(fns) <= 1:
            return [fn() for fn in fns]
        return executor.map_blocks(fns, ctx=self.ctx)

    def predict_shards(self, x: np.ndarray, num_classes: int) -> int:
        """Sharded round trip: encrypt shards -> forward -> decrypt -> argmax."""
        out = self.forward_shards(self.encrypt_input_shards(x))
        return int(np.argmax(self.decrypt_logits(out[0], num_classes)))

    # ------------------------------------------------------------------
    # static schedule
    # ------------------------------------------------------------------
    def layer_input_levels(self) -> dict:
        """Chain level at which the ciphertext enters each layer.

        A fixed network visits every layer at one deterministic level:
        each linear, pool and affine layer consumes one (its single
        rescale), each PAF activation ``mult_depth + 1``.
        ``repro.serve.artifact`` uses this to pre-encode activation
        constants without running a forward pass.
        """
        level = self.ctx.max_level
        levels = {}
        for i, layer in enumerate(self.layers):
            levels[i] = level
            level -= self._layer_depth(layer)
        return levels

    def merge_branch_levels(self) -> dict:
        """Level at which each merge's *skip* branch material is read.

        A merge's projection diagonals act on the ciphertexts saved at
        its residual tap, so they encode at the tap's chain level — the
        per-branch half of the static schedule (``layer_input_levels``
        is the main-chain half; taps and merges consume zero there).
        """
        levels = self.layer_input_levels()
        return {i: levels[tap] for i, tap in self.merge_taps.items()}

    # ------------------------------------------------------------------
    # decrypt
    # ------------------------------------------------------------------
    def decrypt_logits(
        self,
        ct: Ciphertext,
        num_classes: int,
        batch: int | None = None,
        ev: CkksEvaluator | None = None,
    ) -> np.ndarray:
        """Decrypt logits; 1-D for a single request, ``(batch, C)`` when
        ``batch`` is given (demultiplexes the per-client slot blocks)."""
        ev = ev or self.ev
        if batch is None:
            return ev.decrypt(ct, num_values=num_classes)
        if not 1 <= batch <= self.max_batch:
            raise ValueError(f"batch {batch} out of range 1..{self.max_batch}")
        span = self.layout.offset(batch - 1) + num_classes
        values = ev.decrypt(ct, num_values=span)
        return unpack_blocks(values, self.layout, num_classes, batch)

    def predict(self, x: np.ndarray, num_classes: int) -> int:
        """Full round trip: encrypt -> encrypted forward -> decrypt -> argmax."""
        logits = self.decrypt_logits(self.forward(self.encrypt_input(x)), num_classes)
        return int(np.argmax(logits))

    def predict_batch(self, xs, num_classes: int) -> np.ndarray:
        """One SIMD round trip for up to ``max_batch`` inputs; argmax per row."""
        ct = self.forward(self.encrypt_batch(xs))
        logits = self.decrypt_logits(ct, num_classes, batch=len(xs))
        return logits.argmax(axis=1)


#: Backwards-compatible alias (the MLP compiler predates the CNN one).
EncryptedMLP = EncryptedNetwork


def compile_mlp(
    model: Module, params: CkksParams, seed: int = 0, reference_keys: bool = False
) -> EncryptedNetwork:
    """Compile a (PAF-approximated) ``repro.nn`` MLP for encrypted inference.

    Accepts models whose module tree is Linear / ReLU / PAFReLU layers
    only (e.g. ``repro.nn.models.MLP`` after SMART-PAF replacement).
    Exact ReLU layers are rejected — replace them first; that is the whole
    point of the paper.  ``reference_keys`` additionally generates the
    Galois keys the naive reference path needs (differential testing).
    """
    layers: list[_Layer] = []
    widths: list[int] = []
    for name, mod in model.named_modules():
        if isinstance(mod, Linear):
            w = mod.weight.data.copy()
            b = mod.bias.data.copy() if mod.bias is not None else None
            layers.append(_Layer(kind="linear", weight=w, bias=b))
            widths.extend(w.shape)
        elif isinstance(mod, PAFReLU):
            layers.append(
                _Layer(
                    kind="paf",
                    paf=mod.sign.to_composite(),
                    scale=mod.static_scale,
                )
            )
        elif isinstance(mod, ReLU):
            raise TypeError(
                f"layer {name!r} is an exact ReLU — run SMART-PAF replacement "
                "before compiling to FHE (CKKS has no non-polynomial ops)"
            )
    size = max(widths)
    # zero-pad weights to square so the diagonal layout is uniform
    for layer in layers:
        if layer.kind == "linear":
            padded = np.zeros((size, size))
            padded[: layer.weight.shape[0], : layer.weight.shape[1]] = layer.weight
            layer.weight = padded
    return EncryptedNetwork(
        layers, size=size, params=params, seed=seed, reference_keys=reference_keys
    )
