"""Execute graph-IR-compiled networks on fully-encrypted CKKS ciphertexts.

The end-to-end private-inference path of the paper's Fig. 2: the client
encrypts an input vector; the server evaluates linear layers (Halevi-Shoup
matmul) and PAF activations (depth-preserving Paterson–Stockmeyer
composite evaluation) on ciphertexts only; the client decrypts logits.

Square layer layout: every linear-algebra layer (Linear weights, and the
compile-time-lowered Conv2d matrices from :mod:`repro.fhe.cnn`) is
zero-padded to ``size×size`` (``size`` = max layer slot span) so rotations
align.  Slots are divided into ``max_batch`` disjoint *blocks* of
``2·size`` slots each; block ``b`` carries one input vector packed with
wraparound replication (``slots[b·2s : b·2s+size]`` = x,
``slots[b·2s+size : b·2s+2s]`` = x), so a single ciphertext serves up to
``slots // (2·size)`` independent requests through the same sequence of
homomorphic ops — the SIMD batching that :mod:`repro.serve` builds on.
Diagonals are tiled across all blocks once at compile time; rotation
steps (and hence the Galois key set) are identical to the
single-request layout.

Wide CNNs overflow a single request block, so the network also supports
**multi-ciphertext channel-parallel packing**: activations are sharded
across ``K`` ciphertexts (:class:`~repro.fhe.packing.MultiGridLayout`),
linear layers become ``K_out × K_in`` grids of per-shard-pair matvec
blocks executed by :func:`~repro.fhe.linear.encrypted_matvec_shards`
(per-input-shard hoisted baby rotations, cross-shard accumulation via
ct-ct adds, one rescale per output shard), and pools / activations /
affines apply shard-by-shard.  :meth:`EncryptedNetwork.forward_shards`
is the sharded executor; the single-ciphertext :meth:`forward` path is
unchanged for networks compiled without sharding.

Networks are **typed node sequences** from :mod:`repro.fhe.ir` — the
string-``kind`` layer records of earlier versions are gone.  The
executor dispatches on node *type*: each :class:`~repro.fhe.ir.IRNode`
subclass has one compile handler (builds the per-node caches: matvec
plans, pre-rotated diagonal groups, activation plans, masks) and one
execution handler per path (single-ciphertext / sharded); see
``docs/graph-ir.md`` for the taxonomy, the level/scale metadata
contract, and how to add an op.  :func:`repro.fhe.ir.compile_network`
is the single compile entrypoint; :func:`compile_mlp` is the
Linear/PAF-stack lowering it dispatches to.
"""

from __future__ import annotations

import numpy as np

from repro.ckks import (
    Ciphertext,
    CkksContext,
    CkksEvaluator,
    CkksParams,
    eval_paf_relu,
    keygen,
    plan_paf_relu,
)
from repro.ckks.instrumentation import span as trace_span
from repro.core.paf_layer import PAFReLU
from repro.fhe.ir import (
    AffineNode,
    AttentionNode,
    CompilePolicy,
    Graph,
    IRNode,
    MatvecNode,
    MergeNode,
    PafNode,
    PolyNode,
    PoolNode,
    ReduceNode,
    RefreshNode,
    ResidualTapNode,
    apply_refresh_policy,
)
from repro.fhe.linear import (
    bsgs_diagonals,
    diagonals_of,
    encrypted_matvec,
    encrypted_matvec_bsgs,
    encrypted_matvec_shards,
    grouped_diagonals,
    plan_matvec,
    tile_blocks,
)
from repro.fhe.packing import BlockLayout, pack_batch, unpack_blocks
from repro.nn.layers import Linear, ReLU
from repro.nn.module import Module

__all__ = ["EncryptedNetwork", "compile_mlp"]


def _resolve_mode(mode: str | None) -> bool:
    """Validate ``mode=`` and return True for the reference paths.

    ``mode`` must be ``None`` / ``"plan"`` (compiled BSGS /
    Paterson-Stockmeyer paths) or ``"reference"`` (naive diagonals,
    per-step rotations, the activation ladder).
    """
    if mode is None:
        return False
    if mode not in ("plan", "reference"):
        raise ValueError(f'mode must be "plan" or "reference", got {mode!r}')
    return mode == "reference"


def _dispatch(table: dict, node: IRNode):
    """Resolve a handler for ``node`` by walking its class MRO."""
    for klass in type(node).__mro__:
        if klass in table:
            return table[klass]
    raise ValueError(f"no handler for IR node type {type(node).__name__}")


class EncryptedNetwork:
    """A network compiled for encrypted inference (single or SIMD-batched).

    Built from a :class:`repro.fhe.ir.Graph` (or a bare node list) by
    the family lowerings behind :func:`repro.fhe.ir.compile_network` —
    :func:`compile_mlp` for Linear/PAF stacks,
    :func:`repro.fhe.cnn.compile_cnn` / ``compile_resnet`` for conv
    stacks, :func:`repro.fhe.transformer.compile_transformer` for the
    attention+MLP block.
    """

    def __init__(
        self,
        graph,
        size: int | None = None,
        params: CkksParams | None = None,
        seed: int = 0,
        reference_keys: bool = False,
        input_shards: int = 1,
        policy: CompilePolicy | None = None,
    ):
        if isinstance(graph, Graph):
            self.graph = graph
        else:
            self.graph = Graph(list(graph), size=size, input_shards=input_shards)
        if size is not None and size != self.graph.size:
            raise ValueError(f"size {size} != graph size {self.graph.size}")
        self.size = self.graph.size
        #: ciphertexts per request on the sharded path (1 = single-ct)
        self.num_input_shards = self.graph.input_shards
        if self.graph.input_splits is not None:
            self.input_splits = list(self.graph.input_splits)
        self.ctx = CkksContext(params)
        #: the refresh policy this network compiled under (None = legacy
        #: construction; equivalent to ``CompilePolicy(refresh="never")``)
        self.policy = policy
        #: per-(method, rtol) :class:`~repro.ckks.bootstrap.RefreshPlan`
        self._refresh_plan_cache: dict = {}
        if policy is not None:
            self._place_refreshes(policy)
        self.layers = self.graph.nodes
        #: True when any node is sharded / branching — forward must go
        #: through :meth:`forward_shards`
        self.sharded = self.graph.sharded
        depth_needed = self.graph.validate()
        if params.depth < depth_needed:
            raise ValueError(
                f"context depth {params.depth} < required {depth_needed}"
            )
        # suffix depths of the static schedule: levels the nodes *after* i
        # still need — a traced forward reports each layer's remaining
        # level slack (exit level minus this) against them.  A refresh
        # resets the requirement: nodes before it need nothing held back.
        self._depth_after = [0] * len(self.layers)
        req = 0
        for i in range(len(self.layers) - 1, -1, -1):
            self._depth_after[i] = req
            node = self.layers[i]
            req = 0 if isinstance(node, RefreshNode) else req + node.level_cost()
        slots = self.ctx.slots
        #: SIMD block geometry (shared with :mod:`repro.serve.packing`)
        self.layout = BlockLayout(size=self.size, slots=slots)
        #: one request occupies ``2·size`` slots (vector + wraparound replica)
        self.block_stride = self.layout.stride
        #: SIMD capacity: how many requests fit one ciphertext
        self.max_batch = self.layout.max_batch
        # Diagonals / biases are tiled across *all* blocks once; a partial
        # batch leaves trailing blocks at zero input, which just compute
        # f(0) in-range — so every batch size shares these plaintexts (and,
        # downstream, the serve artifact's encoding cache).  BSGS layers
        # keep only their pre-rotated groups: the flat diagonals are
        # retained just where something can actually read them (naive-plan
        # layers, or every layer when ``reference_keys`` enables the
        # reference path) — holding both would double plaintext memory.
        self.linear_diagonals: dict[int, dict] = {}
        self.linear_bias_slots: dict[int, np.ndarray] = {}
        #: per-node matvec execution plan (BSGS vs naive reference)
        self.matvec_plans: dict = {}
        #: pre-rotated giant-step diagonal groups for the BSGS layers
        self.linear_groups: dict[int, dict] = {}
        #: per-activation :class:`~repro.ckks.poly_plan.ReluPlan`
        #: (Paterson–Stockmeyer vs ladder chosen per component, with the
        #: static scale and the ReLU ½ already folded into coefficients)
        self.paf_plans: dict = {}
        #: per-PolyNode :class:`~repro.ckks.poly_plan.DensePolyPlan`
        self.poly_plans: dict = {}
        #: pool masks: ``1/window`` over ``[0, size)`` of every block, zero
        #: elsewhere — the pool's scalar multiply doubles as the cleanup
        #: that re-zeroes replica halves after the rotate-and-sum stages
        self.pool_masks: dict[int, np.ndarray] = {}
        #: affine (unfolded BN) slot vectors, tiled like the biases
        self.affine_scale_slots: dict[int, np.ndarray] = {}
        self.affine_shift_slots: dict[int, np.ndarray] = {}
        #: sharded linear / merge-projection nodes: K_out x K_in grids of
        #: MatvecPlans (None = all-zero block), grouped diagonal payloads
        #: and per-output-shard tiled biases
        self.shard_plans: dict[int, list] = {}
        self.shard_groups: dict[int, list] = {}
        self.shard_bias_slots: dict[int, list] = {}
        #: merge node index -> matching residual tap index
        self.merge_taps: dict[int, int] = {}
        #: per-AttentionNode compiled state (projection plans/groups,
        #: placement and broadcast masks, softmax plan and constants)
        self.attention_states: dict = {}
        #: per-RefreshNode :class:`~repro.ckks.bootstrap.RefreshPlan`
        self.refresh_plans: dict = {}
        self._reference_keys = reference_keys
        self._pool_steps: set = set()
        self._shard_steps: set = set()
        self._needs_conj = False
        for i, node in enumerate(self.layers):
            _dispatch(self._COMPILE, node)(self, i, node)
        # Galois keys cover exactly the planned rotation steps (baby +
        # giant for BSGS layers, per-diagonal for naive ones);
        # ``reference_keys`` additionally covers the naive path of every
        # layer so the reference implementation can run side by side.
        steps = {s for plan in self.matvec_plans.values() for s in plan.rotation_steps()}
        steps |= self._pool_steps
        steps |= self._shard_steps
        if reference_keys:
            steps |= {d for plan in self.matvec_plans.values() for d in plan.diag_steps}
        # right-rotation by `size` restores the wraparound replica block
        # before each linear layer (the matvec zeroes slots >= size within
        # each block, so the shifted-in neighbour-block slots are zero)
        self._replicate_step = slots - self.size
        steps.add(self._replicate_step)
        galois: tuple = tuple(sorted(steps))
        if self._needs_conj:
            # evalmod refreshes separate conjugate halves homomorphically
            galois = galois + ("conj",)
        self.keys = keygen(self.ctx, seed=seed, galois_steps=galois)
        self.ev = CkksEvaluator(self.ctx, self.keys)

    # ------------------------------------------------------------------
    # refresh placement
    # ------------------------------------------------------------------
    def _refresh_plan_for(self, method: str, rtol: float | None):
        """Plan (and memoise) one refresh configuration against the context."""
        from repro.ckks.bootstrap import plan_refresh

        key = (method, rtol)
        plan = self._refresh_plan_cache.get(key)
        if plan is None:
            plan = plan_refresh(self.ctx, method=method, rtol=rtol)
            self._refresh_plan_cache[key] = plan
            # a None rtol resolves to the method default: alias the
            # resolved key so the node-level lookup reuses this plan
            self._refresh_plan_cache.setdefault((method, plan.rtol), plan)
        return plan

    def _place_refreshes(self, policy: CompilePolicy) -> None:
        """Insert :class:`~repro.fhe.ir.RefreshNode`\\ s per the policy.

        ``refresh="auto"`` plans the refresh pipeline only when the
        graph actually overflows the schedule, so fitting models skip
        the (evalmod-expensive) planning entirely and compile with an
        unchanged node list.
        """
        if policy.refresh == "never":
            return
        if (
            policy.refresh == "auto"
            and self.graph.validate() <= self.ctx.max_level
        ):
            return
        plan = self._refresh_plan_for(policy.refresh_method, policy.rtol)
        apply_refresh_policy(
            self.graph,
            self.ctx.max_level,
            policy,
            pipeline_levels=plan.pipeline_levels,
            rtol=plan.rtol,
        )

    # ------------------------------------------------------------------
    # per-node-type compilation
    # ------------------------------------------------------------------
    def _compile_block_grid(self, i: int, node) -> None:
        """Compile a ``K_out × K_in`` grid of matvec blocks (sharded
        linear layers and merge projections share this)."""
        slots = self.ctx.slots
        plans_grid: list = []
        groups_grid: list = []
        for row in node.blocks:
            plan_row: list = []
            group_row: list = []
            for mat in row:
                if mat is None or not np.any(mat):
                    plan_row.append(None)
                    group_row.append(None)
                    continue
                diags = diagonals_of(
                    mat,
                    slots,
                    num_blocks=self.max_batch,
                    block_stride=self.block_stride,
                )
                plan = plan_matvec(diags.keys(), self.size)
                plan_row.append(plan)
                group_row.append(grouped_diagonals(diags, plan))
                self._shard_steps.update(plan.rotation_steps())
            if not any(g is not None for g in group_row):
                # fail at compile like the single-ct path's
                # all-zero-weight rejection, not at forward time
                raise ValueError(
                    f"layer {i}: output shard {len(plans_grid)} reads "
                    "no nonzero block (all-zero weight row)"
                )
            plans_grid.append(plan_row)
            groups_grid.append(group_row)
        self.shard_plans[i] = plans_grid
        self.shard_groups[i] = groups_grid
        if node.bias_shards is not None:
            slots = self.ctx.slots
            tiled = []
            for vec in node.bias_shards:
                if vec is None:
                    tiled.append(None)
                    continue
                base = np.zeros(self.size)
                base[: len(vec)] = vec
                tiled.append(
                    tile_blocks(base, slots, self.max_batch, self.block_stride)
                )
            self.shard_bias_slots[i] = tiled

    def _compile_matvec(self, i: int, node: MatvecNode) -> None:
        if node.blocks is not None:
            self._compile_block_grid(i, node)
            return
        slots = self.ctx.slots
        diags = diagonals_of(
            node.weight,
            slots,
            num_blocks=self.max_batch,
            block_stride=self.block_stride,
        )
        plan = plan_matvec(diags.keys(), self.size)
        self.matvec_plans[i] = plan
        if plan.use_bsgs:
            self.linear_groups[i] = bsgs_diagonals(diags, plan)
        if not plan.use_bsgs or self._reference_keys:
            self.linear_diagonals[i] = diags
        if node.bias is not None:
            bias = np.zeros(self.size)
            bias[: len(node.bias)] = node.bias
            self.linear_bias_slots[i] = tile_blocks(
                bias, slots, self.max_batch, self.block_stride
            )

    def _compile_merge(self, i: int, node: MergeNode) -> None:
        if node.blocks is not None:
            self._compile_block_grid(i, node)
        if node.tap is None:
            raise ValueError(f"merge layer {i} has no matching residual tap")
        self.merge_taps[i] = node.tap

    def _compile_paf(self, i: int, node: PafNode) -> None:
        # sharded (deep residual) networks need exact-scale plans:
        # ladder-tolerated sub-percent drift doubles per rescale
        # and overflows the modulus past ~20 levels
        self.paf_plans[i] = plan_paf_relu(
            node.paf, node.scale, exact_scales=self.sharded
        )

    def _compile_poly(self, i: int, node: PolyNode) -> None:
        from repro.ckks.poly_plan import plan_dense_poly

        self.poly_plans[i] = plan_dense_poly(node.poly, exact_scales=self.sharded)

    def _compile_pool(self, i: int, node: PoolNode) -> None:
        for stage in node.shifts:
            self._pool_steps.update(s for s in stage if s)
        self.pool_masks[i] = tile_blocks(
            np.full(self.size, node.pool_scale),
            self.ctx.slots,
            self.max_batch,
            self.block_stride,
        )

    def _compile_affine(self, i: int, node: AffineNode) -> None:
        for name, vec, store in (
            ("scale", node.affine_scale, self.affine_scale_slots),
            ("shift", node.affine_shift, self.affine_shift_slots),
        ):
            if vec is None or len(vec) > self.size:
                raise ValueError(
                    f"affine layer {i} needs a {name} vector of length <= {self.size}"
                )
            base = np.zeros(self.size)
            base[: len(vec)] = vec
            store[i] = tile_blocks(
                base, self.ctx.slots, self.max_batch, self.block_stride
            )

    def _compile_noop(self, i: int, node) -> None:
        pass

    def _compile_attention(self, i: int, node: AttentionNode) -> None:
        from repro.fhe.transformer import compile_attention_state

        self.attention_states[i] = compile_attention_state(self, i, node)

    def _compile_refresh(self, i: int, node: RefreshNode) -> None:
        plan = self._refresh_plan_for(node.method, node.rtol)
        if node.pipeline_levels != plan.pipeline_levels:
            raise ValueError(
                f"refresh node {i} declares {node.pipeline_levels} pipeline "
                f"levels but the plan consumes {plan.pipeline_levels}"
            )
        self.refresh_plans[i] = plan
        for step in plan.galois_steps():
            if step == "conj":
                self._needs_conj = True
            else:
                self._shard_steps.add(step)

    _COMPILE = {
        MatvecNode: _compile_matvec,
        MergeNode: _compile_merge,
        PafNode: _compile_paf,
        PolyNode: _compile_poly,
        PoolNode: _compile_pool,
        AffineNode: _compile_affine,
        ResidualTapNode: _compile_noop,
        ReduceNode: _compile_noop,
        AttentionNode: _compile_attention,
        RefreshNode: _compile_refresh,
    }

    # ------------------------------------------------------------------
    # packing
    # ------------------------------------------------------------------
    def pack_batch(self, xs) -> np.ndarray:
        """Pack up to ``max_batch`` input vectors into one slot vector.

        Each vector lands in its own ``2·size`` block with wraparound
        replication so the cyclic diagonals line up per block.
        """
        return pack_batch(xs, self.layout)

    def encrypt_batch(self, xs, ev: CkksEvaluator | None = None) -> Ciphertext:
        """Pack + encrypt a batch of input vectors into one ciphertext."""
        return (ev or self.ev).encrypt(self.pack_batch(xs))

    def encrypt_input(self, x: np.ndarray) -> Ciphertext:
        """Pack + encrypt one input vector (block 0 of the batched layout)."""
        return self.encrypt_batch([x])

    # ------------------------------------------------------------------
    # sharded packing
    # ------------------------------------------------------------------
    #: element counts per input shard (set by the sharded compilers); the
    #: flat input splits contiguously into these
    input_splits: list | None = None

    def split_input(self, x) -> list:
        """Split one flat input vector into per-shard flat vectors."""
        x = np.asarray(x, dtype=np.float64).ravel()
        if self.num_input_shards == 1:
            return [x]
        if self.input_splits is None:
            raise ValueError("sharded network has no input_splits recorded")
        if len(x) != sum(self.input_splits):
            raise ValueError(
                f"input dim {len(x)} != sharded total {sum(self.input_splits)}"
            )
        return list(np.split(x, np.cumsum(self.input_splits)[:-1]))

    def encrypt_batch_shards(self, xs, ev: CkksEvaluator | None = None) -> list:
        """Pack + encrypt a batch into one ciphertext *per input shard*.

        Every shard uses the same :class:`BlockLayout` (request ``b`` of
        every shard sits in block ``b``), so the SIMD batch geometry —
        and the serving layer built on it — is unchanged by sharding.
        """
        ev = ev or self.ev
        parts = [self.split_input(x) for x in xs]
        return [
            ev.encrypt(pack_batch([p[s] for p in parts], self.layout))
            for s in range(self.num_input_shards)
        ]

    def encrypt_input_shards(self, x: np.ndarray) -> list:
        """Pack + encrypt one input as a list of shard ciphertexts."""
        return self.encrypt_batch_shards([x])

    # ------------------------------------------------------------------
    # encrypted forward
    # ------------------------------------------------------------------
    def _replicate(self, ct: Ciphertext, ev: CkksEvaluator) -> Ciphertext:
        """Restore every block's replica half: out[i+size] = in[i]."""
        return ev.add(ct, ev.rotate(ct, self._replicate_step))

    def forward(
        self,
        ct: Ciphertext,
        *,
        encoded=None,
        ev: CkksEvaluator | None = None,
        mode: str | None = None,
    ) -> Ciphertext:
        """Encrypted forward pass over all packed blocks at once.

        The single-ciphertext IR executor: each node type has one
        handler.  Matvec nodes (Linear weights and compile-time-lowered
        convs alike) follow their compiled :class:`MatvecPlan` — BSGS
        with hoisted baby rotations where that is strictly cheaper, the
        naive diagonal loop otherwise.  PAF activations follow their
        compiled :class:`~repro.ckks.poly_plan.ReluPlan` —
        Paterson–Stockmeyer per component where strictly fewer
        nonscalar mults, the term-by-term ladder otherwise.  Pool nodes
        run their rotate-and-sum plan (:meth:`_pool_forward`); affine
        nodes one slot-wise multiply + shift.  ``mode="reference"``
        forces the reference implementations everywhere: the naive
        diagonal loop for every linear layer (compile with
        ``reference_keys=True`` so its Galois keys exist), per-step
        rotations instead of hoisted batches for every pool, *and* the
        ladder for every activation — the differential-testing
        baseline.  ``mode="plan"`` (the default) runs the compiled
        plans.

        ``encoded`` is an optional provider of pre-encoded plaintexts for
        the linear layers — ``encoded(layer_index, level, scale)`` must
        return ``(payload, bias_slots)`` as :class:`~repro.ckks.Plaintext`
        values, where ``payload`` matches the layer's plan (grouped
        ``{giant: {baby: pt}}`` for BSGS layers, flat ``{d: pt}`` for
        naive ones — see :class:`repro.serve.artifact.ModelArtifact`);
        without it the cached raw diagonal vectors are encoded on the
        fly.  ``ev`` overrides the evaluator (worker pools run one
        evaluator per thread against the shared keys).
        """
        reference = _resolve_mode(mode)
        if self.sharded:
            raise ValueError(
                "this network is compiled for multi-ciphertext execution — "
                "use forward_shards(encrypt_batch_shards(...))"
            )
        if reference and encoded is not None:
            raise ValueError(
                "pre-encoded payloads follow the per-layer plans; the "
                "reference path takes raw diagonals only"
            )
        ev = ev or self.ev
        with trace_span(
            ev,
            "forward",
            kind="forward",
            layers=len(self.layers),
            backend=self.ctx.backend.name,
        ) as root:
            root.ct_entry(ct)
            for i, node in enumerate(self.layers):
                with self._layer_span(ev, i, node) as sp:
                    sp.ct_entry(ct)
                    handler = _dispatch(self._EXEC_SINGLE, node)
                    ct = handler(self, i, node, ct, ev, reference, encoded)
                    sp.ct_exit(ct, level_slack=ct.level - self._depth_after[i])
            root.ct_exit(ct)
        return ct

    # --- single-ciphertext node handlers -------------------------------
    def _exec_matvec(self, i, node, ct, ev, reference, encoded):
        if i > 0:
            ct = self._replicate(ct, ev)
        bsgs = self.matvec_plans[i].use_bsgs and not reference
        if not bsgs and i not in self.linear_diagonals:
            raise ValueError(
                "naive reference path unavailable: compile with "
                "reference_keys=True to retain flat diagonals and keys"
            )
        if encoded is not None:
            payload, bias_slots = encoded(i, ct.level, ct.scale)
        else:
            payload = self.linear_groups[i] if bsgs else self.linear_diagonals[i]
            bias_slots = self.linear_bias_slots.get(i)
        if bsgs:
            return encrypted_matvec_bsgs(ev, ct, groups=payload, bias_slots=bias_slots)
        return encrypted_matvec(ev, ct, diagonals=payload, bias_slots=bias_slots)

    def _exec_pool(self, i, node, ct, ev, reference, encoded):
        return self._pool_forward(ct, i, ev, reference=reference)

    def _exec_affine(self, i, node, ct, ev, reference, encoded):
        ct = ev.rescale(ev.mul_plain(ct, self.affine_scale_slots[i]))
        return ev.add_plain(ct, self.affine_shift_slots[i])

    def _exec_paf(self, i, node, ct, ev, reference, encoded):
        return eval_paf_relu(
            ev,
            ct,
            node.paf,
            scale=node.scale,
            plan=self.paf_plans[i],
            reference=reference,
        )

    def _exec_poly(self, i, node, ct, ev, reference, encoded):
        from repro.ckks.poly_eval import eval_dense_poly

        return eval_dense_poly(
            ev, ct, node.poly, plan=self.poly_plans[i], reference=reference
        )

    def _exec_refresh(self, i, node, ct, ev, reference, encoded):
        from repro.ckks.bootstrap import refresh

        return refresh(ev, ct, self.refresh_plans[i])

    _EXEC_SINGLE = {
        MatvecNode: _exec_matvec,
        PoolNode: _exec_pool,
        AffineNode: _exec_affine,
        PafNode: _exec_paf,
        PolyNode: _exec_poly,
        RefreshNode: _exec_refresh,
    }

    def _layer_span(self, ev: CkksEvaluator, i: int, node: IRNode):
        """Per-layer tracing span (a shared no-op when ``ev`` has no tracer)."""
        return trace_span(
            ev, f"layer{i:02d}:{node.kind}", kind="layer", layer=i, op=node.kind
        )

    def _pool_forward(
        self, ct: Ciphertext, i: int, ev: CkksEvaluator, reference: bool = False
    ) -> Ciphertext:
        """Average pool: rotate-and-sum per axis, then one masked scalar mult.

        Stage 1 sums the window columns (``k-1`` hoisted rotations by the
        column stride), stage 2 the window rows — separable, so ``2(k-1)``
        keyswitches instead of ``k²-1``.  Each stage's rotations act on
        one ciphertext and share a hoisted decomposition
        (``reference`` mode rotates one by one instead).  Valid sums land
        at the window-corner slots of the input grid (the compile-time
        :class:`~repro.fhe.packing.GridLayout` the next layer's matrix is
        lowered against); everything else — including the replica halves
        and the neighbour-block spill the full-slot rotations produce —
        is garbage, and the final ``1/window`` multiply is *masked* to
        ``[0, size)`` of each block so the replica halves leave this
        layer exactly zero again, preserving the invariant
        :meth:`_replicate` relies on.  One rescale: the pool consumes one
        level, like a linear layer.
        """
        stages = [
            [s for s in stage if s] for stage in self.layers[i].shifts
        ]
        with trace_span(
            ev, "pool:reduce", kind="exec", stages=sum(1 for s in stages if s)
        ) as sp:
            sp.ct_entry(ct)
            for stage in stages:
                if not stage:
                    continue
                if reference:
                    rotated = {s: ev.rotate(ct, s) for s in stage}
                else:
                    rotated = ev.rotate_many(ct, stage)
                for s in stage:
                    ct = ev.add(ct, rotated[s])
            ct = ev.rescale(ev.mul_plain(ct, self.pool_masks[i]))
            sp.ct_exit(ct)
        return ct

    # ------------------------------------------------------------------
    # sharded encrypted forward
    # ------------------------------------------------------------------
    def forward_shards(
        self,
        cts,
        *,
        encoded=None,
        ev: CkksEvaluator | None = None,
        mode: str | None = None,
        executor=None,
    ) -> list:
        """Encrypted forward over a channel-sharded ciphertext list.

        The multi-ciphertext twin of :meth:`forward`: ``cts`` is one
        ciphertext per input shard (``encrypt_batch_shards``), and the
        return value one per output shard of the last layer (a compiled
        classifier head always lands on a single shard).  Matvec nodes
        run :func:`~repro.fhe.linear.encrypted_matvec_shards` over their
        ``K_out × K_in`` grouped-diagonal blocks; ``residual`` taps push
        the live shard list onto a branch stack; ``merge`` pops it,
        applies the projection blocks (if any) to the *saved* branch at
        its own — higher — level, aligns the skip to the main branch's
        exact (level, scale) via ``align_to`` and adds shard-wise.  PAF,
        pool, dense-poly and attention nodes apply per shard / per the
        node's own dance; ``reduce`` sums the live shards into one.

        ``encoded`` is the same pre-encoded-plaintext provider contract
        as :meth:`forward`, extended to sharded layers: for a sharded
        linear or merge layer ``encoded(i, level, scale)`` must return
        ``(blocks, biases)`` with the grid/list structure of
        ``shard_groups[i]`` / ``shard_bias_slots.get(i)`` but holding
        :class:`~repro.ckks.Plaintext` values; merges are queried at the
        *saved branch's* (level, scale).  ``mode="reference"`` selects
        the per-step rotation pool path and the ladder activation path,
        as in :meth:`forward` (sharded matvecs have a single, grouped
        execution — their plan already names the cheaper path per
        block).

        ``executor`` is an optional
        :class:`~repro.serve.executor.BlockExecutor` scheduling the
        independent shard-grid blocks — each linear layer's
        per-output-shard chains, and the per-shard pool / PAF
        applications between them — across threads or forked processes.
        Deterministic ops make executor choice invisible in the
        ciphertexts; it only buys wall time on multi-shard models.
        """
        reference = _resolve_mode(mode)
        ev = ev or self.ev
        cts = list(cts)
        stack: list = []
        with trace_span(
            ev,
            "forward_shards",
            kind="forward",
            layers=len(self.layers),
            shards=len(cts),
            backend=self.ctx.backend.name,
        ) as root:
            root.ct_entry(cts)
            for i, node in enumerate(self.layers):
                with self._layer_span(ev, i, node) as sp:
                    sp.ct_entry(cts)
                    handler = _dispatch(self._EXEC_SHARDED, node)
                    cts = handler(
                        self, i, node, cts, ev, reference, encoded, executor, stack
                    )
                    sp.ct_exit(cts, level_slack=cts[0].level - self._depth_after[i])
            root.ct_exit(cts)
        return cts

    # --- sharded node handlers ----------------------------------------
    def _exec_matvec_shards(self, i, node, cts, ev, reference, encoded, executor, stack):
        if node.blocks is None:
            raise ValueError(
                f"layer {i}: single-ciphertext linear inside a sharded "
                "network (compile it with shard blocks)"
            )
        if i > 0:
            cts = [self._replicate(ct, ev) for ct in cts]
        if encoded is not None:
            payload, biases = encoded(i, cts[0].level, cts[0].scale)
        else:
            payload = self.shard_groups[i]
            biases = self.shard_bias_slots.get(i)
        return encrypted_matvec_shards(
            ev, cts, payload, bias_slots=biases, executor=executor
        )

    def _exec_residual_shards(self, i, node, cts, ev, reference, encoded, executor, stack):
        stack.append(cts)
        return cts

    def _exec_merge_shards(self, i, node, cts, ev, reference, encoded, executor, stack):
        skip = stack.pop()
        if node.blocks is not None:
            skip = [self._replicate(ct, ev) for ct in skip]
            if encoded is not None:
                payload, biases = encoded(i, skip[0].level, skip[0].scale)
            else:
                payload = self.shard_groups[i]
                biases = self.shard_bias_slots.get(i)
            skip = encrypted_matvec_shards(
                ev, skip, payload, bias_slots=biases, executor=executor
            )
        if len(skip) != len(cts):
            raise ValueError(
                f"merge layer {i}: skip branch has {len(skip)} shards, "
                f"main branch {len(cts)}"
            )
        target = cts[0]
        # exact (rtol 0) alignment: the skip must land on the
        # main branch's scale precisely, or the embedded
        # mismatch rides every later squaring
        with trace_span(
            ev, "merge:align", kind="exec", shards=len(cts)
        ) as msp:
            msp.ct_entry(skip)
            skip = [
                ev.align_to(s, target.level, target.scale, rtol=0.0)
                for s in skip
            ]
            cts = [ev.add(c, s) for c, s in zip(cts, skip)]
            msp.ct_exit(cts)
        return cts

    def _exec_pool_shards(self, i, node, cts, ev, reference, encoded, executor, stack):
        return self._map_shards(
            executor,
            [
                lambda ct=ct, i=i: self._pool_forward(ct, i, ev, reference=reference)
                for ct in cts
            ],
        )

    def _exec_paf_shards(self, i, node, cts, ev, reference, encoded, executor, stack):
        return self._map_shards(
            executor,
            [
                lambda ct=ct, i=i: eval_paf_relu(
                    ev, ct, node.paf, scale=node.scale,
                    plan=self.paf_plans[i], reference=reference,
                )
                for ct in cts
            ],
        )

    def _exec_poly_shards(self, i, node, cts, ev, reference, encoded, executor, stack):
        from repro.ckks.poly_eval import eval_dense_poly

        return self._map_shards(
            executor,
            [
                lambda ct=ct, i=i: eval_dense_poly(
                    ev, ct, node.poly, plan=self.poly_plans[i], reference=reference
                )
                for ct in cts
            ],
        )

    def _exec_reduce_shards(self, i, node, cts, ev, reference, encoded, executor, stack):
        with trace_span(ev, "reduce:shards", kind="exec", shards=len(cts)) as sp:
            sp.ct_entry(cts)
            acc = cts[0]
            for ct in cts[1:]:
                acc = ev.add(acc, ct)
            sp.ct_exit(acc)
        return [acc]

    def _exec_attention_shards(self, i, node, cts, ev, reference, encoded, executor, stack):
        from repro.fhe.transformer import attention_forward

        return attention_forward(
            self, i, node, cts, ev, reference=reference, executor=executor
        )

    def _exec_affine_shards(self, i, node, cts, ev, reference, encoded, executor, stack):
        raise ValueError(
            f"layer {i} kind {node.kind!r} has no sharded execution "
            "(BatchNorm must be folded into a conv when sharding)"
        )

    def _exec_refresh_shards(self, i, node, cts, ev, reference, encoded, executor, stack):
        from repro.ckks.bootstrap import refresh

        plan = self.refresh_plans[i]
        return self._map_shards(
            executor, [lambda ct=ct: refresh(ev, ct, plan) for ct in cts]
        )

    _EXEC_SHARDED = {
        MatvecNode: _exec_matvec_shards,
        ResidualTapNode: _exec_residual_shards,
        MergeNode: _exec_merge_shards,
        PoolNode: _exec_pool_shards,
        PafNode: _exec_paf_shards,
        PolyNode: _exec_poly_shards,
        ReduceNode: _exec_reduce_shards,
        AttentionNode: _exec_attention_shards,
        AffineNode: _exec_affine_shards,
        RefreshNode: _exec_refresh_shards,
    }

    def _map_shards(self, executor, fns) -> list:
        """Run per-shard closures, optionally on a block executor."""
        if executor is None or len(fns) <= 1:
            return [fn() for fn in fns]
        return executor.map_blocks(fns, ctx=self.ctx)

    def predict_shards(self, x: np.ndarray, num_classes: int) -> int:
        """Sharded round trip: encrypt shards -> forward -> decrypt -> argmax."""
        out = self.forward_shards(self.encrypt_input_shards(x))
        return int(np.argmax(self.decrypt_logits(out[0], num_classes)))

    # ------------------------------------------------------------------
    # static schedule
    # ------------------------------------------------------------------
    def layer_input_levels(self) -> dict:
        """Chain level at which the ciphertext enters each layer.

        A fixed network visits every layer at one deterministic level:
        each node consumes exactly its :meth:`~repro.fhe.ir.IRNode.level_cost`
        (matvec/pool/affine one rescale, PAF activations their full
        multiplication depth, taps/merges/reduces zero).
        ``repro.serve.artifact`` uses this to pre-encode activation
        constants without running a forward pass.
        """
        return self.graph.input_levels(self.ctx.max_level)

    def merge_branch_levels(self) -> dict:
        """Level at which each merge's *skip* branch material is read.

        A merge's projection diagonals act on the ciphertexts saved at
        its residual tap, so they encode at the tap's chain level — the
        per-branch half of the static schedule (``layer_input_levels``
        is the main-chain half; taps and merges consume zero there).
        """
        levels = self.layer_input_levels()
        return {i: levels[tap] for i, tap in self.merge_taps.items()}

    # ------------------------------------------------------------------
    # decrypt
    # ------------------------------------------------------------------
    def decrypt_logits(
        self,
        ct: Ciphertext,
        num_classes: int,
        batch: int | None = None,
        ev: CkksEvaluator | None = None,
    ) -> np.ndarray:
        """Decrypt logits; 1-D for a single request, ``(batch, C)`` when
        ``batch`` is given (demultiplexes the per-client slot blocks)."""
        ev = ev or self.ev
        if batch is None:
            return ev.decrypt(ct, num_values=num_classes)
        if not 1 <= batch <= self.max_batch:
            raise ValueError(f"batch {batch} out of range 1..{self.max_batch}")
        span = self.layout.offset(batch - 1) + num_classes
        values = ev.decrypt(ct, num_values=span)
        return unpack_blocks(values, self.layout, num_classes, batch)

    def predict(self, x: np.ndarray, num_classes: int) -> int:
        """Full round trip: encrypt -> encrypted forward -> decrypt -> argmax."""
        logits = self.decrypt_logits(self.forward(self.encrypt_input(x)), num_classes)
        return int(np.argmax(logits))

    def predict_batch(self, xs, num_classes: int) -> np.ndarray:
        """One SIMD round trip for up to ``max_batch`` inputs; argmax per row."""
        ct = self.forward(self.encrypt_batch(xs))
        logits = self.decrypt_logits(ct, num_classes, batch=len(xs))
        return logits.argmax(axis=1)


def compile_mlp(
    model: Module,
    params: CkksParams,
    seed: int = 0,
    reference_keys: bool = False,
    policy: CompilePolicy | None = None,
) -> EncryptedNetwork:
    """Compile a (PAF-approximated) ``repro.nn`` MLP for encrypted inference.

    The Linear/PAF-stack lowering behind
    :func:`repro.fhe.ir.compile_network`: accepts models whose module
    tree is Linear / ReLU / PAFReLU layers only (e.g.
    ``repro.nn.models.MLP`` after SMART-PAF replacement), and lowers
    them to :class:`~repro.fhe.ir.MatvecNode` / PafNode sequences.
    Exact ReLU layers are rejected — replace them first; that is the whole
    point of the paper.  ``reference_keys`` additionally generates the
    Galois keys the naive reference path needs (differential testing).
    A ``policy`` (:class:`~repro.fhe.ir.CompilePolicy`) overrides
    ``seed`` / ``reference_keys`` and carries the refresh policy.
    """
    if policy is not None:
        seed, reference_keys = policy.seed, policy.reference_keys
    nodes: list[IRNode] = []
    widths: list[int] = []
    for name, mod in model.named_modules():
        if isinstance(mod, Linear):
            w = mod.weight.data.copy()
            b = mod.bias.data.copy() if mod.bias is not None else None
            nodes.append(MatvecNode(weight=w, bias=b))
            widths.extend(w.shape)
        elif isinstance(mod, PAFReLU):
            nodes.append(
                PafNode(paf=mod.sign.to_composite(), scale=mod.static_scale)
            )
        elif isinstance(mod, ReLU):
            raise TypeError(
                f"layer {name!r} is an exact ReLU — run SMART-PAF replacement "
                "before compiling to FHE (CKKS has no non-polynomial ops)"
            )
    size = max(widths)
    # zero-pad weights to square so the diagonal layout is uniform
    for node in nodes:
        if isinstance(node, MatvecNode):
            padded = np.zeros((size, size))
            padded[: node.weight.shape[0], : node.weight.shape[1]] = node.weight
            node.weight = padded
    return EncryptedNetwork(
        Graph(nodes, size=size),
        params=params,
        seed=seed,
        reference_keys=reference_keys,
        policy=policy,
    )
