"""PAF latency measurement under CKKS (the paper's Fig. 1 x-axis, Tab. 4).

The paper measures wall-clock PAF (ReLU) latency in SEAL on a CPU
(N=32768, 881-bit modulus).  Here the same quantity is measured on our
CKKS at a configurable ring size; *relative* latencies across PAF forms —
which track multiplication count and depth — are the reproduced quantity.

Also provides an analytic cost model (op counts × measured per-op
microbenchmarks) so the latency of paper-grade parameters can be
extrapolated without running them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.ckks import (
    CkksContext,
    CkksEvaluator,
    CkksParams,
    eval_paf_relu,
    keygen,
)
from repro.ckks.poly_plan import plan_paf_relu
from repro.fhe.linear import MatvecPlan
from repro.paf.polynomial import CompositePAF
from repro.paf.relu import relu_mult_depth

__all__ = [
    "LatencyResult",
    "REFERENCE_MICROS",
    "cost_from_counts",
    "measure_relu_latency",
    "measure_op_micros",
    "analytic_relu_cost",
    "analytic_activation_cost",
    "analytic_matvec_cost",
    "analytic_pool_cost",
    "analytic_sharded_matvec_cost",
    "analytic_residual_merge_cost",
    "analytic_refresh_cost",
    "paf_op_counts",
    "activation_op_counts",
    "matvec_op_counts",
    "pool_op_counts",
    "sharded_matvec_op_counts",
    "residual_merge_op_counts",
    "refresh_op_counts",
]


@dataclass
class LatencyResult:
    """Measured encrypted-ReLU latency for one PAF form."""

    paf_name: str
    reported_degree: int
    mult_depth: int
    seconds: float
    levels_consumed: int
    max_error: float


_SHARED: dict = {}


def shared_runtime(params: CkksParams, seed: int = 0):
    """Context+keys+evaluator cache (keygen dominates small benchmarks)."""
    key = (params.n, params.scale_bits, params.depth)
    if key not in _SHARED:
        ctx = CkksContext(params)
        keys = keygen(ctx, seed=seed)
        _SHARED[key] = (ctx, keys, CkksEvaluator(ctx, keys))
    return _SHARED[key]


def measure_relu_latency(
    paf: CompositePAF,
    params: CkksParams | None = None,
    repeats: int = 1,
    *,
    mode: str | None = None,
) -> LatencyResult:
    """Wall-clock encrypted PAF-ReLU latency (median of ``repeats``).

    ``mode="reference"`` measures the term-by-term ladder path instead
    of the default Paterson–Stockmeyer plan (same depth, more nonscalar
    mults) — ``benchmarks/bench_paf_eval.py`` sweeps both.
    """
    if mode not in (None, "plan", "reference"):
        raise ValueError(
            f"measure_relu_latency mode must be 'plan' or 'reference', got {mode!r}"
        )
    reference = mode == "reference"
    params = params or CkksParams(n=2048, scale_bits=25, depth=relu_mult_depth(paf) + 1)
    if params.depth < relu_mult_depth(paf):
        raise ValueError(
            f"context depth {params.depth} < required {relu_mult_depth(paf)}"
        )
    ctx, _, ev = shared_runtime(params)
    rng = np.random.default_rng(0)
    x = rng.uniform(-1, 1, ctx.slots)
    ct = ev.encrypt(x)
    plan = None if reference else plan_paf_relu(paf)
    times = []
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = eval_paf_relu(ev, ct, paf, plan=plan, reference=reference)
        times.append(time.perf_counter() - t0)
    got = ev.decrypt(out)
    ref = 0.5 * (x + paf(x) * x)
    return LatencyResult(
        paf_name=paf.name,
        reported_degree=paf.reported_degree,
        mult_depth=paf.mult_depth,
        seconds=float(np.median(times)),
        levels_consumed=ctx.max_level - out.level,
        max_error=float(np.max(np.abs(got - ref))),
    )


# ----------------------------------------------------------------------
# analytic cost model
# ----------------------------------------------------------------------
def paf_op_counts(paf: CompositePAF) -> dict:
    """Homomorphic op counts of the *ladder* (reference) ReLU evaluation.

    Per component: ladder squarings (ct-ct mult + relin + rescale), one
    plaintext mult + rescale per nonzero term leaf, and term-merge ct-ct
    mults; plus the final ReLU gate mult.  For the default
    Paterson–Stockmeyer path use :func:`activation_op_counts`.
    """
    ct_mult = 0
    pt_mult = 0
    rescale = 0
    for comp in paf.components:
        degree = comp.degree
        # ladder rungs
        rung = 1
        while rung * 2 <= max(degree - 1, 1):
            ct_mult += 1
            rescale += 1
            rung *= 2
        for idx, c in enumerate(comp.coeffs):
            if c == 0.0:
                continue
            k = 2 * idx + 1
            pt_mult += 1
            rescale += 1
            merges = bin(k - 1).count("1")
            ct_mult += merges
            rescale += merges
    # ReLU reconstruction: one ct-ct mult (+ rescale) and one plain add
    ct_mult += 1
    rescale += 1
    return {"ct_mult": ct_mult, "pt_mult": pt_mult, "rescale": rescale}


def measure_op_micros(params: CkksParams, repeats: int = 3) -> dict:
    """Per-op wall-clock microbenchmarks (seconds) for the cost model."""
    ctx, _, ev = shared_runtime(params)
    rng = np.random.default_rng(1)
    x = rng.uniform(-1, 1, ctx.slots)
    a = ev.encrypt(x)
    b = ev.encrypt(x)

    def timeit(fn):
        ts = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            ts.append(time.perf_counter() - t0)
        return float(np.median(ts))

    out = {}
    out["ct_mult"] = timeit(lambda: ev.mul(a, b))
    out["pt_mult"] = timeit(lambda: ev.mul_plain(a, 0.5))
    out["rescale"] = timeit(lambda: ev.rescale(ev.mul(a, b))) - out["ct_mult"]
    out["add"] = timeit(lambda: ev.add(a, b))
    # rotation costs for the matvec cost model: a standalone keyswitched
    # rotation, the marginal cost of one extra rotation inside a hoisted
    # batch (key inner product + P-descent), and the shared digit
    # decomposition itself — separated so the model can charge the
    # decomposition once per matvec rather than amortised over an
    # arbitrary batch size
    hoist_batch = 8
    ev.keys.ensure_galois_steps(ctx, tuple(range(1, hoist_batch + 1)))
    out["rotate"] = timeit(lambda: ev.rotate(a, 1))
    t_one = timeit(lambda: ev.rotate_many(a, [1]))
    t_batch = timeit(lambda: ev.rotate_many(a, range(1, hoist_batch + 1)))
    out["rotate_hoisted"] = max((t_batch - t_one) / (hoist_batch - 1), 0.0)
    out["hoist_decompose"] = max(t_one - out["rotate_hoisted"], 0.0)
    return out


def activation_op_counts(
    paf: CompositePAF, reference: bool = False, scale: float = 1.0
) -> dict:
    """Homomorphic op counts of one encrypted PAF-ReLU activation.

    The default follows the compiled Paterson–Stockmeyer plan
    (``repro.ckks.poly_plan``): ``ct_mult`` is the nonscalar-mult count of
    the chosen per-component path, ``pt_mult`` the coefficient leaves, and
    every multiplication is rescaled.  ``reference=True`` returns the
    term-by-term ladder counts (:func:`paf_op_counts`).  Scale-alignment
    corrections are excluded on both paths — the op-counting tests book
    them separately under ``align_correction``.
    """
    if reference:
        return paf_op_counts(paf)
    plan = plan_paf_relu(paf, scale)
    return {
        "ct_mult": plan.nonscalar_mults,
        "pt_mult": plan.num_leaves,
        "rescale": plan.nonscalar_mults + plan.num_leaves,
    }


def analytic_relu_cost(paf: CompositePAF, micros: dict) -> float:
    """Estimated ladder-path encrypted-ReLU seconds (reference model)."""
    return analytic_activation_cost(paf, micros, reference=True)


def analytic_activation_cost(
    paf: CompositePAF, micros: dict, reference: bool = False
) -> float:
    """Estimated encrypted-activation seconds from op counts × per-op times.

    ``reference`` selects the ladder model; the default models the
    Paterson–Stockmeyer plan the evaluator actually runs.
    """
    counts = activation_op_counts(paf, reference=reference)
    return (
        counts["ct_mult"] * micros["ct_mult"]
        + counts["pt_mult"] * micros["pt_mult"]
        + counts["rescale"] * max(micros["rescale"], 0.0)
    )


#: Reference per-op seconds, measured once via
#: :func:`measure_op_micros` on the baseline dev box and pinned so that
#: model costs derived from op counts are machine-independent — the
#: currency of the CI bench-trend gate (``bench_resnet_forward``) and of
#: per-span modeled costs in trace reports.  ``align_correction`` is
#: charged through its mul_plain + rescale (``CountingEvaluator`` books
#: all three), so it carries no price itself.
REFERENCE_MICROS = {
    "mul": 0.1396,
    "mul_plain": 0.0033,
    "rescale": 0.0102,
    "add": 0.00017,
    "add_plain": 0.00017,
    "sub": 0.00017,
    "rotate": 0.1588,
    "rotate_hoisted": 0.0304,
    "hoist_decompose": 0.1167,
    "mod_switch_to": 0.0005,
    # client-boundary ops, priced for the refresh cost model (the
    # precision gate decrypts twice; recrypt re-encodes once) — measured
    # on the same baseline box, normalised through the pinned mul rate
    "conjugate": 0.1735,
    "encrypt": 0.0398,
    "decrypt": 0.0176,
}


def cost_from_counts(counts: dict, micros: dict) -> float:
    """Shared dot product of op counts × per-op seconds.

    Negative micros are clamped to zero (``rescale`` is measured by
    subtraction and can come out slightly negative on noisy boxes);
    unpriced ops cost nothing.
    """
    return sum(n * max(micros.get(op, 0.0), 0.0) for op, n in counts.items())


def matvec_op_counts(plan: MatvecPlan) -> dict:
    """Homomorphic op counts of one encrypted matvec under ``plan``.

    The BSGS path splits rotations into standalone giant-step keyswitches
    (``rotate``) and baby-step rotations sharing one hoisted
    decomposition (``rotate_hoisted`` / ``hoist_decompose``); plaintext
    multiplies and the single rescale are identical on both paths.
    """
    if plan.use_bsgs:
        baby = sum(1 for b in plan.baby_steps if b)
        return {
            "rotate": plan.bsgs_keyswitches - baby,
            "rotate_hoisted": baby,
            "hoist_decompose": 1 if baby else 0,
            "pt_mult": plan.num_diagonals,
            "rescale": 1,
        }
    return {
        "rotate": plan.naive_keyswitches,
        "rotate_hoisted": 0,
        "hoist_decompose": 0,
        "pt_mult": plan.num_diagonals,
        "rescale": 1,
    }


def pool_op_counts(shifts: tuple) -> dict:
    """Homomorphic op counts of one rotate-and-sum average pool.

    ``shifts`` is the compiled per-stage step tuple of the pool layer
    (``(column shifts, row shifts)`` from
    :func:`repro.fhe.cnn.avg_pool_shifts`): each stage's rotations share
    one hoisted decomposition, then the masked ``1/window`` plaintext
    multiply pays one ``pt_mult`` and the single rescale.
    """
    stages = [[s for s in stage if s] for stage in shifts]
    rotations = sum(len(stage) for stage in stages)
    return {
        "rotate": 0,
        "rotate_hoisted": rotations,
        "hoist_decompose": sum(1 for stage in stages if stage),
        "pt_mult": 1,
        "rescale": 1,
    }


def analytic_pool_cost(shifts: tuple, micros: dict) -> float:
    """Estimated encrypted-pool seconds from op counts × per-op times."""
    return cost_from_counts(pool_op_counts(shifts), micros)


def sharded_matvec_op_counts(plans: list) -> dict:
    """Homomorphic op counts of one *sharded* (multi-ciphertext) matvec.

    ``plans`` is the ``K_out × K_in`` grid of per-block
    :class:`~repro.fhe.linear.MatvecPlan` (``None`` for all-zero blocks),
    matching :func:`repro.fhe.linear.encrypted_matvec_shards`: each input
    shard's baby rotations (union across every output shard that reads
    it, the per-diagonal steps of naive-planned blocks included) share
    one hoisted decomposition; giant-step rotations are standalone per
    block; every output shard rescales once.
    """
    num_in = len(plans[0]) if plans else 0
    hoisted: list = [set() for _ in range(num_in)]
    rotate = 0
    pt_mult = 0
    for row in plans:
        if len(row) != num_in:
            raise ValueError("ragged plan grid")
        for i, plan in enumerate(row):
            if plan is None:
                continue
            pt_mult += plan.num_diagonals
            if plan.use_bsgs:
                hoisted[i].update(b for b in plan.baby_steps if b)
                rotate += sum(1 for g in plan.giant_steps if g)
            else:
                hoisted[i].update(plan.diag_steps)
    return {
        "rotate": rotate,
        "rotate_hoisted": sum(len(s) for s in hoisted),
        "hoist_decompose": sum(1 for s in hoisted if s),
        "pt_mult": pt_mult,
        "rescale": len(plans),
    }


def analytic_sharded_matvec_cost(plans: list, micros: dict) -> float:
    """Estimated sharded-matvec (e.g. sharded conv) seconds."""
    return cost_from_counts(sharded_matvec_op_counts(plans), micros)


def residual_merge_op_counts(
    num_shards: int, proj_plans: list | None = None, level_gap: int = 1
) -> dict:
    """Homomorphic op counts of one residual ``merge`` layer.

    An identity skip costs one exact scale-alignment correction (a
    plaintext multiply + rescale riding the branch level gap) and one
    ct-ct add per shard; a projection skip additionally replicates each
    saved shard (one standalone rotation) and runs the 1×1-projection's
    sharded matvec (``proj_plans`` — the merge layer's plan grid).
    ``level_gap=0`` drops the alignment ops — equal-level branches share
    the canonical scale already — but never the adds.
    """
    counts = {
        "rotate": 0,
        "rotate_hoisted": 0,
        "hoist_decompose": 0,
        "pt_mult": 0,
        "rescale": 0,
        "add": num_shards,  # the per-shard skip + main additions
    }
    if proj_plans is not None:
        proj = sharded_matvec_op_counts(proj_plans)
        for k, n in proj.items():
            counts[k] += n
        counts["rotate"] += len(proj_plans[0])  # replicate each saved shard
    if level_gap > 0:
        counts["pt_mult"] += num_shards   # exact alignment corrections
        counts["rescale"] += num_shards
    return counts


def analytic_residual_merge_cost(
    num_shards: int,
    micros: dict,
    proj_plans: list | None = None,
    level_gap: int = 1,
) -> float:
    """Estimated residual-merge seconds (identity or projection skip)."""
    return cost_from_counts(
        residual_merge_op_counts(num_shards, proj_plans=proj_plans, level_gap=level_gap),
        micros,
    )


def analytic_matvec_cost(plan: MatvecPlan, micros: dict) -> float:
    """Estimated encrypted-matvec seconds from op counts × per-op times."""
    return cost_from_counts(matvec_op_counts(plan), micros)


class _ShadowCiphertext:
    """``(level, scale)`` shadow of a ciphertext — no ring data."""

    __slots__ = ("level", "scale")

    def __init__(self, level: int, scale: float):
        self.level = level
        self.scale = scale


class _ShadowEvaluator:
    """Replays executor control flow on ciphertext shadows, counting ops.

    Implements exactly the evaluator surface the Paterson–Stockmeyer
    executors touch, with the same level/scale arithmetic as
    :class:`~repro.ckks.evaluator.CkksEvaluator` and the booking
    conventions of
    :class:`~repro.ckks.instrumentation.CountingEvaluator`, so the
    refresh cost model prices the dense ``cos`` stage by running the
    *real* executor (alignment corrections included) instead of
    re-deriving its branch structure here and drifting from it.
    """

    def __init__(self, ctx):
        self.ctx = ctx
        self.counts: dict = {}

    def _book(self, op: str, n: int = 1) -> None:
        self.counts[op] = self.counts.get(op, 0) + n

    def rescale(self, a):
        self._book("rescale")
        return _ShadowCiphertext(a.level - 1, a.scale / self.ctx.q_chain[a.level])

    def square(self, a):
        self._book("mul")
        return _ShadowCiphertext(a.level, a.scale * a.scale)

    def mul(self, a, b):
        self._book("mul")
        return _ShadowCiphertext(a.level, a.scale * b.scale)

    def mul_rescale(self, a, b):
        return self.rescale(self.mul(a, b))

    def mul_plain(self, a, value, scale: float | None = None):
        self._book("mul_plain")
        pt_scale = a.scale if scale is None else scale
        return _ShadowCiphertext(a.level, a.scale * pt_scale)

    def mul_plain_rescale(self, a, value):
        return self.rescale(self.mul_plain(a, value))

    def add(self, a, b):
        self._book("add")
        return _ShadowCiphertext(a.level, a.scale)

    def add_plain(self, a, value):
        self._book("add_plain")
        return _ShadowCiphertext(a.level, a.scale)

    def mod_switch_to(self, a, level: int):
        if level != a.level:
            self._book("mod_switch_to")
        return _ShadowCiphertext(level, a.scale)

    def align_to(self, a, level: int, scale: float, rtol: float = 0.01):
        if a.level == level or abs(a.scale - scale) / scale <= rtol:
            if a.level != level:
                self._book("mod_switch_to")
            return _ShadowCiphertext(level, a.scale)
        self._book("align_correction")
        self._book("mul_plain")
        self._book("rescale")
        return _ShadowCiphertext(level, scale)


def refresh_op_counts(plan) -> dict:
    """Homomorphic op counts of one level refresh under ``plan``.

    ``plan`` is a :class:`repro.ckks.bootstrap.RefreshPlan`; keys follow
    :class:`~repro.ckks.instrumentation.CountingEvaluator` naming so the
    result dots directly with :data:`REFERENCE_MICROS`.  Both methods pay
    the precision gate's two decryptions (input reference + output
    check).  ``recrypt`` additionally re-encodes at the top of the chain —
    priced at the ``encrypt`` rate, which the canonical-embedding encode
    dominates (the encode is not an evaluator op, so a
    ``CountingEvaluator`` around a recrypt sees the two decrypts only).
    ``evalmod`` counts the real pipeline op-exactly — ModRaise's modulus
    switch, the CoeffToSlot BSGS matvec (plus its extra headroom rescale,
    one conjugation and the half-separation add/sub), EvalMod on *both*
    coefficient halves (replayed through the actual Paterson–Stockmeyer
    executor on a :class:`_ShadowEvaluator`), and the SlotToCoeff matvec
    — ``tests/ckks/test_bootstrap.py`` pins it against measured counts.
    """
    if plan.method == "recrypt":
        return {"decrypt": 2, "encrypt": 1}
    from repro.ckks.bootstrap import canonical_scale, eval_mod

    counts: dict = {"decrypt": 2, "mod_switch_to": 1}

    def book(extra: dict, times: int = 1) -> None:
        for op, n in extra.items():
            counts[op] = counts.get(op, 0) + n * times

    def matvec(mv_plan) -> dict:
        mv = matvec_op_counts(mv_plan)
        # both refresh matrices are dense: every one of the ring's slot
        # diagonals carries a plaintext multiply, and their products
        # fold with diagonals-1 ciphertext adds
        return {
            "rotate": mv["rotate"],
            "rotate_hoisted": mv["rotate_hoisted"],
            "hoist_decompose": mv["hoist_decompose"],
            "mul_plain": plan.ctx.slots,
            "add": plan.ctx.slots - 1,
            "rescale": mv["rescale"],
        }

    book(matvec(plan.cts_plan))
    book({"rescale": 1, "conjugate": 1, "add": 1, "sub": 1})  # headroom + halves
    # EvalMod enters two levels below the top of the chain (the CtS
    # matvec's rescale plus the headroom rescale), on the canonical scale
    shadow = _ShadowEvaluator(plan.ctx)
    entry = plan.ctx.max_level - 2
    eval_mod(
        shadow,
        _ShadowCiphertext(entry, canonical_scale(plan.ctx, entry)),
        plan,
    )
    book(shadow.counts, times=2)              # both coefficient halves
    book({"add": 1})                          # recombine the halves
    book(matvec(plan.stc_plan))
    return counts


def analytic_refresh_cost(plan, micros: dict) -> float:
    """Estimated refresh seconds from op counts × per-op times.

    This is the latency side of :class:`repro.fhe.ir.RefreshNode`'s cost
    model: its ``level_cost()`` is zero (a refresh *restores* levels; the
    pipeline depth is charged to the segment budget instead) and this
    function prices its wall-clock — what the greedy placement in
    ``compile_network`` weighs against running a shallower PAF.
    """
    return cost_from_counts(refresh_op_counts(plan), micros)
