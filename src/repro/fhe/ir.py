"""Typed graph IR for encrypted-network compilation.

Every compiled network — MLP, CNN, ResNet, transformer block — is a
linear sequence of **typed nodes**, each carrying its payload (weights,
polynomial plans, rotation shifts), its layout metadata (the
:class:`~repro.fhe.packing.GridLayout` view of the activations it
consumes/produces where one exists), its **level consumption** on the
canonical CKKS scale schedule (:meth:`IRNode.level_cost`) and an
optional **domain interval** (propagated by
:func:`propagate_intervals`, consumed by the polynomial-approximation
planners).  The model-family compilers (``compile_mlp`` in
:mod:`repro.fhe.network`, ``compile_cnn`` / ``compile_resnet`` in
:mod:`repro.fhe.cnn`, the transformer lowering here) all lower INTO
this IR; :func:`compile_network` is the single entrypoint that
dispatches on the model's module tree; and
:class:`~repro.fhe.network.EncryptedNetwork` executes the node list by
*type* dispatch — one handler per node class — instead of string
``kind`` comparisons.

Node taxonomy (see ``docs/graph-ir.md``):

========================  ======  ======================================
node                      levels  executes as
========================  ======  ======================================
:class:`MatvecNode`       1       Halevi-Shoup matvec (BSGS or naive per
                                  its :class:`~repro.fhe.linear.MatvecPlan`);
                                  carries a ``K_out x K_in`` block grid
                                  instead of a single weight when sharded
:class:`ConvNode`         1       a :class:`MatvecNode` whose matrix was
                                  lowered from a Conv2d at compile time —
                                  same executor, extra conv provenance
                                  and grid-layout metadata
:class:`PoolNode`         1       rotate-and-sum average pool + masked
                                  ``1/window`` multiply
:class:`PafNode`          d+1     composite sign-PAF ReLU via its
                                  :class:`~repro.ckks.poly_plan.ReluPlan`
:class:`PolyNode`         dep(p)  dense (non-odd) polynomial via its
                                  :class:`~repro.ckks.poly_plan.DensePolyPlan`
                                  — the GELU / exp tier
:class:`AffineNode`       1       slot-wise plaintext scale-and-shift
                                  (unfolded BatchNorm)
:class:`ResidualTapNode`  0       pushes the live shard list on the
                                  branch stack
:class:`MergeNode`        0       pops the matching tap, optional
                                  projection, exact align + add
:class:`ReduceNode`       0       cross-shard sum (sequence pooling);
                                  any scalar is folded into the next
                                  matvec, so only ct-ct adds execute
:class:`AttentionNode`    17+     one self-attention block: per-shard
                                  Q/K/V projections, ct-ct score
                                  products with rotate-and-sum reduce,
                                  mean-stabilised PS-evaluated softmax
                                  (exp poly, range-reduction squarings,
                                  Newton reciprocal), probability-
                                  weighted value mixing and the output
                                  projection
:class:`RefreshNode`      0*      exactness-gated level refresh
                                  (:func:`repro.ckks.bootstrap.refresh`)
                                  — *raises* the chain level back to the
                                  top minus its ``pipeline_levels``
                                  instead of consuming any, resetting
                                  the depth budget for the nodes after
                                  it (see ``docs/bootstrapping.md``)
========================  ======  ======================================

The **level/scale metadata contract**: a node's :meth:`~IRNode.level_cost`
is the number of chain levels it consumes on the *main* branch, and
every execution path through a node must consume exactly that many
rescales — the static schedule (`EncryptedNetwork.layer_input_levels`,
the serve artifact's pre-encoding coordinates, and the slack gate) is
derived from these numbers without running a forward pass.  Skip
branches ride the main branch's level gap via exact ``align_to``
corrections and consume zero.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace as dc_replace

import numpy as np

from repro.paf.polynomial import CompositePAF, Polynomial
from repro.paf.relu import relu_mult_depth

__all__ = [
    "IRNode",
    "MatvecNode",
    "ConvNode",
    "PoolNode",
    "PafNode",
    "PolyNode",
    "AffineNode",
    "ResidualTapNode",
    "MergeNode",
    "ReduceNode",
    "AttentionNode",
    "RefreshNode",
    "Graph",
    "CompilePolicy",
    "apply_refresh_policy",
    "compile_network",
    "propagate_intervals",
]


@dataclass
class IRNode:
    """Base class for graph-IR nodes.

    Subclasses declare their own payload fields; the class-level
    fallbacks below exist so cross-cutting readers (the serve
    artifact's fingerprint, generic introspection) can ``getattr`` any
    payload off any node without per-type special cases.
    """

    #: span / schedule label (stable across the IR redesign: trace span
    #: names and slack-baseline keys are ``layer{i:02d}:{kind}``)
    kind = "node"
    # class-level payload fallbacks (subclasses override as fields)
    weight = None
    bias = None
    blocks = None
    bias_shards = None
    paf = None
    scale = 1.0
    shifts: tuple = ()
    pool_scale = 1.0
    affine_scale = None
    affine_shift = None
    tap = None
    #: optional domain interval ``(lo, hi)`` of this node's *output*
    #: values, set by :func:`propagate_intervals` or the compiler
    interval = None
    #: optional layout metadata (e.g. a GridLayout) of the output
    layout = None

    def level_cost(self) -> int:
        """Chain levels this node consumes on the main branch."""
        return 1


@dataclass
class MatvecNode(IRNode):
    """A Halevi-Shoup matvec: single square ``weight`` or, when sharded,
    a ``K_out x K_in`` grid of slot-space ``blocks`` (``None`` marks an
    all-zero block) with per-output-shard ``bias_shards``."""

    kind = "linear"
    source = "linear"
    weight: np.ndarray | None = None
    bias: np.ndarray | None = None
    blocks: list | None = None
    bias_shards: list | None = None
    interval: tuple | None = None
    layout: object | None = None


@dataclass
class ConvNode(MatvecNode):
    """A conv lowered to a matvec at compile time (im2col into slot
    space); keeps the conv provenance and the activation grids so layout
    and interval propagation can see through the lowering.  Executes
    exactly as :class:`MatvecNode` — ``kind`` stays ``"linear"`` so span
    names, the slack baseline and op-count gates are unchanged."""

    source = "conv"
    in_channels: int = 0
    out_channels: int = 0
    kernel_size: int = 0
    stride: int = 1
    padding: int = 0


@dataclass
class PoolNode(IRNode):
    """Average pool: per-stage nonzero rotation steps ``shifts``
    (column shifts, then row shifts) and the ``1/window`` scalar."""

    kind = "pool"
    shifts: tuple = ()
    pool_scale: float = 1.0
    interval: tuple | None = None
    layout: object | None = None


@dataclass
class PafNode(IRNode):
    """A composite sign-PAF ReLU activation with its static scale."""

    kind = "paf"
    paf: CompositePAF | None = None
    scale: float = 1.0
    interval: tuple | None = None

    def level_cost(self) -> int:
        return relu_mult_depth(self.paf)


@dataclass
class PolyNode(IRNode):
    """A dense (non-odd) polynomial activation — the exp/GELU tier.

    ``poly`` is a :class:`repro.paf.polynomial.Polynomial` whose
    ``interval`` declares the domain it approximates over; the compiler
    checks the propagated input interval against it.
    """

    kind = "poly"
    poly: Polynomial | None = None
    interval: tuple | None = None

    def level_cost(self) -> int:
        from repro.paf.polynomial import mult_depth_of_degree

        return mult_depth_of_degree(self.poly.degree)


@dataclass
class AffineNode(IRNode):
    """Slot-wise plaintext scale-and-shift (an unfolded BatchNorm)."""

    kind = "affine"
    affine_scale: np.ndarray | None = None
    affine_shift: np.ndarray | None = None
    interval: tuple | None = None


@dataclass
class ResidualTapNode(IRNode):
    """Pushes the live shard list onto the branch stack (free)."""

    kind = "residual"

    def level_cost(self) -> int:
        return 0


@dataclass
class MergeNode(IRNode):
    """Pops the matching tap, optionally projects the skip branch
    (1x1-conv block grid), aligns it exactly to the main branch's
    (level, scale) and adds shard-by-shard.  ``tap`` is the node index
    of the matching :class:`ResidualTapNode`."""

    kind = "merge"
    tap: int | None = None
    blocks: list | None = None
    bias_shards: list | None = None

    def level_cost(self) -> int:
        return 0


@dataclass
class ReduceNode(IRNode):
    """Cross-shard reduction (sequence pooling for the transformer
    head): sums the live shards into one.  Any scalar factor (e.g. the
    ``1/T`` of a mean) must be folded into the adjacent matvec by the
    compiler, so execution is pure ct-ct adds and consumes no level."""

    kind = "reduce"
    mode: str = "shard_sum"

    def level_cost(self) -> int:
        return 0


@dataclass
class AttentionNode(IRNode):
    """One encrypted self-attention block over token shards.

    Input: ``seq`` token shards, each a replicated-packed vector of
    ``dim`` model features.  Executes per-shard Q/K/V matvecs (weights
    below, zero-padded square), all-pairs score products with
    rotate-and-sum dot-product reduction (``1/sqrt(dim)`` folded into
    the score placement masks), the mean-stabilised softmax PAF
    (``exp_poly`` evaluated by its Paterson-Stockmeyer plan, then
    ``exp_squarings`` range-reduction squarings, then the affine-seeded
    Newton reciprocal ``recip_init`` / ``recip_iters``), and the
    probability-weighted value mixing plus output projection.
    """

    kind = "attention"
    seq: int = 0
    dim: int = 0
    #: scalar folded into the score placement masks (``1/dim`` for the
    #: muP-scaled toy model; ``1/sqrt(dim)`` for classic attention)
    score_scale: float = 0.0
    wq: np.ndarray | None = None
    wk: np.ndarray | None = None
    wv: np.ndarray | None = None
    wo: np.ndarray | None = None
    bq: np.ndarray | None = None
    bk: np.ndarray | None = None
    bv: np.ndarray | None = None
    bo: np.ndarray | None = None
    #: dense polynomial approximating exp(z / 2**exp_squarings) on the
    #: stabilised score interval
    exp_poly: Polynomial | None = None
    exp_squarings: int = 2
    #: affine Newton seed ``y0 = a + b * S`` for 1/S over the calibrated
    #: sum interval
    recip_init: tuple = (0.0, 0.0)
    recip_iters: int = 2
    interval: tuple | None = None

    def level_cost(self) -> int:
        """Exact level consumption of the attention dance.

        qkv(1) + score mul(1) + score mask(1) + mean mask(1) +
        exp poly + squarings + exp window mask(1) +
        recip: affine seed(1) + 2 per Newton iteration +
        probs mul(1) + extract mask(1) + value mul(1) + Wo matvec(1).
        """
        from repro.paf.polynomial import mult_depth_of_degree

        return (
            9
            + mult_depth_of_degree(self.exp_poly.degree)
            + self.exp_squarings
            + 2 * self.recip_iters
        )


@dataclass
class RefreshNode(IRNode):
    """An exactness-gated level refresh (simplified CKKS bootstrapping).

    Executes :func:`repro.ckks.bootstrap.refresh` under the plan the
    network compiles for it: the ciphertext re-enters the schedule at
    ``max_level - pipeline_levels`` regardless of how far it had
    descended, and the decrypted values are gated to stay within
    ``rtol`` of the pre-refresh values
    (:class:`~repro.ckks.bootstrap.RefreshPrecisionError` on breach).

    ``level_cost()`` is 0 on the *declared-consumption* axis the other
    nodes use — a refresh never descends below where it starts — but
    :meth:`Graph.validate` treats it as a schedule *reset*: the depth
    requirement of a graph with refreshes is the maximum over the
    segments between them, each post-refresh segment charged the
    refresh's own ``pipeline_levels`` (0 for ``recrypt``, the full
    CtS → EvalMod → StC pipeline for ``evalmod``).
    """

    kind = "refresh"
    #: ``"recrypt"`` (decrypt/re-encrypt simulation, exact byte-identical
    #: across backends) or ``"evalmod"`` (homomorphic CtS/EvalMod/StC)
    method: str = "recrypt"
    #: levels the refresh pipeline itself consumes below the top
    pipeline_levels: int = 0
    #: precision gate on the decrypted values (None = method default)
    rtol: float | None = None

    def level_cost(self) -> int:
        return 0


@dataclass
class Graph:
    """A validated node sequence plus its packing geometry.

    ``size`` is the square slot span every matvec was padded to;
    ``input_shards`` / ``input_splits`` describe the multi-ciphertext
    input packing (1 / ``None`` for single-ciphertext networks).
    """

    nodes: list
    size: int
    input_shards: int = 1
    input_splits: list | None = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self):
        self.validate()

    @property
    def sharded(self) -> bool:
        """True when execution must go through ``forward_shards``."""
        return self.input_shards > 1 or any(
            isinstance(n, (ResidualTapNode, MergeNode, ReduceNode, AttentionNode))
            or getattr(n, "blocks", None) is not None
            for n in self.nodes
        )

    def total_depth(self) -> int:
        """Total main-chain level consumption (validates structure)."""
        return self.validate()

    def validate(self) -> int:
        """Validate residual structure; return the required chain depth.

        Taps and merges must pair up like brackets, and a merge whose
        skip branch carries a projection needs a main-branch gap of at
        least one level (the projection's own rescale descends through
        it; the alignment correction needs no level of its own).

        A :class:`RefreshNode` resets the descent: the returned depth is
        the maximum over the segments between refreshes, each
        post-refresh segment charged the refresh's ``pipeline_levels``
        up front (the refreshed ciphertext re-enters at ``max_level -
        pipeline_levels``).  A refresh inside an open residual bracket
        is rejected — the saved tap branch would sit *below* the
        refreshed main branch and the merge's exact alignment could
        never recover the gap.
        """
        level = 0
        peak = 0
        offset = 0  # pipeline levels charged at the current segment's start
        stack: list = []
        for i, node in enumerate(self.nodes):
            if isinstance(node, ResidualTapNode):
                stack.append(level)
            elif isinstance(node, MergeNode):
                if not stack:
                    raise ValueError(f"merge node {i} has no open residual tap")
                gap = level - stack.pop()
                if node.tap is None:
                    raise ValueError(f"merge node {i} has no matching residual tap")
                if node.blocks is not None and gap < 1:
                    raise ValueError(
                        f"merge node {i}: projection skip needs a main-branch "
                        f"depth of >= 1 level, got {gap}"
                    )
            elif isinstance(node, RefreshNode):
                if stack:
                    raise ValueError(
                        f"refresh node {i} inside an open residual tap — "
                        "refreshes are only legal between bracket pairs"
                    )
                peak = max(peak, offset + level)
                level = 0
                offset = node.pipeline_levels
            else:
                level += node.level_cost()
        if stack:
            raise ValueError(f"{len(stack)} residual tap(s) never merged")
        return max(peak, offset + level)

    def input_levels(self, max_level: int) -> dict:
        """Chain level at which the ciphertext enters each node.

        A refresh re-enters the schedule at ``max_level -
        pipeline_levels``; every other node descends by its
        ``level_cost``.
        """
        level = max_level
        levels = {}
        for i, node in enumerate(self.nodes):
            levels[i] = level
            if isinstance(node, RefreshNode):
                level = max_level - node.pipeline_levels
            else:
                level -= node.level_cost()
        return levels


# ----------------------------------------------------------------------
# domain-interval propagation
# ----------------------------------------------------------------------
def _matvec_interval(weight: np.ndarray, bias, interval: tuple) -> tuple:
    """Output bound of ``Wx + b`` for ``x`` slot-wise in ``interval``."""
    lo, hi = interval
    pos = np.clip(weight, 0.0, None)
    neg = np.clip(weight, None, 0.0)
    out_hi = pos.sum(axis=1) * hi + neg.sum(axis=1) * lo
    out_lo = pos.sum(axis=1) * lo + neg.sum(axis=1) * hi
    if bias is not None:
        b = np.zeros(weight.shape[0])
        b[: len(bias)] = bias
        out_hi = out_hi + b
        out_lo = out_lo + b
    return float(out_lo.min()), float(out_hi.max())


def _poly_interval(poly, interval: tuple, n: int = 2001) -> tuple:
    grid = np.linspace(interval[0], interval[1], n)
    vals = poly(grid)
    return float(vals.min()), float(vals.max())


def propagate_intervals(graph: Graph, input_interval: tuple) -> list:
    """Propagate slot-value domain intervals through the node sequence.

    Sets each node's ``interval`` to a conservative bound of its
    *output* values given ``input_interval`` on the network input, and
    returns the list of per-node intervals.  This is what lets the
    polynomial planners check their declared approximation domains
    against the data a layer can actually see.  Sharded matvec grids
    are bounded block-row-wise; attention outputs are bounded by the
    value interval (probabilities are near-convex weights, padded by
    the reciprocal's calibration slack recorded on the node).
    """
    cur = (float(input_interval[0]), float(input_interval[1]))
    out: list = []
    stack: list = []
    for node in graph.nodes:
        if isinstance(node, ResidualTapNode):
            stack.append(cur)
        elif isinstance(node, MergeNode):
            skip = stack.pop()
            if node.blocks is not None:
                lo, hi = 0.0, 0.0
                for row in node.blocks:
                    row_lo, row_hi = 0.0, 0.0
                    for mat in row:
                        if mat is None:
                            continue
                        b_lo, b_hi = _matvec_interval(mat, None, skip)
                        row_lo += b_lo
                        row_hi += b_hi
                    lo = min(lo, row_lo)
                    hi = max(hi, row_hi)
                skip = (lo, hi)
            cur = (cur[0] + min(skip[0], 0.0), cur[1] + max(skip[1], 0.0))
        elif isinstance(node, AttentionNode):
            # probabilities are an (approximately) convex combination of
            # the per-token values; bound by the projected value range
            v_int = _matvec_interval(node.wv, node.bv, cur)
            cur = _matvec_interval(node.wo, node.bo, v_int)
        elif isinstance(node, MatvecNode):
            if node.blocks is not None:
                lo, hi = 0.0, 0.0
                for row in node.blocks:
                    row_lo, row_hi = 0.0, 0.0
                    for mat in row:
                        if mat is None:
                            continue
                        b_lo, b_hi = _matvec_interval(mat, None, cur)
                        row_lo += b_lo
                        row_hi += b_hi
                    lo = min(lo, row_lo)
                    hi = max(hi, row_hi)
                biases = [
                    b for b in (node.bias_shards or []) if b is not None
                ]
                if biases:
                    b_lo = min(float(np.min(b)) for b in biases)
                    b_hi = max(float(np.max(b)) for b in biases)
                    lo, hi = lo + min(b_lo, 0.0), hi + max(b_hi, 0.0)
                cur = (lo, hi)
            else:
                cur = _matvec_interval(node.weight, node.bias, cur)
        elif isinstance(node, PafNode):
            # a calibrated sign-PAF ReLU maps into ~[min(lo,0), hi]
            cur = (min(cur[0], 0.0), max(cur[1], 0.0))
        elif isinstance(node, PolyNode):
            cur = _poly_interval(node.poly, cur)
        elif isinstance(node, PoolNode):
            pass  # an average stays inside the input interval
        elif isinstance(node, AffineNode):
            s, t = node.affine_scale, node.affine_shift
            cands = np.concatenate(
                [np.asarray(s) * cur[0] + t, np.asarray(s) * cur[1] + t]
            )
            cur = (float(cands.min()), float(cands.max()))
        elif isinstance(node, ReduceNode):
            # shard sum of K in-interval vectors; the compiler folds the
            # 1/K of a mean into the next matvec, so scale by shard count
            cur = (
                min(cur[0] * graph.input_shards, 0.0),
                max(cur[1] * graph.input_shards, 0.0),
            )
        node.interval = cur
        out.append(cur)
    return out


# ----------------------------------------------------------------------
# compile policy + refresh placement
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CompilePolicy:
    """Everything a compile decides beyond the model and the CKKS params.

    The single policy object accepted by :func:`compile_network` and
    :meth:`repro.serve.artifact.ModelArtifact.compile` — it replaces the
    former pile of loose keyword arguments (``input_shape`` /
    ``num_shards`` / ``seed`` / ``reference_keys`` / ``fold_bn``), and
    adds the refresh policy that decides how a model deeper than the
    prime chain still compiles (``docs/bootstrapping.md``):

    * ``refresh="auto"`` (default) — if the graph's required depth
      exceeds the schedule, search insertion points greedily by level
      slack (latest bracket-depth-0 boundary before each underflow) and
      insert :class:`RefreshNode`\\ s there; a model that fits compiles
      exactly as before, with no refresh.
    * ``refresh="never"`` — never insert; a too-deep model fails to
      compile (the pre-refresh behaviour).
    * ``refresh=(i, j, ...)`` — explicit insertion points: refresh
      *before* the node at each listed index of the lowered graph.

    ``rtol=None`` leaves the precision gate at the refresh method's
    default (1e-3 for ``recrypt``, 5e-2 for ``evalmod``); ``backend``
    overrides the kernel backend the params name.
    """

    refresh: str | tuple = "auto"
    refresh_method: str = "recrypt"
    rtol: float | None = None
    backend: str | None = None
    input_shape: tuple | None = None
    num_shards: int | None = None
    seed: int = 0
    reference_keys: bool = False
    fold_bn: bool = True

    def __post_init__(self):
        if isinstance(self.refresh, list):
            object.__setattr__(self, "refresh", tuple(self.refresh))
        if isinstance(self.refresh, str):
            if self.refresh not in ("auto", "never"):
                raise ValueError(
                    f'refresh must be "auto", "never" or explicit positions, '
                    f"got {self.refresh!r}"
                )
        elif not (
            isinstance(self.refresh, tuple)
            and all(isinstance(p, int) and p >= 0 for p in self.refresh)
        ):
            raise ValueError(
                f"explicit refresh positions must be non-negative node "
                f"indices, got {self.refresh!r}"
            )
        if self.refresh_method not in ("recrypt", "evalmod"):
            raise ValueError(
                f'refresh_method must be "recrypt" or "evalmod", '
                f"got {self.refresh_method!r}"
            )


def _auto_refresh_positions(nodes, max_level: int, pipeline_levels: int) -> list:
    """Greedy insertion search: positions (pre-insertion indices) where a
    refresh must run so the descent never underflows the chain.

    Simulates the level descent from ``max_level``; on underflow,
    inserts at the *last* bracket-depth-0 boundary seen (greedy by level
    slack — refreshing as late as possible minimises the refresh count,
    since every refresh buys the full ``max_level - pipeline_levels``
    budget for the nodes after it) and replays.  Raises when a single
    bracket-enclosed segment is deeper than the refreshed budget itself.
    """
    refreshed = max_level - pipeline_levels
    if refreshed <= 0:
        raise ValueError(
            f"refresh pipeline consumes {pipeline_levels} levels — the whole "
            f"depth-{max_level} schedule; deepen the chain"
        )
    positions: list = []
    while True:
        level = max_level
        bracket = 0
        boundary = None
        underflow = None
        for i, node in enumerate(nodes):
            if i in positions:
                level = refreshed
            if bracket == 0 and level < refreshed and i not in positions:
                boundary = i
            if isinstance(node, ResidualTapNode):
                bracket += 1
            elif isinstance(node, MergeNode):
                bracket -= 1
            level -= node.level_cost()
            if level < 0:
                underflow = i
                break
        if underflow is None:
            return positions
        if boundary is None:
            raise ValueError(
                f"node {underflow} underflows the chain and no refresh "
                f"boundary precedes it: one segment needs more than the "
                f"refreshed budget of {refreshed} levels"
            )
        positions.append(boundary)


def apply_refresh_policy(
    graph: Graph,
    max_level: int,
    policy: CompilePolicy,
    *,
    pipeline_levels: int = 0,
    rtol: float | None = None,
) -> tuple:
    """Insert :class:`RefreshNode`\\ s into ``graph`` per ``policy``.

    ``pipeline_levels`` / ``rtol`` come from the compiled
    :class:`~repro.ckks.bootstrap.RefreshPlan` (the caller plans once
    per network).  Returns the inserted node indices (post-insertion);
    merge ``tap`` indices at or after each insertion point shift by one,
    and the placement is recorded in ``graph.metadata["refresh"]``.
    """
    if policy.refresh == "never":
        return ()
    if policy.refresh == "auto":
        positions = _auto_refresh_positions(graph.nodes, max_level, pipeline_levels)
    else:
        positions = sorted(set(policy.refresh))
        if any(p >= len(graph.nodes) for p in positions):
            raise ValueError(
                f"explicit refresh positions {positions} exceed the graph's "
                f"{len(graph.nodes)} nodes"
            )
    if not positions:
        return ()
    positions = sorted(positions)
    for node in graph.nodes:
        if isinstance(node, MergeNode) and node.tap is not None:
            node.tap += sum(1 for p in positions if p <= node.tap)
    inserted = []
    for n_before, p in enumerate(positions):
        idx = p + n_before
        graph.nodes.insert(
            idx,
            RefreshNode(
                method=policy.refresh_method,
                pipeline_levels=pipeline_levels,
                rtol=rtol,
            ),
        )
        inserted.append(idx)
    graph.metadata["refresh"] = {
        "method": policy.refresh_method,
        "positions": list(inserted),
        "pipeline_levels": pipeline_levels,
    }
    graph.validate()  # bracket structure + segment depths still coherent
    return tuple(inserted)


# ----------------------------------------------------------------------
# the single compile entrypoint
# ----------------------------------------------------------------------
_UNSET = object()


def compile_network(
    model,
    params,
    *,
    policy: CompilePolicy | None = None,
    input_shape=_UNSET,
    num_shards=_UNSET,
    seed=_UNSET,
    reference_keys=_UNSET,
    fold_bn=_UNSET,
):
    """Compile any supported ``repro.nn`` model for encrypted inference.

    The single entrypoint of the FHE compilation pipeline: inspects the
    model's module tree and lowers it into the graph IR —

    * Linear / PAF stacks -> the MLP lowering (``compile_mlp``);
    * Conv2d stacks -> the CNN lowering (needs ``input_shape``);
    * module trees containing residual ``BasicBlock``s -> the sharded
      ResNet lowering (needs ``input_shape``; ``num_shards`` defaults
      to 1);
    * transformer models (``is_transformer`` marker — one or more
      attention + MLP blocks) -> the token-sharded transformer lowering.

    Everything beyond the model and params rides in ``policy``
    (:class:`CompilePolicy`) — packing geometry, seeds, reference keys,
    BatchNorm folding, and the refresh policy that lets a model deeper
    than the prime chain compile by inserting
    :class:`RefreshNode`\\ s.  The loose keyword spellings
    (``input_shape=``, ``num_shards=``, ``seed=``, ``reference_keys=``,
    ``fold_bn=``) are deprecated shims for one release — they fold into
    a policy and warn.

    Returns the compiled :class:`~repro.fhe.network.EncryptedNetwork`.
    """
    legacy = {
        name: value
        for name, value in (
            ("input_shape", input_shape),
            ("num_shards", num_shards),
            ("seed", seed),
            ("reference_keys", reference_keys),
            ("fold_bn", fold_bn),
        )
        if value is not _UNSET
    }
    if legacy:
        names = ", ".join(f"{k}=" for k in legacy)
        warnings.warn(
            f"compile_network({names}) is deprecated; pass "
            f"policy=CompilePolicy({names}...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if policy is not None:
            raise ValueError(
                "pass either policy= or the deprecated loose kwargs, not both"
            )
        policy = CompilePolicy(**legacy)
    if policy is None:
        policy = CompilePolicy()
    if policy.backend is not None and policy.backend != params.backend:
        params = dc_replace(params, backend=policy.backend)

    from repro.nn.layers import Conv2d

    if getattr(model, "is_transformer", False):
        from repro.fhe.transformer import compile_transformer

        return compile_transformer(model, params, policy=policy)
    has_conv = any(isinstance(m, Conv2d) for _, m in model.named_modules())
    if not has_conv:
        from repro.fhe.network import compile_mlp

        return compile_mlp(model, params, policy=policy)
    if policy.input_shape is None:
        raise ValueError("convolutional models need input_shape=(C, H, W)")
    from repro.nn.models.resnet import BasicBlock

    has_residual = any(isinstance(m, BasicBlock) for _, m in model.named_modules())
    if has_residual:
        from repro.fhe.cnn import compile_resnet

        return compile_resnet(
            model,
            policy.input_shape,
            params,
            num_shards=policy.num_shards or 1,
            policy=policy,
        )
    if policy.num_shards not in (None, 1):
        raise ValueError("plain CNNs compile single-ciphertext (num_shards=1)")
    from repro.fhe.cnn import compile_cnn

    return compile_cnn(
        model,
        policy.input_shape,
        params,
        fold_bn=policy.fold_bn,
        policy=policy,
    )
