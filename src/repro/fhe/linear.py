"""Encrypted linear algebra: Halevi-Shoup diagonal matrix-vector product.

``y = W x`` for a plaintext matrix ``W`` and an encrypted, slot-packed
``x`` is computed as ``Σ_d diag_d(W) ⊙ rot(x, d)`` over the generalised
diagonals — the standard CKKS technique the FHE-inference literature
builds on.  One plaintext multiply per nonzero diagonal, one rotation per
diagonal beyond the first; a single rescale at the end.
"""

from __future__ import annotations

import numpy as np

from repro.ckks.evaluator import Ciphertext, CkksEvaluator

__all__ = ["encrypted_matvec", "diagonals_of", "required_rotation_steps"]


def diagonals_of(w: np.ndarray, slots: int) -> dict:
    """Generalised diagonals of ``W`` padded into the slot vector space.

    ``diag_d[i] = W[i, (i + d) % in_dim]`` for output row ``i``; entries
    beyond the matrix shape are zero.
    """
    out_dim, in_dim = w.shape
    size = max(out_dim, in_dim)
    if size > slots:
        raise ValueError(f"matrix dim {size} exceeds slot count {slots}")
    diags = {}
    for d in range(size):
        vec = np.zeros(slots)
        rows = np.arange(out_dim)
        cols = (rows + d) % size
        valid = cols < in_dim
        vec[rows[valid]] = w[rows[valid], cols[valid]]
        if np.any(vec):
            diags[d] = vec
    return diags


def required_rotation_steps(w: np.ndarray, slots: int) -> list:
    """Rotation steps keygen must provide for :func:`encrypted_matvec`."""
    return [d for d in diagonals_of(w, slots) if d != 0]


def encrypted_matvec(
    ev: CkksEvaluator,
    ct_x: Ciphertext,
    w: np.ndarray,
    bias: np.ndarray | None = None,
) -> Ciphertext:
    """``W x + b`` on an encrypted slot-packed vector.

    The input vector must be replicated-padded to ``max(out, in)`` length:
    slots beyond ``in_dim`` must hold a copy of the wrapped-around entries
    for the cyclic diagonals to line up.  For the square / zero-padded
    layouts produced by :mod:`repro.fhe.network` this holds by packing
    ``x`` into the first ``size`` slots with wraparound replication.
    """
    diags = diagonals_of(w, ct_x.c0.ctx.slots)
    acc = None
    for d, vec in diags.items():
        rotated = ev.rotate(ct_x, d) if d else ct_x
        term = ev.mul_plain(rotated, vec)
        acc = term if acc is None else ev.add(acc, term)
    if acc is None:
        raise ValueError("matrix has no nonzero diagonals")
    acc = ev.rescale(acc)
    if bias is not None:
        pad = np.zeros(ct_x.c0.ctx.slots)
        pad[: len(bias)] = bias
        acc = ev.add_plain(acc, pad)
    return acc
