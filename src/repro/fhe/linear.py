"""Encrypted linear algebra: Halevi-Shoup diagonal matvec, naive and BSGS.

``y = W x`` for a plaintext matrix ``W`` and an encrypted, slot-packed
``x`` is computed as ``Σ_d diag_d(W) ⊙ rot(x, d)`` over the generalised
diagonals — the standard CKKS technique the FHE-inference literature
builds on.  The *naive* path (:func:`encrypted_matvec`, kept as the
reference implementation) pays one full keyswitch per nonzero diagonal
beyond the first: ``O(D)`` keyswitches dominate every encrypted forward
pass.

Baby-step/giant-step (BSGS) decomposition cuts that to ``O(√D)``.  Factor
every diagonal index ``d = g·n1 + b`` with baby step ``b ∈ [0, n1)`` and
giant step ``g``; since rotation distributes over slot products,

    y = Σ_g rot( Σ_b roll(diag_{g·n1+b}, g·n1) ⊙ rot(x, b),  g·n1 )

where ``roll(·, k)`` pre-rotates the diagonal *right* by ``k`` slots at
plan time (free — it is plaintext).  Only ``n1`` baby rotations of the
input and ``n2 = ⌈D/n1⌉`` giant rotations of accumulated sums remain, and
the baby rotations all act on the *same* ciphertext, so they share one
hoisted keyswitch decomposition (:meth:`CkksEvaluator.rotate_many`).

:func:`plan_matvec` picks ``n1`` by scanning candidates for the minimum
keyswitch count and falls back to the naive path when BSGS would not be
strictly cheaper (degenerate layers with ≤ 3 nonzero diagonals, or
diagonal patterns that do not factor).  The plan also names the exact
rotation-step set keygen must cover — ``n1 - 1`` baby plus ``n2 - 1``
giant steps instead of ``D - 1`` per-diagonal steps, so the Galois key
set shrinks alongside the keyswitch count.

SIMD batching composes transparently: diagonals can be *tiled* across
several disjoint slot blocks (``num_blocks`` copies at stride
``block_stride``), and because both decompositions act on the full slot
vector the BSGS regrouping is exact algebra for any block layout — the
rotation steps are unchanged, and the per-request cost is divided by the
batch size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ckks.evaluator import Ciphertext, CkksEvaluator
from repro.ckks.instrumentation import span as trace_span

__all__ = [
    "encrypted_matvec",
    "encrypted_matvec_bsgs",
    "encrypted_matvec_shards",
    "diagonals_of",
    "required_rotation_steps",
    "MatvecPlan",
    "plan_matvec",
    "bsgs_diagonals",
    "grouped_diagonals",
    "shard_hoist_steps",
]


def diagonals_of(
    w: np.ndarray,
    slots: int,
    *,
    num_blocks: int = 1,
    block_stride: int | None = None,
) -> dict:
    """Generalised diagonals of ``W`` padded into the slot vector space.

    ``diag_d[i] = W[i, (i + d) % in_dim]`` for output row ``i``; entries
    beyond the matrix shape are zero.  With ``num_blocks > 1`` each
    diagonal is replicated at slot offsets ``b * block_stride`` so a
    single plaintext multiply serves every block of a batched ciphertext.
    """
    out_dim, in_dim = w.shape
    size = max(out_dim, in_dim)
    if size > slots:
        raise ValueError(f"matrix dim {size} exceeds slot count {slots}")
    if num_blocks < 1:
        raise ValueError(f"num_blocks must be >= 1, got {num_blocks}")
    stride = size if block_stride is None else block_stride
    if num_blocks > 1 and stride < size:
        raise ValueError(f"block stride {stride} < matrix dim {size}")
    if (num_blocks - 1) * stride + size > slots:
        raise ValueError(
            f"{num_blocks} blocks of stride {stride} exceed slot count {slots}"
        )
    diags = {}
    rows = np.arange(out_dim)
    for d in range(size):
        cols = (rows + d) % size
        valid = cols < in_dim
        base = np.zeros(size)
        base[rows[valid]] = w[rows[valid], cols[valid]]
        if not np.any(base):
            continue
        vec = np.zeros(slots)
        for b in range(num_blocks):
            vec[b * stride : b * stride + size] = base
        diags[d] = vec
    return diags


def required_rotation_steps(w: np.ndarray, slots: int) -> list:
    """Rotation steps keygen must provide for :func:`encrypted_matvec`.

    Tiling diagonals across blocks reuses the same steps, so the key set
    is independent of the batch size.
    """
    return [d for d in diagonals_of(w, slots) if d != 0]


def tile_blocks(
    values: np.ndarray, slots: int, num_blocks: int, block_stride: int
) -> np.ndarray:
    """Replicate a per-block vector at every block offset of a slot vector."""
    values = np.asarray(values, dtype=np.float64).ravel()
    if (num_blocks - 1) * block_stride + len(values) > slots:
        raise ValueError(
            f"{num_blocks} blocks of stride {block_stride} exceed slot count {slots}"
        )
    vec = np.zeros(slots)
    for b in range(num_blocks):
        vec[b * block_stride : b * block_stride + len(values)] = values
    return vec


@dataclass(frozen=True)
class MatvecPlan:
    """How one encrypted matvec will be executed.

    ``use_bsgs`` selects between the BSGS decomposition and the naive
    reference path; the choice is *strictly fewer keyswitches* — ties go
    to naive, so layers with ≤ 3 nonzero diagonals (where no ``n1``
    factoring helps) stay on the reference implementation.
    """

    size: int                      #: square matrix dim (diagonal index space)
    n1: int                        #: baby-step modulus (giant stride)
    baby_steps: tuple              #: sorted residues ``d % n1`` present
    giant_steps: tuple             #: sorted rotation amounts ``(d // n1)·n1`` present
    diag_steps: tuple              #: sorted nonzero diagonal indices (naive rotations)
    num_diagonals: int             #: nonzero diagonal count D (plaintext multiplies)
    use_bsgs: bool

    @property
    def n2(self) -> int:
        """Giant-step count (``n1 · n2`` covers every planned diagonal)."""
        return len(self.giant_steps)

    @property
    def bsgs_keyswitches(self) -> int:
        """Galois applications on the BSGS path (nonzero baby + giant)."""
        return sum(1 for b in self.baby_steps if b) + sum(
            1 for g in self.giant_steps if g
        )

    @property
    def naive_keyswitches(self) -> int:
        """Galois applications on the naive path (one per nonzero diagonal)."""
        return len(self.diag_steps)

    @property
    def keyswitches(self) -> int:
        """Galois applications of the *chosen* path."""
        return self.bsgs_keyswitches if self.use_bsgs else self.naive_keyswitches

    def rotation_steps(self) -> tuple:
        """Rotation steps keygen must provide for the chosen path."""
        if not self.use_bsgs:
            return self.diag_steps
        return tuple(
            sorted({b for b in self.baby_steps if b} | {g for g in self.giant_steps if g})
        )


def plan_matvec(diag_indices, size: int) -> MatvecPlan:
    """Choose the cheapest matvec execution for a set of nonzero diagonals.

    Scans baby-step moduli ``n1`` and counts the Galois applications each
    would need — ``|{d % n1} \\ {0}| + |{(d//n1)·n1} \\ {0}|`` — keeping
    the minimum (ties broken toward larger ``n1``: more baby steps means
    more rotations sharing the one hoisted decomposition).  For dense
    diagonal sets the winner sits near ``√size``, so for large ``size``
    only a window around ``√size`` (plus ``n1 = size``, the all-baby
    degenerate) is scanned.
    """
    ds = np.unique(np.asarray(list(diag_indices), dtype=np.int64))
    if ds.size == 0:
        raise ValueError("matrix has no nonzero diagonals")
    if ds[0] < 0 or ds[-1] >= size:
        raise ValueError(f"diagonal indices must lie in [0, {size}), got {ds}")
    naive_cost = int(np.count_nonzero(ds))

    if size <= 256:
        candidates = range(1, size + 1)
    else:
        root = int(np.sqrt(size))
        candidates = sorted(set(range(max(1, root // 2), 4 * root + 1)) | {1, size})
    best = None
    for n1 in candidates:
        babies = np.unique(ds % n1)
        giants = np.unique(ds - ds % n1)
        cost = int(np.count_nonzero(babies)) + int(np.count_nonzero(giants))
        key = (cost, -n1)
        if best is None or key < best[0]:
            best = (key, n1, babies, giants)
    _, n1, babies, giants = best
    return MatvecPlan(
        size=size,
        n1=n1,
        baby_steps=tuple(int(b) for b in babies),
        giant_steps=tuple(int(g) for g in giants),
        diag_steps=tuple(int(d) for d in ds if d),
        num_diagonals=int(ds.size),
        use_bsgs=best[0][0] < naive_cost,
    )


def bsgs_diagonals(diagonals: dict, plan: MatvecPlan) -> dict:
    """Regroup diagonals into pre-rotated giant-step groups.

    Returns ``{giant_step: {baby_step: vector}}`` where each diagonal
    ``d = g + b`` is rolled *right* by its giant step ``g`` so that the
    post-accumulation giant rotation puts it back in place:
    ``rot(roll(v, g) ⊙ rot(x, b), g) = v ⊙ rot(x, g + b)``.  Rolling is
    over the full slot vector, so block-tiled diagonals regroup exactly.
    """
    groups: dict = {}
    for d, vec in diagonals.items():
        b = d % plan.n1
        g = d - b
        groups.setdefault(g, {})[b] = np.roll(vec, g)
    return groups


def grouped_diagonals(diagonals: dict, plan: MatvecPlan) -> dict:
    """Diagonals in the grouped ``{giant: {baby: vector}}`` form of the
    *chosen* path.

    BSGS plans regroup via :func:`bsgs_diagonals`; naive plans become the
    single giant-step-0 group ``{0: diagonals}`` — every diagonal is its
    own "baby" step, so a grouped executor rotates once per diagonal but
    shares one hoisted decomposition (the multi-ciphertext executor
    :func:`encrypted_matvec_shards` runs every block in this uniform
    form, which is never more keyswitches than the plan predicts).
    """
    if plan.use_bsgs:
        return bsgs_diagonals(diagonals, plan)
    return {0: dict(diagonals)}


def shard_hoist_steps(blocks: list, shard: int) -> list:
    """Baby-rotation steps input shard ``shard`` needs across all blocks.

    ``blocks[j][i]`` is a grouped-diagonal mapping (or ``None`` for an
    all-zero block); the union over output shards is what one
    :meth:`~repro.ckks.evaluator.CkksEvaluator.rotate_many` call hoists.
    """
    steps: set = set()
    for row in blocks:
        groups = row[shard]
        if not groups:
            continue
        for inner in groups.values():
            steps.update(b for b in inner if b)
    return sorted(steps)


def encrypted_matvec_shards(
    ev: CkksEvaluator,
    cts: list,
    blocks: list,
    bias_slots: list | None = None,
    executor=None,
) -> list:
    """Block matvec over channel-sharded ciphertexts.

    ``y_j = Σ_i W_{j,i} x_i`` for ``K_in`` input ciphertexts and a
    ``K_out × K_in`` grid of grouped-diagonal blocks
    (``blocks[j][i] = {giant: {baby: vector | Plaintext}}`` from
    :func:`grouped_diagonals`, or ``None`` where the weight block is all
    zero).  Each input shard's baby rotations are hoisted *once* across
    every output shard that reads it; cross-shard accumulation is plain
    ct-ct addition at matching level and scale, and each output shard
    rescales exactly once (the canonical-scale invariant holds shard by
    shard).  With ``K_in = K_out = 1`` and a BSGS plan this performs the
    identical operation sequence to :func:`encrypted_matvec_bsgs`.

    ``bias_slots[j]`` (raw vector or pre-encoded post-rescale
    :class:`~repro.ckks.encoder.Plaintext`) is added to output shard
    ``j``; ``None`` entries skip the add.

    ``executor`` is an optional
    :class:`~repro.serve.executor.BlockExecutor`: the per-output-shard
    accumulate/rescale chains are independent once the shared hoisted
    rotations exist, so they are handed to ``executor.map_blocks`` as
    zero-arg tasks (serial when ``None``).  Every op is deterministic,
    so executor choice never changes the output ciphertexts.
    """
    if not blocks or any(len(row) != len(cts) for row in blocks):
        raise ValueError(
            f"blocks must be K_out x {len(cts)} to match the input shards"
        )
    with trace_span(
        ev, "matvec:shards", kind="matvec", k_in=len(cts), k_out=len(blocks),
        backend=cts[0].c0.ctx.backend.name,
    ) as sp:
        sp.ct_entry(cts)
        rotated = []
        for i, ct in enumerate(cts):
            steps = shard_hoist_steps(blocks, i)
            rot = ev.rotate_many(ct, steps) if steps else {}
            rot[0] = ct
            rotated.append(rot)
        def block_task(j, row):
            def run():
                acc = None
                for i in range(len(cts)):
                    groups = row[i]
                    if not groups:
                        continue
                    for g in sorted(groups):
                        inner = None
                        for b in sorted(groups[g]):
                            term = ev.mul_plain(rotated[i][b], groups[g][b])
                            inner = term if inner is None else ev.add(inner, term)
                        if g:
                            inner = ev.rotate(inner, g)
                        acc = inner if acc is None else ev.add(acc, inner)
                if acc is None:
                    raise ValueError(f"output shard {j} reads no nonzero block")
                acc = ev.rescale(acc)
                if bias_slots is not None and bias_slots[j] is not None:
                    acc = ev.add_plain(acc, bias_slots[j])
                return acc

            return run

        tasks = [block_task(j, row) for j, row in enumerate(blocks)]
        if executor is None or len(tasks) <= 1:
            outs = [task() for task in tasks]
        else:
            outs = executor.map_blocks(tasks, ctx=cts[0].c0.ctx)
        sp.ct_exit(outs)
    return outs


def encrypted_matvec(
    ev: CkksEvaluator,
    ct_x: Ciphertext,
    w: np.ndarray | None = None,
    bias: np.ndarray | None = None,
    *,
    diagonals: dict | None = None,
    bias_slots=None,
) -> Ciphertext:
    """``W x + b`` on an encrypted slot-packed vector.

    The input vector must be replicated-padded to ``max(out, in)`` length:
    slots beyond ``in_dim`` must hold a copy of the wrapped-around entries
    for the cyclic diagonals to line up.  For the square / zero-padded
    layouts produced by :mod:`repro.fhe.network` this holds by packing
    ``x`` into the first ``size`` slots with wraparound replication (and
    identically inside each block for batched ciphertexts).

    ``diagonals`` short-circuits the per-call :func:`diagonals_of`
    recomputation: a mapping ``d -> slot vector`` *or* ``d -> Plaintext``
    (pre-encoded at the ciphertext's level and scale, e.g. by
    :class:`repro.serve.artifact.ModelArtifact`) — the steady-state
    serving path does zero plaintext encoding here.  ``bias_slots`` is the
    full-slot (optionally block-tiled) bias, again raw or pre-encoded at
    the *post-rescale* level and scale; when omitted, ``bias`` is padded
    into the leading slots as before.
    """
    if diagonals is None:
        if w is None:
            raise ValueError("need either a weight matrix or precomputed diagonals")
        diagonals = diagonals_of(w, ct_x.c0.ctx.slots)
    if not diagonals:
        raise ValueError("matrix has no nonzero diagonals")
    with trace_span(
        ev, "matvec:naive", kind="matvec", diagonals=len(diagonals),
        backend=ct_x.c0.ctx.backend.name,
    ) as sp:
        sp.ct_entry(ct_x)
        acc = None
        for d, vec in diagonals.items():
            rotated = ev.rotate(ct_x, d) if d else ct_x
            term = ev.mul_plain(rotated, vec)
            acc = term if acc is None else ev.add(acc, term)
        acc = ev.rescale(acc)
        acc = _add_bias(ev, acc, ct_x.c0.ctx.slots, bias, bias_slots)
        sp.ct_exit(acc)
    return acc


def _add_bias(ev, acc, slots, bias, bias_slots):
    if bias_slots is None and bias is not None:
        bias_slots = np.zeros(slots)
        bias_slots[: len(bias)] = bias
    if bias_slots is not None:
        acc = ev.add_plain(acc, bias_slots)
    return acc


def encrypted_matvec_bsgs(
    ev: CkksEvaluator,
    ct_x: Ciphertext,
    w: np.ndarray | None = None,
    bias: np.ndarray | None = None,
    *,
    groups: dict | None = None,
    bias_slots=None,
) -> Ciphertext:
    """``W x + b`` via baby-step/giant-step with hoisted baby rotations.

    Same packing contract and result (within noise) as
    :func:`encrypted_matvec`, with ``O(√D)`` keyswitches instead of
    ``O(D)``: the input is rotated once per *baby* step — all sharing one
    hoisted decomposition via :meth:`CkksEvaluator.rotate_many` — inner
    sums are formed with plaintext multiplies against the pre-rotated
    diagonals, and only the per-*giant*-step accumulated sums are rotated
    individually.  One rescale at the end, exactly like the naive path.

    ``groups`` short-circuits planning and regrouping: a mapping
    ``giant_step -> {baby_step -> slot vector | Plaintext}`` as produced
    by :func:`bsgs_diagonals` (raw) or
    :meth:`repro.serve.artifact.ModelArtifact.encoded_linear`
    (pre-encoded — the steady-state serving path does zero plaintext
    encoding here).
    """
    if groups is None:
        if w is None:
            raise ValueError("need either a weight matrix or precomputed groups")
        diagonals = diagonals_of(w, ct_x.c0.ctx.slots)
        if not diagonals:
            raise ValueError("matrix has no nonzero diagonals")
        plan = plan_matvec(diagonals.keys(), max(w.shape))
        groups = bsgs_diagonals(diagonals, plan)
    if not groups:
        raise ValueError("matrix has no nonzero diagonals")
    baby_steps = sorted({b for inner in groups.values() for b in inner if b})
    with trace_span(
        ev, "matvec:bsgs", kind="matvec",
        babies=len(baby_steps), giants=len(groups),
        backend=ct_x.c0.ctx.backend.name,
    ) as sp:
        sp.ct_entry(ct_x)
        rotated = ev.rotate_many(ct_x, baby_steps)
        rotated[0] = ct_x  # baby step 0 needs no rotation (and no defensive copy)
        acc = None
        for g in sorted(groups):
            inner = None
            for b in sorted(groups[g]):
                term = ev.mul_plain(rotated[b], groups[g][b])
                inner = term if inner is None else ev.add(inner, term)
            if g:
                inner = ev.rotate(inner, g)
            acc = inner if acc is None else ev.add(acc, inner)
        acc = ev.rescale(acc)
        acc = _add_bias(ev, acc, ct_x.c0.ctx.slots, bias, bias_slots)
        sp.ct_exit(acc)
    return acc
