"""Encrypted linear algebra: Halevi-Shoup diagonal matrix-vector product.

``y = W x`` for a plaintext matrix ``W`` and an encrypted, slot-packed
``x`` is computed as ``Σ_d diag_d(W) ⊙ rot(x, d)`` over the generalised
diagonals — the standard CKKS technique the FHE-inference literature
builds on.  One plaintext multiply per nonzero diagonal, one rotation per
diagonal beyond the first; a single rescale at the end.

SIMD batching: a diagonal can be *tiled* across several disjoint slot
blocks (``num_blocks`` copies at stride ``block_stride``), so one
ciphertext carrying many independently packed input vectors is multiplied
by every diagonal exactly once — the rotation steps are unchanged, and
the per-request cost is divided by the batch size.
"""

from __future__ import annotations

import numpy as np

from repro.ckks.evaluator import Ciphertext, CkksEvaluator

__all__ = ["encrypted_matvec", "diagonals_of", "required_rotation_steps"]


def diagonals_of(
    w: np.ndarray,
    slots: int,
    *,
    num_blocks: int = 1,
    block_stride: int | None = None,
) -> dict:
    """Generalised diagonals of ``W`` padded into the slot vector space.

    ``diag_d[i] = W[i, (i + d) % in_dim]`` for output row ``i``; entries
    beyond the matrix shape are zero.  With ``num_blocks > 1`` each
    diagonal is replicated at slot offsets ``b * block_stride`` so a
    single plaintext multiply serves every block of a batched ciphertext.
    """
    out_dim, in_dim = w.shape
    size = max(out_dim, in_dim)
    if size > slots:
        raise ValueError(f"matrix dim {size} exceeds slot count {slots}")
    if num_blocks < 1:
        raise ValueError(f"num_blocks must be >= 1, got {num_blocks}")
    stride = size if block_stride is None else block_stride
    if num_blocks > 1 and stride < size:
        raise ValueError(f"block stride {stride} < matrix dim {size}")
    if (num_blocks - 1) * stride + size > slots:
        raise ValueError(
            f"{num_blocks} blocks of stride {stride} exceed slot count {slots}"
        )
    diags = {}
    rows = np.arange(out_dim)
    for d in range(size):
        cols = (rows + d) % size
        valid = cols < in_dim
        base = np.zeros(size)
        base[rows[valid]] = w[rows[valid], cols[valid]]
        if not np.any(base):
            continue
        vec = np.zeros(slots)
        for b in range(num_blocks):
            vec[b * stride : b * stride + size] = base
        diags[d] = vec
    return diags


def required_rotation_steps(w: np.ndarray, slots: int) -> list:
    """Rotation steps keygen must provide for :func:`encrypted_matvec`.

    Tiling diagonals across blocks reuses the same steps, so the key set
    is independent of the batch size.
    """
    return [d for d in diagonals_of(w, slots) if d != 0]


def tile_blocks(
    values: np.ndarray, slots: int, num_blocks: int, block_stride: int
) -> np.ndarray:
    """Replicate a per-block vector at every block offset of a slot vector."""
    values = np.asarray(values, dtype=np.float64).ravel()
    if (num_blocks - 1) * block_stride + len(values) > slots:
        raise ValueError(
            f"{num_blocks} blocks of stride {block_stride} exceed slot count {slots}"
        )
    vec = np.zeros(slots)
    for b in range(num_blocks):
        vec[b * block_stride : b * block_stride + len(values)] = values
    return vec


def encrypted_matvec(
    ev: CkksEvaluator,
    ct_x: Ciphertext,
    w: np.ndarray | None = None,
    bias: np.ndarray | None = None,
    *,
    diagonals: dict | None = None,
    bias_slots=None,
) -> Ciphertext:
    """``W x + b`` on an encrypted slot-packed vector.

    The input vector must be replicated-padded to ``max(out, in)`` length:
    slots beyond ``in_dim`` must hold a copy of the wrapped-around entries
    for the cyclic diagonals to line up.  For the square / zero-padded
    layouts produced by :mod:`repro.fhe.network` this holds by packing
    ``x`` into the first ``size`` slots with wraparound replication (and
    identically inside each block for batched ciphertexts).

    ``diagonals`` short-circuits the per-call :func:`diagonals_of`
    recomputation: a mapping ``d -> slot vector`` *or* ``d -> Plaintext``
    (pre-encoded at the ciphertext's level and scale, e.g. by
    :class:`repro.serve.artifact.ModelArtifact`) — the steady-state
    serving path does zero plaintext encoding here.  ``bias_slots`` is the
    full-slot (optionally block-tiled) bias, again raw or pre-encoded at
    the *post-rescale* level and scale; when omitted, ``bias`` is padded
    into the leading slots as before.
    """
    if diagonals is None:
        if w is None:
            raise ValueError("need either a weight matrix or precomputed diagonals")
        diagonals = diagonals_of(w, ct_x.c0.ctx.slots)
    acc = None
    for d, vec in diagonals.items():
        rotated = ev.rotate(ct_x, d) if d else ct_x
        term = ev.mul_plain(rotated, vec)
        acc = term if acc is None else ev.add(acc, term)
    if acc is None:
        raise ValueError("matrix has no nonzero diagonals")
    acc = ev.rescale(acc)
    if bias_slots is None and bias is not None:
        bias_slots = np.zeros(ct_x.c0.ctx.slots)
        bias_slots[: len(bias)] = bias
    if bias_slots is not None:
        acc = ev.add_plain(acc, bias_slots)
    return acc
