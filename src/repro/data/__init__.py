"""Synthetic datasets standing in for CIFAR-10 / ImageNet-1k (offline)."""

from repro.data.loader import DataLoader
from repro.data.synthetic import (
    Dataset,
    cifar10_like,
    imagenet_like,
    make_pattern_dataset,
    make_sequence_dataset,
)

__all__ = [
    "DataLoader",
    "Dataset",
    "cifar10_like",
    "imagenet_like",
    "make_pattern_dataset",
    "make_sequence_dataset",
]
