"""Mini-batch loader with optional augmentation."""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

__all__ = ["DataLoader"]


class DataLoader:
    """Iterate (x, y) mini-batches over in-memory arrays.

    Parameters
    ----------
    augment:
        If True, apply random horizontal flips and ±2px translations —
        cheap augmentation that keeps small synthetic tasks from
        memorising instantly.
    seed:
        Shuffle / augmentation seed; each fresh iteration advances the
        stream deterministically.
    """

    def __init__(
        self,
        x: np.ndarray,
        y: np.ndarray,
        batch_size: int = 64,
        shuffle: bool = True,
        augment: bool = False,
        seed: Optional[int] = 0,
    ):
        if len(x) != len(y):
            raise ValueError(f"x/y length mismatch: {len(x)} vs {len(y)}")
        if len(x) == 0:
            raise ValueError("empty dataset")
        self.x = x
        self.y = np.asarray(y)
        self.batch_size = int(batch_size)
        self.shuffle = shuffle
        self.augment = augment
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        return (len(self.x) + self.batch_size - 1) // self.batch_size

    @property
    def n_samples(self) -> int:
        return len(self.x)

    def _augment_batch(self, xb: np.ndarray) -> np.ndarray:
        n = len(xb)
        out = xb.copy()
        # Horizontal flip half the batch.
        flip = self._rng.random(n) < 0.5
        out[flip] = out[flip, :, :, ::-1]
        # Random translation in [-2, 2] px via zero-padded roll.
        shifts = self._rng.integers(-2, 3, size=(n, 2))
        for i in range(n):  # small batch loop; shifts differ per sample
            dy, dx = shifts[i]
            if dy or dx:
                out[i] = np.roll(out[i], (dy, dx), axis=(1, 2))
        return out

    def __iter__(self) -> Iterator[tuple]:
        n = len(self.x)
        order = self._rng.permutation(n) if self.shuffle else np.arange(n)
        for start in range(0, n, self.batch_size):
            idx = order[start : start + self.batch_size]
            xb = self.x[idx]
            if self.augment:
                xb = self._augment_batch(xb)
            yield xb, self.y[idx]
