"""Deterministic synthetic image-classification datasets.

The paper evaluates on CIFAR-10 and ImageNet-1k; neither is reachable in
this offline reproduction, so these generators produce procedural datasets
with the properties the SMART-PAF techniques depend on:

* class structure that a CNN must *learn* (not linearly separable pixels):
  class-specific oriented gratings + blob layouts, randomly phased/shifted
  per sample, with additive noise;
* per-layer activation distributions that vary with depth (what Coefficient
  Tuning profiles) — guaranteed by multiplicative color mixing and varying
  spatial frequencies;
* a difficulty knob: :func:`imagenet_like` uses more classes, more
  intra-class variation and lower SNR than :func:`cifar10_like`, standing in
  for the paper's CIFAR-10 → ImageNet-1k complexity jump (Sec. 5.4.4).

Everything is seeded; the same arguments always produce the same arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "Dataset",
    "make_pattern_dataset",
    "make_sequence_dataset",
    "cifar10_like",
    "imagenet_like",
]


@dataclass
class Dataset:
    """An in-memory image classification dataset (NCHW float64)."""

    x_train: np.ndarray
    y_train: np.ndarray
    x_val: np.ndarray
    y_val: np.ndarray
    num_classes: int
    name: str = "synthetic"

    @property
    def image_shape(self) -> tuple:
        return self.x_train.shape[1:]

    @property
    def n_train(self) -> int:
        return len(self.x_train)

    @property
    def n_val(self) -> int:
        return len(self.x_val)

    def subsample(self, n_train: int, n_val: int, seed: int = 0) -> "Dataset":
        """Deterministic subset (used by quick benchmark configurations)."""
        rng = np.random.default_rng(seed)
        ti = rng.permutation(self.n_train)[:n_train]
        vi = rng.permutation(self.n_val)[:n_val]
        return Dataset(
            self.x_train[ti],
            self.y_train[ti],
            self.x_val[vi],
            self.y_val[vi],
            self.num_classes,
            name=f"{self.name}-sub",
        )


def _class_prototypes(
    num_classes: int, image_size: int, channels: int, rng: np.random.Generator
) -> tuple:
    """Class-specific grating parameters and blob layouts."""
    freqs = rng.uniform(1.0, 4.0, size=(num_classes, 2))
    orients = rng.uniform(0, np.pi, size=num_classes)
    color_mix = rng.normal(0.0, 1.0, size=(num_classes, channels, 2))
    n_blobs = 3
    blob_pos = rng.uniform(0.15, 0.85, size=(num_classes, n_blobs, 2))
    blob_sign = rng.choice([-1.0, 1.0], size=(num_classes, n_blobs))
    blob_width = rng.uniform(0.08, 0.2, size=(num_classes, n_blobs))
    return freqs, orients, color_mix, blob_pos, blob_sign, blob_width


def make_pattern_dataset(
    num_classes: int,
    n_train: int,
    n_val: int,
    image_size: int = 16,
    channels: int = 3,
    noise: float = 0.35,
    jitter: float = 0.15,
    seed: int = 0,
    name: str = "patterns",
) -> Dataset:
    """Generate the class-conditional grating+blob dataset.

    Parameters
    ----------
    noise:
        Additive Gaussian noise std (difficulty knob).
    jitter:
        Per-sample random phase / position jitter fraction (intra-class
        variation knob).
    """
    rng = np.random.default_rng(seed)
    freqs, orients, color_mix, blob_pos, blob_sign, blob_width = _class_prototypes(
        num_classes, image_size, channels, rng
    )

    coords = np.linspace(0.0, 1.0, image_size)
    yy, xx = np.meshgrid(coords, coords, indexing="ij")

    def render(labels: np.ndarray, sample_rng: np.random.Generator) -> np.ndarray:
        n = len(labels)
        # Per-sample jittered parameters (vectorised over the batch).
        phase = sample_rng.uniform(0, 2 * np.pi, size=(n, 2))
        d_orient = sample_rng.normal(0, jitter, size=n)
        amp = sample_rng.uniform(0.7, 1.3, size=n)
        shift = sample_rng.normal(0, jitter * 0.3, size=(n, 2))

        theta = orients[labels] + d_orient
        u = np.cos(theta)[:, None, None] * xx + np.sin(theta)[:, None, None] * yy
        v = -np.sin(theta)[:, None, None] * xx + np.cos(theta)[:, None, None] * yy
        g1 = np.sin(2 * np.pi * freqs[labels, 0][:, None, None] * u + phase[:, 0][:, None, None])
        g2 = np.sin(2 * np.pi * freqs[labels, 1][:, None, None] * v + phase[:, 1][:, None, None])

        # Blob field per sample.
        blob = np.zeros((n, image_size, image_size))
        for b in range(blob_pos.shape[1]):
            cx = blob_pos[labels, b, 0] + shift[:, 0]
            cy = blob_pos[labels, b, 1] + shift[:, 1]
            width = blob_width[labels, b]
            d2 = (xx[None] - cx[:, None, None]) ** 2 + (yy[None] - cy[:, None, None]) ** 2
            blob += blob_sign[labels, b][:, None, None] * np.exp(
                -d2 / (2 * width[:, None, None] ** 2)
            )

        base = np.stack([g1, g2], axis=1)  # (n, 2, H, W)
        img = np.einsum("ncf,nfhw->nchw", color_mix[labels], base)
        img = img + blob[:, None, :, :]
        img *= amp[:, None, None, None]
        img += sample_rng.normal(0, noise, size=img.shape)
        return img

    y_train = rng.integers(0, num_classes, n_train)
    y_val = rng.integers(0, num_classes, n_val)
    x_train = render(y_train, np.random.default_rng(seed + 1))
    x_val = render(y_val, np.random.default_rng(seed + 2))

    # Normalise with train statistics (channel-wise), as real pipelines do.
    mu = x_train.mean(axis=(0, 2, 3), keepdims=True)
    sd = x_train.std(axis=(0, 2, 3), keepdims=True) + 1e-8
    x_train = (x_train - mu) / sd
    x_val = (x_val - mu) / sd

    return Dataset(x_train, y_train, x_val, y_val, num_classes, name=name)


def make_sequence_dataset(
    num_classes: int,
    n_train: int,
    n_val: int,
    seq: int = 4,
    dim: int = 8,
    noise: float = 0.3,
    jitter: float = 0.15,
    seed: int = 0,
    name: str = "sequences",
) -> Dataset:
    """Class-conditional token sequences for the toy transformer.

    Each class owns a trajectory of ``seq`` token prototypes plus a
    class-specific positional wave (a sinusoid over token index whose
    frequency/phase depend on the class), so both token *content* and
    token *order* carry label signal; per-sample amplitude jitter and
    additive noise provide intra-class variation.  Samples are
    ``(seq, dim)`` float64, normalised with train statistics.
    """
    rng = np.random.default_rng(seed)
    protos = rng.normal(0.0, 1.0, size=(num_classes, seq, dim))
    wave_freq = rng.uniform(0.5, 2.0, size=num_classes)
    wave_dir = rng.normal(0.0, 1.0, size=(num_classes, dim))
    wave_dir /= np.linalg.norm(wave_dir, axis=1, keepdims=True)

    positions = np.arange(seq, dtype=np.float64)

    def render(labels: np.ndarray, sample_rng: np.random.Generator) -> np.ndarray:
        n = len(labels)
        amp = sample_rng.uniform(0.7, 1.3, size=(n, 1, 1))
        phase = sample_rng.normal(0.0, jitter, size=(n, 1))
        wave = np.sin(
            wave_freq[labels][:, None] * positions[None, :] + phase
        )  # (n, seq)
        x = protos[labels] * amp
        x = x + wave[:, :, None] * wave_dir[labels][:, None, :]
        x = x + sample_rng.normal(0.0, noise, size=x.shape)
        return x

    y_train = rng.integers(0, num_classes, n_train)
    y_val = rng.integers(0, num_classes, n_val)
    x_train = render(y_train, np.random.default_rng(seed + 1))
    x_val = render(y_val, np.random.default_rng(seed + 2))

    mu = x_train.mean(axis=(0, 1), keepdims=True)
    sd = x_train.std(axis=(0, 1), keepdims=True) + 1e-8
    x_train = (x_train - mu) / sd
    x_val = (x_val - mu) / sd

    return Dataset(x_train, y_train, x_val, y_val, num_classes, name=name)


def cifar10_like(
    n_train: int = 2000,
    n_val: int = 500,
    image_size: int = 16,
    seed: int = 0,
) -> Dataset:
    """CIFAR-10 stand-in: 10 classes, moderate noise, modest variation."""
    return make_pattern_dataset(
        num_classes=10,
        n_train=n_train,
        n_val=n_val,
        image_size=image_size,
        noise=1.3,
        jitter=0.4,
        seed=seed,
        name="cifar10-like",
    )


def imagenet_like(
    n_train: int = 4000,
    n_val: int = 1000,
    image_size: int = 32,
    num_classes: int = 20,
    seed: int = 0,
) -> Dataset:
    """ImageNet-1k stand-in: more classes, more variation, lower SNR.

    The absolute class count is scaled down (default 20) so CPU training
    stays tractable; the *relative* difficulty jump vs :func:`cifar10_like`
    is what reproduces the paper's dataset-complexity effect (Sec. 5.4.4).
    """
    return make_pattern_dataset(
        num_classes=num_classes,
        n_train=n_train,
        n_val=n_val,
        image_size=image_size,
        noise=0.9,
        jitter=0.3,
        seed=seed,
        name="imagenet-like",
    )
