"""Standard layers: Conv2d, BatchNorm2d, Linear, pooling, dropout, etc.

These are the "other layers" of the paper (everything except the
non-polynomial operators); ``ReLU`` and ``MaxPool2d`` here are the *exact*
non-polynomial versions that SMART-PAF's model surgery later replaces with
PAF layers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor

__all__ = [
    "Conv2d",
    "Linear",
    "BatchNorm2d",
    "ReLU",
    "GELU",
    "Softmax",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
    "Identity",
]


class Conv2d(Module):
    """2D convolution with optional bias."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_normal(shape, rng))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, self.stride, self.padding)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"k={self.kernel_size}, s={self.stride}, p={self.padding})"
        )


class Linear(Module):
    """Fully-connected layer."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_normal((out_features, in_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Linear({self.in_features}, {self.out_features})"


class BatchNorm2d(Module):
    """Batch normalisation; tracking disabled by default per Tab. 5."""

    def __init__(
        self,
        num_features: int,
        momentum: float = 0.1,
        eps: float = 1e-5,
        track_running_stats: bool = False,
    ):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.track_running_stats = track_running_stats
        self.gamma = Parameter(init.ones((num_features,)))
        self.beta = Parameter(init.zeros((num_features,)))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm2d(
            x,
            self.gamma,
            self.beta,
            self.running_mean,
            self.running_var,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
            track_running_stats=self.track_running_stats,
        )


class ReLU(Module):
    """Exact ReLU — a non-polynomial operator (replaced by PAF under FHE)."""

    #: marker used by model surgery to find replacement sites
    is_nonpolynomial = True

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def __repr__(self) -> str:  # pragma: no cover
        return "ReLU()"


class GELU(Module):
    """Exact tanh-form GELU — replaced by a dense-polynomial PAF under FHE."""

    is_nonpolynomial = True

    def forward(self, x: Tensor) -> Tensor:
        return F.gelu(x)

    def __repr__(self) -> str:  # pragma: no cover
        return "GELU()"


class Softmax(Module):
    """Exact softmax — replaced by the mean-stabilised PAF under FHE."""

    is_nonpolynomial = True

    def __init__(self, axis: int = -1):
        super().__init__()
        self.axis = axis

    def forward(self, x: Tensor) -> Tensor:
        return F.softmax(x, axis=self.axis)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Softmax(axis={self.axis})"


class MaxPool2d(Module):
    """Exact max pooling — a non-polynomial operator."""

    is_nonpolynomial = True

    def __init__(self, kernel_size: int, stride: Optional[int] = None, padding: int = 0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride, self.padding)

    def __repr__(self) -> str:  # pragma: no cover
        return f"MaxPool2d(k={self.kernel_size}, s={self.stride}, p={self.padding})"


class AvgPool2d(Module):
    """Average pooling (polynomial, FHE-friendly)."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)


class GlobalAvgPool2d(Module):
    """Adaptive average pooling to 1×1 (ResNet head)."""

    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)


class Flatten(Module):
    """NCHW -> N,(CHW)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten_from(1)


class Dropout(Module):
    """Inverted dropout; the scheduler toggles ``p`` on overfitting."""

    def __init__(self, p: float = 0.5, seed: Optional[int] = None):
        super().__init__()
        self.p = p
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, self._rng)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Dropout(p={self.p})"


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x
