"""Weight initialisation (Kaiming / Xavier)."""

from __future__ import annotations

import numpy as np

__all__ = ["kaiming_normal", "kaiming_uniform", "xavier_uniform", "zeros", "ones"]


def _fan_in_out(shape: tuple) -> tuple:
    if len(shape) == 2:  # linear (out, in)
        fan_in, fan_out = shape[1], shape[0]
    elif len(shape) == 4:  # conv (oc, ic, kh, kw)
        receptive = shape[2] * shape[3]
        fan_in, fan_out = shape[1] * receptive, shape[0] * receptive
    else:
        raise ValueError(f"unsupported weight shape {shape}")
    return fan_in, fan_out


def kaiming_normal(shape: tuple, rng: np.random.Generator) -> np.ndarray:
    """He initialisation for ReLU networks: N(0, sqrt(2/fan_in))."""
    fan_in, _ = _fan_in_out(shape)
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def kaiming_uniform(shape: tuple, rng: np.random.Generator) -> np.ndarray:
    fan_in, _ = _fan_in_out(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def xavier_uniform(shape: tuple, rng: np.random.Generator) -> np.ndarray:
    fan_in, fan_out = _fan_in_out(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: tuple) -> np.ndarray:
    return np.zeros(shape)


def ones(shape: tuple) -> np.ndarray:
    return np.ones(shape)
