"""Optimizers with parameter groups.

The paper's Alternate Training uses *different hyperparameters* for PAF
coefficients and for the other layers (Tab. 5: Adam, lr 1e-4 / weight
decay 0.01 for PAFs; lr 1e-5 / weight decay 0.1 for everything else), so
the optimizers here support torch-style parameter groups with per-group
``lr`` and ``weight_decay``.

Both optimizers skip parameters whose ``requires_grad`` is False — that is
how AT freezing composes with a single long-lived optimizer.
"""

from __future__ import annotations


import numpy as np


__all__ = ["SGD", "Adam"]


def _normalise_groups(params, lr: float, weight_decay: float) -> list:
    """Accept a flat param list or a list of group dicts."""
    params = list(params)
    if params and isinstance(params[0], dict):
        groups = []
        for g in params:
            group = {
                "params": list(g["params"]),
                "lr": float(g.get("lr", lr)),
                "weight_decay": float(g.get("weight_decay", weight_decay)),
            }
            groups.append(group)
        return groups
    return [{"params": params, "lr": float(lr), "weight_decay": float(weight_decay)}]


class Optimizer:
    def __init__(self, params, lr: float, weight_decay: float = 0.0):
        self.groups = _normalise_groups(params, lr, weight_decay)
        if not any(g["params"] for g in self.groups):
            raise ValueError("optimizer got an empty parameter list")

    def zero_grad(self) -> None:
        for g in self.groups:
            for p in g["params"]:
                p.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def param_count(self) -> int:
        return sum(p.size for g in self.groups for p in g["params"])


class SGD(Optimizer):
    """SGD with optional momentum and decoupled weight decay."""

    def __init__(
        self,
        params,
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr, weight_decay)
        self.momentum = momentum
        self._velocity: dict[int, np.ndarray] = {}

    def step(self) -> None:
        for g in self.groups:
            lr, wd = g["lr"], g["weight_decay"]
            for p in g["params"]:
                if p.grad is None or not p.requires_grad:
                    continue
                grad = p.grad
                if wd:
                    grad = grad + wd * p.data
                if self.momentum:
                    v = self._velocity.get(id(p))
                    v = self.momentum * v + grad if v is not None else grad
                    self._velocity[id(p)] = v
                    grad = v
                p.data = p.data - lr * grad


class Adam(Optimizer):
    """Adam with bias correction and (coupled) L2 weight decay.

    The paper's Tab. 5 specifies Adam for both PAF-coefficient training and
    the other layers, with different lr / weight decay per group.
    """

    def __init__(
        self,
        params,
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr, weight_decay)
        self.betas = betas
        self.eps = eps
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}
        self._t: dict[int, int] = {}

    def step(self) -> None:
        b1, b2 = self.betas
        for g in self.groups:
            lr, wd = g["lr"], g["weight_decay"]
            for p in g["params"]:
                if p.grad is None or not p.requires_grad:
                    continue
                grad = p.grad
                if wd:
                    grad = grad + wd * p.data
                key = id(p)
                t = self._t.get(key, 0) + 1
                m = self._m.get(key, np.zeros_like(p.data))
                v = self._v.get(key, np.zeros_like(p.data))
                m = b1 * m + (1 - b1) * grad
                v = b2 * v + (1 - b2) * grad * grad
                self._m[key], self._v[key], self._t[key] = m, v, t
                mhat = m / (1 - b1**t)
                vhat = v / (1 - b2**t)
                p.data = p.data - lr * mhat / (np.sqrt(vhat) + self.eps)
