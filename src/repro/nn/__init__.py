"""Self-contained numpy autograd NN framework (the paper's DL substrate)."""

from repro.nn import functional
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    GELU,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
    Softmax,
)
from repro.nn.module import Module, Parameter, Sequential
from repro.nn.optim import SGD, Adam
from repro.nn.swa import SWAAverager
from repro.nn.tensor import Tensor, as_tensor, is_grad_enabled, no_grad

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "Module",
    "Parameter",
    "Sequential",
    "Conv2d",
    "Linear",
    "BatchNorm2d",
    "ReLU",
    "GELU",
    "Softmax",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
    "Identity",
    "SGD",
    "Adam",
    "SWAAverager",
    "functional",
]
