"""Differentiable NN ops: convolution, pooling, normalisation, losses.

Implemented with vectorised numpy (im2col / col2im for convolution,
stride-tricks windowing for pooling) and wired into the autograd tape from
``repro.nn.tensor``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.tensor import Tensor

__all__ = [
    "pad2d",
    "conv2d",
    "linear",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "batch_norm2d",
    "dropout",
    "log_softmax",
    "softmax",
    "cross_entropy",
    "nll_loss",
    "accuracy",
]


# ----------------------------------------------------------------------
# im2col helpers (shared by conv2d forward/backward)
# ----------------------------------------------------------------------
def _im2col(x: np.ndarray, kh: int, kw: int, stride: int) -> np.ndarray:
    """(N, C, H, W) -> (N, OH, OW, C, KH, KW) view using stride tricks."""
    n, c, h, w = x.shape
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    sn, sc, sh, sw = x.strides
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, oh, ow, c, kh, kw),
        strides=(sn, sh * stride, sw * stride, sc, sh, sw),
        writeable=False,
    )
    return view, oh, ow


def _col2im(
    cols: np.ndarray, x_shape: tuple, kh: int, kw: int, stride: int
) -> np.ndarray:
    """Scatter-add (N, OH, OW, C, KH, KW) patches back to (N, C, H, W)."""
    n, c, h, w = x_shape
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    out = np.zeros((n, c, h, w), dtype=cols.dtype)
    # Loop over the (small) kernel footprint, vectorised over N, OH, OW, C.
    for i in range(kh):
        for j in range(kw):
            out[:, :, i : i + stride * oh : stride, j : j + stride * ow : stride] += (
                cols[:, :, :, :, i, j].transpose(0, 3, 1, 2)
            )
    return out


def pad2d(x: Tensor, padding: int) -> Tensor:
    """Zero-pad the spatial dims of an NCHW tensor."""
    if padding == 0:
        return x
    p = padding
    out_data = np.pad(x.data, ((0, 0), (0, 0), (p, p), (p, p)))

    def backward(g):
        return (g[:, :, p:-p, p:-p],)

    return Tensor._make(out_data, (x,), backward)


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2D convolution (cross-correlation), NCHW layout.

    ``weight``: (OC, IC, KH, KW); ``bias``: (OC,) or None.
    """
    xp = pad2d(x, padding)
    oc, ic, kh, kw = weight.shape
    xd = xp.data
    n, c, h, w = xd.shape
    if c != ic:
        raise ValueError(f"channel mismatch: input {c} vs weight {ic}")
    cols, oh, ow = _im2col(xd, kh, kw, stride)
    # (N*OH*OW, C*KH*KW) @ (C*KH*KW, OC)
    cols2 = np.ascontiguousarray(cols).reshape(n * oh * ow, ic * kh * kw)
    wmat = weight.data.reshape(oc, ic * kh * kw)
    out = (cols2 @ wmat.T).reshape(n, oh, ow, oc).transpose(0, 3, 1, 2)
    if bias is not None:
        out = out + bias.data[None, :, None, None]

    parents = (xp, weight) if bias is None else (xp, weight, bias)
    x_shape = xd.shape

    def backward(g):
        # g: (N, OC, OH, OW)
        gmat = g.transpose(0, 2, 3, 1).reshape(n * oh * ow, oc)
        gw = (gmat.T @ cols2).reshape(oc, ic, kh, kw)
        gcols = (gmat @ wmat).reshape(n, oh, ow, ic, kh, kw)
        gx = _col2im(gcols, x_shape, kh, kw, stride)
        if bias is None:
            return (gx, gw)
        gb = g.sum(axis=(0, 2, 3))
        return (gx, gw, gb)

    return Tensor._make(out, parents, backward)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """``x @ weight.T + bias`` with ``weight``: (OUT, IN)."""
    out = x @ weight.transpose()
    if bias is not None:
        out = out + bias
    return out


def max_pool2d(x: Tensor, kernel: int, stride: Optional[int] = None, padding: int = 0) -> Tensor:
    """Exact 2D max pooling (the non-polynomial operator PAFs replace)."""
    stride = stride or kernel
    if padding:
        # pad with -inf so padding never wins the max
        p = padding
        xd = np.pad(
            x.data, ((0, 0), (0, 0), (p, p), (p, p)), constant_values=-np.inf
        )

        def unpad(g):
            return g[:, :, p:-p, p:-p]

    else:
        xd = x.data

        def unpad(g):
            return g

    n, c, h, w = xd.shape
    view, oh, ow = _im2col(xd, kernel, kernel, stride)
    # view: (N, OH, OW, C, KH, KW)
    flat = np.ascontiguousarray(view).reshape(n, oh, ow, c, kernel * kernel)
    arg = flat.argmax(axis=-1)
    out = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]
    out = out.transpose(0, 3, 1, 2)

    def backward(g):
        # route gradient to the argmax lane of each window
        gflat = np.zeros_like(flat)
        np.put_along_axis(
            gflat, arg[..., None], g.transpose(0, 2, 3, 1)[..., None], axis=-1
        )
        gcols = gflat.reshape(n, oh, ow, c, kernel, kernel)
        gx = _col2im(gcols, xd.shape, kernel, kernel, stride)
        return (unpad(gx),)

    return Tensor._make(out, (x,), backward)


def avg_pool2d(x: Tensor, kernel: int, stride: Optional[int] = None) -> Tensor:
    """2D average pooling (polynomial — allowed under FHE)."""
    stride = stride or kernel
    xd = x.data
    n, c, h, w = xd.shape
    view, oh, ow = _im2col(xd, kernel, kernel, stride)
    out = view.mean(axis=(-1, -2)).transpose(0, 3, 1, 2)
    inv = 1.0 / (kernel * kernel)

    def backward(g):
        gcols = np.broadcast_to(
            (g.transpose(0, 2, 3, 1) * inv)[..., None, None],
            (n, oh, ow, c, kernel, kernel),
        )
        return (_col2im(np.ascontiguousarray(gcols), xd.shape, kernel, kernel, stride),)

    return Tensor._make(out, (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Adaptive average pool to 1x1 (ResNet head)."""
    return x.mean(axis=(2, 3), keepdims=True)


def batch_norm2d(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
    track_running_stats: bool = False,
) -> Tensor:
    """Batch normalisation over NCHW channels.

    The paper trains with "BatchNorm Tracking False" (Tab. 5) — batch
    statistics are used in both train and eval unless
    ``track_running_stats`` is set, matching that configuration.
    """
    use_batch_stats = training or not track_running_stats
    if use_batch_stats:
        mu = x.data.mean(axis=(0, 2, 3))
        var = x.data.var(axis=(0, 2, 3))
        if track_running_stats and training:
            running_mean *= 1 - momentum
            running_mean += momentum * mu
            running_var *= 1 - momentum
            running_var += momentum * var
    else:
        mu, var = running_mean, running_var

    inv_std = 1.0 / np.sqrt(var + eps)
    xhat = (x.data - mu[None, :, None, None]) * inv_std[None, :, None, None]
    out = gamma.data[None, :, None, None] * xhat + beta.data[None, :, None, None]

    def backward(g):
        ggamma = (g * xhat).sum(axis=(0, 2, 3))
        gbeta = g.sum(axis=(0, 2, 3))
        gxhat = g * gamma.data[None, :, None, None]
        if use_batch_stats:
            # Full batch-norm backward (mu/var depend on x).
            term1 = gxhat
            term2 = gxhat.mean(axis=(0, 2, 3), keepdims=True)
            term3 = xhat * (gxhat * xhat).mean(axis=(0, 2, 3), keepdims=True)
            gx = (term1 - term2 - term3) * inv_std[None, :, None, None]
        else:
            gx = gxhat * inv_std[None, :, None, None]
        return (gx, ggamma, gbeta)

    return Tensor._make(out, (x, gamma, beta), backward)


# tanh-form GELU constants (Hendrycks-Gimpel); the dense-polynomial PAF
# in ``repro.paf.transformer`` targets exactly this formula, so the PAF
# and the plaintext model approximate the same function
_GELU_C = 0.044715
_GELU_S = float(np.sqrt(2.0 / np.pi))


def gelu(x: Tensor) -> Tensor:
    """GELU in its tanh form: ``0.5 x (1 + tanh(s (x + c x^3)))``."""
    xd = x.data
    inner = _GELU_S * (xd + _GELU_C * xd**3)
    t = np.tanh(inner)
    out = 0.5 * xd * (1.0 + t)

    def backward(g):
        d_inner = _GELU_S * (1.0 + 3.0 * _GELU_C * xd**2)
        grad = 0.5 * (1.0 + t) + 0.5 * xd * (1.0 - t**2) * d_inner
        return (g * grad,)

    return Tensor._make(out, (x,), backward)


def layer_norm(
    x: Tensor,
    gain: Optional[Tensor] = None,
    bias: Optional[Tensor] = None,
    axis: int = -1,
    eps: float = 1e-5,
) -> Tensor:
    """LayerNorm over ``axis`` with optional affine parameters."""
    mu = x.mean(axis=axis, keepdims=True)
    centered = x - mu
    var = (centered * centered).mean(axis=axis, keepdims=True)
    out = centered * (var + eps) ** -0.5
    if gain is not None:
        out = out * gain
    if bias is not None:
        out = out + bias
    return out


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout; identity when ``not training`` or ``p == 0``."""
    if not training or p <= 0:
        return x
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep) / keep

    def backward(g):
        return (g * mask,)

    return Tensor._make(x.data * mask, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable log-softmax."""
    xd = x.data
    shifted = xd - xd.max(axis=axis, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - lse
    softmax_vals = np.exp(out)

    def backward(g):
        return (g - softmax_vals * g.sum(axis=axis, keepdims=True),)

    return Tensor._make(out, (x,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    return log_softmax(x, axis=axis).exp()


def nll_loss(log_probs: Tensor, targets: np.ndarray) -> Tensor:
    """Mean negative log-likelihood given integer class targets."""
    targets = np.asarray(targets, dtype=np.int64)
    n = log_probs.shape[0]
    picked = log_probs[np.arange(n), targets]
    return -picked.mean()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Softmax cross-entropy with integer class targets."""
    return nll_loss(log_softmax(logits, axis=-1), targets)


def accuracy(logits, targets: np.ndarray) -> float:
    """Top-1 accuracy; accepts a Tensor or ndarray of logits."""
    data = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    pred = data.argmax(axis=-1)
    return float((pred == np.asarray(targets)).mean())
