"""A minimal reverse-mode autograd engine over numpy.

This is the training substrate for the SMART-PAF techniques: the paper's
methods need partial freezing (Alternate Training), per-parameter-group
hyperparameters, SWA, dropout and trainable *PAF coefficients* — all of
which sit naturally on a small define-by-run tape.

Every differentiable op builds the graph eagerly; :meth:`Tensor.backward`
topologically sorts the tape and accumulates gradients.  All array math is
vectorised numpy (no Python loops over elements), per the ml-systems
guidance.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Optional

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "as_tensor"]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Disable graph construction (evaluation / SS calibration passes)."""
    global _GRAD_ENABLED
    prev = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = prev


def is_grad_enabled() -> bool:
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum the leading broadcast axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum axes that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """An ndarray with an autograd tape.

    Parameters
    ----------
    data:
        Anything ``np.asarray`` accepts; stored as float64.
    requires_grad:
        Track operations on this tensor for backpropagation.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: tuple = ()

    # ------------------------------------------------------------------
    # constructors / metadata
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Iterable["Tensor"], backward) -> "Tensor":
        parents = tuple(p for p in parents if isinstance(p, Tensor))
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=False)
        out.requires_grad = requires
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """The underlying array (no copy); detached from the graph."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # autograd driver
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded tape."""
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        # Topological order (iterative DFS — deep graphs exceed recursion).
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if p.requires_grad and id(p) not in visited:
                    stack.append((p, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            g = grads.pop(id(node), None)
            if g is None:
                continue
            if node._backward is None:
                # Leaf: accumulate into .grad
                node.grad = g if node.grad is None else node.grad + g
                continue
            parent_grads = node._backward(g)
            for p, pg in zip(node._parents, parent_grads):
                if pg is None or not p.requires_grad:
                    continue
                key = id(p)
                grads[key] = pg if key not in grads else grads[key] + pg
        # Non-leaf tensors with no remaining consumers: flush their grads.
        for key, g in grads.items():  # pragma: no cover - defensive
            pass

    # ------------------------------------------------------------------
    # elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other):
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(g):
            return (_unbroadcast(g, self.shape), _unbroadcast(g, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self):
        def backward(g):
            return (-g,)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other):
        other = as_tensor(other)
        out_data = self.data - other.data

        def backward(g):
            return (_unbroadcast(g, self.shape), _unbroadcast(-g, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    def __rsub__(self, other):
        return as_tensor(other) - self

    def __mul__(self, other):
        other = as_tensor(other)
        out_data = self.data * other.data
        a_data, b_data = self.data, other.data

        def backward(g):
            return (
                _unbroadcast(g * b_data, self.shape),
                _unbroadcast(g * a_data, other.shape),
            )

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = as_tensor(other)
        out_data = self.data / other.data
        a_data, b_data = self.data, other.data

        def backward(g):
            return (
                _unbroadcast(g / b_data, self.shape),
                _unbroadcast(-g * a_data / (b_data * b_data), other.shape),
            )

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other):
        return as_tensor(other) / self

    def __pow__(self, exponent):
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent
        x = self.data

        def backward(g):
            return (g * exponent * x ** (exponent - 1),)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # matmul / linear algebra
    # ------------------------------------------------------------------
    def __matmul__(self, other):
        other = as_tensor(other)
        out_data = self.data @ other.data
        a, b = self.data, other.data

        def backward(g):
            ga = g @ b.swapaxes(-1, -2)
            gb = a.swapaxes(-1, -2) @ g
            return (_unbroadcast(ga, self.shape), _unbroadcast(gb, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        old_shape = self.shape
        out_data = self.data.reshape(shape)

        def backward(g):
            return (g.reshape(old_shape),)

        return Tensor._make(out_data, (self,), backward)

    def flatten_from(self, axis: int = 1):
        """Flatten all dims from ``axis`` on (e.g. NCHW -> N,(CHW))."""
        lead = self.shape[:axis]
        return self.reshape(lead + (-1,))

    def transpose(self, *axes):
        if not axes:
            axes = tuple(range(self.ndim))[::-1]
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inv = np.argsort(axes)
        out_data = self.data.transpose(axes)

        def backward(g):
            return (g.transpose(inv),)

        return Tensor._make(out_data, (self,), backward)

    @property
    def T(self):
        return self.transpose()

    def __getitem__(self, idx):
        out_data = self.data[idx]
        shape = self.shape

        def backward(g):
            full = np.zeros(shape, dtype=np.float64)
            np.add.at(full, idx, g)
            return (full,)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False):
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.shape

        def backward(g):
            if axis is None:
                return (np.broadcast_to(g, shape).copy(),)
            g_exp = g if keepdims else np.expand_dims(g, axis)
            return (np.broadcast_to(g_exp, shape).copy(),)

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False):
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False):
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        out = (centered * centered).mean(axis=axis, keepdims=keepdims)
        return out

    # ------------------------------------------------------------------
    # elementwise nonlinearities
    # ------------------------------------------------------------------
    def relu(self):
        mask = self.data > 0
        out_data = self.data * mask

        def backward(g):
            return (g * mask,)

        return Tensor._make(out_data, (self,), backward)

    def exp(self):
        out_data = np.exp(self.data)

        def backward(g):
            return (g * out_data,)

        return Tensor._make(out_data, (self,), backward)

    def log(self):
        x = self.data
        out_data = np.log(x)

        def backward(g):
            return (g / x,)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self):
        out_data = np.sqrt(self.data)

        def backward(g):
            return (g * 0.5 / out_data,)

        return Tensor._make(out_data, (self,), backward)

    def abs(self):
        s = np.sign(self.data)
        out_data = np.abs(self.data)

        def backward(g):
            return (g * s,)

        return Tensor._make(out_data, (self,), backward)


def as_tensor(value) -> Tensor:
    """Coerce scalars / arrays to a (constant) Tensor."""
    return value if isinstance(value, Tensor) else Tensor(value)
