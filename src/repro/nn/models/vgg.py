"""VGG-19 with the paper's non-polynomial layout.

The paper evaluates VGG-19 on CIFAR-10: **18 ReLU + 5 MaxPooling**
(Sec. 5.1) — 16 conv ReLUs plus 2 classifier ReLUs.  Width and input size
are configurable for CPU-scale training.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.module import Module, Sequential
from repro.nn.tensor import Tensor

__all__ = ["VGG19", "vgg19"]

# Channel multipliers per VGG-19 stage (x base_width), 'M' = MaxPool.
_VGG19_CFG = [1, 1, "M", 2, 2, "M", 4, 4, 4, 4, "M", 8, 8, 8, 8, "M", 8, 8, 8, 8, "M"]


class VGG19(Module):
    """VGG-19 (batch-norm variant): 16 conv+ReLU, 5 MaxPool, 3 FC (2 ReLU)."""

    def __init__(
        self,
        num_classes: int = 10,
        base_width: int = 64,
        in_channels: int = 3,
        input_size: int = 32,
        classifier_width: Optional[int] = None,
        seed: Optional[int] = None,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        layers: list[Module] = []
        ch = in_channels
        spatial = input_size
        for item in _VGG19_CFG:
            if item == "M":
                layers.append(MaxPool2d(2))
                spatial //= 2
            else:
                out_ch = item * base_width
                layers.append(Conv2d(ch, out_ch, 3, padding=1, bias=False, rng=rng))
                layers.append(BatchNorm2d(out_ch))
                layers.append(ReLU())
                ch = out_ch
        if spatial < 1:
            raise ValueError(
                f"input_size={input_size} too small for 5 pooling stages"
            )
        self.features = Sequential(*layers)
        feat_dim = ch * spatial * spatial
        cw = classifier_width or max(4 * base_width, num_classes)
        self.classifier = Sequential(
            Flatten(),
            Linear(feat_dim, cw, rng=rng),
            ReLU(),
            Dropout(p=0.0, seed=seed),
            Linear(cw, cw, rng=rng),
            ReLU(),
            Dropout(p=0.0, seed=None if seed is None else seed + 1),
            Linear(cw, num_classes, rng=rng),
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.features(x))


def vgg19(
    num_classes: int = 10,
    base_width: int = 64,
    in_channels: int = 3,
    input_size: int = 32,
    seed: Optional[int] = None,
) -> VGG19:
    """Factory matching the paper's model (full width by default)."""
    return VGG19(
        num_classes=num_classes,
        base_width=base_width,
        in_channels=in_channels,
        input_size=input_size,
        seed=seed,
    )
