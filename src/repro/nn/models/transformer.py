"""A single-block toy transformer for the encrypted-attention pipeline.

One self-attention block plus a GELU MLP, both with residual connections,
mean-pooled into a linear classification head — the smallest model that
exercises every operator of the encrypted transformer lowering (matmul as
batched matvec over token shards, the mean-stabilised softmax PAF, the
dense GELU PAF and shard-sum pooling).

LayerNorm is deliberately absent: the rsqrt PAF it needs exists (and is
tested) in ``repro.paf.transformer``, but normalising between residual
adds would spend ~4 more ciphertext levels without changing which
operators the lowering has to prove out.  In its place the model uses
the standard normalisation-free discipline — ``1/dim`` attention-score
scaling (the muP variant of ``1/sqrt(dim)``) and scaled initialisation
of the residual-stream writers — which keeps the centred attention
scores and the GELU pre-activations inside ranges a low-degree
polynomial can approximate tightly; the encrypted lowering inherits
those bounds through PAF calibration.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers import GELU, Linear, Softmax
from repro.nn.module import Module
from repro.nn.tensor import Tensor

__all__ = [
    "ToyTransformer",
    "TransformerBlock",
    "StackedToyTransformer",
    "toy_transformer",
    "toy_transformer_stacked",
]


class ToyTransformer(Module):
    """Single-head attention + GELU MLP block over ``seq`` tokens.

    Input ``(batch, seq, dim)``; output ``(batch, num_classes)`` logits.
    The ``is_transformer`` marker routes
    :func:`repro.fhe.ir.compile_network` to the transformer lowering.
    """

    is_transformer = True

    #: init-time shrink of the residual-stream writers (wo, fc1): with no
    #: LayerNorm, kaiming-scale projections push GELU pre-activations to
    #: ~3x the input range, past what a low-degree polynomial can track
    proj_init_scale = 0.35

    def __init__(
        self,
        seq: int = 4,
        dim: int = 8,
        ff: int = 16,
        num_classes: int = 3,
        seed: Optional[int] = None,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.seq = seq
        self.dim = dim
        self.ff = ff
        self.num_classes = num_classes
        self.wq = Linear(dim, dim, rng=rng)
        self.wk = Linear(dim, dim, rng=rng)
        self.wv = Linear(dim, dim, rng=rng)
        self.wo = Linear(dim, dim, rng=rng)
        self.softmax = Softmax(axis=-1)
        self.fc1 = Linear(dim, ff, rng=rng)
        self.act = GELU()
        self.fc2 = Linear(ff, dim, rng=rng)
        self.head = Linear(dim, num_classes, rng=rng)
        #: scalar applied to the raw q·k dot products (read by the FHE
        #: lowering, which folds it into the score placement masks)
        self.score_scale = 1.0 / dim
        for lin in (self.wo, self.fc1):
            lin.weight.data *= self.proj_init_scale

    def attention_scores(self, x: Tensor) -> Tensor:
        """Scaled dot-product scores ``(batch, seq, seq)``.

        Scores scale by ``1/dim`` (muP attention scaling) rather than
        ``1/sqrt(dim)``: the centred scores stay within a few units, so
        the softmax PAF's range-reduced exp and the Newton reciprocal
        of the sum both operate on well-conditioned intervals.
        """
        q = self.wq(x)
        k = self.wk(x)
        return (q @ k.transpose(0, 2, 1)) * self.score_scale

    def forward(self, x: Tensor) -> Tensor:
        probs = self.softmax(self.attention_scores(x))
        x = x + self.wo(probs @ self.wv(x))
        x = x + self.fc2(self.act(self.fc1(x)))
        return self.head(x.mean(axis=1))


def toy_transformer(**kwargs) -> ToyTransformer:
    return ToyTransformer(**kwargs)


class TransformerBlock(Module):
    """One residual attention + GELU-MLP block, no classification head.

    The per-block unit of :class:`StackedToyTransformer`; attribute
    layout (``wq``/``wk``/``wv``/``wo``/``softmax``/``fc1``/``act``/
    ``fc2``/``score_scale``) mirrors :class:`ToyTransformer` so the FHE
    lowering reads both through one code path.
    """

    def __init__(
        self,
        seq: int,
        dim: int,
        ff: int,
        rng: np.random.Generator,
        proj_init_scale: float = ToyTransformer.proj_init_scale,
    ):
        super().__init__()
        self.seq = seq
        self.dim = dim
        self.ff = ff
        self.proj_init_scale = proj_init_scale
        self.wq = Linear(dim, dim, rng=rng)
        self.wk = Linear(dim, dim, rng=rng)
        self.wv = Linear(dim, dim, rng=rng)
        self.wo = Linear(dim, dim, rng=rng)
        self.softmax = Softmax(axis=-1)
        self.fc1 = Linear(dim, ff, rng=rng)
        self.act = GELU()
        self.fc2 = Linear(ff, dim, rng=rng)
        self.score_scale = 1.0 / dim
        for lin in (self.wo, self.fc1):
            lin.weight.data *= self.proj_init_scale

    def attention_scores(self, x: Tensor) -> Tensor:
        q = self.wq(x)
        k = self.wk(x)
        return (q @ k.transpose(0, 2, 1)) * self.score_scale

    def forward(self, x: Tensor) -> Tensor:
        probs = self.softmax(self.attention_scores(x))
        x = x + self.wo(probs @ self.wv(x))
        return x + self.fc2(self.act(self.fc1(x)))


class StackedToyTransformer(Module):
    """``num_blocks`` residual transformer blocks + mean-pool head.

    The depth-wall demo model: at two blocks the encrypted lowering costs
    more levels than any practical prime chain carries, so compilation
    succeeds only through refresh placement
    (:class:`repro.fhe.ir.CompilePolicy`).  Blocks register as child
    modules ``block0``, ``block1``, … (the :attr:`blocks` property walks
    them in order) and each carries its own softmax/GELU sites, so
    :func:`repro.core.surgery.replace_transformer_nonpoly` calibrates a
    PAF per site.
    """

    is_transformer = True

    def __init__(
        self,
        seq: int = 4,
        dim: int = 8,
        ff: int = 16,
        num_classes: int = 3,
        num_blocks: int = 2,
        seed: Optional[int] = None,
    ):
        super().__init__()
        if num_blocks < 1:
            raise ValueError(f"num_blocks must be >= 1, got {num_blocks}")
        rng = np.random.default_rng(seed)
        self.seq = seq
        self.dim = dim
        self.ff = ff
        self.num_classes = num_classes
        self.num_blocks = num_blocks
        # residual-stream writers shrink with depth (the 1/sqrt(blocks)
        # discipline): the stream's variance stays put as blocks stack,
        # which keeps every block's GELU pre-activations and attention
        # scores inside the narrow ranges low-degree PAFs evaluate
        # accurately under fixed-point CKKS arithmetic
        proj = ToyTransformer.proj_init_scale / float(np.sqrt(num_blocks))
        for b in range(num_blocks):
            setattr(
                self,
                f"block{b}",
                TransformerBlock(seq, dim, ff, rng=rng, proj_init_scale=proj),
            )
        self.head = Linear(dim, num_classes, rng=rng)

    @property
    def blocks(self) -> list:
        """The stacked blocks, in execution order."""
        return [getattr(self, f"block{b}") for b in range(self.num_blocks)]

    def forward(self, x: Tensor) -> Tensor:
        for blk in self.blocks:
            x = blk(x)
        return self.head(x.mean(axis=1))


def toy_transformer_stacked(**kwargs) -> StackedToyTransformer:
    return StackedToyTransformer(**kwargs)
