"""Model zoo: the paper's ResNet-18 / VGG-19 plus small test models."""

from repro.nn.models.resnet import BasicBlock, ResNet18, resnet18
from repro.nn.models.simple import MLP, SmallCNN, mlp, small_cnn
from repro.nn.models.transformer import (
    StackedToyTransformer,
    ToyTransformer,
    TransformerBlock,
    toy_transformer,
    toy_transformer_stacked,
)
from repro.nn.models.vgg import VGG19, vgg19

__all__ = [
    "ToyTransformer",
    "TransformerBlock",
    "StackedToyTransformer",
    "toy_transformer",
    "toy_transformer_stacked",
    "BasicBlock",
    "ResNet18",
    "resnet18",
    "VGG19",
    "vgg19",
    "SmallCNN",
    "small_cnn",
    "MLP",
    "mlp",
]
