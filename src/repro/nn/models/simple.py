"""Small models for fast tests, examples and the FHE end-to-end demo."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.module import Module, Sequential
from repro.nn.tensor import Tensor

__all__ = ["SmallCNN", "small_cnn", "MLP", "mlp"]


class SmallCNN(Module):
    """A 7-layer-style CNN (conv-bn-relu ×2, maxpool, conv-bn-relu, fc).

    Mirrors the "simple 7-layer CNN model under CiFar-10" the paper cites
    from SAFENet when motivating low-degree PAF failures — 3 ReLU + 1
    MaxPool, trainable in seconds on synthetic data.
    """

    def __init__(
        self,
        num_classes: int = 10,
        base_width: int = 8,
        in_channels: int = 3,
        input_size: int = 16,
        seed: Optional[int] = None,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        w = base_width
        self.body = Sequential(
            Conv2d(in_channels, w, 3, padding=1, bias=False, rng=rng),
            BatchNorm2d(w),
            ReLU(),
            Conv2d(w, 2 * w, 3, padding=1, bias=False, rng=rng),
            BatchNorm2d(2 * w),
            ReLU(),
            MaxPool2d(2),
            Conv2d(2 * w, 2 * w, 3, padding=1, bias=False, rng=rng),
            BatchNorm2d(2 * w),
            ReLU(),
            Flatten(),
            Linear(2 * w * (input_size // 2) ** 2, num_classes, rng=rng),
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.body(x)


def small_cnn(**kwargs) -> SmallCNN:
    return SmallCNN(**kwargs)


class MLP(Module):
    """Fully-connected net — the model the FHE compiler runs end to end."""

    def __init__(
        self,
        in_features: int,
        hidden: tuple = (32, 32),
        num_classes: int = 10,
        seed: Optional[int] = None,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        layers: list[Module] = []
        prev = in_features
        for h in hidden:
            layers.append(Linear(prev, h, rng=rng))
            layers.append(ReLU())
            prev = h
        layers.append(Linear(prev, num_classes, rng=rng))
        self.body = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.body(x)


def mlp(in_features: int, **kwargs) -> MLP:
    return MLP(in_features, **kwargs)
