"""ResNet-18 (He et al. 2015) with the paper's non-polynomial layout.

The paper evaluates ResNet-18 on ImageNet-1k: **17 ReLU + 1 MaxPooling**
(Sec. 5.1).  The topology here preserves exactly those counts and their
inference order; width and classes are configurable so the reproduction can
train on CPU-sized synthetic data (the paper-scale constructor is
``resnet18(base_width=64, num_classes=1000)``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.module import Module, Sequential
from repro.nn.tensor import Tensor

__all__ = ["BasicBlock", "ResNet18", "ToyResNet", "resnet18", "toy_resnet"]


class BasicBlock(Module):
    """Two 3×3 convs with a residual connection; 2 ReLUs.

    ``track_running_stats=True`` builds every BatchNorm (including the
    downsample's) with frozen-statistics tracking, which the FHE
    compiler (:func:`repro.fhe.cnn.compile_resnet`) requires so the BNs
    fold into their convs; the default matches the paper's Tab. 5
    training configuration (batch statistics).
    """

    def __init__(
        self,
        in_ch: int,
        out_ch: int,
        stride: int = 1,
        rng: Optional[np.random.Generator] = None,
        track_running_stats: bool = False,
    ):
        super().__init__()
        self.conv1 = Conv2d(in_ch, out_ch, 3, stride=stride, padding=1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(out_ch, track_running_stats=track_running_stats)
        self.relu1 = ReLU()
        self.conv2 = Conv2d(out_ch, out_ch, 3, stride=1, padding=1, bias=False, rng=rng)
        self.bn2 = BatchNorm2d(out_ch, track_running_stats=track_running_stats)
        self.relu2 = ReLU()
        if stride != 1 or in_ch != out_ch:
            self.downsample = Sequential(
                Conv2d(in_ch, out_ch, 1, stride=stride, bias=False, rng=rng),
                BatchNorm2d(out_ch, track_running_stats=track_running_stats),
            )
        else:
            self.downsample = Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = self.relu1(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        out = out + self.downsample(x)
        return self.relu2(out)


class ResNet18(Module):
    """ResNet-18: stem (1 ReLU, 1 MaxPool) + 8 BasicBlocks (16 ReLU).

    Total: 17 ReLU + 1 MaxPooling, matching the paper's Sec. 5.1 inventory.
    """

    def __init__(
        self,
        num_classes: int = 10,
        base_width: int = 64,
        in_channels: int = 3,
        seed: Optional[int] = None,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        w = base_width
        self.conv1 = Conv2d(in_channels, w, 7, stride=2, padding=3, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(w)
        self.relu = ReLU()
        self.maxpool = MaxPool2d(3, stride=2, padding=1)
        self.layer1 = Sequential(
            BasicBlock(w, w, 1, rng=rng), BasicBlock(w, w, 1, rng=rng)
        )
        self.layer2 = Sequential(
            BasicBlock(w, 2 * w, 2, rng=rng), BasicBlock(2 * w, 2 * w, 1, rng=rng)
        )
        self.layer3 = Sequential(
            BasicBlock(2 * w, 4 * w, 2, rng=rng), BasicBlock(4 * w, 4 * w, 1, rng=rng)
        )
        self.layer4 = Sequential(
            BasicBlock(4 * w, 8 * w, 2, rng=rng), BasicBlock(8 * w, 8 * w, 1, rng=rng)
        )
        self.avgpool = GlobalAvgPool2d()
        self.flatten = Flatten()
        self.fc = Linear(8 * w, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = self.maxpool(self.relu(self.bn1(self.conv1(x))))
        x = self.layer4(self.layer3(self.layer2(self.layer1(x))))
        return self.fc(self.flatten(self.avgpool(x)))


def resnet18(
    num_classes: int = 10,
    base_width: int = 64,
    in_channels: int = 3,
    seed: Optional[int] = None,
) -> ResNet18:
    """Factory matching the paper's model (full width by default)."""
    return ResNet18(
        num_classes=num_classes,
        base_width=base_width,
        in_channels=in_channels,
        seed=seed,
    )


class ToyResNet(Module):
    """CPU/FHE-sized residual CNN: stem conv + 2 BasicBlocks + head.

    The smallest topology exercising everything the multi-ciphertext
    compiler must handle: an identity skip (block1), a stride-2
    downsample with a 1×1-projection skip (block2), a global pool and a
    dense head.  Every BatchNorm tracks running statistics so the whole
    net compiles via :func:`repro.fhe.cnn.compile_resnet`; the stem has
    no ReLU (one PAF fewer keeps the FHE level budget at 31 with the
    default f1∘g2 activation — the four block ReLUs remain).
    """

    def __init__(
        self,
        num_classes: int = 3,
        width: int = 2,
        in_channels: int = 1,
        seed: Optional[int] = None,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.conv1 = Conv2d(in_channels, width, 3, padding=1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(width, track_running_stats=True)
        self.block1 = BasicBlock(width, width, 1, rng=rng, track_running_stats=True)
        self.block2 = BasicBlock(width, 2 * width, 2, rng=rng, track_running_stats=True)
        self.avgpool = GlobalAvgPool2d()
        self.flatten = Flatten()
        self.fc = Linear(2 * width, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = self.bn1(self.conv1(x))
        x = self.block2(self.block1(x))
        return self.fc(self.flatten(self.avgpool(x)))


def toy_resnet(
    num_classes: int = 3,
    width: int = 2,
    in_channels: int = 1,
    seed: Optional[int] = None,
) -> ToyResNet:
    """Factory for the toy residual CNN (see :class:`ToyResNet`)."""
    return ToyResNet(
        num_classes=num_classes, width=width, in_channels=in_channels, seed=seed
    )
