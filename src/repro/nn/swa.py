"""Stochastic Weight Averaging (SWA).

The SMART-PAF scheduler applies SWA at the end of every training group
(Fig. 6 / Sec. 6): weights of the last ``E`` epochs are averaged and the
averaged model competes with the best single-epoch model.
"""

from __future__ import annotations


from repro.nn.module import Module

__all__ = ["SWAAverager"]


class SWAAverager:
    """Running average of a model's parameters across epochs.

    Usage::

        swa = SWAAverager(model)
        for epoch in range(E):
            train_one_epoch(...)
            swa.update(model)
        swa_state = swa.averaged_state()   # load into a model to evaluate
    """

    def __init__(self, model: Module):
        self._sum = {k: v.copy() for k, v in model.state_dict().items()}
        self.count = 1

    def update(self, model: Module) -> None:
        state = model.state_dict()
        if set(state) != set(self._sum):
            raise ValueError("model structure changed under SWA averaging")
        for k, v in state.items():
            self._sum[k] += v
        self.count += 1

    def averaged_state(self) -> dict:
        return {k: v / self.count for k, v in self._sum.items()}

    def load_into(self, model: Module) -> Module:
        model.load_state_dict(self.averaged_state())
        return model
