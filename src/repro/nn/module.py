"""Module system: parameter containers with named traversal.

Mirrors the familiar torch.nn.Module contract at the scale this project
needs: named parameter traversal (for optimizers and SWA), train/eval
modes, recursive application, and state dict save/load — plus
``freeze``/``unfreeze`` helpers that Alternate Training relies on.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["Parameter", "Module", "Sequential"]


class Parameter(Tensor):
    """A trainable Tensor (``requires_grad=True`` by default)."""

    def __init__(self, data, requires_grad: bool = True):
        super().__init__(data, requires_grad=requires_grad)


class Module:
    """Base class for layers and models."""

    def __init__(self):
        self._parameters: dict[str, Parameter] = {}
        self._modules: dict[str, "Module"] = {}
        self._buffers: dict[str, np.ndarray] = {}
        self.training = True

    # ------------------------------------------------------------------
    # attribute plumbing
    # ------------------------------------------------------------------
    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Non-trainable state saved in the state dict (e.g. running max)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple]:
        for name, p in self._parameters.items():
            yield (f"{prefix}{name}", p)
        for mname, mod in self._modules.items():
            yield from mod.named_parameters(prefix=f"{prefix}{mname}.")

    def parameters(self) -> list:
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[tuple]:
        yield (prefix.rstrip("."), self)
        for mname, mod in self._modules.items():
            yield from mod.named_modules(prefix=f"{prefix}{mname}.")

    def modules(self) -> list:
        return [m for _, m in self.named_modules()]

    def named_buffers(self, prefix: str = "") -> Iterator[tuple]:
        for name in self._buffers:
            yield (f"{prefix}{name}", getattr(self, name))
        for mname, mod in self._modules.items():
            yield from mod.named_buffers(prefix=f"{prefix}{mname}.")

    def apply(self, fn: Callable[["Module"], None]) -> "Module":
        for m in self.modules():
            fn(m)
        return self

    # ------------------------------------------------------------------
    # modes
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for m in self.modules():
            m.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    # ------------------------------------------------------------------
    # freezing (Alternate Training switches these)
    # ------------------------------------------------------------------
    def freeze(self) -> "Module":
        for p in self.parameters():
            p.requires_grad = False
        return self

    def unfreeze(self) -> "Module":
        for p in self.parameters():
            p.requires_grad = True
        return self

    # ------------------------------------------------------------------
    # state dict
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        for name, b in self.named_buffers():
            state[f"buffer::{name}"] = np.array(b, copy=True)
        return state

    def load_state_dict(self, state: dict) -> None:
        params = dict(self.named_parameters())
        buffers = dict(self.named_buffers())
        for key, value in state.items():
            if key.startswith("buffer::"):
                name = key[len("buffer::") :]
                if name not in buffers:
                    raise KeyError(f"unknown buffer {name!r}")
                # Locate the owning module and rebind.
                *path, leaf = name.split(".")
                mod = self
                for part in path:
                    mod = mod._modules[part]
                mod.register_buffer(leaf, np.array(value, copy=True))
            else:
                if key not in params:
                    raise KeyError(f"unknown parameter {key!r}")
                if params[key].data.shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {key!r}: "
                        f"{params[key].data.shape} vs {value.shape}"
                    )
                params[key].data = value.copy()

    # ------------------------------------------------------------------
    # call protocol
    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        children = ", ".join(self._modules)
        return f"{type(self).__name__}({children})"


class Sequential(Module):
    """Run modules in order; supports indexing, iteration and replacement.

    Model surgery (``repro.core.surgery``) swaps non-polynomial layers for
    PAF layers in place via ``seq[i] = new_layer``.
    """

    def __init__(self, *layers: Module):
        super().__init__()
        for i, layer in enumerate(layers):
            setattr(self, str(i), layer)
        self._length = len(layers)

    def __len__(self) -> int:
        return self._length

    def __iter__(self):
        return (self._modules[str(i)] for i in range(self._length))

    def __getitem__(self, idx: int) -> Module:
        if isinstance(idx, slice):
            return Sequential(*list(self)[idx])
        if idx < 0:
            idx += self._length
        return self._modules[str(idx)]

    def __setitem__(self, idx: int, layer: Module) -> None:
        if idx < 0:
            idx += self._length
        if not 0 <= idx < self._length:
            raise IndexError(idx)
        setattr(self, str(idx), layer)

    def append(self, layer: Module) -> "Sequential":
        setattr(self, str(self._length), layer)
        self._length += 1
        return self

    def forward(self, x: Tensor) -> Tensor:
        for layer in self:
            x = layer(x)
        return x
