"""Deterministic fault injection for the serving stack.

Concurrency bugs don't show up in bit-identity suites — they show up
when a worker dies holding a batch, a tenant submits under the wrong
keys, or admission sheds under load.  :class:`FaultInjector` makes those
events *scripted and repeatable*: faults are scheduled against global
submission / batch ordinals (not wall time, not randomness), so a
seeded test replays the same failure at the same point every run.

Four fault kinds, matching the failure modes ``docs/serving.md``
documents:

* :meth:`~FaultInjector.crash_worker` — the handler dies mid-batch
  (:class:`WorkerCrashError` raised inside the worker).  The server must
  fail that batch's futures explicitly and keep serving.
* :meth:`~FaultInjector.slow_worker` — the worker stalls for a fixed
  duration before executing; latency spikes but nothing is lost.
* :meth:`~FaultInjector.poison_request` — one submission is marked bad
  at admission and detected during batch assembly.  Only *that* request
  fails (:class:`PoisonedRequestError`); its batch neighbours are served.
* :meth:`~FaultInjector.mismatch_keys` — a batch's payload is encrypted
  under the wrong client's keys.  The server's ciphertext integrity
  check must surface :class:`~repro.serve.keys.KeyMismatchError` rather
  than return garbage logits.

The injector is plugged into :class:`~repro.serve.server.InferenceServer`
(``fault_injector=``), which calls the ``on_submit`` / ``split_poisoned``
/ ``on_batch_start`` hooks; ``fired`` counts what actually triggered, so
tests assert every scheduled fault really happened.
"""

from __future__ import annotations

import time
from collections import Counter
from threading import Lock

__all__ = ["WorkerCrashError", "PoisonedRequestError", "FaultInjector"]


class WorkerCrashError(RuntimeError):
    """Injected: the worker executing a batch died mid-flight."""


class PoisonedRequestError(RuntimeError):
    """Injected: one request was corrupt and failed alone in its batch."""


class FaultInjector:
    """Scripted fault schedule over submission and batch ordinals.

    Submissions are numbered 0, 1, 2… in admission order (under the
    server's submit path, which is serialized per call site); batches
    are numbered 0, 1, 2… in the order workers claim them.  Scheduling
    is explicit — no clocks, no RNG — so a test that pins its submission
    schedule gets bit-repeatable failures.
    """

    def __init__(self):
        self._lock = Lock()
        self._submissions = 0
        self._batches = 0
        self._poison_at: set[int] = set()
        self._crash_at: set[int] = set()
        self._slow_at: dict[int, float] = {}
        self._mismatch_at: set[int] = set()
        self._poisoned_ids: set[int] = set()
        #: fault kind -> times it actually triggered
        self.fired: Counter = Counter()

    # ------------------------------------------------------------------
    # scheduling (tests call these)
    # ------------------------------------------------------------------
    def poison_request(self, submission_index: int) -> "FaultInjector":
        """Poison the ``submission_index``-th submitted request."""
        with self._lock:
            self._poison_at.add(int(submission_index))
        return self

    def crash_worker(self, batch_index: int) -> "FaultInjector":
        """Crash the worker handling the ``batch_index``-th batch."""
        with self._lock:
            self._crash_at.add(int(batch_index))
        return self

    def slow_worker(self, batch_index: int, seconds: float = 0.05) -> "FaultInjector":
        """Stall the worker handling the ``batch_index``-th batch."""
        with self._lock:
            self._slow_at[int(batch_index)] = float(seconds)
        return self

    def mismatch_keys(self, batch_index: int) -> "FaultInjector":
        """Encrypt the ``batch_index``-th batch under the wrong keys."""
        with self._lock:
            self._mismatch_at.add(int(batch_index))
        return self

    # ------------------------------------------------------------------
    # server-side hooks
    # ------------------------------------------------------------------
    def on_submit(self, request) -> None:
        """Count one admission; mark it poisoned if scheduled."""
        with self._lock:
            index = self._submissions
            self._submissions += 1
            if index in self._poison_at:
                self._poisoned_ids.add(id(request))

    def split_poisoned(self, batch: list) -> tuple[list, list]:
        """Partition a claimed batch into (clean, poisoned) requests."""
        with self._lock:
            if not self._poisoned_ids:
                return batch, []
            poisoned = [req for req in batch if id(req) in self._poisoned_ids]
            self._poisoned_ids.difference_update(id(req) for req in poisoned)
            self.fired["poison"] += len(poisoned)
        bad = {id(req) for req in poisoned}
        clean = [req for req in batch if id(req) not in bad]
        return clean, poisoned

    def on_batch_start(self, group, batch, worker_index: int) -> set:
        """Apply batch-ordinal faults; returns directives for the server.

        Raises :class:`WorkerCrashError` for a scheduled crash, sleeps
        through a scheduled stall, and returns ``{"key_mismatch"}`` when
        the server should encrypt this batch under the wrong keys.
        """
        with self._lock:
            index = self._batches
            self._batches += 1
            crash = index in self._crash_at
            stall = self._slow_at.get(index)
            mismatch = index in self._mismatch_at
            if crash:
                self.fired["crash"] += 1
            if stall is not None:
                self.fired["slow"] += 1
            if mismatch:
                self.fired["mismatch"] += 1
        if stall is not None:
            time.sleep(stall)
        if crash:
            raise WorkerCrashError(
                f"fault injection: worker {worker_index} crashed on batch {index} "
                f"(group {group})"
            )
        return {"key_mismatch"} if mismatch else set()

    def stats(self) -> dict:
        with self._lock:
            return {
                "submissions": self._submissions,
                "batches": self._batches,
                "fired": dict(self.fired),
            }
