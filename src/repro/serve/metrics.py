"""Serving metrics: throughput, latency percentiles, HE-op accounting.

Collected per batch by :class:`repro.serve.server.InferenceServer`;
``snapshot()`` renders the aggregate view the throughput benchmark and
the ops dashboards read, and ``format_prometheus()`` renders the same
numbers as a Prometheus text exposition.  HE-op counts come from the
existing :class:`repro.ckks.instrumentation.CountingEvaluator` proxies
when the server runs instrumented; per-layer latency histograms come
from the execution tracer (:mod:`repro.obs`) when it runs traced.

Memory is bounded: totals, maxima and histogram buckets are exact
running aggregates, while raw samples (used only for percentiles) live
in fixed-size deques — a server alive for millions of requests reports
exact counts and *windowed* percentiles, never an unbounded list.
"""

from __future__ import annotations

import time
from collections import Counter, deque
from threading import Lock

import numpy as np

__all__ = ["ServingMetrics", "percentile", "LATENCY_BUCKETS_MS"]

#: Cumulative histogram upper bounds (ms) for per-layer latency.
LATENCY_BUCKETS_MS = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0)


def percentile(values, q: float) -> float:
    """Percentile of a latency sample (0.0 on an empty sample)."""
    if not len(values):
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


def _escape_label(value) -> str:
    """Escape a Prometheus label value (backslash, quote, newline)."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


class _TenantStats:
    """Exact per-(model, client) counters."""

    __slots__ = ("requests", "batches", "errors", "shed")

    def __init__(self):
        self.requests = 0
        self.batches = 0
        self.errors = 0
        self.shed = 0

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "errors": self.errors,
            "shed": self.shed,
        }


class _LayerStats:
    """Exact running aggregate + cumulative histogram for one layer."""

    __slots__ = ("count", "sum_ms", "max_ms", "buckets")

    def __init__(self):
        self.count = 0
        self.sum_ms = 0.0
        self.max_ms = 0.0
        self.buckets = [0] * (len(LATENCY_BUCKETS_MS) + 1)  # last = +Inf

    def observe(self, ms: float) -> None:
        self.count += 1
        self.sum_ms += ms
        if ms > self.max_ms:
            self.max_ms = ms
        for i, bound in enumerate(LATENCY_BUCKETS_MS):
            if ms <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean_ms": self.sum_ms / self.count if self.count else 0.0,
            "max_ms": self.max_ms,
            "sum_ms": self.sum_ms,
        }


class ServingMetrics:
    """Thread-safe accumulator of per-batch serving observations.

    ``max_samples`` bounds the percentile windows (``latencies_ms``,
    ``batch_sizes``, ``batch_seconds``); everything else is an exact
    running total regardless of how long the server lives.
    """

    def __init__(self, max_samples: int = 4096):
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.max_samples = max_samples
        self._lock = Lock()
        self._queue_depth_fn = None
        self.reset()

    def reset(self) -> None:
        with self._lock:
            self.requests_total = 0
            self.batches_total = 0
            self.latency_sum_ms = 0.0
            self.latency_count = 0
            self.latency_max_ms = 0.0
            self.batch_seconds_sum = 0.0
            self.batch_sizes: deque[int] = deque(maxlen=self.max_samples)
            self.latencies_ms: deque[float] = deque(maxlen=self.max_samples)
            self.batch_seconds: deque[float] = deque(maxlen=self.max_samples)
            self.op_counts: Counter = Counter()
            self.in_flight_batches = 0
            self.shed_total = 0
            self.errors: Counter = Counter()   # error kind -> count
            self._tenants: dict[tuple, _TenantStats] = {}
            self._layers: dict[str, _LayerStats] = {}
            self._started_at: float | None = None
            self._last_at: float | None = None

    # ------------------------------------------------------------------
    # gauges
    # ------------------------------------------------------------------
    def bind_queue_depth(self, depth_fn) -> None:
        """Register a zero-arg callable polled for the queue-depth gauge
        (the server binds ``len`` of its :class:`BatchQueue`)."""
        self._queue_depth_fn = depth_fn

    def queue_depth(self) -> int:
        fn = self._queue_depth_fn
        # clamp: a gauge must never go negative, whatever the callable does
        return max(0, int(fn())) if fn is not None else 0

    def batch_started(self) -> None:
        with self._lock:
            self.in_flight_batches += 1

    def batch_finished(self) -> None:
        with self._lock:
            self.in_flight_batches = max(0, self.in_flight_batches - 1)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _tenant(self, model, client) -> _TenantStats | None:
        """Per-tenant bucket (``None`` when the batch carries no labels).
        Callers hold ``self._lock``."""
        if model is None and client is None:
            return None
        key = (model or "default", client or "default")
        stats = self._tenants.get(key)
        if stats is None:
            stats = self._tenants[key] = _TenantStats()
        return stats

    def record_shed(self, count: int = 1, model=None, client=None) -> None:
        """Count load-shed requests (rejected with ``QueueOverflow``)."""
        with self._lock:
            self.shed_total += count
            tenant = self._tenant(model, client)
            if tenant is not None:
                tenant.shed += count

    def record_error(self, kind: str, count: int = 1, model=None, client=None) -> None:
        """Count requests failed with an explicit per-request error."""
        with self._lock:
            self.errors[kind] += count
            tenant = self._tenant(model, client)
            if tenant is not None:
                tenant.errors += count

    def record_batch(
        self,
        batch_size: int,
        batch_seconds: float,
        latencies_ms,
        op_counts: Counter | None = None,
        layer_seconds: dict | None = None,
        model=None,
        client=None,
    ) -> None:
        now = time.perf_counter()
        with self._lock:
            if self._started_at is None:
                self._started_at = now - batch_seconds
            self._last_at = now
            self.requests_total += batch_size
            self.batches_total += 1
            tenant = self._tenant(model, client)
            if tenant is not None:
                tenant.requests += batch_size
                tenant.batches += 1
            self.batch_seconds_sum += batch_seconds
            self.batch_sizes.append(batch_size)
            self.batch_seconds.append(batch_seconds)
            for ms in latencies_ms:
                self.latency_sum_ms += ms
                self.latency_count += 1
                if ms > self.latency_max_ms:
                    self.latency_max_ms = ms
                self.latencies_ms.append(ms)
            if op_counts:
                self.op_counts.update(op_counts)
            if layer_seconds:
                self._record_layers(layer_seconds)

    def record_layer_seconds(self, layer_seconds: dict) -> None:
        """Feed one traced forward's per-layer durations (``name ->
        seconds``, e.g. from :meth:`repro.obs.Tracer.layer_spans`)."""
        with self._lock:
            self._record_layers(layer_seconds)

    def _record_layers(self, layer_seconds: dict) -> None:
        for name, seconds in layer_seconds.items():
            stats = self._layers.get(name)
            if stats is None:
                stats = self._layers[name] = _LayerStats()
            stats.observe(seconds * 1000.0)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Aggregate view: throughput, batch sizes, latency percentiles,
        queue/in-flight gauges, per-layer latency, ops.

        Counts, means and maxima are exact; p50/p95 come from the last
        ``max_samples`` observations.
        """
        with self._lock:
            elapsed = (
                (self._last_at - self._started_at)
                if self._started_at is not None and self._last_at is not None
                else 0.0
            )
            lat = self.latencies_ms
            return {
                "requests_total": self.requests_total,
                "batches_total": self.batches_total,
                "mean_batch_size": (
                    self.requests_total / self.batches_total
                    if self.batches_total
                    else 0.0
                ),
                "elapsed_seconds": elapsed,
                "throughput_rps": self.requests_total / elapsed if elapsed > 0 else 0.0,
                "queue_depth": self.queue_depth(),
                "in_flight_batches": self.in_flight_batches,
                "latency_ms": {
                    "mean": (
                        self.latency_sum_ms / self.latency_count
                        if self.latency_count
                        else 0.0
                    ),
                    "p50": percentile(lat, 50),
                    "p95": percentile(lat, 95),
                    "max": self.latency_max_ms,
                },
                "layers": {
                    name: stats.as_dict()
                    for name, stats in sorted(self._layers.items())
                },
                "he_ops": dict(self.op_counts),
                "shed_total": self.shed_total,
                "errors": dict(self.errors),
                "tenants": {
                    f"{model}/{client}": stats.as_dict()
                    for (model, client), stats in sorted(self._tenants.items())
                },
            }

    def format(self) -> str:
        """One-paragraph human-readable summary."""
        s = self.snapshot()
        lat = s["latency_ms"]
        lines = [
            f"requests={s['requests_total']}  batches={s['batches_total']}  "
            f"mean_batch={s['mean_batch_size']:.2f}",
            f"throughput={s['throughput_rps']:.2f} req/s over {s['elapsed_seconds']:.2f}s",
            f"queue_depth={s['queue_depth']}  in_flight={s['in_flight_batches']}",
            f"latency_ms mean={lat['mean']:.1f}  p50={lat['p50']:.1f}  "
            f"p95={lat['p95']:.1f}  max={lat['max']:.1f}",
        ]
        for name, stats in s["layers"].items():
            lines.append(
                f"layer {name}: n={stats['count']} "
                f"mean={stats['mean_ms']:.1f}ms max={stats['max_ms']:.1f}ms"
            )
        if s["he_ops"]:
            ops = "  ".join(f"{k}={v}" for k, v in sorted(s["he_ops"].items()))
            lines.append(f"he_ops: {ops}")
        return "\n".join(lines)

    def format_prometheus(self, prefix: str = "repro_serve") -> str:
        """Prometheus text exposition of the snapshot.

        Counters/gauges are exact; per-layer latency is a cumulative
        histogram (``_bucket``/``_sum``/``_count`` with ``le`` labels in
        milliseconds); overall latency quantiles are windowed.
        """
        s = self.snapshot()
        lat = s["latency_ms"]
        out = [
            f"# TYPE {prefix}_requests_total counter",
            f"{prefix}_requests_total {s['requests_total']}",
            f"# TYPE {prefix}_batches_total counter",
            f"{prefix}_batches_total {s['batches_total']}",
            f"# TYPE {prefix}_queue_depth gauge",
            f"{prefix}_queue_depth {s['queue_depth']}",
            f"# TYPE {prefix}_in_flight_batches gauge",
            f"{prefix}_in_flight_batches {s['in_flight_batches']}",
            f"# TYPE {prefix}_throughput_rps gauge",
            f"{prefix}_throughput_rps {s['throughput_rps']:.6f}",
            f"# TYPE {prefix}_request_latency_ms summary",
            f'{prefix}_request_latency_ms{{quantile="0.5"}} {lat["p50"]:.6f}',
            f'{prefix}_request_latency_ms{{quantile="0.95"}} {lat["p95"]:.6f}',
            f"{prefix}_request_latency_ms_sum {self.latency_sum_ms:.6f}",
            f"{prefix}_request_latency_ms_count {self.latency_count}",
            f"# TYPE {prefix}_shed_total counter",
            f"{prefix}_shed_total {s['shed_total']}",
        ]
        if s["errors"]:
            out.append(f"# TYPE {prefix}_request_errors_total counter")
            for kind, n in sorted(s["errors"].items()):
                out.append(
                    f'{prefix}_request_errors_total{{kind="{_escape_label(kind)}"}} {n}'
                )
        with self._lock:
            tenants = sorted(self._tenants.items())
        if tenants:
            for metric, attr in (
                ("tenant_requests_total", "requests"),
                ("tenant_errors_total", "errors"),
                ("tenant_shed_total", "shed"),
            ):
                out.append(f"# TYPE {prefix}_{metric} counter")
                for (model, client), stats in tenants:
                    out.append(
                        f'{prefix}_{metric}{{model="{_escape_label(model)}",'
                        f'client="{_escape_label(client)}"}} {getattr(stats, attr)}'
                    )
        with self._lock:
            layers = sorted(self._layers.items())
        if layers:
            out.append(f"# TYPE {prefix}_layer_latency_ms histogram")
            for name, stats in layers:
                cumulative = 0
                for bound, n in zip(LATENCY_BUCKETS_MS, stats.buckets):
                    cumulative += n
                    out.append(
                        f'{prefix}_layer_latency_ms_bucket'
                        f'{{layer="{name}",le="{bound:g}"}} {cumulative}'
                    )
                out.append(
                    f'{prefix}_layer_latency_ms_bucket'
                    f'{{layer="{name}",le="+Inf"}} {stats.count}'
                )
                out.append(
                    f'{prefix}_layer_latency_ms_sum{{layer="{name}"}} '
                    f"{stats.sum_ms:.6f}"
                )
                out.append(
                    f'{prefix}_layer_latency_ms_count{{layer="{name}"}} {stats.count}'
                )
        if s["he_ops"]:
            out.append(f"# TYPE {prefix}_he_ops_total counter")
            for op, n in sorted(s["he_ops"].items()):
                out.append(f'{prefix}_he_ops_total{{op="{op}"}} {n}')
        return "\n".join(out) + "\n"
