"""Serving metrics: throughput, latency percentiles, HE-op accounting.

Collected per batch by :class:`repro.serve.server.InferenceServer`;
``snapshot()`` renders the aggregate view the throughput benchmark and
the ops dashboards read.  HE-op counts come from the existing
:class:`repro.ckks.instrumentation.CountingEvaluator` proxies when the
server runs instrumented.
"""

from __future__ import annotations

import time
from collections import Counter
from threading import Lock

import numpy as np

__all__ = ["ServingMetrics", "percentile"]


def percentile(values, q: float) -> float:
    """Percentile of a latency sample (0.0 on an empty sample)."""
    if not len(values):
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


class ServingMetrics:
    """Thread-safe accumulator of per-batch serving observations."""

    def __init__(self):
        self._lock = Lock()
        self.reset()

    def reset(self) -> None:
        with self._lock:
            self.requests_total = 0
            self.batches_total = 0
            self.batch_sizes: list[int] = []
            self.latencies_ms: list[float] = []
            self.batch_seconds: list[float] = []
            self.op_counts: Counter = Counter()
            self._started_at: float | None = None
            self._last_at: float | None = None

    # ------------------------------------------------------------------
    def record_batch(
        self,
        batch_size: int,
        batch_seconds: float,
        latencies_ms,
        op_counts: Counter | None = None,
    ) -> None:
        now = time.perf_counter()
        with self._lock:
            if self._started_at is None:
                self._started_at = now - batch_seconds
            self._last_at = now
            self.requests_total += batch_size
            self.batches_total += 1
            self.batch_sizes.append(batch_size)
            self.batch_seconds.append(batch_seconds)
            self.latencies_ms.extend(latencies_ms)
            if op_counts:
                self.op_counts.update(op_counts)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Aggregate view: throughput, batch sizes, latency percentiles, ops."""
        with self._lock:
            elapsed = (
                (self._last_at - self._started_at)
                if self._started_at is not None and self._last_at is not None
                else 0.0
            )
            lat = self.latencies_ms
            return {
                "requests_total": self.requests_total,
                "batches_total": self.batches_total,
                "mean_batch_size": (
                    float(np.mean(self.batch_sizes)) if self.batch_sizes else 0.0
                ),
                "elapsed_seconds": elapsed,
                "throughput_rps": self.requests_total / elapsed if elapsed > 0 else 0.0,
                "latency_ms": {
                    "mean": float(np.mean(lat)) if lat else 0.0,
                    "p50": percentile(lat, 50),
                    "p95": percentile(lat, 95),
                    "max": float(np.max(lat)) if lat else 0.0,
                },
                "he_ops": dict(self.op_counts),
            }

    def format(self) -> str:
        """One-paragraph human-readable summary."""
        s = self.snapshot()
        lat = s["latency_ms"]
        lines = [
            f"requests={s['requests_total']}  batches={s['batches_total']}  "
            f"mean_batch={s['mean_batch_size']:.2f}",
            f"throughput={s['throughput_rps']:.2f} req/s over {s['elapsed_seconds']:.2f}s",
            f"latency_ms mean={lat['mean']:.1f}  p50={lat['p50']:.1f}  "
            f"p95={lat['p95']:.1f}  max={lat['max']:.1f}",
        ]
        if s["he_ops"]:
            ops = "  ".join(f"{k}={v}" for k, v in sorted(s["he_ops"].items()))
            lines.append(f"he_ops: {ops}")
        return "\n".join(lines)
