"""``repro.serve`` — batched encrypted-inference serving.

The paper makes private inference *fast* by replacing non-polynomial
operators with low-degree PAFs; this subsystem makes the resulting
CKKS pipeline fast *per request* by amortising it:

SIMD request packing (:mod:`repro.serve.packing`)
    A compiled model of square width ``size`` needs only ``2·size`` of
    the ciphertext's ``N/2`` slots, so up to ``slots // (2·size)``
    independent client inputs are packed into disjoint slot blocks of a
    *single* ciphertext (each block wraparound-replicated so the
    Halevi-Shoup cyclic diagonals align per block).  One encrypted
    forward — the same rotations, plaintext multiplies, rescales and PAF
    evaluations as a single request — then serves the whole batch, and
    per-client logits are demultiplexed on decrypt.

Encoding caches (:mod:`repro.serve.artifact`)
    The weights never change and a fixed network meets each linear layer
    at one deterministic ``(level, scale)``, so the artifact pre-encodes
    every tiled diagonal and bias as a CKKS ``Plaintext`` and memoises
    PAF constants behind the evaluator's encoder: steady-state requests
    perform zero plaintext encoding.

Admission + workers (:mod:`repro.serve.queue`)
    Requests accumulate until the batch is full (``max_batch_size``) or
    the oldest has waited ``max_wait_ms`` (flush-on-timeout); worker
    threads drain batches, each with its own evaluator over shared keys.

Facade + metrics (:mod:`repro.serve.server`, :mod:`repro.serve.metrics`)
    :class:`InferenceServer` is the entry point: ``submit(x)`` returns a
    future resolving to logits/prediction/latency; throughput, latency
    percentiles and HE-op counts are aggregated per batch.

Quickstart::

    from repro.serve import InferenceServer, ModelArtifact

    artifact = ModelArtifact.compile(paf_model, params)   # or wrap compile_mlp(...)
    with InferenceServer(artifact, num_classes=10, max_wait_ms=5) as srv:
        results = srv.predict_many(client_inputs)
    print(srv.metrics.format())

See ``benchmarks/bench_serve_throughput.py`` for the amortised-speedup
measurement (batched vs sequential requests/sec).
"""

from repro.serve.artifact import CachingEncoder, ModelArtifact, PlaintextCache
from repro.serve.metrics import ServingMetrics, percentile
from repro.serve.packing import (
    BlockLayout,
    layout_for,
    pack_batch,
    split_batches,
    unpack_blocks,
)
from repro.serve.queue import BatchQueue, Request, WorkerPool
from repro.serve.server import InferenceResult, InferenceServer

__all__ = [
    "BlockLayout",
    "layout_for",
    "pack_batch",
    "unpack_blocks",
    "split_batches",
    "PlaintextCache",
    "CachingEncoder",
    "ModelArtifact",
    "BatchQueue",
    "Request",
    "WorkerPool",
    "ServingMetrics",
    "percentile",
    "InferenceResult",
    "InferenceServer",
]
