"""``repro.serve`` — batched encrypted-inference serving.

The paper makes private inference *fast* by replacing non-polynomial
operators with low-degree PAFs; this subsystem makes the resulting
CKKS pipeline fast *per request* by amortising it:

SIMD request packing (:mod:`repro.serve.packing`)
    A compiled model of square width ``size`` needs only ``2·size`` of
    the ciphertext's ``N/2`` slots, so up to ``slots // (2·size)``
    independent client inputs are packed into disjoint slot blocks of a
    *single* ciphertext (each block wraparound-replicated so the
    Halevi-Shoup cyclic diagonals align per block).  One encrypted
    forward — the same rotations, plaintext multiplies, rescales and PAF
    evaluations as a single request — then serves the whole batch, and
    per-client logits are demultiplexed on decrypt.

Encoding caches (:mod:`repro.serve.artifact`)
    The weights never change and a fixed network meets each linear layer
    at one deterministic ``(level, scale)``, so the artifact pre-encodes
    every tiled diagonal and bias as a CKKS ``Plaintext`` and memoises
    PAF constants behind the evaluator's encoder: steady-state requests
    perform zero plaintext encoding.

Admission + workers (:mod:`repro.serve.queue`)
    Requests accumulate per ``(model, client)`` group until that group's
    batch is full or its oldest request has waited ``max_wait_ms``
    (flush-on-timeout); worker threads drain whole groups, each with its
    own evaluator over that tenant's keys.  Admission is bounded: over
    ``max_pending`` a submit sheds (:class:`QueueOverflow`) or, with
    ``block=True``, waits for capacity (backpressure).

Tenant keys (:mod:`repro.serve.keys`)
    :class:`ClientKeyRegistry` derives one CKKS key chain per client and
    generates each client's Galois keys *once* per rotation element
    across all hosted models (shared-step dedup) — two tenants never
    share secrets, yet share every key-independent encoding cache.

Fault injection (:mod:`repro.serve.faults`)
    :class:`FaultInjector` deterministically scripts worker crashes,
    stalls, poisoned requests and wrong-key submissions against
    submission/batch ordinals; the concurrency suite uses it to pin that
    every failure surfaces as an explicit per-request error while the
    server keeps serving.

Facade + metrics (:mod:`repro.serve.server`, :mod:`repro.serve.metrics`)
    :class:`InferenceServer` is the entry point: ``submit(x, client_id=...,
    model=...)`` returns a future resolving to logits/prediction/latency;
    throughput, latency percentiles, HE-op counts, shed/error counters
    and per-tenant series are aggregated per batch.  Sharded models can
    schedule their block grid onto a :mod:`repro.serve.executor`
    thread/process pool.

Quickstart::

    from repro.serve import InferenceServer, ModelArtifact

    artifact = ModelArtifact.compile(paf_model, params)   # or wrap compile_mlp(...)
    with InferenceServer(artifact, num_classes=10, max_wait_ms=5) as srv:
        results = srv.predict_many(client_inputs)
    print(srv.metrics.format())

See ``benchmarks/bench_serve_throughput.py`` for the amortised-speedup
measurement (batched vs sequential requests/sec).
"""

from repro.serve.artifact import (
    ArtifactMismatchError,
    CachingEncoder,
    ModelArtifact,
    PlaintextCache,
)
from repro.serve.executor import (
    BlockExecutor,
    ProcessBlockExecutor,
    ThreadBlockExecutor,
    make_executor,
)
from repro.serve.faults import FaultInjector, PoisonedRequestError, WorkerCrashError
from repro.serve.keys import (
    DEFAULT_CLIENT,
    ClientKeyRegistry,
    KeyMismatchError,
    UnknownClientError,
)
from repro.serve.metrics import ServingMetrics, percentile
from repro.serve.packing import (
    BlockLayout,
    layout_for,
    pack_batch,
    split_batches,
    unpack_blocks,
)
from repro.serve.queue import (
    DEFAULT_MODEL,
    BatchQueue,
    QueueClosed,
    QueueOverflow,
    Request,
    WorkerPool,
)
from repro.serve.server import InferenceResult, InferenceServer, UnknownModelError

__all__ = [
    "BlockLayout",
    "layout_for",
    "pack_batch",
    "unpack_blocks",
    "split_batches",
    "PlaintextCache",
    "CachingEncoder",
    "ModelArtifact",
    "ArtifactMismatchError",
    "BatchQueue",
    "QueueClosed",
    "QueueOverflow",
    "Request",
    "WorkerPool",
    "DEFAULT_MODEL",
    "DEFAULT_CLIENT",
    "ClientKeyRegistry",
    "KeyMismatchError",
    "UnknownClientError",
    "UnknownModelError",
    "FaultInjector",
    "WorkerCrashError",
    "PoisonedRequestError",
    "BlockExecutor",
    "ThreadBlockExecutor",
    "ProcessBlockExecutor",
    "make_executor",
    "ServingMetrics",
    "percentile",
    "InferenceResult",
    "InferenceServer",
]
