"""Per-client key material for multi-tenant serving.

A single :class:`~repro.fhe.network.EncryptedNetwork` bakes in one
implicit key owner: ``keygen`` runs inside compilation and the model's
evaluator encrypts and decrypts under that one chain.  Real serving has
*many* clients, each with their own secret — the server must evaluate
the same compiled model under whichever client's keys a request arrives
with, without ever mixing material between tenants.

:class:`ClientKeyRegistry` owns that mapping:

* one :class:`~repro.ckks.keys.KeyChain` per ``(client, context
  signature)`` — a client serving two models compiled against the *same*
  CKKS parameters (ring degree, prime chain, canonical scale) reuses a
  single chain across both, so its secret/public/relin material is
  generated once;
* **shared Galois-key dedup**: the rotation-key *elements* a model needs
  are read off the model's own baked chain (``model.keys.galois``), and
  only the elements a client's chain is still missing are generated.
  Two models whose BSGS plans overlap (they usually do — the replicate
  step, pool shifts and small baby steps recur) share those families per
  client instead of regenerating them per model.  ``stats()`` reports
  the generated/reused split, which the dedup test pins.

Client seeds are deterministic functions of the client id (overridable
at :meth:`ClientKeyRegistry.register`), so a restarted server re-derives
bit-identical client chains — the property the fault-injection suite
leans on for reproducible key-mismatch scenarios.
"""

from __future__ import annotations

import hashlib
from threading import Lock

from repro.ckks.evaluator import CkksEvaluator
from repro.ckks.keys import KeyChain, KeySwitchFamily, _automorphism_int, keygen

__all__ = [
    "DEFAULT_CLIENT",
    "UnknownClientError",
    "KeyMismatchError",
    "context_signature",
    "client_seed",
    "ClientKeyRegistry",
]

#: The implicit tenant of a single-model server: the model's baked keys.
DEFAULT_CLIENT = "default"


class UnknownClientError(KeyError):
    """A request named a ``client_id`` the registry has never seen."""


class KeyMismatchError(RuntimeError):
    """A batch decrypted to garbage: the submission's claimed client keys
    do not match the material the ciphertexts were encrypted under."""


def context_signature(ctx) -> tuple:
    """Hashable identity of a CKKS context's key-compatibility class.

    Two contexts with equal signatures accept the same key material:
    same ring degree, same full RNS prime ladder (chain + special), same
    canonical scale.  Distinct context *objects* per model are fine —
    what matters for a shared client chain is the arithmetic.
    """
    return (ctx.n, tuple(int(p) for p in ctx.all_primes), float(ctx.scale))


def client_seed(client_id: str) -> int:
    """Deterministic keygen seed for a client id (stable across runs)."""
    digest = hashlib.sha256(client_id.encode("utf-8")).digest()
    return int.from_bytes(digest[:6], "big")


class ClientKeyRegistry:
    """Thread-safe registry of per-client key chains with Galois dedup."""

    def __init__(self):
        self._lock = Lock()
        self._seeds: dict[str, int] = {}
        #: (client_id, context_signature) -> KeyChain
        self._chains: dict[tuple, KeyChain] = {}
        self.galois_generated = 0
        self.galois_reused = 0

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, client_id: str, seed: int | None = None) -> str:
        """Admit a client; its chain materialises lazily on first use.

        Idempotent for a matching seed; re-registering with a different
        seed is rejected (it would silently orphan issued ciphertexts).
        """
        if not client_id:
            raise ValueError("client_id must be a non-empty string")
        seed = client_seed(client_id) if seed is None else int(seed)
        with self._lock:
            known = self._seeds.get(client_id)
            if known is not None and known != seed:
                raise ValueError(
                    f"client {client_id!r} already registered with a different seed"
                )
            self._seeds[client_id] = seed
        return client_id

    @property
    def clients(self) -> list[str]:
        with self._lock:
            return sorted(self._seeds)

    def __contains__(self, client_id: str) -> bool:
        with self._lock:
            return client_id in self._seeds

    # ------------------------------------------------------------------
    # chains and evaluators
    # ------------------------------------------------------------------
    def chain_for(self, client_id: str, model) -> KeyChain:
        """The client's key chain for ``model``'s context, grown to cover
        every Galois element the model's compiled plans rotate by."""
        with self._lock:
            seed = self._seeds.get(client_id)
        if seed is None:
            raise UnknownClientError(
                f"client {client_id!r} is not registered (register_client first)"
            )
        sig = context_signature(model.ctx)
        with self._lock:
            chain = self._chains.get((client_id, sig))
        if chain is None:
            # keygen outside the lock: secret/public/relin for one client
            # must not serialize every other tenant's admission
            chain = keygen(model.ctx, seed=seed)
            with self._lock:
                chain = self._chains.setdefault((client_id, sig), chain)
        self._ensure_elements(chain, model)
        return chain

    def _ensure_elements(self, chain: KeyChain, model) -> None:
        """Grow ``chain`` with the model's Galois elements (dedup'd).

        The required element set is exactly the baked chain's — the
        compiled plans sized it — so dedup works at the element level
        and is independent of which *steps* produced each element.
        """
        needed = sorted(int(g) for g in model.keys.galois)
        with self._lock:
            missing = [g for g in needed if g not in chain.galois]
            self.galois_reused += len(needed) - len(missing)
            self.galois_generated += len(missing)
            for g in missing:
                s_g = _automorphism_int(chain.secret.coeffs, g)
                chain.galois[g] = KeySwitchFamily(
                    model.ctx, chain.secret, s_g, seed=chain.galois_seed + 500 + g
                )

    def evaluator_for(self, client_id: str, model, seed: int = 1) -> CkksEvaluator:
        """A fresh evaluator over the client's chain and the model's context.

        Shares the model's (caching) encoder, so pre-encoded plaintexts —
        key-independent by construction — are reused across every tenant.
        """
        ev = CkksEvaluator(model.ctx, self.chain_for(client_id, model), seed=seed)
        ev.encoder = model.ev.encoder
        return ev

    def stats(self) -> dict:
        with self._lock:
            return {
                "clients": len(self._seeds),
                "chains": len(self._chains),
                "galois_generated": self.galois_generated,
                "galois_reused": self.galois_reused,
            }
