"""The multi-tenant batched encrypted-inference server facade.

``submit(x, client_id=..., model=...)`` returns a future; behind it,
requests are grouped per ``(model, client)`` into SIMD batches
(:mod:`repro.serve.queue` — two tenants never share a ciphertext),
packed into disjoint slot blocks, pushed through one encrypted forward
using the artifact's pre-encoded plaintexts (:mod:`repro.serve.artifact`
— key-independent, so every tenant shares them), and demultiplexed back
into per-client logits on decrypt.  Client key material comes from a
:class:`~repro.serve.keys.ClientKeyRegistry`; the default tenant uses
the model's own baked keys, so a single-model single-tenant server works
exactly as before.

Admission is bounded (``max_pending``): a full queue **sheds** with
:class:`~repro.serve.queue.QueueOverflow` (or applies backpressure with
``submit(..., block=True)``).  Per-batch observations land in
:class:`repro.serve.metrics.ServingMetrics` with per-tenant labels; with
``trace=True`` each worker additionally runs a
:class:`repro.obs.TracingEvaluator`.  A
:class:`~repro.serve.faults.FaultInjector` can be plugged in to script
worker crashes, stalls, poisoned requests and key-mismatch submissions —
every injected failure surfaces as an explicit per-request error while
the server keeps serving (the concurrency suite pins this).
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from dataclasses import dataclass
from threading import Lock

import numpy as np

from repro.ckks.instrumentation import CountingEvaluator
from repro.obs import TracingEvaluator
from repro.serve.artifact import ModelArtifact
from repro.serve.faults import FaultInjector, PoisonedRequestError, WorkerCrashError
from repro.serve.keys import (
    DEFAULT_CLIENT,
    ClientKeyRegistry,
    KeyMismatchError,
    UnknownClientError,
)
from repro.serve.metrics import ServingMetrics
from repro.serve.queue import (
    DEFAULT_MODEL,
    BatchQueue,
    QueueOverflow,
    Request,
    WorkerPool,
)

__all__ = ["InferenceResult", "InferenceServer", "UnknownModelError"]


class UnknownModelError(KeyError):
    """A request named a model this server does not host."""


def _as_artifact(model, params) -> ModelArtifact:
    """Normalise anything the server accepts into a :class:`ModelArtifact`.

    Artifacts pass through; compiled networks are wrapped; an
    *uncompiled* ``repro.nn`` module is compiled through the unified
    :meth:`ModelArtifact.compile` entry (which dispatches on the model
    type) — that path needs the server's ``params``.
    """
    if isinstance(model, ModelArtifact):
        return model
    from repro.nn.module import Module

    if isinstance(model, Module):
        if params is None:
            raise ValueError(
                "an uncompiled repro.nn model needs params= — the server "
                "compiles it via ModelArtifact.compile(model, params)"
            )
        return ModelArtifact.compile(model, params)
    return ModelArtifact(model)


@dataclass(frozen=True)
class InferenceResult:
    """What a client gets back for one request."""

    logits: np.ndarray
    prediction: int
    latency_ms: float   #: enqueue -> logits, including batching wait
    batch_size: int     #: how many requests shared the ciphertext
    model: str = DEFAULT_MODEL
    client_id: str = DEFAULT_CLIENT


class InferenceServer:
    """Multi-tenant batched encrypted-inference server.

    Parameters
    ----------
    model:
        A :class:`ModelArtifact`, a bare compiled
        :class:`~repro.fhe.network.EncryptedNetwork` (wrapped
        automatically), an *uncompiled* ``repro.nn`` module (compiled
        through :meth:`ModelArtifact.compile` — requires ``params``),
        or a ``{name: any-of-those}`` dict to serve several models from
        one worker pool.
    num_classes:
        Logit count demultiplexed per client — an int (shared) or a
        ``{model_name: int}`` dict.
    max_batch_size:
        Admission cap; clamped per model to the ciphertext's SIMD
        capacity (``slots // (2·size)``).
    max_wait_ms:
        Flush deadline for a partially filled batch.
    num_workers:
        Worker threads; each gets its own evaluator per (model, client)
        against shared keys (encoding caches are shared).
    max_pending:
        Total admission bound.  A non-blocking submit over it sheds with
        :class:`QueueOverflow`; ``submit(..., block=True)`` waits
        (backpressure).  ``None`` = unbounded (the old behavior).
    key_registry:
        :class:`ClientKeyRegistry` for non-default tenants (one is
        created when omitted).  ``register_client`` proxies to it.
    fault_injector:
        Optional :class:`~repro.serve.faults.FaultInjector` — the
        deterministic failure-mode harness.
    shard_executor:
        Optional :class:`~repro.serve.executor.BlockExecutor` scheduling
        sharded models' block grids across threads/processes.  Ignored
        while tracing (the tracer's span stack is per-thread).
    integrity_tol:
        Ciphertext integrity bound: after a forward whose final layer is
        linear, the replica half of block 0 must decrypt to ~0 (the
        matvec zeroes it).  Garbage there — the signature of a
        key-mismatch submission — fails the batch with
        :class:`KeyMismatchError`.  ``None`` disables the check.
    params:
        :class:`~repro.ckks.params.CkksParams` used to compile any
        *uncompiled* ``repro.nn`` models passed in ``model`` (ignored
        for artifacts and already-compiled networks).
    instrument / trace / warm:
        As before: op counting, execution tracing, cache warm-up.

    Usage::

        with InferenceServer({"mlp": art_a, "resnet": art_b},
                             num_classes={"mlp": 3, "resnet": 3},
                             key_registry=registry) as srv:
            srv.register_client("alice")
            fut = srv.submit(x, client_id="alice", model="mlp")
            result = fut.result()
    """

    def __init__(
        self,
        model,
        num_classes,
        *,
        max_batch_size: int | None = None,
        max_wait_ms: float = 8.0,
        num_workers: int = 1,
        instrument: bool = False,
        trace: bool = False,
        warm: bool = True,
        max_pending: int | None = None,
        key_registry: ClientKeyRegistry | None = None,
        fault_injector: FaultInjector | None = None,
        shard_executor=None,
        integrity_tol: float | None = 0.25,
        params=None,
    ):
        if isinstance(model, dict):
            if not model:
                raise ValueError("need at least one model to serve")
            self.artifacts = {
                name: _as_artifact(m, params) for name, m in model.items()
            }
        else:
            self.artifacts = {DEFAULT_MODEL: _as_artifact(model, params)}
        #: back-compat single-model aliases (None when serving several)
        self.artifact = (
            next(iter(self.artifacts.values())) if len(self.artifacts) == 1 else None
        )
        self.model = self.artifact.model if self.artifact is not None else None

        if isinstance(num_classes, dict):
            missing = set(self.artifacts) - set(num_classes)
            if missing:
                raise ValueError(f"num_classes missing models: {sorted(missing)}")
            self._num_classes = {name: int(num_classes[name]) for name in self.artifacts}
        else:
            self._num_classes = {name: int(num_classes) for name in self.artifacts}
        self.num_classes = num_classes

        self._capacity: dict[str, int] = {}
        for name, art in self.artifacts.items():
            cap = art.model.max_batch
            if max_batch_size is not None:
                cap = max(1, min(max_batch_size, cap))
            self._capacity[name] = cap
        self.max_batch_size = max(self._capacity.values())

        self.key_registry = key_registry if key_registry is not None else ClientKeyRegistry()
        self.faults = fault_injector
        self.shard_executor = shard_executor
        self.metrics = ServingMetrics()
        self._trace = trace
        self._instrument = instrument or trace
        self._integrity_tol = integrity_tol
        # the replica-half guard assumes a linear final layer (the matvec
        # zeroes those slots); models without that invariant opt out
        self._integrity_ok = {
            name: bool(getattr(art.model, "layers", None))
            and art.model.layers[-1].kind == "linear"
            for name, art in self.artifacts.items()
        }
        self.last_trace: dict | None = None
        self._num_workers = num_workers
        self._evaluators: dict[tuple, object] = {}
        self._ev_lock = Lock()
        self._mismatch_registry: ClientKeyRegistry | None = None
        self._queue = BatchQueue(
            lambda group: self._capacity[group[0]],
            max_wait_ms=max_wait_ms,
            max_pending=max_pending,
        )
        self.metrics.bind_queue_depth(self._queue.__len__)
        self._pool = WorkerPool(self._queue, self._handle_batch, num_workers=num_workers)
        self._started = False
        self._stopped = False
        self._lifecycle = Lock()
        if warm:
            for art in self.artifacts.values():
                art.warm()

    # ------------------------------------------------------------------
    # tenants and evaluators
    # ------------------------------------------------------------------
    def register_client(self, client_id: str, seed: int | None = None) -> str:
        """Admit a tenant (proxies :meth:`ClientKeyRegistry.register`)."""
        return self.key_registry.register(client_id, seed=seed)

    def _wrap(self, ev):
        if self._trace:
            return TracingEvaluator(CountingEvaluator(ev))
        return CountingEvaluator(ev) if self._instrument else ev

    def _evaluator_for(self, worker_index: int, model_name: str, client_id: str):
        """Per-(worker, model, client) evaluator, created lazily.

        One worker thread runs one batch at a time, so each cached
        evaluator is only ever used by its own thread — reset()/tracer
        state per batch is safe.  Worker 0 of the default tenant reuses
        the model's own evaluator (back-compat with warm-up encodes).
        """
        key = (worker_index, model_name, client_id)
        with self._ev_lock:
            ev = self._evaluators.get(key)
        if ev is not None:
            return ev
        art = self.artifacts[model_name]
        if client_id == DEFAULT_CLIENT:
            if worker_index == 0:
                base = art.model.ev
            else:
                # stub models (the concurrency harness) carry their own hook
                fresh = getattr(art.model, "fresh_evaluator", None)
                base = (fresh or art.fresh_evaluator)(seed=1000 + worker_index)
        else:
            base = self.key_registry.evaluator_for(
                client_id, art.model, seed=1000 + worker_index
            )
        ev = self._wrap(base)
        with self._ev_lock:
            return self._evaluators.setdefault(key, ev)

    def _mismatch_evaluator(self, model_name: str):
        """An evaluator over deliberately-wrong keys (fault injection)."""
        with self._ev_lock:
            if self._mismatch_registry is None:
                self._mismatch_registry = ClientKeyRegistry()
                self._mismatch_registry.register("__mismatch__", seed=0xBAD5EED)
        return self._mismatch_registry.evaluator_for(
            "__mismatch__", self.artifacts[model_name].model
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "InferenceServer":
        with self._lifecycle:
            if self._stopped:
                raise RuntimeError(
                    "server already stopped; construct a new InferenceServer"
                )
            if not self._started:
                self._pool.start()
                self._started = True
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """Terminal: drains in-flight work (bounded), fails leftovers,
        frees workers.  Idempotent and safe to race from several threads."""
        with self._lifecycle:
            was_started, self._started = self._started, False
            self._stopped = self._stopped or was_started
        if was_started:
            self._pool.stop(timeout=timeout)

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # client API
    # ------------------------------------------------------------------
    def _resolve_model(self, model: str | None) -> str:
        if model is None:
            if len(self.artifacts) == 1:
                return next(iter(self.artifacts))
            raise UnknownModelError(
                f"server hosts {sorted(self.artifacts)}; submit(..., model=...) required"
            )
        if model not in self.artifacts:
            raise UnknownModelError(
                f"unknown model {model!r} (hosted: {sorted(self.artifacts)})"
            )
        return model

    def submit(
        self,
        x: np.ndarray,
        *,
        client_id: str = DEFAULT_CLIENT,
        model: str | None = None,
        block: bool = False,
        timeout: float | None = None,
    ) -> Future:
        """Enqueue one input; resolves to an :class:`InferenceResult`.

        Inputs are validated here, *before* admission: a bad request
        (wrong width, NaN/inf, unknown model or client) must fail alone
        at the door rather than poison every neighbour sharing its
        ciphertext batch.  Over ``max_pending`` the request is shed with
        :class:`QueueOverflow` unless ``block=True`` (backpressure,
        bounded by ``timeout`` seconds).
        """
        if not self._started:
            raise RuntimeError("server not started (use start() or a with-block)")
        name = self._resolve_model(model)
        net = self.artifacts[name].model
        x = np.asarray(x, dtype=np.float64).ravel()
        if net.sharded:
            expected = sum(net.input_splits or [net.size])
            if x.size != expected:
                raise ValueError(
                    f"input dim {x.size} != sharded input dim {expected}"
                )
        elif x.size > net.size:
            raise ValueError(
                f"input dim {x.size} exceeds layer size {net.size}"
            )
        if not np.all(np.isfinite(x)):
            raise ValueError("input contains non-finite values")
        if client_id != DEFAULT_CLIENT and client_id not in self.key_registry:
            raise UnknownClientError(
                f"client {client_id!r} is not registered (register_client first)"
            )
        req = Request(x=x, client_id=client_id, model_name=name)
        if self.faults is not None:
            self.faults.on_submit(req)
        try:
            self._queue.put(req, block=block, timeout=timeout)
        except QueueOverflow:
            self.metrics.record_shed(model=name, client=client_id)
            raise
        return req.future

    def predict(self, x: np.ndarray, timeout: float | None = None, **kw) -> InferenceResult:
        """Synchronous submit + wait."""
        return self.submit(x, **kw).result(timeout=timeout)

    def predict_many(self, xs, timeout: float | None = None, **kw) -> list[InferenceResult]:
        """Submit a burst and gather (lets the batcher pack them together)."""
        futures = [self.submit(x, **kw) for x in xs]
        return [f.result(timeout=timeout) for f in futures]

    @property
    def backend(self) -> str:
        """Name of the kernel backend executing this server's HE ops."""
        art = self.artifact or next(iter(self.artifacts.values()))
        return art.model.ctx.backend.name

    def metrics_text(self) -> str:
        """Prometheus text exposition of the serving metrics (counters,
        queue-depth / in-flight gauges, shed/error counters, per-tenant
        series, per-layer latency histograms), plus an info gauge naming
        the active kernel backend per hosted model."""
        lines = ["# TYPE repro_serve_backend_info gauge"]
        if self.artifact is not None:
            lines.append(f'repro_serve_backend_info{{backend="{self.backend}"}} 1')
        else:
            for name, art in sorted(self.artifacts.items()):
                lines.append(
                    f'repro_serve_backend_info{{backend="{art.model.ctx.backend.name}",'
                    f'model="{name}"}} 1'
                )
        return "\n".join(lines) + "\n" + self.metrics.format_prometheus()

    # ------------------------------------------------------------------
    # batch execution (worker threads)
    # ------------------------------------------------------------------
    def _check_integrity(self, model_name: str, ct, ev) -> None:
        """Replica-half guard: block 0's slots ``[size, 2·size)`` must
        decrypt to ~0 after a linear final layer.  A key-mismatch
        submission decrypts to uniform garbage there — structurally
        detectable, unlike the logits themselves."""
        tol = self._integrity_tol
        if tol is None or not self._integrity_ok[model_name]:
            return
        net = self.artifacts[model_name].model
        values = ev.decrypt(ct, num_values=2 * net.size)
        guard = np.asarray(values[net.size : 2 * net.size])
        if not np.all(np.isfinite(guard)) or float(np.max(np.abs(guard))) > tol:
            raise KeyMismatchError(
                "ciphertext integrity check failed: replica slots decrypted to "
                f"|max|={float(np.max(np.abs(guard))):.3g} (> {tol}) — the batch "
                "was not encrypted under the keys it was evaluated with"
            )

    def _fail_batch(self, batch, exc, model_name, client_id, kind) -> None:
        for req in batch:
            if not req.future.done():
                req.future.set_exception(exc)
        self.metrics.record_error(kind, len(batch), model=model_name, client=client_id)

    def _handle_batch(self, batch: list[Request], worker_index: int) -> None:
        # claim each future; one a client cancelled while queued drops out
        # here, so set_result below can never hit an InvalidStateError and
        # spill it onto the neighbours' futures
        batch = [req for req in batch if req.future.set_running_or_notify_cancel()]
        if not batch:
            return
        model_name, client_id = batch[0].group
        art = self.artifacts[model_name]
        net = art.model
        directives: set = set()
        if self.faults is not None:
            batch, poisoned = self.faults.split_poisoned(batch)
            if poisoned:
                exc = PoisonedRequestError(
                    "fault injection: request poisoned during batch assembly"
                )
                self._fail_batch(poisoned, exc, model_name, client_id, "poisoned")
            if not batch:
                return
            try:
                directives = self.faults.on_batch_start(
                    batch[0].group, batch, worker_index
                )
            except WorkerCrashError as exc:
                self._fail_batch(batch, exc, model_name, client_id, "worker_crash")
                return
        ev = self._evaluator_for(worker_index, model_name, client_id)
        if self._instrument:
            ev.reset()
        if self._trace:
            ev.tracer.reset()
        executor = self.shard_executor if not self._trace else None
        self.metrics.batch_started()
        t0 = time.perf_counter()
        try:
            xs = [req.x for req in batch]
            encrypt_ev = ev
            if "key_mismatch" in directives:
                encrypt_ev = self._mismatch_evaluator(model_name)
            if net.sharded:
                cts = net.encrypt_batch_shards(xs, ev=encrypt_ev)
                ct = net.forward_shards(
                    cts, encoded=art.encoded_linear, ev=ev, executor=executor
                )[0]
            else:
                ct = net.encrypt_batch(xs, ev=encrypt_ev)
                ct = net.forward(ct, encoded=art.encoded_linear, ev=ev)
            logits = net.decrypt_logits(
                ct, self._num_classes[model_name], batch=len(batch), ev=ev
            )
            self._check_integrity(model_name, ct, ev)
        except Exception as exc:
            kind = (
                "key_mismatch"
                if isinstance(exc, KeyMismatchError)
                else "execution"
            )
            self._fail_batch(batch, exc, model_name, client_id, kind)
            return
        finally:
            self.metrics.batch_finished()
        done = time.perf_counter()
        latencies = []
        for req, row in zip(batch, logits):
            latency_ms = (done - req.enqueued_at) * 1000.0
            latencies.append(latency_ms)
            req.future.set_result(
                InferenceResult(
                    logits=row,
                    prediction=int(np.argmax(row)),
                    latency_ms=latency_ms,
                    batch_size=len(batch),
                    model=model_name,
                    client_id=client_id,
                )
            )
        layer_seconds = None
        if self._trace:
            tracer = ev.tracer
            layer_seconds = {
                sp.name: sp.duration_s for sp in tracer.layer_spans()
            }
            self.last_trace = tracer.to_dict(meta={"batch_size": len(batch)})
        self.metrics.record_batch(
            len(batch),
            done - t0,
            latencies,
            op_counts=ev.counts if self._instrument else None,
            layer_seconds=layer_seconds,
            model=model_name,
            client=client_id,
        )
