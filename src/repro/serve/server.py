"""The batched encrypted-inference server facade.

``submit(x)`` returns a future; behind it, requests are grouped into
SIMD batches (:mod:`repro.serve.queue`), packed into disjoint slot
blocks of a single ciphertext (:mod:`repro.serve.packing` /
:meth:`EncryptedMLP.encrypt_batch`), pushed through one encrypted
forward using the artifact's pre-encoded plaintexts
(:mod:`repro.serve.artifact`), and demultiplexed back into per-client
logits on decrypt.  Per-batch observations land in
:class:`repro.serve.metrics.ServingMetrics`; with ``trace=True`` each
worker additionally runs a :class:`repro.obs.TracingEvaluator`, feeding
per-layer durations into the metrics' latency histograms and keeping
the last batch's span tree on ``last_trace``.
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from dataclasses import dataclass

import numpy as np

from repro.ckks.evaluator import CkksEvaluator
from repro.ckks.instrumentation import CountingEvaluator
from repro.fhe.network import EncryptedMLP
from repro.obs import TracingEvaluator
from repro.serve.artifact import ModelArtifact
from repro.serve.metrics import ServingMetrics
from repro.serve.queue import BatchQueue, Request, WorkerPool

__all__ = ["InferenceResult", "InferenceServer"]


@dataclass(frozen=True)
class InferenceResult:
    """What a client gets back for one request."""

    logits: np.ndarray
    prediction: int
    latency_ms: float   #: enqueue -> logits, including batching wait
    batch_size: int     #: how many requests shared the ciphertext


class InferenceServer:
    """Batched encrypted-inference server over a compiled model artifact.

    Parameters
    ----------
    model:
        A :class:`ModelArtifact` or a bare :class:`EncryptedMLP` (wrapped
        into an artifact automatically).
    num_classes:
        Logit count demultiplexed per client.
    max_batch_size:
        Admission cap; clamped to the ciphertext's SIMD capacity
        (``slots // (2·size)``).
    max_wait_ms:
        Flush deadline for a partially filled batch.
    num_workers:
        Worker threads; each gets its own evaluator against the shared
        keys (encoding caches are shared).
    instrument:
        Count homomorphic ops per batch into the metrics.
    trace:
        Run each batch under the execution tracer (implies
        ``instrument``): per-layer durations feed the metrics' latency
        histograms and the most recent batch's span tree is kept on
        :attr:`last_trace`.  Tracing never perturbs ciphertexts — it
        only reads levels and scales.

    Usage::

        with InferenceServer(artifact, num_classes=10) as srv:
            futures = [srv.submit(x) for x in requests]
            results = [f.result() for f in futures]
    """

    def __init__(
        self,
        model: ModelArtifact | EncryptedMLP,
        num_classes: int,
        *,
        max_batch_size: int | None = None,
        max_wait_ms: float = 8.0,
        num_workers: int = 1,
        instrument: bool = False,
        trace: bool = False,
        warm: bool = True,
    ):
        self.artifact = model if isinstance(model, ModelArtifact) else ModelArtifact(model)
        self.model = self.artifact.model
        self.num_classes = num_classes
        capacity = self.model.max_batch
        self.max_batch_size = (
            capacity if max_batch_size is None else max(1, min(max_batch_size, capacity))
        )
        self.metrics = ServingMetrics()
        self._trace = trace
        self._instrument = instrument or trace
        self.last_trace: dict | None = None
        self._evaluators: list = [self._make_evaluator(i) for i in range(num_workers)]
        self._queue = BatchQueue(self.max_batch_size, max_wait_ms=max_wait_ms)
        self.metrics.bind_queue_depth(self._queue.__len__)
        self._pool = WorkerPool(self._queue, self._handle_batch, num_workers=num_workers)
        self._started = False
        self._stopped = False
        if warm:
            self.artifact.warm()

    def _make_evaluator(self, index: int):
        ev = (
            self.model.ev
            if index == 0
            else CkksEvaluator(self.model.ctx, self.model.keys, seed=1000 + index)
        )
        if index > 0:
            ev.encoder = self.model.ev.encoder  # share the (caching) encoder
        if self._trace:
            return TracingEvaluator(CountingEvaluator(ev))
        return CountingEvaluator(ev) if self._instrument else ev

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "InferenceServer":
        if self._stopped:
            raise RuntimeError(
                "server already stopped; construct a new InferenceServer"
            )
        if not self._started:
            self._pool.start()
            self._started = True
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """Terminal: drains in-flight work, fails leftovers, frees workers."""
        if self._started:
            self._pool.stop(timeout=timeout)
            self._started = False
            self._stopped = True

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # client API
    # ------------------------------------------------------------------
    def submit(self, x: np.ndarray) -> Future:
        """Enqueue one input; resolves to an :class:`InferenceResult`.

        Inputs are validated here, *before* admission: a bad request
        (wrong width, NaN/inf) must fail alone at the door rather than
        poison every neighbour sharing its ciphertext batch.
        """
        if not self._started:
            raise RuntimeError("server not started (use start() or a with-block)")
        x = np.asarray(x, dtype=np.float64).ravel()
        if self.model.sharded:
            expected = sum(self.model.input_splits or [self.model.size])
            if x.size != expected:
                raise ValueError(
                    f"input dim {x.size} != sharded input dim {expected}"
                )
        elif x.size > self.model.size:
            raise ValueError(
                f"input dim {x.size} exceeds layer size {self.model.size}"
            )
        if not np.all(np.isfinite(x)):
            raise ValueError("input contains non-finite values")
        req = Request(x=x)
        self._queue.put(req)
        return req.future

    def predict(self, x: np.ndarray, timeout: float | None = None) -> InferenceResult:
        """Synchronous submit + wait."""
        return self.submit(x).result(timeout=timeout)

    def predict_many(self, xs, timeout: float | None = None) -> list[InferenceResult]:
        """Submit a burst and gather (lets the batcher pack them together)."""
        futures = [self.submit(x) for x in xs]
        return [f.result(timeout=timeout) for f in futures]

    @property
    def backend(self) -> str:
        """Name of the kernel backend executing this server's HE ops."""
        return self.model.ctx.backend.name

    def metrics_text(self) -> str:
        """Prometheus text exposition of the serving metrics (counters,
        queue-depth / in-flight gauges, per-layer latency histograms),
        plus an info gauge naming the active kernel backend."""
        info = (
            "# TYPE repro_serve_backend_info gauge\n"
            f'repro_serve_backend_info{{backend="{self.backend}"}} 1\n'
        )
        return info + self.metrics.format_prometheus()

    # ------------------------------------------------------------------
    # batch execution (worker threads)
    # ------------------------------------------------------------------
    def _handle_batch(self, batch: list[Request], worker_index: int) -> None:
        # claim each future; one a client cancelled while queued drops out
        # here, so set_result below can never hit an InvalidStateError and
        # spill it onto the neighbours' futures
        batch = [req for req in batch if req.future.set_running_or_notify_cancel()]
        if not batch:
            return
        ev = self._evaluators[worker_index]
        if self._instrument:
            ev.reset()
        if self._trace:
            ev.tracer.reset()
        self.metrics.batch_started()
        t0 = time.perf_counter()
        try:
            xs = [req.x for req in batch]
            if self.model.sharded:
                # multi-ciphertext models: one ciphertext per input shard,
                # logits land whole on the last layer's single output shard
                cts = self.model.encrypt_batch_shards(xs, ev=ev)
                ct = self.model.forward_shards(
                    cts, encoded=self.artifact.encoded_linear, ev=ev
                )[0]
            else:
                ct = self.model.encrypt_batch(xs, ev=ev)
                ct = self.model.forward(
                    ct, encoded=self.artifact.encoded_linear, ev=ev
                )
            logits = self.model.decrypt_logits(
                ct, self.num_classes, batch=len(batch), ev=ev
            )
        except Exception as exc:
            for req in batch:
                req.future.set_exception(exc)
            return
        finally:
            self.metrics.batch_finished()
        done = time.perf_counter()
        latencies = []
        for req, row in zip(batch, logits):
            latency_ms = (done - req.enqueued_at) * 1000.0
            latencies.append(latency_ms)
            req.future.set_result(
                InferenceResult(
                    logits=row,
                    prediction=int(np.argmax(row)),
                    latency_ms=latency_ms,
                    batch_size=len(batch),
                )
            )
        layer_seconds = None
        if self._trace:
            tracer = ev.tracer
            layer_seconds = {
                sp.name: sp.duration_s for sp in tracer.layer_spans()
            }
            self.last_trace = tracer.to_dict(meta={"batch_size": len(batch)})
        self.metrics.record_batch(
            len(batch),
            done - t0,
            latencies,
            op_counts=ev.counts if self._instrument else None,
            layer_seconds=layer_seconds,
        )
