"""Shard-grid block executors: schedule independent HE blocks across cores.

A sharded linear layer is a ``K_out × K_in`` grid of matvec blocks; the
per-input-shard hoisted rotations are shared, but each *output* shard's
accumulate-rescale chain is independent of the others — as are the
per-shard PAF and pool applications between layers.  Those independent
closures are the scheduling unit here: :func:`encrypted_matvec_shards`
and :meth:`EncryptedNetwork.forward_shards` hand a list of zero-arg
tasks to an executor's :meth:`~BlockExecutor.map_blocks` and get the
results back *in order*.

Three implementations:

* :class:`BlockExecutor` — serial, the default everywhere; zero
  overhead and the baseline the others must match bit-for-bit.
* :class:`ThreadBlockExecutor` — a thread pool.  Numpy releases the GIL
  inside the big NTT/mod kernels, so shards overlap meaningfully even
  in-process.
* :class:`ProcessBlockExecutor` — a fork-based process pool built *per
  call*, so the task closures (ciphertexts, pre-encoded plaintexts,
  evaluator) ride into the children via fork with zero pickling.
  Children return stripped ``(c0, c1, scale, level)`` arrays which are
  rebuilt against the parent's context — results are bit-identical to
  serial execution (the conformance test pins this).

Every HE op in this simulator is deterministic given its inputs, so
executor choice can never change a ciphertext — only wall time.  Op
*counters* are the one observable difference: a
:class:`~repro.ckks.instrumentation.CountingEvaluator` undercounts under
the thread executor (racy increments) and misses child-process work
entirely under the process executor.  Gated op-count measurements must
run serial; executors are for throughput.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from concurrent.futures import ThreadPoolExecutor

from repro.ckks.evaluator import Ciphertext
from repro.ckks.rns import RnsPoly

__all__ = [
    "BlockExecutor",
    "ThreadBlockExecutor",
    "ProcessBlockExecutor",
    "make_executor",
]


class BlockExecutor:
    """Serial executor: run each block task in the calling thread."""

    name = "serial"

    def map_blocks(self, tasks, ctx=None) -> list:
        """Run zero-arg ``tasks`` and return their results in order."""
        return [task() for task in tasks]

    def close(self) -> None:
        pass

    def __enter__(self) -> "BlockExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ThreadBlockExecutor(BlockExecutor):
    """Run block tasks on a shared thread pool (GIL-released numpy)."""

    name = "thread"

    def __init__(self, workers: int | None = None):
        self.workers = workers or min(8, os.cpu_count() or 1)
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-block"
        )

    def map_blocks(self, tasks, ctx=None) -> list:
        return list(self._pool.map(lambda task: task(), tasks))

    def close(self) -> None:
        self._pool.shutdown(wait=True)


def _strip(ct: Ciphertext) -> tuple:
    return (ct.c0.data, ct.c1.data, ct.scale, ct.level)


def _rebuild(stripped: tuple, ctx) -> Ciphertext:
    c0, c1, scale, level = stripped
    indices = list(range(level + 1))
    return Ciphertext(
        c0=RnsPoly(ctx, c0, indices, is_ntt=True),
        c1=RnsPoly(ctx, c1, indices, is_ntt=True),
        scale=scale,
        level=level,
    )


#: The forked children's view of the parent's task list (set per call,
#: immediately before the fork, so inheritance needs no pickling).
_FORK_TASKS: list = []


def _run_fork_task(index: int) -> tuple:
    ct = _FORK_TASKS[index]()
    return _strip(ct)


class ProcessBlockExecutor(BlockExecutor):
    """Fork a process pool per call; children inherit the closures.

    Forking per ``map_blocks`` call looks expensive but is the only
    layout that needs *no pickling of closures*: ciphertexts, plaintext
    payloads and the evaluator already live in the parent's memory and
    arrive in the children copy-on-write.  Only the stripped result
    arrays cross back.  Tasks must return a single
    :class:`~repro.ckks.evaluator.Ciphertext` (which every shard-grid
    block does), and ``ctx`` is required to rebuild results.
    """

    name = "process"

    def __init__(self, workers: int | None = None):
        if "fork" not in mp.get_all_start_methods():
            raise RuntimeError(
                "ProcessBlockExecutor needs the fork start method "
                "(use ThreadBlockExecutor on this platform)"
            )
        self.workers = workers or max(1, (os.cpu_count() or 2) - 1)

    def map_blocks(self, tasks, ctx=None) -> list:
        tasks = list(tasks)
        if len(tasks) <= 1:
            return [task() for task in tasks]
        if ctx is None:
            raise ValueError("ProcessBlockExecutor.map_blocks needs ctx to rebuild results")
        global _FORK_TASKS
        _FORK_TASKS = tasks
        try:
            with mp.get_context("fork").Pool(min(self.workers, len(tasks))) as pool:
                stripped = pool.map(_run_fork_task, range(len(tasks)))
        finally:
            _FORK_TASKS = []
        return [_rebuild(s, ctx) for s in stripped]


def make_executor(name: str, workers: int | None = None) -> BlockExecutor:
    """Executor by name: ``serial`` | ``thread`` | ``process``."""
    if name == "serial":
        return BlockExecutor()
    if name == "thread":
        return ThreadBlockExecutor(workers)
    if name == "process":
        return ProcessBlockExecutor(workers)
    raise ValueError(f"unknown executor {name!r} (serial | thread | process)")
