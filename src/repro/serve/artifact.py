"""Compiled serving artifact: pre-encoded plaintexts for steady-state inference.

Encoding a plaintext (canonical embedding + RNS lift) costs as much as a
handful of homomorphic ops, and the vanilla forward pass pays it for
every Halevi-Shoup diagonal of every linear layer on *every request* —
pure waste, since the model weights never change and a fixed network
visits each linear layer at one deterministic ``(level, scale)`` pair.

:class:`ModelArtifact` wraps a compiled
:class:`~repro.fhe.network.EncryptedNetwork` — any model lowered by
:func:`~repro.fhe.ir.compile_network` (MLP, CNN, sharded ResNet or
transformer; :meth:`ModelArtifact.compile` runs that compile and wraps
in one step); pool masks and affine vectors ride the
activation-constant cache below — with two caches keyed on
``(value digest, level, scale)``:

* the explicit diagonal/bias path — :meth:`ModelArtifact.encoded_linear`
  hands the matvec executors ready-made :class:`~repro.ckks.Plaintext`
  objects following each layer's :class:`~repro.fhe.linear.MatvecPlan`:
  pre-rotated giant-step groups for BSGS layers
  (:func:`repro.fhe.linear.encrypted_matvec_bsgs`), flat tiled diagonals
  for naive ones, and the bias encoded at the *post-rescale* level and
  scale, so it lands exactly where the matvec adds it;
* the activation-constant path — :meth:`ModelArtifact.prewarm_activations`
  walks each PAF layer's compiled :class:`~repro.ckks.poly_plan.ReluPlan`
  and pre-encodes every coefficient leaf and the ReLU gate constant at
  its exact ``(level, scale)`` (the plan knows the canonical scale
  schedule, so the keys match the evaluator's encodes bit-for-bit);
* an optional :class:`CachingEncoder` installed on the model's evaluator,
  which additionally memoises the scale-alignment corrections that
  ``poly_eval`` encodes (data-independent, but derived from intermediate
  drift — they land in the cache on the first evaluation).

After one warm-up pass, steady-state requests do **zero** plaintext
encoding — every encode is a dictionary hit.
"""

from __future__ import annotations

import hashlib
import pickle
import warnings
from collections import OrderedDict
from threading import Lock

import numpy as np

from repro.ckks.encoder import Plaintext
from repro.ckks.evaluator import CkksEvaluator
from repro.ckks.rns import RnsPoly
from repro.fhe.network import EncryptedNetwork

__all__ = ["PlaintextCache", "CachingEncoder", "ModelArtifact", "ArtifactMismatchError"]

#: On-disk format tag for persisted encoding caches.
_CACHE_FORMAT = "repro-artifact-cache-v1"


class ArtifactMismatchError(RuntimeError):
    """A persisted cache was built for a different compiled model."""


class PlaintextCache:
    """LRU memo of ``encode(values, level, scale) -> Plaintext``.

    Keys digest the value bytes plus the exact ``(level, scale)`` pair, so
    a cached plaintext is bit-identical to a fresh encode.  Bounded:
    one-shot values (e.g. per-request client inputs routed through a
    :class:`CachingEncoder`) churn through while the per-layer constants
    stay hot.  Thread-safe; a race encodes twice, never corrupts.
    """

    def __init__(self, encoder, max_entries: int = 4096):
        self._encoder = encoder
        self.max_entries = max_entries
        self._entries: OrderedDict = OrderedDict()
        self._lock = Lock()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _key(values, level: int, scale: float):
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim == 0:
            return ("scalar", float(arr), level, float(scale))
        return (arr.tobytes(), level, float(scale))

    def encode(self, values, level: int, scale: float | None = None) -> Plaintext:
        scale = float(scale if scale is not None else self._encoder.ctx.scale)
        key = self._key(values, level, scale)
        with self._lock:
            pt = self._entries.get(key)
            if pt is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return pt
            self.misses += 1
        pt = self._encoder.encode(values, level, scale)
        with self._lock:
            self._entries[key] = pt
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        return pt

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }

    # ------------------------------------------------------------------
    # persistence (raw arrays only — no locks, no context objects)
    # ------------------------------------------------------------------
    def export_entries(self) -> list:
        """Cache contents as picklable tuples, LRU order preserved."""
        with self._lock:
            return [
                (key, pt.poly.data, tuple(pt.poly.prime_indices), pt.poly.is_ntt, pt.scale)
                for key, pt in self._entries.items()
            ]

    def import_entries(self, ctx, entries) -> int:
        """Rebuild plaintexts against ``ctx`` and install them (warm-start)."""
        count = 0
        with self._lock:
            for key, data, prime_indices, is_ntt, scale in entries:
                poly = RnsPoly(ctx, data, list(prime_indices), is_ntt)
                self._entries[key] = Plaintext(poly=poly, scale=scale)
                count += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        return count


class CachingEncoder:
    """Drop-in :class:`~repro.ckks.encoder.CkksEncoder` proxy that routes
    ``encode`` through a :class:`PlaintextCache` and delegates the rest."""

    def __init__(self, inner, cache: PlaintextCache):
        self._inner = inner
        self.cache = cache

    def encode(self, values, level: int, scale: float | None = None) -> Plaintext:
        return self.cache.encode(values, level, scale)

    def encode_fresh(self, values, level: int, scale: float | None = None) -> Plaintext:
        """Uncached encode — ``CkksEvaluator.encrypt`` routes per-request
        payloads here so one-shot inputs never churn the LRU."""
        return self._inner.encode(values, level, scale)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class ModelArtifact:
    """A compiled model plus everything steady-state serving reuses.

    Parameters
    ----------
    model:
        A compiled :class:`~repro.fhe.network.EncryptedNetwork` (MLP or
        CNN).
    max_entries:
        Bound on the shared plaintext cache.
    cache_activations:
        Install a :class:`CachingEncoder` on the model's evaluator so PAF
        constants, pool masks, affine vectors and alignment corrections
        are memoised too (the explicit diagonal path works either way).
    """

    def __init__(
        self,
        model: EncryptedNetwork,
        max_entries: int = 4096,
        cache_activations: bool = True,
    ):
        self.model = model
        base_encoder = model.ev.encoder
        if isinstance(base_encoder, CachingEncoder):  # already wrapped
            base_encoder = base_encoder._inner
        self.cache = PlaintextCache(base_encoder, max_entries=max_entries)
        #: (layer_index, level, scale) -> (diagonal Plaintexts, bias Plaintext)
        self._linear_memo: dict = {}
        if cache_activations:
            model.ev.encoder = CachingEncoder(base_encoder, self.cache)

    @classmethod
    def compile(
        cls,
        nn_model,
        params,
        seed: int | None = None,
        *,
        policy=None,
        input_shape: tuple | None = None,
        num_shards: int | None = None,
        reference_keys: bool | None = None,
        fold_bn: bool | None = None,
        **kwargs,
    ) -> "ModelArtifact":
        """:func:`repro.fhe.ir.compile_network` + wrap, in one step.

        The single serving-side compile entry: all compile options ride
        one :class:`repro.fhe.ir.CompilePolicy` (``policy=``) — refresh
        placement, backend, input shape, shard count, seed — and
        dispatch on the model's module tree matches ``compile_network``:
        Linear/PAF stacks to the MLP lowering, conv stacks to the CNN
        lowering (policy ``input_shape``), residual nets to the sharded
        ResNet lowering, transformers to the token-sharded attention
        lowering.  A sharded compile yields an artifact whose
        :meth:`forward` takes and returns shard *lists*, with every
        per-shard-pair diagonal block (including merge projections,
        keyed at the skip branch's level) pre-encoded through the same
        cache.  Remaining ``kwargs`` go to the :class:`ModelArtifact`
        constructor.  The loose kwargs (``seed=``, ``input_shape=``,
        ``num_shards=``, ``reference_keys=``, ``fold_bn=``) are a
        deprecated spelling folded into a policy for one release.
        """
        from repro.fhe.ir import CompilePolicy, compile_network

        legacy = {
            name: value
            for name, value in [
                ("seed", seed),
                ("input_shape", input_shape),
                ("num_shards", num_shards),
                ("reference_keys", reference_keys),
                ("fold_bn", fold_bn),
            ]
            if value is not None
        }
        if legacy:
            if policy is not None:
                raise ValueError(
                    "pass either policy= or the deprecated loose kwargs, "
                    f"not both: {sorted(legacy)}"
                )
            names = ", ".join(f"{k}=" for k in sorted(legacy))
            warnings.warn(
                f"ModelArtifact.compile({names}) is deprecated; pass "
                "policy=CompilePolicy(...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            policy = CompilePolicy(**legacy)
        return cls(compile_network(nn_model, params, policy=policy), **kwargs)

    # ------------------------------------------------------------------
    def encoded_linear(self, layer_index: int, level: int, scale: float):
        """Pre-encoded ``(payload, bias)`` for one linear layer.

        The payload follows the layer's :class:`~repro.fhe.linear.MatvecPlan`:
        pre-rotated giant-step groups ``{giant: {baby: Plaintext}}`` for
        BSGS layers, flat ``{d: Plaintext}`` diagonals for naive ones.
        Everything is encoded at the incoming ciphertext's ``(level,
        scale)`` (the default ``mul_plain`` choice, preserving the
        canonical-scale invariant); the bias at ``(level-1, scale²/q_level)``
        — exactly where the ciphertext sits after the matvec's rescale.

        A fixed network meets each layer at one deterministic ``(level,
        scale)``, so the assembled tuple is memoised per layer — the
        steady-state path does no per-diagonal digesting either, just one
        dict hit per linear layer.
        """
        key = (layer_index, level, float(scale))
        memo = self._linear_memo.get(key)
        if memo is not None:
            return memo
        if layer_index in self.model.shard_groups:
            return self._encode_sharded(key, layer_index, level, scale)
        if self.model.matvec_plans[layer_index].use_bsgs:
            diags = {
                g: {
                    b: self.cache.encode(vec, level, scale)
                    for b, vec in inner.items()
                }
                for g, inner in self.model.linear_groups[layer_index].items()
            }
        else:
            diags = {
                d: self.cache.encode(vec, level, scale)
                for d, vec in self.model.linear_diagonals[layer_index].items()
            }
        bias_pt = None
        bias_vec = self.model.linear_bias_slots.get(layer_index)
        if bias_vec is not None:
            q_top = self.model.ctx.q_chain[level]
            bias_pt = self.cache.encode(bias_vec, level - 1, scale * scale / q_top)
        self._linear_memo[key] = (diags, bias_pt)
        return diags, bias_pt

    def _encode_sharded(self, key, layer_index: int, level: int, scale: float):
        """Pre-encode one sharded linear layer or merge projection.

        Mirrors :meth:`encoded_linear` for the ``K_out × K_in`` grouped
        block grid: every block's diagonals encode at the incoming
        ``(level, scale)`` — the *skip branch's* coordinates for a merge
        projection, which the sharded forward passes in — and the
        per-output-shard biases at the post-rescale coordinates.
        """
        blocks = [
            [
                {
                    g: {
                        b: self.cache.encode(vec, level, scale)
                        for b, vec in inner.items()
                    }
                    for g, inner in groups.items()
                }
                if groups is not None
                else None
                for groups in row
            ]
            for row in self.model.shard_groups[layer_index]
        ]
        bias_pts = None
        bias_list = self.model.shard_bias_slots.get(layer_index)
        if bias_list is not None:
            q_top = self.model.ctx.q_chain[level]
            post_scale = scale * scale / q_top
            bias_pts = [
                None if vec is None
                else self.cache.encode(vec, level - 1, post_scale)
                for vec in bias_list
            ]
        self._linear_memo[key] = (blocks, bias_pts)
        return blocks, bias_pts

    def activation_encodings(self, layer_index: int) -> list:
        """``(value, level, scale)`` of one PAF layer's plan constants.

        The layer's input level comes from the model's static schedule
        (:meth:`~repro.fhe.network.EncryptedNetwork.layer_input_levels`), its
        input scale from the canonical scale invariant — both
        deterministic for a fixed network, so the returned coordinates
        are exactly those the evaluator will encode at.
        """
        plan = self.model.paf_plans[layer_index]
        level = self.model.layer_input_levels()[layer_index]
        ctx = self.model.ctx
        scale = ctx.scale
        for lvl in range(ctx.max_level, level, -1):
            scale = scale * scale / ctx.q_chain[lvl]
        return plan.constant_encodings(ctx.q_chain, level, scale)

    def prewarm_activations(self) -> int:
        """Pre-encode every PAF layer's coefficient plaintexts.

        Seeds the shared cache with each activation's leaf coefficients
        and gate constant at their exact ``(level, scale)`` — cheaper
        than a full :meth:`warm` forward pass, and the evaluator's own
        encodes then hit the cache key-for-key.  Returns the number of
        plaintexts encoded.
        """
        count = 0
        for i in self.model.paf_plans:
            for value, level, scale in self.activation_encodings(i):
                self.cache.encode(value, level, scale)
                count += 1
        return count

    def forward(self, ct, ev=None, executor=None):
        """Encrypted forward using the pre-encoded linear layers.

        For a sharded model ``ct`` is the shard ciphertext *list*
        (``encrypt_batch_shards``) and the return value the output shard
        list — the pre-encoded path covers every block and merge
        projection too.  ``executor`` (sharded models only) schedules
        the independent shard-grid blocks on a
        :class:`~repro.serve.executor.BlockExecutor`.
        """
        if self.model.sharded:
            return self.model.forward_shards(
                ct, encoded=self.encoded_linear, ev=ev, executor=executor
            )
        return self.model.forward(ct, encoded=self.encoded_linear, ev=ev)

    def fresh_evaluator(self, seed: int = 1):
        """A new evaluator over the model's own baked keys, sharing the
        (caching) encoder — what a worker thread runs the default
        tenant's batches with.  Stub models used by the concurrency
        harness override this hook instead of faking a full key chain.
        """
        ev = CkksEvaluator(self.model.ctx, self.model.keys, seed=seed)
        ev.encoder = self.model.ev.encoder
        return ev

    def warm(self, batch: int | None = None) -> "ModelArtifact":
        """Run one zero-input forward to populate every cache entry.

        After this, serving any batch size hits only cached plaintexts
        (all batch sizes share the max-batch-tiled diagonals).
        """
        if self.model.sharded:
            dim = sum(self.model.input_splits or [self.model.size])
            xs = [np.zeros(dim)] * (batch or 1)
            self.forward(self.model.encrypt_batch_shards(xs))
        else:
            xs = [np.zeros(self.model.size)] * (batch or 1)
            self.forward(self.model.encrypt_batch(xs))
        return self

    def stats(self) -> dict:
        return self.cache.stats()

    # ------------------------------------------------------------------
    # persistence / warm-start
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Digest of everything a cache entry's validity depends on.

        Covers the CKKS arithmetic (ring degree, full prime ladder,
        canonical scale) and the compiled layer stack (kinds, weights,
        biases, shard blocks, pool/affine constants) — the exact inputs
        that determine which ``(value, level, scale)`` keys a forward
        encodes.  A persisted cache from a different compile must be
        rejected, not silently half-hit.
        """
        h = hashlib.sha256()
        ctx = self.model.ctx
        h.update(f"{ctx.n}|{float(ctx.scale)}|".encode())
        h.update(",".join(str(int(p)) for p in ctx.all_primes).encode())
        for layer in self.model.layers:
            h.update(f"|{layer.kind}|{layer.scale}|{layer.pool_scale}".encode())
            for arr in (layer.weight, layer.bias, layer.affine_scale, layer.affine_shift):
                if arr is not None:
                    h.update(np.ascontiguousarray(arr, dtype=np.float64).tobytes())
            if layer.blocks is not None:
                for row in layer.blocks:
                    for mat in row:
                        h.update(
                            b"0" if mat is None
                            else np.ascontiguousarray(mat, dtype=np.float64).tobytes()
                        )
        return h.hexdigest()

    def save_cache(self, path) -> int:
        """Persist the encoding cache (pickle); returns the entry count.

        The payload is raw RNS arrays plus the model fingerprint —
        context objects, locks and evaluators never touch the disk.
        """
        entries = self.cache.export_entries()
        payload = {
            "format": _CACHE_FORMAT,
            "fingerprint": self.fingerprint(),
            "entries": entries,
        }
        with open(path, "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
        return len(entries)

    def load_cache(self, path) -> int:
        """Warm-start from a persisted cache; returns entries installed.

        Validates the format tag and the model fingerprint
        (:class:`ArtifactMismatchError` on any mismatch), rebuilds every
        plaintext against this model's context, and re-memoises the
        per-layer linear tuples — after this, steady-state serving hits
        the cache without ever running :meth:`warm`'s forward pass.
        """
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        if not isinstance(payload, dict) or payload.get("format") != _CACHE_FORMAT:
            raise ArtifactMismatchError(f"{path}: not a {_CACHE_FORMAT} file")
        if payload.get("fingerprint") != self.fingerprint():
            raise ArtifactMismatchError(
                f"{path}: cache was built for a different compiled model "
                "(parameters or weights changed) — re-warm and re-save"
            )
        count = self.cache.import_entries(self.model.ctx, payload["entries"])
        # rebuild the per-layer memo from the now-hot cache: every encode
        # below is a dictionary hit, so this is pure assembly
        self._linear_memo.clear()
        levels = self.model.layer_input_levels()
        branch_levels = self.model.merge_branch_levels()
        ctx = self.model.ctx
        for i, layer in enumerate(self.model.layers):
            if layer.kind == "linear" or (
                layer.kind == "merge" and i in self.model.shard_groups
            ):
                level = branch_levels[i] if layer.kind == "merge" else levels[i]
                scale = ctx.scale
                for lvl in range(ctx.max_level, level, -1):
                    scale = scale * scale / ctx.q_chain[lvl]
                self.encoded_linear(i, level, scale)
        return count
