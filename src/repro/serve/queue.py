"""Request admission for the batched encrypted-inference server.

A :class:`BatchQueue` turns an asynchronous stream of single requests
into SIMD batches.  Requests are grouped by ``(model, client)`` — two
tenants can never share a ciphertext, and two models never share a
forward — and each group batches independently under two admission
knobs: a per-group ``max_batch_size`` (never exceed that model's
ciphertext block capacity) and ``max_wait_ms`` (never hold the *first*
request of a forming batch longer than this — a lone request is flushed
and served solo when the deadline passes).  Workers always pick the
group with the oldest waiting head, so one chatty tenant cannot starve
the rest: continuous batching across a heterogeneous request stream.

Admission is bounded: ``max_pending`` caps the total queued requests.
A non-blocking :meth:`BatchQueue.put` over the cap **sheds** the request
with :class:`QueueOverflow` — an explicit, immediate error, never a
silent hang — while ``block=True`` turns the cap into backpressure
(bounded by ``timeout``).

A :class:`WorkerPool` drains the queue with one or more threads, each
invoking the server's batch handler.  Shutdown is *idempotent* and
*draining*: :meth:`BatchQueue.shutdown` closes admission, waits a
bounded timeout for workers to finish what is queued, then fails any
leftovers with :class:`QueueClosed` — calling it again is a no-op and
can never lose work.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "DEFAULT_MODEL",
    "Request",
    "QueueClosed",
    "QueueOverflow",
    "BatchQueue",
    "WorkerPool",
]

#: Model name of a single-model server (mirrors ``keys.DEFAULT_CLIENT``).
DEFAULT_MODEL = "default"


@dataclass
class Request:
    """One enqueued inference request, tagged with its tenant."""

    x: np.ndarray
    future: Future = field(default_factory=Future)
    enqueued_at: float = field(default_factory=time.perf_counter)
    client_id: str = "default"
    model_name: str = DEFAULT_MODEL

    @property
    def group(self) -> tuple[str, str]:
        """Batching key: requests batch together iff this matches."""
        return (self.model_name, self.client_id)


class QueueClosed(RuntimeError):
    """Raised by :meth:`BatchQueue.put` after close, and set on futures a
    shutdown drained past its timeout."""


class QueueOverflow(RuntimeError):
    """Load shed: the queue is at ``max_pending`` and the put didn't block."""


class BatchQueue:
    """Thread-safe queue grouping requests into per-tenant batches.

    ``max_batch_size`` is an int (one cap for every group) or a callable
    ``group -> int`` (per-model capacity in a mixed pool).
    ``max_pending`` bounds total admission; ``None`` means unbounded.
    """

    def __init__(
        self,
        max_batch_size,
        max_wait_ms: float = 8.0,
        max_pending: int | None = None,
    ):
        if callable(max_batch_size):
            self._capacity = max_batch_size
        else:
            if max_batch_size < 1:
                raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
            self._capacity = lambda group, _cap=int(max_batch_size): _cap
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if max_pending is not None and max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.max_wait_ms = max_wait_ms
        self.max_pending = max_pending
        self._groups: dict[tuple, list[Request]] = {}
        self._count = 0
        self._cv = threading.Condition()
        self._closed = False

    def capacity(self, group) -> int:
        """Batch cap for one ``(model, client)`` group."""
        cap = int(self._capacity(group))
        if cap < 1:
            raise ValueError(f"capacity for group {group} must be >= 1, got {cap}")
        return cap

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def put(self, request: Request, block: bool = False, timeout: float | None = None) -> None:
        """Admit one request.

        Over ``max_pending``: sheds with :class:`QueueOverflow` when
        ``block=False`` (the default — an overloaded server answers
        *immediately*), or applies backpressure when ``block=True``,
        waiting up to ``timeout`` seconds for capacity before shedding.
        """
        deadline = None if timeout is None else time.perf_counter() + timeout
        with self._cv:
            while True:
                if self._closed:
                    raise QueueClosed("queue is closed")
                if self.max_pending is None or self._count < self.max_pending:
                    break
                if not block:
                    raise QueueOverflow(
                        f"queue at capacity ({self.max_pending} pending); request shed"
                    )
                remaining = None if deadline is None else deadline - time.perf_counter()
                if remaining is not None and remaining <= 0:
                    raise QueueOverflow(
                        f"backpressure timeout: queue stayed at capacity "
                        f"({self.max_pending} pending) for {timeout}s"
                    )
                self._cv.wait(remaining)
            self._groups.setdefault(request.group, []).append(request)
            self._count += 1
            self._cv.notify_all()

    # ------------------------------------------------------------------
    # batching
    # ------------------------------------------------------------------
    def next_batch(self, poll_timeout: float = 0.1) -> list[Request]:
        """Block for the next same-group batch; ``[]`` when nothing arrived.

        Picks the group whose head request has waited longest, then
        returns as soon as that group's batch is full or its head has
        waited ``max_wait_ms`` — whichever comes first (flush-on-timeout).
        Every returned request shares one ``Request.group``.
        """
        with self._cv:
            if not self._count and not self._closed:
                self._cv.wait(poll_timeout)
            while True:
                if not self._count:
                    return []
                group = min(
                    self._groups, key=lambda g: self._groups[g][0].enqueued_at
                )
                cap = self.capacity(group)
                deadline = (
                    self._groups[group][0].enqueued_at + self.max_wait_ms / 1000.0
                )
                while len(self._groups.get(group, ())) < cap and not self._closed:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0 or not self._groups.get(group):
                        break
                    self._cv.wait(remaining)
                pending = self._groups.get(group)
                if not pending:
                    continue  # another worker drained it while we waited
                batch = pending[:cap]
                del pending[: len(batch)]
                if not pending:
                    del self._groups[group]
                self._count -= len(batch)
                self._cv.notify_all()  # wake backpressure + shutdown waiters
                return batch

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Refuse new requests; pending ones can still be drained."""
        with self._cv:
            self._closed = True
            self._cv.notify_all()

    def shutdown(self, drain_timeout: float = 10.0) -> list[Request]:
        """Close, let workers drain for a bounded window, fail leftovers.

        Idempotent: every call closes admission (a no-op after the
        first), waits up to ``drain_timeout`` seconds for the queue to
        empty, then removes whatever is still queued and fails those
        futures with :class:`QueueClosed` — a client blocked on
        ``future.result()`` must never hang on a request no worker will
        ever pick up.  Repeat calls cannot lose work: requests drained
        by workers during any call's window are served normally.
        Returns the failed leftovers.
        """
        self.close()
        deadline = time.perf_counter() + max(0.0, drain_timeout)
        with self._cv:
            while self._count:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                self._cv.wait(min(0.05, remaining))
            leftovers = [req for pending in self._groups.values() for req in pending]
            self._groups.clear()
            self._count = 0
            self._cv.notify_all()
        for req in leftovers:
            if not req.future.done():
                req.future.set_exception(
                    QueueClosed("server stopped before the request was served")
                )
        return leftovers

    def drain_pending(self) -> list[Request]:
        """Remove and return everything still queued (shutdown cleanup)."""
        with self._cv:
            pending = [req for reqs in self._groups.values() for req in reqs]
            self._groups.clear()
            self._count = 0
            self._cv.notify_all()
            return pending

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        with self._cv:
            return self._count

    def pending_by_group(self) -> dict[tuple, int]:
        """Queued request count per ``(model, client)`` group."""
        with self._cv:
            return {group: len(reqs) for group, reqs in self._groups.items()}


class WorkerPool:
    """Threads draining a :class:`BatchQueue` into a batch handler.

    ``handler(batch, worker_index)`` is called with a non-empty
    same-group request list; the index lets the server give each thread
    its own evaluator.  Handler exceptions are routed to the batch's
    futures by the server — the pool itself only guards against a
    handler that leaks one, so a poisoned batch never kills the thread.
    """

    def __init__(self, queue: BatchQueue, handler, num_workers: int = 1, name: str = "serve"):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.queue = queue
        self.handler = handler
        self._threads = [
            threading.Thread(target=self._run, args=(i,), name=f"{name}-worker-{i}", daemon=True)
            for i in range(num_workers)
        ]
        self._stop = threading.Event()

    def start(self) -> None:
        for t in self._threads:
            t.start()

    def _run(self, index: int) -> None:
        while not self._stop.is_set():
            batch = self.queue.next_batch()
            if not batch:
                if self.queue.closed:
                    return
                continue
            try:
                self.handler(batch, index)
            except Exception as exc:  # route a leaked error to the callers
                for req in batch:
                    if not req.future.done():
                        req.future.set_exception(exc)

    def stop(self, timeout: float = 10.0) -> None:
        """Drain the queue (bounded), stop and join the threads.

        Delegates the drain-then-fail-leftovers contract to
        :meth:`BatchQueue.shutdown`; idempotent like it.
        """
        self.queue.shutdown(drain_timeout=timeout)
        self._stop.set()
        deadline = time.perf_counter() + timeout
        for t in self._threads:
            if t.is_alive():
                t.join(max(0.0, deadline - time.perf_counter()) + 1.0)
