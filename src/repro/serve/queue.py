"""Request admission for the batched encrypted-inference server.

A :class:`BatchQueue` turns an asynchronous stream of single requests
into SIMD batches under two admission knobs: ``max_batch_size`` (never
exceed the ciphertext's block capacity) and ``max_wait_ms`` (never hold
the *first* request of a forming batch longer than this — a lone request
is flushed and served solo when the deadline passes).  A
:class:`WorkerPool` drains the queue with one or more threads, each
invoking the server's batch handler.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Request", "BatchQueue", "WorkerPool"]


@dataclass
class Request:
    """One enqueued inference request."""

    x: np.ndarray
    future: Future = field(default_factory=Future)
    enqueued_at: float = field(default_factory=time.perf_counter)


class QueueClosed(RuntimeError):
    """Raised by :meth:`BatchQueue.put` after :meth:`BatchQueue.close`."""


class BatchQueue:
    """Thread-safe queue that groups requests into admissible batches."""

    def __init__(self, max_batch_size: int, max_wait_ms: float = 8.0):
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self._items: list[Request] = []
        self._cv = threading.Condition()
        self._closed = False

    def put(self, request: Request) -> None:
        with self._cv:
            if self._closed:
                raise QueueClosed("queue is closed")
            self._items.append(request)
            self._cv.notify_all()

    def next_batch(self, poll_timeout: float = 0.1) -> list[Request]:
        """Block for the next batch; ``[]`` when nothing arrived in time.

        Returns as soon as the batch is full, or once ``max_wait_ms`` has
        elapsed since the oldest pending request was enqueued — whichever
        comes first (flush-on-timeout).
        """
        with self._cv:
            if not self._items and not self._closed:
                self._cv.wait(poll_timeout)
            if not self._items:
                return []
            deadline = self._items[0].enqueued_at + self.max_wait_ms / 1000.0
            while len(self._items) < self.max_batch_size and not self._closed:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                self._cv.wait(remaining)
            batch = self._items[: self.max_batch_size]
            del self._items[: len(batch)]
            return batch

    def close(self) -> None:
        """Refuse new requests; pending ones can still be drained."""
        with self._cv:
            self._closed = True
            self._cv.notify_all()

    def drain_pending(self) -> list[Request]:
        """Remove and return everything still queued (shutdown cleanup)."""
        with self._cv:
            pending, self._items = self._items, []
            return pending

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        with self._cv:
            return len(self._items)


class WorkerPool:
    """Threads draining a :class:`BatchQueue` into a batch handler.

    ``handler(batch, worker_index)`` is called with a non-empty request
    list; the index lets the server give each thread its own evaluator.
    Handler exceptions are routed to the batch's futures by the server —
    the pool itself only guards against a handler that leaks one, so a
    poisoned batch never kills the thread.
    """

    def __init__(self, queue: BatchQueue, handler, num_workers: int = 1, name: str = "serve"):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.queue = queue
        self.handler = handler
        self._threads = [
            threading.Thread(target=self._run, args=(i,), name=f"{name}-worker-{i}", daemon=True)
            for i in range(num_workers)
        ]
        self._stop = threading.Event()

    def start(self) -> None:
        for t in self._threads:
            t.start()

    def _run(self, index: int) -> None:
        while not self._stop.is_set():
            batch = self.queue.next_batch()
            if not batch:
                if self.queue.closed:
                    return
                continue
            try:
                self.handler(batch, index)
            except Exception as exc:  # route a leaked error to the callers
                for req in batch:
                    if not req.future.done():
                        req.future.set_exception(exc)

    def stop(self, timeout: float = 10.0) -> None:
        """Close the queue, drain pending requests, join the threads.

        Requests still queued when the drain window runs out are failed
        with :class:`QueueClosed` — a client blocked on ``future.result()``
        must never hang on a request no worker will ever pick up.
        """
        self.queue.close()
        self._stop_after_drain(timeout)
        for req in self.queue.drain_pending():
            if not req.future.done():
                req.future.set_exception(
                    QueueClosed("server stopped before the request was served")
                )

    def _stop_after_drain(self, timeout: float) -> None:
        deadline = time.perf_counter() + timeout
        while len(self.queue) and time.perf_counter() < deadline:
            time.sleep(0.005)
        self._stop.set()
        for t in self._threads:
            if t.is_alive():
                t.join(max(0.0, deadline - time.perf_counter()) + 1.0)
