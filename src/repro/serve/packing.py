"""SIMD block layout for batched encrypted inference (serving view).

The geometry itself lives in :mod:`repro.fhe.packing` (single source of
truth, shared with :class:`repro.fhe.network.EncryptedNetwork`); this module
re-exports it and adds the request-stream helpers the serving layer
needs: deriving a layout from a compiled model and chunking an incoming
request list into admissible batches.
"""

from __future__ import annotations

from repro.fhe.packing import BlockLayout, pack_batch, unpack_blocks

__all__ = ["BlockLayout", "layout_for", "pack_batch", "unpack_blocks", "split_batches"]


def layout_for(model) -> BlockLayout:
    """The :class:`BlockLayout` of a compiled :class:`~repro.fhe.network.EncryptedNetwork`."""
    return model.layout


def split_batches(items, max_batch: int):
    """Chunk a request list into admissible batches (all full but the last)."""
    if max_batch < 1:
        raise ValueError(f"max_batch must be >= 1, got {max_batch}")
    items = list(items)
    return [items[i : i + max_batch] for i in range(0, len(items), max_batch)]
