"""SMART-PAF reproduction (MLSys 2024).

Accurate low-degree polynomial approximation of non-polynomial operators
(ReLU, MaxPooling) for fast private inference under the CKKS fully
homomorphic encryption scheme, plus the four SMART-PAF accuracy-recovery
techniques (Coefficient Tuning, Progressive Approximation, Alternate
Training, Dynamic/Static Scaling) and the scheduling framework that
orchestrates them.

Subpackages
-----------
``repro.paf``
    Composite polynomial approximation of ``sign(x)`` and the ReLU / Max
    operators built from it: Cheon et al. f/g bases, minimax (Remez)
    construction, multiplication-depth analysis, distribution-weighted
    coefficient refitting.
``repro.nn``
    A self-contained reverse-mode autograd framework over numpy with the
    layers, optimizers, SWA and the ResNet-18 / VGG-19 topologies used by
    the paper.
``repro.data``
    Deterministic synthetic image-classification datasets standing in for
    CIFAR-10 and ImageNet-1k (offline reproduction).
``repro.core``
    The SMART-PAF techniques and the Fig.-6 scheduler operating on
    ``repro.nn`` models.
``repro.ckks``
    A from-scratch leveled RNS-CKKS implementation (NTT ring arithmetic,
    canonical-embedding encoder, keyswitching, rescaling).
``repro.fhe``
    Encrypted inference built on ``repro.ckks``: PAF-based encrypted
    ReLU/Max, Halevi-Shoup encrypted matmul, a model compiler, and the
    latency harness behind the paper's Fig. 1 / Tab. 4.
``repro.analysis``
    Pareto-frontier utilities, op-graph analysis and table formatting.
``repro.experiments``
    One runner per paper table/figure.
"""

from repro.paf import (
    PAF_REGISTRY,
    CompositePAF,
    OddPolynomial,
    get_paf,
)

__version__ = "1.0.0"

__all__ = [
    "CompositePAF",
    "OddPolynomial",
    "PAF_REGISTRY",
    "get_paf",
    "__version__",
]
