"""Latency-accuracy Pareto frontier (Fig. 1)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["ParetoPoint", "pareto_frontier"]


@dataclass(frozen=True)
class ParetoPoint:
    """One design point: latency (lower better) vs accuracy (higher better)."""

    name: str
    latency: float
    accuracy: float


def pareto_frontier(points: Sequence[ParetoPoint]) -> list:
    """Non-dominated subset, sorted by latency ascending.

    A point is dominated if another point is at least as fast AND at least
    as accurate (strictly better in one of the two).
    """
    frontier = []
    for p in points:
        dominated = any(
            (q.latency <= p.latency and q.accuracy >= p.accuracy)
            and (q.latency < p.latency or q.accuracy > p.accuracy)
            for q in points
        )
        if not dominated:
            frontier.append(p)
    return sorted(frontier, key=lambda p: p.latency)
