"""Analysis utilities: Pareto frontiers, op graphs, table formatting."""

from repro.analysis.graph import model_depth_profile
from repro.analysis.pareto import ParetoPoint, pareto_frontier
from repro.analysis.tables import format_table

__all__ = ["ParetoPoint", "pareto_frontier", "format_table", "model_depth_profile"]
