"""Op-graph analysis: aggregate multiplication depth along a model's
non-polynomial chain (networkx over the surgery trace)."""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.core.surgery import nonpoly_graph
from repro.nn.module import Module
from repro.paf.polynomial import CompositePAF
from repro.paf.relu import maxpool_mult_depth, relu_mult_depth

__all__ = ["model_depth_profile"]


def model_depth_profile(
    model: Module, paf: CompositePAF, sample_input: np.ndarray, maxpool_kernel: int = 2
) -> dict:
    """Depth cost of replacing every non-polynomial site with ``paf``.

    Returns per-site depths and the total along the inference chain — the
    level budget (hence bootstrapping pressure) of the approximated model.
    """
    g = nonpoly_graph(model, sample_input)
    per_site = {}
    total = 0
    for node in nx.topological_sort(g):
        kind = g.nodes[node]["kind"]
        depth = (
            relu_mult_depth(paf)
            if kind == "relu"
            else maxpool_mult_depth(paf, kernel=maxpool_kernel)
        )
        per_site[g.nodes[node]["name"]] = depth
        total += depth
    return {"per_site": per_site, "total_depth": total, "num_sites": len(per_site)}
