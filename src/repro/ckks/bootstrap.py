"""CKKS level refresh (simplified bootstrapping), exactness-gated.

A deep circuit exhausts the rescale chain: every multiplication consumes
one level and at level 0 the computation is over.  *Bootstrapping*
restores levels homomorphically.  This module implements the standard
pipeline shape on top of the existing machinery — and an exactness gate
that makes the precision contract explicit rather than assumed:

``method="evalmod"`` — the real (simplified) pipeline:

1. **ModRaise** (:func:`mod_raise`): reinterpret the level-0 ciphertext
   over the full prime chain.  Decryption now yields ``p + q0·I`` for a
   small integer vector ``I`` — correct *modulo the base prime* ``q0``.
2. **CoeffToSlot** (:func:`coeff_to_slot`): move the polynomial
   coefficients into slot values with the decoding matrix ``A^H``
   (``A_{jk} = ζ_j^k``, ``A⁻¹ = (2/N)·A^H``), run as a BSGS-planned
   Halevi-Shoup matvec over :func:`repro.fhe.linear.encrypted_matvec_bsgs`
   with complex pre-encoded diagonals.  One conjugation separates the two
   coefficient halves ``a`` (real part) and ``b`` (imaginary part).
3. **EvalMod** (:func:`eval_mod`): approximate ``p̃ ↦ p̃ mod q0`` via
   ``(q0/2π)·sin(2π·p̃/q0)``, evaluated as a Chebyshev fit of ``cos`` on
   the range-reduced argument followed by ``r`` exact double-angle steps
   (Han–Ki).  The ``cos`` polynomial runs through the Paterson–Stockmeyer
   planner (:func:`repro.ckks.poly_plan.plan_dense_poly`).
4. **SlotToCoeff** (:func:`slot_to_coeff`): the inverse linear map ``A``
   puts the reduced coefficients back, landing on the canonical scale of
   the target level.

``method="recrypt"`` — the simplified, deterministic variant: decrypt and
re-encrypt (as a noiseless encoding) at the top of the chain.  In a
simulator the key chain is always at hand; recrypt preserves values to
encode rounding (~2^-scale_bits), runs with *zero* keyswitches, and is
byte-identical across kernel backends — which is what the deep-network
demo pipelines and the cross-backend invariance gates need.  The real
pipeline is exercised by the hypothesis suites at parameter points where
its numerics are honest (see below).

Both methods pass through the same **precision gate**: the refreshed
ciphertext is decrypted and compared against the pre-refresh values; a
relative error above the plan's ``rtol`` raises
:class:`RefreshPrecisionError` instead of silently corrupting the
computation downstream.

Parameter honesty
-----------------
``evalmod`` only works when the message amplitude is well below ``q0``:
the sine approximation distorts the signal by ``θ²/6`` at phase
``θ = 2π·Δ·|v|/q0``, and the CoeffToSlot diagonals (``∝ Δ/q0``) must
survive fixed-point encoding.  With this repo's < 2^30 NTT primes that
means ``q0/Δ ≥ 8`` (enforced at plan time) — e.g. ``scale_bits=25`` under
the 29-bit base prime, gated at ``rtol ≈ 5e-2``.  Production systems run
the same pipeline under 50–60-bit primes where both margins are huge;
the structure here is the paper-faithful part, the parameter envelope is
the simulator's.
"""

from __future__ import annotations

import numpy as np

from repro.ckks.context import CkksContext
from repro.ckks.encoder import Plaintext
from repro.ckks.evaluator import Ciphertext, CkksEvaluator
from repro.ckks.instrumentation import span as trace_span
from repro.ckks.poly_plan import plan_dense_poly
from repro.ckks.rns import RnsPoly
from repro.paf.polynomial import Polynomial

__all__ = [
    "RefreshPrecisionError",
    "RefreshPlan",
    "plan_refresh",
    "refresh",
    "canonical_scale",
    "mod_raise",
    "coeff_to_slot",
    "slot_to_coeff",
    "eval_mod",
]


class RefreshPrecisionError(ArithmeticError):
    """A refresh left the declared relative-error envelope.

    Carries the measured relative error and the gate it failed, so
    callers (tests, the serving layer) can distinguish "parameters too
    tight" from a plain bug.
    """

    def __init__(self, method: str, rel_err: float, rtol: float):
        self.method = method
        self.rel_err = rel_err
        self.rtol = rtol
        super().__init__(
            f"refresh ({method}) relative error {rel_err:.3e} exceeds the "
            f"declared gate rtol={rtol:.1e}"
        )


def canonical_scale(ctx: CkksContext, level: int) -> float:
    """The canonical scale of ``level``: ``S_{l-1} = S_l² / q_l`` from the top.

    Every compiled executor keeps ciphertexts on this per-level schedule
    (it is what lets plaintexts pre-encode at deterministic scales); a
    refresh must hand its output back *on* the schedule.
    """
    s = ctx.scale
    for lvl in range(ctx.max_level, level, -1):
        s = s * s / ctx.q_chain[lvl]
    return s


# ----------------------------------------------------------------------
# ModRaise
# ----------------------------------------------------------------------
def mod_raise(ev: CkksEvaluator, ct: Ciphertext, target_level: int) -> Ciphertext:
    """Reinterpret a ciphertext over the chain up to ``target_level``.

    The level-0 residues are centred to ``[-q0/2, q0/2)`` and lifted into
    the larger RNS basis unchanged, so the new ciphertext decrypts to
    ``p + q0·I`` — the message plus an unknown small integer multiple of
    the base prime (``|I|`` is bounded by the secret key's Hamming
    weight).  EvalMod's job is to remove the ``q0·I`` part.
    """
    ct = ev.mod_switch_to(ct, 0)
    ctx = ev.ctx
    q0 = ctx.q_chain[0]
    half = q0 // 2
    chain = list(range(target_level + 1))

    def lift(poly: RnsPoly) -> RnsPoly:
        residues = poly.to_coeff().data[0]
        centred = ((residues + half) % q0) - half
        return RnsPoly.from_small_coeffs(ctx, centred, chain).to_ntt()

    return Ciphertext(lift(ct.c0), lift(ct.c1), ct.scale, target_level)


def _mul_by_i(ev: CkksEvaluator, ct: Ciphertext) -> Ciphertext:
    """Multiply every slot by ``i`` — exactly and for free.

    In this packing ``ζ_j^{N/2} = i`` for every slot ``j``, so the
    monomial product ``X^{N/2}·c(X)`` (a negacyclic coefficient rotation:
    the wrapped half negates) multiplies all slot values by ``i`` with no
    level, scale or noise cost.
    """
    ctx = ev.ctx
    m = ctx.n // 2

    def rot(poly: RnsPoly) -> RnsPoly:
        coeff = poly.to_coeff()
        rows = coeff.data
        primes = np.array(
            [ctx.all_primes[i] for i in coeff.prime_indices], dtype=np.int64
        )[:, None]
        out = np.empty_like(rows)
        out[:, m:] = rows[:, :m]
        out[:, :m] = (primes - rows[:, m:]) % primes
        return RnsPoly(ctx, out, coeff.prime_indices, is_ntt=False).to_ntt()

    return Ciphertext(rot(ct.c0), rot(ct.c1), ct.scale, ct.level)


# ----------------------------------------------------------------------
# refresh plan
# ----------------------------------------------------------------------
class RefreshPlan:
    """Everything one refresh needs, precomputed once per context.

    Built by :func:`plan_refresh`.  For ``evalmod`` this holds the CtS /
    StC matrices with their BSGS :class:`~repro.fhe.linear.MatvecPlan`\\ s,
    the compiled ``cos`` polynomial plan and the range-reduction
    constants; encoded diagonal plaintexts are memoised per
    ``(level, scale)`` consumption point, so repeated refreshes encode
    nothing.  ``pipeline_levels`` is the depth the refresh itself burns —
    the honest part of the IR node's cost model.
    """

    def __init__(
        self,
        ctx: CkksContext,
        method: str,
        rtol: float,
        *,
        mod_k: int = 0,
        num_double_angles: int = 0,
        cos_poly: Polynomial | None = None,
        cos_plan=None,
        cts_matrix: np.ndarray | None = None,
        stc_matrix: np.ndarray | None = None,
        cts_plan=None,
        stc_plan=None,
    ):
        self.ctx = ctx
        self.method = method
        self.rtol = rtol
        self.mod_k = mod_k
        self.num_double_angles = num_double_angles
        self.cos_poly = cos_poly
        self.cos_plan = cos_plan
        self.cts_matrix = cts_matrix
        self.stc_matrix = stc_matrix
        self.cts_plan = cts_plan
        self.stc_plan = stc_plan
        self._encoded: dict = {}

    @property
    def pipeline_levels(self) -> int:
        """Levels the refresh pipeline itself consumes (0 for recrypt).

        CoeffToSlot spends *two* levels: its diagonals are tiny
        (``∝ 1/q0``) and the double-angle steps amplify any CtS error by
        ``2^r``, so the diagonals encode at a two-prime scale (~2^50)
        where fixed-point quantization is negligible — the standard
        large-prime headroom production bootstrappers get for free,
        bought here with one extra rescale.
        """
        if self.method == "recrypt":
            return 0
        cos_depth = self.cos_plan.mult_depth
        return 3 + cos_depth + self.num_double_angles  # CtS(2) + cos + angles + StC

    @property
    def target_level(self) -> int:
        """Level a refreshed ciphertext lands at."""
        return self.ctx.max_level - self.pipeline_levels

    def galois_steps(self) -> tuple:
        """Rotation steps (plus ``"conj"``) keygen must cover."""
        if self.method == "recrypt":
            return ()
        steps = set(self.cts_plan.rotation_steps())
        steps |= set(self.stc_plan.rotation_steps())
        return tuple(sorted(steps)) + ("conj",)

    # -- encoded complex diagonals, memoised per consumption point -----
    def _encoded_groups(
        self, ev: CkksEvaluator, stage: str, level: int, pt_scale: float,
        factor: float,
    ) -> dict:
        """``factor`` folds the *message scale* into the matrix values.

        The base matrices are scale-free; the refreshed ciphertext's
        actual scale (canonical-with-drift, only known at run time)
        multiplies in here, keyed into the memo alongside the encode
        coordinates.
        """
        key = (stage, level, pt_scale, factor)
        cached = self._encoded.get(key)
        if cached is not None:
            return cached
        matrix = self.cts_matrix if stage == "cts" else self.stc_matrix
        mv_plan = self.cts_plan if stage == "cts" else self.stc_plan
        m = matrix.shape[0]
        rows = np.arange(m)
        diagonals = {
            d: factor * matrix[rows, (rows + d) % m] for d in range(m)
        }
        if mv_plan.use_bsgs:
            groups: dict = {}
            for d, vec in diagonals.items():
                b = d % mv_plan.n1
                g = d - b
                groups.setdefault(g, {})[b] = np.roll(vec, g)
        else:
            groups = {0: diagonals}
        encoded = {
            g: {
                b: _encode_complex(ev, vec, level, pt_scale)
                for b, vec in inner.items()
            }
            for g, inner in groups.items()
        }
        self._encoded[key] = encoded
        return encoded


def _encode_complex(
    ev: CkksEvaluator, values: np.ndarray, level: int, scale: float
) -> Plaintext:
    """Encode a *complex* slot vector as a plaintext.

    ``CkksEncoder.encode`` coerces to float64 (real slot data);
    the embedding itself is complex-capable — a real coefficient vector
    evaluating to any complex slot assignment always exists — so the CtS
    and StC diagonals encode through :meth:`CkksEncoder.embed` directly.
    """
    coeffs = ev.encoder.embed(np.asarray(values, dtype=np.complex128))
    if np.max(np.abs(coeffs)) * scale >= 2.0**61:
        raise ValueError(
            f"refresh diagonal encode overflows int64 at scale {scale:.3g}"
        )
    scaled = np.rint(coeffs * scale).astype(np.int64)
    poly = RnsPoly.from_small_coeffs(ev.ctx, scaled, list(range(level + 1)))
    return Plaintext(poly.to_ntt(), scale)


def plan_refresh(
    ctx: CkksContext,
    *,
    method: str = "recrypt",
    rtol: float | None = None,
    mod_k: int | None = None,
    num_double_angles: int | None = None,
    cos_degree: int = 14,
) -> RefreshPlan:
    """Compile a refresh plan for ``ctx``.

    ``method="recrypt"`` needs no parameters beyond the gate ``rtol``
    (default ``1e-3``).  ``method="evalmod"`` picks the wrap bound ``K``
    from the ring size (the ``q0·I`` term scales with the secret key's
    Hamming weight, so ``K ~ √N``), the double-angle count ``r`` so the
    reduced argument fits a well-conditioned Chebyshev window, and fits
    ``cos`` to ``cos_degree`` (default 14; the fit error is negligible
    against the encode/noise floor).  Default evalmod ``rtol`` is
    ``5e-2`` — see the module docstring for where that envelope comes
    from.
    """
    if method == "recrypt":
        return RefreshPlan(ctx, method, 1e-3 if rtol is None else rtol)
    if method != "evalmod":
        raise ValueError(f"unknown refresh method {method!r}")

    q0 = ctx.q_chain[0]
    ratio = q0 / ctx.scale
    if ratio < 8:
        raise ValueError(
            f"evalmod needs q0/scale >= 8 (message well below the base "
            f"prime); got q0/scale = {ratio:.2f}.  Use smaller scale_bits "
            f"(e.g. first_prime_bits - 4) or method='recrypt'."
        )

    n = ctx.n
    if mod_k is None:
        # |I| is a centred sum of ~2N/3 ternary-weighted q0/2-bounded
        # terms: std ≈ √(N/18); six sigmas, floored for tiny rings
        mod_k = max(5, int(np.ceil(6.0 * np.sqrt(n / 18.0))))
    span_rad = 2.0 * np.pi * (mod_k + 1) + np.pi / 2.0
    if num_double_angles is None:
        num_double_angles = max(1, int(np.ceil(np.log2(span_rad / 3.2))))
    r = num_double_angles
    x_max = span_rad / 2.0**r

    # cos via Chebyshev interpolation on [-x_max, x_max], power basis
    cheb = np.polynomial.chebyshev.Chebyshev.interpolate(
        lambda z: np.cos(z * x_max), cos_degree, domain=[-1.0, 1.0]
    )
    pow_scaled = np.polynomial.chebyshev.cheb2poly(cheb.coef)
    coeffs = [
        float(c) / x_max**k for k, c in enumerate(pow_scaled)
    ]
    cos_poly = Polynomial(coeffs, interval=(-x_max, x_max), name="refresh-cos")
    cos_plan = plan_dense_poly(cos_poly)

    # decoding basis A_{jk} = ζ_j^k restricted to the first N/2 columns;
    # slots = A·(a + ib) for coefficient halves a, b, and A⁻¹ = (2/N)·A^H
    m = ctx.slots
    ks = np.arange(m)
    gens = np.array([pow(5, j, 2 * n) for j in range(m)], dtype=np.float64)
    a_basis = np.exp(1j * np.outer(np.pi * gens / n, ks))
    # CtS: conj-separation must come out as 2π·ã/(2^r·q0) (the range-
    # reduced EvalMod argument), so fold 2π/(2^r·q0·N) into A^H; the
    # message scale multiplies in at consumption time (the refreshed
    # ciphertext's actual scale carries rescale drift the plan can't know)
    cts_matrix = (2.0 * np.pi / (2.0**r * q0 * n)) * a_basis.conj().T
    # StC: sin(2πt) ≈ (2π/q0)·p̃, so fold q0/2π back into A (divided by
    # the message scale at consumption time)
    stc_matrix = (q0 / (2.0 * np.pi)) * a_basis

    from repro.fhe.linear import plan_matvec

    mv_plan = plan_matvec(range(m), m)
    return RefreshPlan(
        ctx,
        method,
        5e-2 if rtol is None else rtol,
        mod_k=mod_k,
        num_double_angles=r,
        cos_poly=cos_poly,
        cos_plan=cos_plan,
        cts_matrix=cts_matrix,
        stc_matrix=stc_matrix,
        cts_plan=mv_plan,
        stc_plan=mv_plan,
    )


# ----------------------------------------------------------------------
# pipeline stages (evalmod)
# ----------------------------------------------------------------------
def coeff_to_slot(
    ev: CkksEvaluator, ct: Ciphertext, plan: RefreshPlan
) -> tuple:
    """Move coefficients into slots; returns ``(ct_a, ct_b)``.

    ``ct_a`` holds the EvalMod arguments for the low coefficient half
    (``2π·ã/(2^r·q0)`` in every slot), ``ct_b`` the high half — via one
    BSGS matvec with the folded ``A^H`` diagonals, one conjugation and
    the free ``×i`` monomial product.
    """
    from repro.fhe.linear import encrypted_matvec_bsgs

    # two-prime encode scale: the matvec's internal rescale leaves the
    # product one prime heavy, and the extra rescale below lands it on
    # the canonical scale two levels down with ~50-bit diagonal precision
    s_next = canonical_scale(ev.ctx, ct.level - 2)
    q_chain = ev.ctx.q_chain
    pt_scale = s_next * q_chain[ct.level] * q_chain[ct.level - 1] / ct.scale
    groups = plan._encoded_groups(ev, "cts", ct.level, pt_scale, ct.scale)
    w = ev.rescale(encrypted_matvec_bsgs(ev, ct, groups=groups))
    wc = ev.conjugate(w)
    ct_a = ev.add(w, wc)
    ct_b = _mul_by_i(ev, ev.sub(wc, w))
    return ct_a, ct_b


def eval_mod(ev: CkksEvaluator, ct: Ciphertext, plan: RefreshPlan) -> Ciphertext:
    """Approximate ``sin(2π·t)`` on the range-reduced argument.

    Input slots hold ``u = 2π·t/2^r``; the phase shift ``-π/2^{r+1}``
    (free plaintext add) moves the Chebyshev ``cos`` fit onto
    ``cos(2^r·x) = cos(2π·t - π/2) = sin(2π·t)``; ``r`` double-angle
    steps (``cos 2θ = 2cos²θ - 1``, one level each) restore the full
    angle.  ``q0``-periodicity is what deletes the ``q0·I`` term.
    """
    from repro.ckks.poly_eval import eval_dense_poly

    r = plan.num_double_angles
    x = ev.add_plain(ct, -np.pi / 2.0 ** (r + 1))
    y = eval_dense_poly(ev, x, plan.cos_poly, plan=plan.cos_plan)
    for _ in range(r):
        doubled = ev.mul_rescale(y, y)
        y = ev.add_plain(ev.add(doubled, doubled), -1.0)
    return y


def slot_to_coeff(
    ev: CkksEvaluator,
    ct_a: Ciphertext,
    ct_b: Ciphertext,
    plan: RefreshPlan,
    msg_scale: float,
) -> Ciphertext:
    """Recombine the halves and move slot values back to coefficients.

    ``msg_scale`` is the scale the refreshed message was encoded at on
    entry (its coefficients are ``msg_scale·v``); dividing it out of the
    StC diagonals makes the output decrypt to ``v`` at the canonical
    scale of the output level, which the diagonals' encode scale lands
    exactly (single rescale).
    """
    from repro.fhe.linear import encrypted_matvec_bsgs

    y = ev.add(ct_a, _mul_by_i(ev, ct_b))
    s_tgt = canonical_scale(ev.ctx, y.level - 1)
    pt_scale = s_tgt * ev.ctx.q_chain[y.level] / y.scale
    groups = plan._encoded_groups(ev, "stc", y.level, pt_scale, 1.0 / msg_scale)
    out = encrypted_matvec_bsgs(ev, y, groups=groups)
    out.scale = s_tgt  # exact by construction (up to encode rounding)
    return out


# ----------------------------------------------------------------------
# the refresh itself
# ----------------------------------------------------------------------
def refresh(ev: CkksEvaluator, ct: Ciphertext, plan: RefreshPlan) -> Ciphertext:
    """Refresh ``ct`` back to ``plan.target_level``, precision-gated.

    Decrypts the input once for the gate reference (and, under
    ``recrypt``, as the refresh itself), runs the plan's pipeline, then
    decrypts the output and enforces ``plan.rtol`` — raising
    :class:`RefreshPrecisionError` rather than handing a silently
    corrupted ciphertext downstream.  The whole refresh runs inside a
    ``refresh:<method>`` trace span, which is what exempts its
    level-raising transition from the trace checker's monotone-level
    rule.
    """
    ctx = ev.ctx
    with trace_span(
        ev, f"refresh:{plan.method}", kind="refresh",
        method=plan.method, target_level=plan.target_level,
    ) as sp:
        sp.ct_entry(ct)
        reference = ev.decrypt(ct)
        if plan.method == "recrypt":
            target = plan.target_level
            scale = canonical_scale(ctx, target)
            pt = ev.encoder.encode(reference, target, scale)
            chain = list(range(target + 1))
            out = Ciphertext(
                pt.poly, RnsPoly.zero(ctx, chain, is_ntt=True), scale, target
            )
        else:
            raised = mod_raise(ev, ct, ctx.max_level)
            ct_a, ct_b = coeff_to_slot(ev, raised, plan)
            ya = eval_mod(ev, ct_a, plan)
            yb = eval_mod(ev, ct_b, plan)
            out = slot_to_coeff(ev, ya, yb, plan, ct.scale)
        got = ev.decrypt(out)
        err = float(np.max(np.abs(got - reference)))
        ref = float(np.max(np.abs(reference)))
        rel = err / max(ref, 1e-12)
        if rel > plan.rtol:
            raise RefreshPrecisionError(plan.method, rel, plan.rtol)
        sp.set(rel_err=rel)
        sp.ct_exit(out)
    return out
