"""CKKS context: parameters, modulus chain and per-prime NTT plans.

The modulus chain is ``[q0, q1, ..., qL, P]``: a larger first prime ``q0``
(holds the final message), ``L`` rescaling primes close to the scale
``Δ = 2^scale_bits``, and one special prime ``P`` used only for hybrid
keyswitching.  All primes are NTT-friendly and < 2^30 (int64 safety).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ckks.backend import resolve_backend
from repro.ckks.ntt import NttPlan, _bit_reverse_indices
from repro.ckks.primes import generate_primes, generate_scale_tracking_primes

__all__ = ["CkksParams", "CkksContext"]


@dataclass(frozen=True)
class CkksParams:
    """CKKS parameter set.

    ``depth`` is the number of rescaling levels available (the chain gets
    ``depth`` scale primes); a fresh ciphertext sits at level ``depth`` and
    each multiply+rescale consumes one level.
    """

    n: int = 2048                 # ring degree (slots = n/2)
    scale_bits: int = 25          # log2(Δ)
    depth: int = 8                # rescaling levels
    first_prime_bits: int = 29    # q0
    special_prime_bits: int = 29  # P (keyswitch hop)
    error_std: float = 3.2        # discrete gaussian σ
    #: pick each scale prime near the *running* canonical scale instead of
    #: near 2^scale_bits — mandatory beyond ~20 levels, where nearest-to-Δ
    #: primes let the canonical schedule collapse double-exponentially
    #: (see :func:`repro.ckks.primes.generate_scale_tracking_primes`)
    scale_tracking: bool = False
    #: kernel backend name (``"reference"`` / ``"vectorized"``); ``None``
    #: resolves the ``REPRO_BACKEND`` env var, defaulting to reference —
    #: see :mod:`repro.ckks.backend` (all backends are bit-identical)
    backend: str | None = None

    @property
    def slots(self) -> int:
        return self.n // 2

    @staticmethod
    def paper_grade() -> "CkksParams":
        """The paper's SEAL configuration scale: N=32768, ~881-bit modulus.

        881 ≈ 29 + 29 · 28 + 29 with 28-bit scale primes; constructible but
        slow in pure Python — used only for explicitly-requested runs.
        """
        return CkksParams(
            n=32768, scale_bits=28, depth=29, first_prime_bits=30, special_prime_bits=30
        )

    @staticmethod
    def latency_grade(depth: int = 12) -> "CkksParams":
        """Mid-size context for the latency benchmarks (Fig. 1 / Tab. 4)."""
        return CkksParams(n=8192, scale_bits=25, depth=depth)

    @staticmethod
    def test_grade(depth: int = 6, n: int = 1024) -> "CkksParams":
        """Small fast context for unit tests."""
        return CkksParams(n=n, scale_bits=25, depth=depth)


class CkksContext:
    """Precomputed modulus chain, NTT plans and RNS constants."""

    def __init__(self, params: CkksParams):
        self.params = params
        n = params.n
        if params.scale_tracking:
            primes = generate_scale_tracking_primes(
                n,
                params.scale_bits,
                params.depth,
                first_prime_bits=params.first_prime_bits,
                special_prime_bits=params.special_prime_bits,
            )
        else:
            sizes = (
                [params.first_prime_bits]
                + [params.scale_bits] * params.depth
                + [params.special_prime_bits]
            )
            primes = generate_primes(n, sizes)
        #: q0..qL (the ciphertext chain), excluding the special prime
        self.q_chain = primes[:-1]
        #: the keyswitching special prime
        self.special_prime = primes[-1]
        #: all primes, special last — index space for RNS rows
        self.all_primes = self.q_chain + [self.special_prime]
        self.plans = [NttPlan.get(n, p) for p in self.all_primes]
        self.scale = float(2**params.scale_bits)

        arr = np.array(self.all_primes, dtype=np.int64)
        self._primes_arr = arr
        # q_j^{-1} mod q_i tables are built lazily where needed; the two
        # heavily-used constant families are precomputed here:
        # (a) rescale: q_last^{-1} mod q_j for every prefix length
        self._rescale_inv = {}
        for level in range(1, len(self.q_chain)):
            q_last = self.q_chain[level]
            self._rescale_inv[level] = np.array(
                [pow(q_last, p - 2, p) for p in self.q_chain[:level]], dtype=np.int64
            )
        # (b) keyswitch: P^{-1} mod q_j
        self._p_inv = np.array(
            [pow(self.special_prime, p - 2, p) for p in self.q_chain], dtype=np.int64
        )
        # (c) Galois automorphisms as NTT-domain permutations (lazy per g)
        self._galois_perms: dict = {}
        self._bitrev = _bit_reverse_indices(n)
        # kernel backend last: it reads the tables built above
        self.backend = resolve_backend(params.backend, self)

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.params.n

    @property
    def slots(self) -> int:
        return self.params.slots

    @property
    def max_level(self) -> int:
        """Fresh ciphertexts start here (number of rescales available)."""
        return len(self.q_chain) - 1

    def primes_at_level(self, level: int) -> list:
        """Chain primes active at ``level`` (q_0..q_level)."""
        return self.q_chain[: level + 1]

    def rescale_inverses(self, level: int) -> np.ndarray:
        """q_level^{-1} mod q_j for j < level."""
        return self._rescale_inv[level]

    def p_inverses(self, level: int) -> np.ndarray:
        """P^{-1} mod q_j for j <= level."""
        return self._p_inv[: level + 1]

    def galois_ntt_permutation(self, g: int) -> np.ndarray:
        """NTT-slot permutation realising ``X -> X^g`` in evaluation domain.

        The forward negacyclic NTT evaluates a polynomial at the odd root
        powers ``ψ^{t_i}`` with ``t_i = 2·bitrev(i) + 1``, so the Galois
        automorphism ``(φ_g f)(ψ^{t_i}) = f(ψ^{g·t_i mod 2N})`` is a pure
        reindexing of the transform output — no signs, no NTTs.  This is
        what makes rotation *hoisting* cheap: decomposed keyswitch digits
        can be kept in NTT form and permuted per Galois element.  The
        permutation depends only on ``(N, g)`` and is cached.
        """
        g = g % (2 * self.n)
        perm = self._galois_perms.get(g)
        if perm is None:
            t = 2 * self._bitrev + 1
            tg = t * g % (2 * self.n)
            # bit reversal is an involution, so it is its own inverse map
            perm = self._bitrev[(tg - 1) // 2]
            self._galois_perms[g] = perm
        return perm

    def set_backend(self, backend=None):
        """Swap the kernel backend on a live context.

        ``backend`` is a registered name, a :class:`KernelBackend`
        instance bound to this context, or ``None`` (re-resolve the
        ``REPRO_BACKEND`` env var / default).  Backends are bit-identical
        by contract, so switching mid-computation is safe — ciphertexts
        produced before and after the switch interoperate exactly.  Used
        by the conformance suite and ``--check-backends`` tooling to run
        the same compiled model under every backend without re-keygen.
        """
        self.backend = resolve_backend(backend, self)
        return self.backend

    def modulus_bits(self) -> float:
        """Total log2 of the ciphertext modulus (without the special prime)."""
        return float(sum(np.log2(p) for p in self.q_chain))

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"CkksContext(n={self.n}, depth={self.params.depth}, "
            f"scale=2^{self.params.scale_bits}, logQ={self.modulus_bits():.0f})"
        )
