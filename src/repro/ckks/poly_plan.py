"""Compile odd polynomials into Paterson–Stockmeyer evaluation plans.

The reference evaluator (``repro.ckks.poly_eval.eval_odd_poly`` with
``reference=True``) is *term-by-term*: every term ``c_k x^k`` merges its own
leaf ``c_k·x`` with the binary power-ladder rungs of ``k-1``, costing
``popcount(k-1)`` nonscalar (ciphertext×ciphertext) multiplications per
term — ``O(degree)`` overall.  Paterson–Stockmeyer (baby-step/giant-step
over polynomial terms) shares the high bits of the exponents across terms:

* pick a baby window ``w = 2^β``; *block* ``j`` collects the terms with
  exponents in ``[w·j+1, w·j+w-1]``;
* inside a block, each term keeps the depth-optimal *leaf fold*: the
  coefficient rides the depth-1 product ``c·x`` and merges the shared even
  rungs ``x², x⁴, …`` of its in-block exponent;
* blocks combine through the *giant* powers ``x^{w·2^r}`` — either a
  balanced tree (depth ``β + ⌈log₂ m⌉`` for ``m`` blocks) or a giant-step
  Horner chain (depth ``β + m - 1``, but only one giant power to build);
* :func:`plan_odd_poly` searches ``(β, combine shape)`` for the minimum
  nonscalar-mult count **subject to consuming exactly the ladder's level
  budget** ``⌈log₂(d+1)⌉`` — the Appendix-C depth schedule is preserved,
  so CKKS parameters never grow.

The plan is symbolic (no ciphertexts, no numpy): compiling is cheap enough
to do per network layer at build time, and the plan doubles as the analytic
cost model (``repro.fhe.latency.activation_op_counts``) and as the
enumeration of coefficient plaintexts that ``repro.serve.artifact``
pre-encodes at their exact ``(level, scale)``.

Mirroring :class:`repro.fhe.linear.MatvecPlan`, the choice is *strictly
fewer nonscalar mults* — ties fall back to the ladder (``use_ps=False``).
Degree-3 components (``f1``, ``g1``) always tie: ``c₁x + c₃x³`` needs two
nonscalar mults either way, which is optimal, so ``f1²∘g1²`` keeps the
ladder while every registry PAF with a degree ≥ 5 component gets strictly
cheaper (see ``docs/paf-evaluation.md`` for the accounting).

>>> from repro.paf.bases import g_poly
>>> plan = plan_odd_poly(g_poly(3))          # degree 7, ladder needs 6
>>> plan.use_ps, plan.nonscalar_mults, plan.mult_depth
(True, 5, 3)
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.paf.polynomial import (
    CompositePAF,
    OddPolynomial,
    Polynomial,
    mult_depth_of_degree,
)

__all__ = [
    "TermPlan",
    "BlockPlan",
    "PolyPlan",
    "CompositePlan",
    "ReluPlan",
    "DensePolyPlan",
    "plan_odd_poly",
    "plan_composite",
    "plan_paf_relu",
    "plan_dense_poly",
    "ladder_nonscalar_mults",
    "dense_ladder_nonscalar_mults",
    "fold_relu_composite",
]


def _rung_bits(value: int) -> tuple:
    """Ascending ``log2`` exponents of the set bits of an even ``value``."""
    bits = []
    e = 0
    while value:
        if value & 1:
            bits.append(e)
        value >>= 1
        e += 1
    return tuple(bits)


def _nonzero_terms(poly: OddPolynomial) -> list:
    """``[(exponent, coeff), ...]`` for the nonzero terms, ascending."""
    terms = [(2 * i + 1, float(c)) for i, c in enumerate(poly.coeffs) if c != 0.0]
    if not terms:
        raise ValueError("polynomial has no nonzero terms")
    return terms


def ladder_nonscalar_mults(poly: OddPolynomial) -> int:
    """Nonscalar mults of the reference ladder evaluation.

    Rungs up to the largest power of two ≤ ``d_eff - 1`` (``d_eff`` the
    highest *nonzero* exponent) plus ``popcount(k-1)`` leaf merges per
    nonzero term — the counts ``eval_odd_poly(reference=True)`` performs.

    >>> from repro.paf.polynomial import OddPolynomial
    >>> ladder_nonscalar_mults(OddPolynomial([1.5, -0.5]))   # c1 x + c3 x^3
    2
    """
    terms = _nonzero_terms(poly)
    degree = terms[-1][0]
    rungs = 0
    rung = 1
    while degree > 1 and rung * 2 <= degree - 1:
        rungs += 1
        rung *= 2
    return rungs + sum(bin(k - 1).count("1") for k, _ in terms)


# ----------------------------------------------------------------------
# plan data model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TermPlan:
    """One in-block term ``c · x^exponent`` (exponent local to the block).

    The term is evaluated leaf-first: the depth-1 product ``c·x`` is
    merged, ascending, with the shared even rungs ``x^(2^e)`` for the set
    bits ``e`` of ``exponent - 1`` — landing at depth
    ``⌈log₂(exponent+1)⌉`` with ``len(rungs)`` nonscalar mults.
    """

    exponent: int
    coeff: float
    rungs: tuple

    @property
    def depth(self) -> int:
        return max(1, math.ceil(math.log2(self.exponent + 1)))


@dataclass(frozen=True)
class BlockPlan:
    """The terms of one baby window: exponents ``w·position + exponent``."""

    position: int
    terms: tuple

    @property
    def depth(self) -> int:
        return max(t.depth for t in self.terms)

    @property
    def merge_mults(self) -> int:
        return sum(len(t.rungs) for t in self.terms)


@dataclass(frozen=True)
class PolyPlan:
    """Compiled evaluation plan for one odd polynomial.

    ``use_ps`` selects between the Paterson–Stockmeyer decomposition and
    the term-by-term ladder; the choice is *strictly fewer nonscalar
    mults* — ties go to the ladder (degree-3 components, single-term
    polynomials), mirroring :class:`repro.fhe.linear.MatvecPlan`.
    """

    degree: int          #: highest nonzero exponent
    mult_depth: int      #: levels consumed (identical on both paths)
    window: int          #: baby window ``w = 2^beta``
    shape: str           #: ``"balanced"`` | ``"horner"`` giant combine
    use_ps: bool
    blocks: tuple        #: nonempty :class:`BlockPlan`, ascending position
    block_targets: tuple  #: per-block depth at which the combine consumes it
    rung_top: int        #: build shared rungs ``x^(2^e)`` for ``e = 1..rung_top``
    giant_count: int     #: giant squarings (``x^w, x^2w, …``); horner: 1
    combine_mults: int   #: block-combine nonscalar mults
    ladder_mults: int    #: reference ladder nonscalar count

    @property
    def beta(self) -> int:
        """``log2`` of the baby window."""
        return self.window.bit_length() - 1

    @property
    def ps_mults(self) -> int:
        """Nonscalar mults of the Paterson–Stockmeyer path."""
        return (
            self.rung_top
            + self.giant_count
            + sum(b.merge_mults for b in self.blocks)
            + self.combine_mults
        )

    @property
    def nonscalar_mults(self) -> int:
        """Nonscalar mults of the *chosen* path."""
        return self.ps_mults if self.use_ps else self.ladder_mults

    @property
    def num_leaves(self) -> int:
        """Leaf plaintext products ``c·x`` (one per nonzero coefficient)."""
        return sum(len(b.terms) for b in self.blocks)

    def _leaf_depth(self, block, target: int, term) -> int:
        """Depth at which one term's leaf plaintext product happens.

        A term with rungs starts at its first rung's level; a bare term in
        a multi-term block lands at the block's anchor; a single bare term
        is computed directly where the combine consumes the block.
        """
        if term.rungs:
            return term.rungs[0]
        return target if len(block.terms) == 1 else block.depth

    def leaf_schedule(self, q_chain, level: int, scale: float) -> dict:
        """Exact coordinates of every leaf for an input at ``(level, scale)``.

        Returns ``{(position, exponent): (enc_level, enc_scale,
        target_level, target_scale)}`` — the evaluator multiplies the
        coefficient plaintext encoded at ``(enc_level, enc_scale)``
        against the (mod-switched) input and rescales once, landing the
        leaf at ``(target_level, target_scale)`` on the canonical scale of
        its level with no drift correction.  The serving artifact
        pre-encodes exactly these keys
        (:meth:`ReluPlan.constant_encodings`), so executor encodes hit the
        plaintext cache key-for-key.
        """
        sched = {level: scale}
        s = scale
        for lvl in range(level, level - self.mult_depth, -1):
            s = s * s / q_chain[lvl]
            sched[lvl - 1] = s
        out = {}
        for block, target in zip(self.blocks, self.block_targets):
            for term in block.terms:
                depth = self._leaf_depth(block, target, term)
                tgt_level = level - depth
                enc_scale = sched[tgt_level] * q_chain[tgt_level + 1] / scale
                out[(block.position, term.exponent)] = (
                    tgt_level + 1,
                    enc_scale,
                    tgt_level,
                    sched[tgt_level],
                )
        return out

    def leaf_encodings(self, q_chain, level: int, scale: float) -> list:
        """``(value, level, scale)`` of each coefficient plaintext encode.

        On the ladder path every leaf encodes at the input coordinates;
        on the Paterson–Stockmeyer path at its :meth:`leaf_schedule`
        coordinates.
        """
        if not self.use_ps:
            return [
                (t.coeff, level, scale) for b in self.blocks for t in b.terms
            ]
        coords = self.leaf_schedule(q_chain, level, scale)
        return [
            (t.coeff, *coords[(b.position, t.exponent)][:2])
            for b in self.blocks
            for t in b.terms
        ]


def _build_blocks(terms, window: int) -> dict:
    """Group ``(exponent, coeff)`` terms into baby-window blocks."""
    grouped: dict = {}
    for k, c in terms:
        pos = k // window
        local = k - window * pos
        grouped.setdefault(pos, []).append(
            TermPlan(exponent=local, coeff=c, rungs=_rung_bits(local - 1))
        )
    return {
        pos: BlockPlan(position=pos, terms=tuple(ts))
        for pos, ts in sorted(grouped.items())
    }


def _analyze(blocks: dict, beta: int, shape: str):
    """``(depth, rung_top, giant_count, combine_mults, targets)``.

    ``targets[position]`` is the depth at which the combine first consumes
    the block's value.  The executor computes each block's leaves directly
    at their target (a single scaled plaintext product lands a leaf at any
    level exactly — no drift correction), so the targets double as the
    coefficient-plaintext coordinates ``repro.serve.artifact`` pre-encodes.
    """
    maxpos = max(blocks)
    max_rung_used = max(
        (t.rungs[-1] for b in blocks.values() for t in b.terms if t.rungs),
        default=0,
    )
    if maxpos == 0:
        # single block: the in-block ladder needs no giants at all
        return blocks[0].depth, max_rung_used, 0, 0, {0: blocks[0].depth}
    if shape == "horner":
        # the accumulator sits at depth beta + k after k giant products;
        # each block joins at the accumulator's depth on its turn
        targets = {maxpos: beta}
        depth = beta
        for pos in range(maxpos - 1, -1, -1):
            depth += 1
            if pos in blocks:
                targets[pos] = depth
        return depth, beta - 1, 1, maxpos, targets

    # balanced: recurse over the position space [0, 2^s)
    span = 1
    while span <= maxpos:
        span *= 2
    state = {"combine": 0, "r_max": -1}
    targets: dict = {}

    def rec(lo: int, span_: int, target):
        """Depth of the subtree's value; ``target`` is where the parent
        consumes it (None for the root: the subtree anchors itself)."""
        if span_ == 1:
            b = blocks.get(lo)
            if b is None:
                return None
            targets[lo] = b.depth if target is None else max(b.depth, target)
            return targets[lo]
        half = span_ // 2
        r = half.bit_length() - 1
        gdepth = beta + r
        right = rec(lo + half, half, gdepth)
        if right is None:
            return rec(lo, half, target)
        state["combine"] += 1
        state["r_max"] = max(state["r_max"], r)
        prod = max(gdepth, right) + 1
        left = rec(lo, half, prod)
        return prod if left is None else max(left, prod)

    depth = rec(0, span, None)
    return depth, beta - 1, state["r_max"] + 1, state["combine"], targets


def plan_odd_poly(poly: OddPolynomial, exact_scales: bool = False) -> PolyPlan:
    """Compile the cheapest depth-preserving plan for an odd polynomial.

    Searches baby windows ``w = 2^β`` and both giant-combine shapes,
    keeping the minimum nonscalar-mult candidate whose depth does not
    exceed the ladder's ``⌈log₂(d+1)⌉`` budget (``d`` the highest nonzero
    exponent).  ``use_ps`` is set only on a *strict* win — except under
    ``exact_scales``, which forces the Paterson–Stockmeyer executor even
    on ties: its alignments are exact (rtol 0), so the ciphertext scale
    never leaves the canonical per-level schedule.  The ladder tolerates
    sub-percent mismatches, and on chains deeper than ~20 levels those
    deviations *double* per rescale until the true scale overflows the
    modulus — deep (residual) networks must plan with ``exact_scales``.

    >>> from repro.paf.bases import g_poly
    >>> plan_odd_poly(g_poly(2)).nonscalar_mults     # degree 5: 4 -> 3
    3
    >>> plan_odd_poly(g_poly(1)).use_ps              # degree 3: 2 is optimal
    False
    >>> plan_odd_poly(g_poly(1), exact_scales=True).use_ps
    True
    """
    terms = _nonzero_terms(poly)
    degree = terms[-1][0]
    budget = mult_depth_of_degree(degree)
    ladder = ladder_nonscalar_mults(poly)

    best = None
    for beta in range(1, budget + 1):
        window = 2**beta
        blocks = _build_blocks(terms, window)
        for shape in ("balanced", "horner"):
            depth, rung_top, giants, combine, targets = _analyze(
                blocks, beta, shape
            )
            if depth > budget:
                continue
            total = (
                rung_top
                + giants
                + sum(b.merge_mults for b in blocks.values())
                + combine
            )
            key = (total, depth, beta, shape != "balanced")
            if best is None or key < best[0]:
                best = (key, window, shape, blocks, rung_top, giants, combine, targets)
    _, window, shape, blocks, rung_top, giants, combine, targets = best
    positions = sorted(blocks)
    return PolyPlan(
        degree=degree,
        mult_depth=budget,
        window=window,
        shape=shape,
        use_ps=best[0][0] < ladder or exact_scales,
        blocks=tuple(blocks[p] for p in positions),
        block_targets=tuple(targets[p] for p in positions),
        rung_top=rung_top,
        giant_count=giants,
        combine_mults=combine,
        ladder_mults=ladder,
    )


# ----------------------------------------------------------------------
# composite / ReLU plans
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CompositePlan:
    """Per-component plans for a composite sign PAF (innermost first)."""

    components: tuple

    @property
    def mult_depth(self) -> int:
        return sum(p.mult_depth for p in self.components)

    @property
    def nonscalar_mults(self) -> int:
        return sum(p.nonscalar_mults for p in self.components)

    @property
    def num_leaves(self) -> int:
        return sum(p.num_leaves for p in self.components)


def plan_composite(paf: CompositePAF, exact_scales: bool = False) -> CompositePlan:
    """Compile one :class:`PolyPlan` per component of a composite PAF."""
    return CompositePlan(
        tuple(plan_odd_poly(c, exact_scales=exact_scales) for c in paf.components)
    )


def fold_relu_composite(paf: CompositePAF, scale: float = 1.0) -> CompositePAF:
    """The composite actually evaluated inside the encrypted ReLU.

    The Static-Scaling input scale folds into the innermost component and
    the reconstruction's ½ into the outermost — both free under FHE.
    """
    if scale != 1.0:
        paf = paf.scaled_input(scale)
    comps = list(paf.components)
    comps[-1] = comps[-1].scaled_output(0.5)
    return CompositePAF(comps, name=paf.name, reported_degree=paf.reported_degree)


@dataclass(frozen=True)
class ReluPlan:
    """Everything the encrypted PAF-ReLU evaluation needs, precompiled.

    ``folded`` is the scale-folded, ½-folded composite whose components
    the plans were compiled for; evaluating it and gating
    ``x · (0.5 + 0.5·sign)`` costs ``mult_depth`` levels total.
    """

    folded: CompositePAF
    components: tuple
    scale: float = 1.0
    #: planned with forced-PS components and an exact (rtol 0) gate
    #: alignment — the deep-chain scale discipline (see
    #: :func:`plan_odd_poly`)
    exact_scales: bool = False

    @property
    def mult_depth(self) -> int:
        """Sign depth + 1 for the final ``x · gate`` product."""
        return sum(p.mult_depth for p in self.components) + 1

    @property
    def nonscalar_mults(self) -> int:
        """Sign mults + 1 for the final ``x · gate`` product."""
        return sum(p.nonscalar_mults for p in self.components) + 1

    @property
    def num_leaves(self) -> int:
        return sum(p.num_leaves for p in self.components)

    def constant_encodings(self, q_chain, level: int, scale: float) -> list:
        """``(value, level, scale)`` of every deterministic plaintext encode.

        For an input ciphertext at ``(level, scale)``: each component's
        coefficient leaves at their :meth:`PolyPlan.leaf_encodings`
        coordinates, and the ReLU gate constant ``0.5`` at the sign
        output's coordinates.  Scale-alignment corrections (the few the
        executor still needs, e.g. when summing a multi-term block) are
        excluded; they land in the plaintext cache on first evaluation.
        ``repro.serve.artifact`` walks this list to pre-encode activation
        constants.
        """
        out = []
        for comp_plan in self.components:
            out.extend(comp_plan.leaf_encodings(q_chain, level, scale))
            for _ in range(comp_plan.mult_depth):
                scale = scale * scale / q_chain[level]
                level -= 1
        out.append((0.5, level, scale))
        return out


# ----------------------------------------------------------------------
# dense (non-odd) polynomial plans — the exp/GELU tier
# ----------------------------------------------------------------------
def _dense_terms(poly: Polynomial) -> tuple:
    """``(constant, [(exponent, coeff), ...])`` with exponents ≥ 1."""
    terms = [(k, float(c)) for k, c in enumerate(poly.coeffs) if k >= 1 and c != 0.0]
    if not terms:
        raise ValueError("dense polynomial has no nonzero non-constant terms")
    return float(poly.coeffs[0]), terms


def dense_ladder_nonscalar_mults(poly: Polynomial) -> int:
    """Nonscalar mults of the reference ladder for a dense polynomial.

    Like :func:`ladder_nonscalar_mults` with all exponents admitted: the
    shared rungs ``x^(2^e)`` up to the largest power of two ≤ ``d - 1``,
    plus ``popcount(k-1)`` merges per nonzero term (bit 0 of ``k-1``
    merges against ``x`` itself for even exponents).  The constant term
    is a free plaintext add.

    >>> from repro.paf.polynomial import Polynomial
    >>> dense_ladder_nonscalar_mults(Polynomial([0.1, 0.5, 0.4, 0.2]))
    3
    """
    _, terms = _dense_terms(poly)
    degree = terms[-1][0]
    rungs = 0
    rung = 1
    while degree > 1 and rung * 2 <= degree - 1:
        rungs += 1
        rung *= 2
    return rungs + sum(bin(k - 1).count("1") for k, _ in terms)


def _dense_rung_bits(value: int) -> tuple:
    """Ascending ``log2`` exponents of the set bits of ``value`` (any
    parity — bit 0 names the ``x¹`` rung)."""
    bits = []
    e = 0
    while value:
        if value & 1:
            bits.append(e)
        value >>= 1
        e += 1
    return tuple(bits)


@dataclass(frozen=True)
class DensePolyPlan:
    """Compiled giant-step-Horner Paterson–Stockmeyer plan for a dense
    polynomial.

    The dense twin of :class:`PolyPlan` for the transformer-tier
    activations (GELU, the softmax ``exp``): exponents of *any* parity,
    a constant term (one plaintext add), baby window ``w = 2^β`` and a
    single giant ``x^w`` consumed by a Horner chain over the blocks —
    at the toy degrees in use (3–8) the Horner combine is never beaten
    by a balanced tree within the ladder's
    ``⌈log₂(d+1)⌉`` depth budget, so only that shape is planned.
    ``use_ps`` is a strict nonscalar-mult win exactly like the odd
    planner; ``exact_scales`` forces PS on ties for deep chains.

    >>> from repro.paf.polynomial import Polynomial
    >>> p = Polynomial([0.3, 0.1, -0.2, 0.05, 0.4, 0.0, 0.0, 0.1, 0.02])
    >>> plan = plan_dense_poly(p)                 # degree 8, ladder: 11
    >>> plan.use_ps, plan.nonscalar_mults, plan.mult_depth
    (True, 6, 4)
    """

    degree: int          #: highest nonzero exponent
    mult_depth: int      #: levels consumed (the ladder's budget, both paths)
    window: int          #: baby window ``w = 2^beta``
    use_ps: bool
    constant: float      #: ``c₀`` — one trailing plaintext add, no level
    blocks: tuple        #: ``(position, ((exponent, coeff, rungs), ...))``
    rung_top: int        #: shared rungs ``x^(2^e)``, ``e = 1..rung_top``
    giant_count: int     #: 1 when more than one block (``x^w``), else 0
    combine_mults: int   #: *nonscalar* Horner giant products (constant-
                         #: accumulator steps are scalar mults)
    ladder_mults: int    #: reference ladder nonscalar count

    @property
    def beta(self) -> int:
        return self.window.bit_length() - 1

    @property
    def ps_mults(self) -> int:
        return (
            self.rung_top
            + self.giant_count
            + sum(len(rungs) for _, terms in self.blocks for _, _, rungs in terms)
            + self.combine_mults
        )

    @property
    def nonscalar_mults(self) -> int:
        return self.ps_mults if self.use_ps else self.ladder_mults


def plan_dense_poly(poly: Polynomial, exact_scales: bool = False) -> DensePolyPlan:
    """Compile the cheapest depth-preserving dense-polynomial plan.

    Searches baby windows ``w = 2^β`` for the giant-step-Horner
    decomposition with the fewest nonscalar mults whose depth stays
    within the ladder's ``⌈log₂(d+1)⌉`` budget.  A term whose exponent
    is an exact multiple of the window (local exponent 0) rides the
    block sum as a plaintext constant — no leaf product at all.
    ``exact_scales`` forces the PS executor on ties (the deep-chain
    scale discipline of :func:`plan_odd_poly`).
    """
    constant, terms = _dense_terms(poly)
    degree = terms[-1][0]
    budget = mult_depth_of_degree(degree)
    ladder = dense_ladder_nonscalar_mults(poly)

    best = None
    for beta in range(1, budget + 1):
        window = 2**beta
        grouped: dict = {}
        for k, c in terms:
            pos = k // window
            local = k - window * pos
            rungs = _dense_rung_bits(local - 1) if local >= 1 else ()
            grouped.setdefault(pos, []).append((local, c, rungs))
        maxpos = max(grouped)
        # depth: blocks are ≤ beta deep; the Horner accumulator takes one
        # level per giant product walking maxpos positions down to 0
        block_depth = max(
            (
                max(1, math.ceil(math.log2(local + 1)))
                for ts in grouped.values()
                for local, _, _ in ts
                if local >= 1
            ),
            default=0,
        )
        depth = max(block_depth, beta if maxpos else 0) + maxpos
        if depth > budget:
            continue
        max_rung_used = max(
            (rungs[-1] for ts in grouped.values() for _, _, rungs in ts if rungs),
            default=0,
        )
        rung_top = max(max_rung_used, beta - 1 if maxpos else 0)
        giants = 1 if maxpos else 0
        merge = sum(len(rungs) for ts in grouped.values() for _, _, rungs in ts)
        # Horner steps multiply the accumulator by the giant once per
        # position; a constant-only *top* block (the window divides the
        # degree exactly) starts the accumulator as a plain constant, so
        # its first giant product is a scalar mult, not a nonscalar one —
        # after that the accumulator is a ciphertext for good
        top_has_ct = any(local >= 1 for local, _, _ in grouped[maxpos])
        combine = maxpos if top_has_ct else max(maxpos - 1, 0)
        total = rung_top + giants + merge + combine
        key = (total, depth, beta)
        if best is None or key < best[0]:
            best = (key, window, grouped, rung_top, giants, combine)
    if best is None:
        raise ValueError(
            f"no depth-{budget} giant-step decomposition for degree {degree}"
        )
    _, window, grouped, rung_top, giants, combine = best
    return DensePolyPlan(
        degree=degree,
        mult_depth=budget,
        window=window,
        use_ps=best[0][0] < ladder or exact_scales,
        constant=constant,
        blocks=tuple(
            (pos, tuple(ts)) for pos, ts in sorted(grouped.items())
        ),
        rung_top=rung_top,
        giant_count=giants,
        combine_mults=combine,
        ladder_mults=ladder,
    )


def plan_paf_relu(
    paf: CompositePAF, scale: float = 1.0, exact_scales: bool = False
) -> ReluPlan:
    """Compile the evaluation plan for ``ReLU(x) ≈ x·(0.5 + 0.5·sign)``.

    Folds the static scale and the ½ first so the plans see the exact
    coefficients the evaluator multiplies.  ``exact_scales`` forces the
    Paterson–Stockmeyer executor for every component (ties included) and
    an exact gate alignment — mandatory on deep chains, where the ladder
    path's tolerated sub-percent mismatches compound double-exponentially.
    """
    folded = fold_relu_composite(paf, scale)
    return ReluPlan(
        folded=folded,
        components=tuple(
            plan_odd_poly(c, exact_scales=exact_scales) for c in folded.components
        ),
        scale=scale,
        exact_scales=exact_scales,
    )
