"""Pluggable kernel backends: the per-limb ↔ limb-batched seam.

Every homomorphic operation in this repo bottoms out in a handful of
exact modular-integer kernels over the ``(limbs, n)`` residue matrix of
an :class:`~repro.ckks.rns.RnsPoly`: negacyclic NTTs, pointwise modular
arithmetic, the rescale descent and the hoisted-keyswitch digit
pipeline.  :class:`KernelBackend` names that seam; everything above it
(``rns``, ``evaluator``, ``fhe/linear``, ``fhe/network``) calls only the
interface and never touches a butterfly.

Two implementations ship:

* :class:`ReferenceBackend` — the original per-limb code paths, moved
  here verbatim: one :class:`~repro.ckks.ntt.NttPlan` transform per
  residue row, one Python-loop iteration per keyswitch digit.
* :class:`VectorizedBackend` — the same arithmetic with the limb axis
  folded into the numpy kernels: twiddle tables stacked ``(limbs, n)``
  once per context, butterflies sweeping every limb (and every digit)
  of a stack in one pass, and the keyswitch digit pipeline (decompose →
  lift → NTT → key inner product → divide-by-P descent) fused into
  whole-tensor batched operations.

The two are **bit-identical**, not merely numerically close: all kernels
are exact integer arithmetic mod 30-bit primes, and batching identical
elementwise operations across rows cannot change any residue.  The
cross-backend conformance suite (``tests/fhe/test_backend_conformance``)
pins this — same ``c0/c1`` coefficients, same op counts, same decrypted
outputs — which is what lets benchmarks compare backends as pure
wall-time experiments.

Selection: ``CkksParams(backend="vectorized")`` explicitly, else the
``REPRO_BACKEND`` environment variable, else ``"reference"``.  A live
context can switch with :meth:`CkksContext.set_backend` (exactness makes
mid-stream switching safe).

Overflow discipline (int64 throughout): primes are < 2^30, so any
product of two residues is < 2^60 < 2^63.  The keyswitch inner product
reduces each digit·key product mod its prime *before* summing over
digits — at most ~64 summands each < 2^30 keeps the accumulator under
2^36, so no chunking is needed at any supported depth.

This module deliberately imports nothing from the rest of ``repro.ckks``
(backends see only raw arrays, prime index lists and context
attributes), so :mod:`repro.ckks.context` can own backend resolution
without an import cycle.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = [
    "KernelBackend",
    "ReferenceBackend",
    "VectorizedBackend",
    "available_backends",
    "register_backend",
    "resolve_backend",
    "BACKEND_ENV_VAR",
    "DEFAULT_BACKEND",
]

#: environment override consulted when ``CkksParams.backend`` is None
BACKEND_ENV_VAR = "REPRO_BACKEND"
DEFAULT_BACKEND = "reference"


class KernelBackend:
    """Abstract kernel interface over one context's modulus chain.

    All methods operate on raw int64 arrays whose second-to-last axis
    runs over ``prime_indices`` (indices into ``ctx.all_primes``); the
    last axis is the ring dimension.  Implementations must be exact —
    the conformance suite asserts bit-identical results across
    backends, so "fast but approximately right" is not a valid backend.
    """

    #: registry / selection name; subclasses override
    name = "abstract"

    def __init__(self, ctx):
        self.ctx = ctx
        self._digit_inv_cache: dict = {}

    # ------------------------------------------------------------------
    # pointwise modular arithmetic — exact (rows, n) numpy in both
    # backends, shared here
    # ------------------------------------------------------------------
    def _primes_col(self, prime_indices) -> np.ndarray:
        return self.ctx._primes_arr[np.asarray(prime_indices, dtype=np.int64)][:, None]

    def modadd(self, a, b, prime_indices) -> np.ndarray:
        return (a + b) % self._primes_col(prime_indices)

    def modsub(self, a, b, prime_indices) -> np.ndarray:
        return (a - b) % self._primes_col(prime_indices)

    def modneg(self, a, prime_indices) -> np.ndarray:
        return (-a) % self._primes_col(prime_indices)

    def modmul(self, a, b, prime_indices) -> np.ndarray:
        return a * b % self._primes_col(prime_indices)

    def modscale(self, a, scalars, prime_indices) -> np.ndarray:
        """Multiply each residue row by its per-prime scalar."""
        return a * scalars[:, None] % self._primes_col(prime_indices)

    # ------------------------------------------------------------------
    # kernels implemented per backend
    # ------------------------------------------------------------------
    def ntt_forward(self, rows, prime_indices) -> np.ndarray:
        """Forward negacyclic NTT of every residue row.

        ``rows`` has shape ``(..., len(prime_indices), n)``; row ``i``
        along the limb axis is transformed mod
        ``ctx.all_primes[prime_indices[i]]``.
        """
        raise NotImplementedError

    def ntt_inverse(self, rows, prime_indices) -> np.ndarray:
        """Inverse negacyclic NTT of every residue row (same layout)."""
        raise NotImplementedError

    def reduce_coeffs(self, coeffs, prime_indices) -> np.ndarray:
        """Reduce one int64 coefficient vector into ``(limbs, n)`` rows."""
        raise NotImplementedError

    def rescale(self, rows, level) -> np.ndarray:
        """Rescale descent in coefficient domain: divide ``(level+1, n)``
        chain rows by ``q_level`` with centred rounding, returning the
        ``(level, n)`` rows of the level below."""
        raise NotImplementedError

    def hoist_decompose(self, rows, level) -> np.ndarray:
        """Keyswitch digits of coefficient-domain chain ``rows``, in NTT
        form over the extended basis ``(q_0..q_level, P)``.

        Returns shape ``(level+1 digits, level+2 basis rows, n)``.  This
        is the Galois-independent half of a keyswitch (digit scaling,
        centring, extended-basis lift, forward NTTs) — computed once and
        reused per rotation under hoisting.
        """
        raise NotImplementedError

    def apply_keyswitch(self, digits, key_b, key_a, level, perm=None) -> tuple:
        """Inner product of decomposed ``digits`` with stacked key
        tensors (each ``(digits, level+2, n)``), then the divide-by-``P``
        descent back onto the chain basis.

        ``perm`` (an NTT-slot permutation) is applied to every digit
        first — the per-rotation half of a hoisted Galois application.
        Returns NTT-domain ``(b_rows, a_rows)``, each ``(level+1, n)``.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # shared keyswitch constants
    # ------------------------------------------------------------------
    def _extended_basis(self, level) -> list:
        return list(range(level + 1)) + [len(self.ctx.all_primes) - 1]

    def _digit_inverses(self, level) -> np.ndarray:
        """``(Q_l/q_j)^{-1} mod q_j`` for every digit j — cached per level."""
        inv = self._digit_inv_cache.get(level)
        if inv is None:
            q_primes = [int(p) for p in self.ctx.primes_at_level(level)]
            q_l = 1
            for p in q_primes:
                q_l *= p
            inv = np.array(
                [pow((q_l // q_j) % q_j, q_j - 2, q_j) for q_j in q_primes],
                dtype=np.int64,
            )
            self._digit_inv_cache[level] = inv
        return inv

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}(n={self.ctx.n})"


class ReferenceBackend(KernelBackend):
    """The original per-limb code paths, one row / one digit at a time."""

    name = "reference"

    def ntt_forward(self, rows, prime_indices):
        out = np.empty_like(rows)
        plans = self.ctx.plans
        for r, idx in enumerate(prime_indices):
            out[..., r, :] = plans[idx].forward(rows[..., r, :])
        return out

    def ntt_inverse(self, rows, prime_indices):
        out = np.empty_like(rows)
        plans = self.ctx.plans
        for r, idx in enumerate(prime_indices):
            out[..., r, :] = plans[idx].inverse(rows[..., r, :])
        return out

    def reduce_coeffs(self, coeffs, prime_indices):
        rows = np.empty((len(prime_indices), self.ctx.n), dtype=np.int64)
        for r, idx in enumerate(prime_indices):
            rows[r] = coeffs % self.ctx.all_primes[idx]
        return rows

    def rescale(self, rows, level):
        ctx = self.ctx
        q_last = ctx.q_chain[level]
        inv = ctx.rescale_inverses(level)
        last = rows[level]
        # centre the dropped residue for correct rounding
        centered = np.where(last > q_last // 2, last - q_last, last)
        out = np.empty((level, ctx.n), dtype=np.int64)
        for j in range(level):
            p = ctx.q_chain[j]
            out[j] = (rows[j] - centered) % p * inv[j] % p
        return out

    def hoist_decompose(self, rows, level):
        ctx = self.ctx
        basis = self._extended_basis(level)
        basis_primes = np.array([ctx.all_primes[i] for i in basis], dtype=np.int64)
        q_primes = [int(p) for p in ctx.primes_at_level(level)]
        inv = self._digit_inverses(level)

        digits = np.empty((len(q_primes), len(basis), ctx.n), dtype=np.int64)
        for j, q_j in enumerate(q_primes):
            digit = rows[j] * inv[j] % q_j
            # centre the digit, then lift exactly onto the extended basis
            digit_c = np.where(digit > q_j // 2, digit - q_j, digit)
            digits[j] = self.ntt_forward(digit_c[None, :] % basis_primes[:, None], basis)
        return digits

    def apply_keyswitch(self, digits, key_b, key_a, level, perm=None):
        ctx = self.ctx
        basis = self._extended_basis(level)
        basis_primes = np.array([ctx.all_primes[i] for i in basis], dtype=np.int64)
        p_special = ctx.special_prime

        if perm is not None:
            digits = digits[:, :, perm]
        acc_b = np.zeros((len(basis), ctx.n), dtype=np.int64)
        acc_a = np.zeros((len(basis), ctx.n), dtype=np.int64)
        for j in range(digits.shape[0]):
            acc_b = (acc_b + digits[j] * key_b[j]) % basis_primes[:, None]
            acc_a = (acc_a + digits[j] * key_a[j]) % basis_primes[:, None]

        out = []
        plan_p = ctx.plans[basis[-1]]
        p_inv = ctx.p_inverses(level)
        for acc in (acc_b, acc_a):
            # divide by P with centred rounding: (x - [x]_P) * P^{-1} mod q_j
            prod_p_coeff = plan_p.inverse(acc[-1])
            centered = np.where(
                prod_p_coeff > p_special // 2, prod_p_coeff - p_special, prod_p_coeff
            )
            rows = np.empty((level + 1, ctx.n), dtype=np.int64)
            for j in range(level + 1):
                q_j = ctx.q_chain[j]
                coeff_j = ctx.plans[j].inverse(acc[j])
                rows[j] = (coeff_j - centered) % q_j * p_inv[j] % q_j
            out.append(self.ntt_forward(rows, list(range(level + 1))))
        return out[0], out[1]


def _stockham_forward_limb(x, w_tab, p, n):
    """One limb's forward NTT over a ``(rows, n)`` batch, scalar modulus.

    Stockham-style storage: stage ``s`` keeps the data as
    ``(rows, block, 2^s)`` with butterfly partners in the two contiguous
    block halves, so every read and every arithmetic pass is contiguous
    (the classic in-place layout strides badly once blocks shrink below a
    cache line).  The butterflies themselves — pairings and ψ twiddles —
    are exactly Cooley-Tukey's, so over exact modular integers the output
    is bit-identical to :meth:`repro.ckks.ntt.NttPlan.forward`.

    Reduction is deferred (Harvey-style laziness): only the twiddle
    product is reduced per stage, the add/sub halves grow by one prime's
    magnitude per stage, and values are re-canonicalised every 8 stages.
    With p < 2^30 the multiplicand stays below 8p < 2^33, keeping every
    product under 2^63 — exact int64 throughout.  Inputs must be
    canonical residues (every in-tree caller's invariant).
    """
    rows = x.shape[0]
    Y = np.ascontiguousarray(x).reshape(rows, n, 1)
    t = n
    m = 1
    growth = 1  # |values| < growth · p
    while m < n:
        t //= 2
        if growth == 8:  # next multiply needs |v| < 8p < 2^33
            Y = Y % p
            growth = 1
        A = Y[:, :t, :]
        B = Y[:, t:, :]
        vw = B * w_tab[m : 2 * m]
        vw %= p
        Ynew = np.empty((rows, t, 2 * m), dtype=np.int64)
        np.add(A, vw, out=Ynew[..., 0::2])
        np.subtract(A, vw, out=Ynew[..., 1::2])
        Y = Ynew
        m *= 2
        growth += 1
    return Y.reshape(rows, n) % p


def _stockham_forward_bcast(a, psi_rev, primes, n):
    """Forward NTT with the limb axis carried through every stage.

    Same Stockham dataflow as :func:`_stockham_forward_limb` with
    per-limb moduli as a broadcast divisor — cheaper than the per-limb
    loop when the leading batch is small (a handful of rows per limb
    can't amortise ``limbs`` separate numpy passes).
    """
    batch, limbs = a.shape[0], a.shape[1]
    Y = a.reshape(batch, limbs, n, 1)
    p = primes[None, :, None, None]
    t = n
    m = 1
    growth = 1
    while m < n:
        t //= 2
        if growth == 8:
            Y = Y % p
            growth = 1
        A = Y[:, :, :t, :]
        B = Y[:, :, t:, :]
        vw = B * psi_rev[:, m : 2 * m][None, :, None, :]
        vw %= p
        Ynew = np.empty((batch, limbs, t, 2 * m), dtype=np.int64)
        np.add(A, vw, out=Ynew[..., 0::2])
        np.subtract(A, vw, out=Ynew[..., 1::2])
        Y = Ynew
        m *= 2
        growth += 1
    return Y.reshape(batch, limbs, n) % primes[None, :, None]


#: leading-batch size from which the per-limb scalar-modulus path wins
#: over the broadcast path (hoisting tensors, keyswitch descents)
_LIMB_MAJOR_MIN_BATCH = 3


def _batched_ntt_forward(a, psi_rev, primes, n):
    """Forward negacyclic NTT over a ``(..., limbs, n)`` stack.

    ``psi_rev`` is ``(limbs, n)`` and ``primes`` is ``(limbs,)``; each
    limb's butterflies run mod its own prime.  Dispatches between two
    bit-identical Stockham kernels: large leading batches (hoisted digit
    tensors) loop over limbs with a scalar modulus, small ones broadcast
    the modulus across the limb axis.
    """
    shape = a.shape
    limbs = shape[-2]
    a = a.reshape(-1, limbs, n)
    if a.shape[0] >= _LIMB_MAJOR_MIN_BATCH:
        out = np.empty_like(a)
        for i in range(limbs):
            out[:, i, :] = _stockham_forward_limb(
                a[:, i, :], psi_rev[i], int(primes[i]), n
            )
        return out.reshape(shape)
    return _stockham_forward_bcast(a, psi_rev, primes, n).reshape(shape)


def _batched_ntt_inverse(a, psi_inv_rev, n_inv, primes, n):
    """Inverse (Gentleman-Sande) counterpart of :func:`_batched_ntt_forward`.

    Same deferred-reduction discipline; both butterfly halves grow here
    (u+v doubles the bound), so values are re-canonicalised every two
    stages, and the n^{-1} scaling folds into the last stage's twiddles
    so the output lands canonical without an extra full pass.  Inputs
    must be canonical residues (every in-tree caller's invariant).
    """
    pcol = primes[:, None]
    a = a.copy()  # C-contiguous working copy; butterflies run in place
    shape = a.shape
    limbs = shape[-2]
    a = a.reshape(-1, limbs, n)
    p = primes[None, :, None, None]
    t = 1
    m = n
    growth = 1  # |values| < growth · p
    while m > 1:
        h = m // 2
        if growth == 4:  # next stage forms u±v with |·| < 8p < 2^33
            a %= primes[None, :, None]
            growth = 1
        view = a.reshape(-1, limbs, h, 2, t)
        w = psi_inv_rev[:, h : 2 * h]
        u = view[..., 0, :]
        v = view[..., 1, :]
        d = u - v
        np.add(u, v, out=u)  # sum lands in place; d captured the difference
        if h == 1:
            # last stage: fold n^{-1} into both halves (exact — same
            # residues as a separate final scaling pass)
            w_scaled = w * n_inv[:, None] % pcol
            u *= n_inv[None, :, None, None]
            u %= p
            d *= w_scaled[None, :, :, None]
        else:
            d *= w[None, :, :, None]
        d %= p
        view[..., 1, :] = d
        t *= 2
        m = h
        growth *= 2
    return a.reshape(shape)


def _chunked_modsum(prods, pcol):
    """Sum ``(terms, limbs, n)`` over the first axis mod ``pcol``.

    Each term is a raw residue product ≤ (2^30 - 1)^2, so a chunk of 8
    plus the (< 2^30) running accumulator stays below 2^63 - 2^34 + 2^30
    — exact in int64 with one reduction per chunk instead of per term.
    """
    terms = prods.shape[0]
    acc = prods[:8].sum(axis=0) % pcol
    for k in range(8, terms, 8):
        acc = (acc + prods[k : k + 8].sum(axis=0)) % pcol
    return acc


class VectorizedBackend(KernelBackend):
    """Limb-batched kernels: the limb (and digit) axes live inside numpy.

    Twiddle tables from the context's per-prime :class:`NttPlan`\\ s are
    stacked once into ``(primes, n)`` arrays, so a transform of ``L``
    limbs — or of a whole ``(digits, basis, n)`` keyswitch tensor — is
    log2(n) butterfly stages of whole-tensor ops regardless of how many
    rows ride along.  The keyswitch pipeline never drops back to Python
    per digit: decompose, centre, lift, NTT, key inner product and the
    divide-by-P descent each run as a single batched pass.
    """

    name = "vectorized"

    def __init__(self, ctx):
        super().__init__(ctx)
        plans = ctx.plans
        #: stacked twiddle tables, indexed by position in ``ctx.all_primes``
        self._psi = np.stack([plan.psi_rev for plan in plans])
        self._psi_inv = np.stack([plan.psi_inv_rev for plan in plans])
        self._n_inv = np.array([plan.n_inv for plan in plans], dtype=np.int64)
        self._primes = ctx._primes_arr

    def _idx(self, prime_indices) -> np.ndarray:
        return np.asarray(prime_indices, dtype=np.int64)

    def ntt_forward(self, rows, prime_indices):
        idx = self._idx(prime_indices)
        return _batched_ntt_forward(rows, self._psi[idx], self._primes[idx], self.ctx.n)

    def ntt_inverse(self, rows, prime_indices):
        idx = self._idx(prime_indices)
        return _batched_ntt_inverse(
            rows, self._psi_inv[idx], self._n_inv[idx], self._primes[idx], self.ctx.n
        )

    def reduce_coeffs(self, coeffs, prime_indices):
        return coeffs[None, :] % self._primes_col(prime_indices)

    def rescale(self, rows, level):
        q = self._primes[: level + 1]
        q_last = int(q[level])
        inv = self.ctx.rescale_inverses(level)
        last = rows[level]
        centered = np.where(last > q_last // 2, last - q_last, last)
        qcol = q[:level, None]
        return (rows[:level] - centered[None, :]) % qcol * inv[:, None] % qcol

    def hoist_decompose(self, rows, level):
        basis = self._extended_basis(level)
        q = self._primes[: level + 1, None]
        inv = self._digit_inverses(level)
        digits = rows * inv[:, None] % q
        centered = np.where(digits > q // 2, digits - q, digits)
        basis_primes = self._primes[self._idx(basis)]
        # lift every centred digit onto the extended basis in one shot:
        # (digits, 1, n) % (1, basis, 1) -> (digits, basis, n)
        lifted = centered[:, None, :] % basis_primes[None, :, None]
        return self.ntt_forward(lifted, basis)

    def apply_keyswitch(self, digits, key_b, key_a, level, perm=None):
        ctx = self.ctx
        basis = self._extended_basis(level)
        bp = self._primes[self._idx(basis)]
        p_special = ctx.special_prime

        if perm is not None:
            digits = digits[:, :, perm]
        # lazy inner product: raw digit·key products are < 2^60, so up to
        # 8 of them sum exactly in int64 (< 2^63) — reduce once per chunk
        # of 8 digits instead of once per product
        acc_b = _chunked_modsum(digits * key_b, bp[:, None])
        acc_a = _chunked_modsum(digits * key_a, bp[:, None])

        # both halves ride one batched descent: stack -> (2, basis, n)
        coeff = self.ntt_inverse(np.stack([acc_b, acc_a]), basis)
        last = coeff[:, -1, :]
        centered = np.where(last > p_special // 2, last - p_special, last)
        q = self._primes[: level + 1]
        qcol = q[None, :, None]
        p_inv = ctx.p_inverses(level)
        rows = (coeff[:, : level + 1, :] - centered[:, None, :]) % qcol
        rows = rows * p_inv[None, :, None] % qcol
        out = self.ntt_forward(rows, list(range(level + 1)))
        return out[0], out[1]


# ----------------------------------------------------------------------
# registry / resolution
# ----------------------------------------------------------------------
_REGISTRY: dict = {
    ReferenceBackend.name: ReferenceBackend,
    VectorizedBackend.name: VectorizedBackend,
}


def available_backends() -> list:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


def register_backend(name: str, cls) -> None:
    """Register a :class:`KernelBackend` subclass under ``name``.

    New backends must pass the cross-backend conformance suite
    (bit-identical ciphertexts, identical op counts) before they are
    trustworthy — see ``docs/backends.md``.
    """
    if not (isinstance(cls, type) and issubclass(cls, KernelBackend)):
        raise TypeError(f"{cls!r} is not a KernelBackend subclass")
    _REGISTRY[name] = cls


def resolve_backend(spec, ctx) -> KernelBackend:
    """Instantiate the backend ``spec`` names for ``ctx``.

    ``spec`` may be a registered name, an already-constructed
    :class:`KernelBackend` bound to ``ctx``, or ``None`` — which falls
    back to the ``REPRO_BACKEND`` environment variable and finally to
    ``"reference"``.
    """
    if isinstance(spec, KernelBackend):
        if spec.ctx is not ctx:
            raise ValueError("backend instance is bound to a different context")
        return spec
    if spec is None:
        spec = os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND
    try:
        cls = _REGISTRY[spec]
    except KeyError:
        raise ValueError(
            f"unknown kernel backend {spec!r}; available: {', '.join(available_backends())}"
        ) from None
    return cls(ctx)
