"""Negacyclic number-theoretic transform over a single RNS prime.

Implements the ψ-twisted Cooley-Tukey / Gentleman-Sande pair (the SEAL /
Longa-Naehrig formulation): with ψ a primitive 2N-th root of unity mod p,
the forward transform evaluates the polynomial at the odd powers of ψ, so
pointwise products correspond to multiplication in Z_p[X]/(X^N + 1).

Everything is vectorised numpy int64; with primes < 2^30 all intermediate
products stay below 2^60 < 2^63.
"""

from __future__ import annotations

import numpy as np

from repro.ckks.primes import primitive_root_of_unity

__all__ = ["NttPlan"]


def _bit_reverse_indices(n: int) -> np.ndarray:
    bits = n.bit_length() - 1
    idx = np.arange(n, dtype=np.int64)
    rev = np.zeros(n, dtype=np.int64)
    for _ in range(bits):
        rev = (rev << 1) | (idx & 1)
        idx >>= 1
    return rev


class NttPlan:
    """Precomputed tables for the negacyclic NTT modulo one prime."""

    #: shared table cache — twiddles depend only on ``(n, p)``, so every
    #: context (and every backend) over the same ring reuses one plan
    _cache: dict = {}

    @classmethod
    def get(cls, n: int, p: int) -> "NttPlan":
        plan = cls._cache.get((n, p))
        if plan is None:
            plan = cls._cache[(n, p)] = cls(n, p)
        return plan

    def __init__(self, n: int, p: int):
        if n & (n - 1):
            raise ValueError(f"ring size must be a power of two, got {n}")
        self.n = n
        self.p = p
        psi = primitive_root_of_unity(2 * n, p)
        rev = _bit_reverse_indices(n)
        powers = np.array([pow(psi, int(k), p) for k in range(n)], dtype=np.int64)
        psi_inv = pow(psi, p - 2, p)
        inv_powers = np.array(
            [pow(psi_inv, int(k), p) for k in range(n)], dtype=np.int64
        )
        #: ψ^bitrev(i) — twiddles consumed by the forward (CT) butterflies
        self.psi_rev = powers[rev]
        #: ψ^-bitrev(i) — twiddles for the inverse (GS) butterflies
        self.psi_inv_rev = inv_powers[rev]
        self.n_inv = pow(n, p - 2, p)

    # ------------------------------------------------------------------
    def forward(self, a: np.ndarray) -> np.ndarray:
        """Forward negacyclic NTT along the last axis (any batch shape)."""
        p = self.p
        n = self.n
        a = np.ascontiguousarray(a % p)
        batch_shape = a.shape[:-1]
        a = a.reshape(-1, n)
        t = n
        m = 1
        while m < n:
            t //= 2
            view = a.reshape(-1, m, 2, t)
            w = self.psi_rev[m : 2 * m]
            u = view[:, :, 0, :].copy()  # materialise before overwriting
            v = view[:, :, 1, :] * w[None, :, None] % p
            view[:, :, 0, :] = (u + v) % p
            view[:, :, 1, :] = (u - v) % p
            m *= 2
        return a.reshape(batch_shape + (n,))

    def inverse(self, a: np.ndarray) -> np.ndarray:
        """Inverse negacyclic NTT along the last axis."""
        p = self.p
        n = self.n
        a = np.ascontiguousarray(a % p)
        batch_shape = a.shape[:-1]
        a = a.reshape(-1, n)
        t = 1
        m = n
        while m > 1:
            h = m // 2
            view = a.reshape(-1, h, 2, t)
            w = self.psi_inv_rev[h : 2 * h]
            u = view[:, :, 0, :].copy()  # materialise before overwriting
            v = view[:, :, 1, :].copy()
            view[:, :, 0, :] = (u + v) % p
            view[:, :, 1, :] = (u - v) * w[None, :, None] % p
            t *= 2
            m = h
        a = a * self.n_inv % p
        return a.reshape(batch_shape + (n,))

    # ------------------------------------------------------------------
    def negacyclic_multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Reference product in Z_p[X]/(X^N+1) via the transform."""
        return self.inverse(self.forward(a) * self.forward(b) % self.p)
