"""RNS polynomials: residue rows over the modulus chain.

An :class:`RnsPoly` stores one int64 row per active prime, either in
coefficient or NTT (evaluation) domain.  All ring arithmetic and domain
conversion dispatch to the context's kernel backend
(:mod:`repro.ckks.backend`) — per-limb or limb-batched, bit-identical
either way; CRT composition to big integers happens only at the decrypt /
decode boundary (Python ints via object arrays).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ckks.context import CkksContext

__all__ = ["RnsPoly", "crt_compose_centered", "fast_base_convert"]


class RnsPoly:
    """Polynomial in RNS representation over ``prime_indices`` of a context.

    ``prime_indices`` index into ``context.all_primes``; ciphertext polys
    use ``[0..level]``, keyswitch operands additionally carry the special
    prime index.
    """

    __slots__ = ("ctx", "data", "prime_indices", "is_ntt")

    def __init__(self, ctx: CkksContext, data: np.ndarray, prime_indices, is_ntt: bool):
        self.ctx = ctx
        self.data = data                      # (len(prime_indices), N) int64
        self.prime_indices = list(prime_indices)
        self.is_ntt = is_ntt

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def zero(ctx: CkksContext, prime_indices, is_ntt: bool = True) -> "RnsPoly":
        return RnsPoly(
            ctx,
            np.zeros((len(list(prime_indices)), ctx.n), dtype=np.int64),
            prime_indices,
            is_ntt,
        )

    @staticmethod
    def from_int_coeffs(ctx: CkksContext, coeffs: np.ndarray, prime_indices) -> "RnsPoly":
        """Reduce (possibly huge Python-int) coefficients into RNS rows."""
        prime_indices = list(prime_indices)
        rows = np.empty((len(prime_indices), ctx.n), dtype=np.int64)
        big = np.asarray(coeffs, dtype=object)
        for r, idx in enumerate(prime_indices):
            p = ctx.all_primes[idx]
            rows[r] = np.array([int(c) % p for c in big], dtype=np.int64)
        return RnsPoly(ctx, rows, prime_indices, is_ntt=False)

    @staticmethod
    def from_small_coeffs(ctx: CkksContext, coeffs: np.ndarray, prime_indices) -> "RnsPoly":
        """Reduce int64-range coefficients (e.g. noise, secrets) into RNS."""
        prime_indices = list(prime_indices)
        coeffs = np.asarray(coeffs, dtype=np.int64)
        rows = ctx.backend.reduce_coeffs(coeffs, prime_indices)
        return RnsPoly(ctx, rows, prime_indices, is_ntt=False)

    # ------------------------------------------------------------------
    def primes(self) -> list:
        return [self.ctx.all_primes[i] for i in self.prime_indices]

    def copy(self) -> "RnsPoly":
        return RnsPoly(self.ctx, self.data.copy(), self.prime_indices, self.is_ntt)

    def _primes_col(self) -> np.ndarray:
        return np.array(self.primes(), dtype=np.int64)[:, None]

    # ------------------------------------------------------------------
    # domain conversion
    # ------------------------------------------------------------------
    def to_ntt(self) -> "RnsPoly":
        if self.is_ntt:
            return self
        rows = self.ctx.backend.ntt_forward(self.data, self.prime_indices)
        return RnsPoly(self.ctx, rows, self.prime_indices, is_ntt=True)

    def to_coeff(self) -> "RnsPoly":
        if not self.is_ntt:
            return self
        rows = self.ctx.backend.ntt_inverse(self.data, self.prime_indices)
        return RnsPoly(self.ctx, rows, self.prime_indices, is_ntt=False)

    # ------------------------------------------------------------------
    # arithmetic (domain- and basis-matched)
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "RnsPoly") -> None:
        if self.prime_indices != other.prime_indices:
            raise ValueError("RNS basis mismatch")
        if self.is_ntt != other.is_ntt:
            raise ValueError("domain mismatch (ntt vs coeff)")

    def __add__(self, other: "RnsPoly") -> "RnsPoly":
        self._check_compatible(other)
        return RnsPoly(
            self.ctx,
            self.ctx.backend.modadd(self.data, other.data, self.prime_indices),
            self.prime_indices,
            self.is_ntt,
        )

    def __sub__(self, other: "RnsPoly") -> "RnsPoly":
        self._check_compatible(other)
        return RnsPoly(
            self.ctx,
            self.ctx.backend.modsub(self.data, other.data, self.prime_indices),
            self.prime_indices,
            self.is_ntt,
        )

    def __neg__(self) -> "RnsPoly":
        return RnsPoly(
            self.ctx,
            self.ctx.backend.modneg(self.data, self.prime_indices),
            self.prime_indices,
            self.is_ntt,
        )

    def __mul__(self, other: "RnsPoly") -> "RnsPoly":
        """Ring product — both operands must be in NTT domain."""
        self._check_compatible(other)
        if not self.is_ntt:
            raise ValueError("ring multiply requires NTT domain")
        return RnsPoly(
            self.ctx,
            self.ctx.backend.modmul(self.data, other.data, self.prime_indices),
            self.prime_indices,
            True,
        )

    def scalar_mul(self, scalars) -> "RnsPoly":
        """Multiply by per-prime residues (int or array of len == rows)."""
        scalars = np.asarray(scalars, dtype=np.int64)
        if scalars.ndim == 0:
            scalars = scalars % self._primes_col()[:, 0]
        return RnsPoly(
            self.ctx,
            self.ctx.backend.modscale(self.data, scalars, self.prime_indices),
            self.prime_indices,
            self.is_ntt,
        )

    # ------------------------------------------------------------------
    # basis surgery
    # ------------------------------------------------------------------
    def drop_rows(self, keep: int) -> "RnsPoly":
        """Keep the first ``keep`` rows (mod-switch down)."""
        return RnsPoly(self.ctx, self.data[:keep].copy(), self.prime_indices[:keep], self.is_ntt)

    def automorphism(self, g: int) -> "RnsPoly":
        """Apply X -> X^g (g odd, mod 2N); requires coefficient domain."""
        if self.is_ntt:
            raise ValueError("automorphism requires coefficient domain")
        n = self.ctx.n
        idx = np.arange(n, dtype=np.int64)
        dest = idx * g % (2 * n)
        sign = np.where(dest >= n, -1, 1).astype(np.int64)
        dest = np.where(dest >= n, dest - n, dest)
        rows = np.zeros_like(self.data)
        primes = self._primes_col()
        rows[:, dest] = self.data * sign[None, :] % primes
        return RnsPoly(self.ctx, rows, self.prime_indices, is_ntt=False)


def crt_compose_centered(poly: RnsPoly) -> np.ndarray:
    """CRT-reconstruct centered big-int coefficients (object array).

    Only used at the decrypt/decode boundary; O(N · rows) Python-int work.
    """
    poly = poly.to_coeff()
    primes = [int(p) for p in poly.primes()]
    q = 1
    for p in primes:
        q *= p
    acc = np.zeros(poly.ctx.n, dtype=object)
    for r, p in enumerate(primes):
        qi = q // p
        inv = pow(qi, p - 2, p)
        weight = qi * inv
        acc += poly.data[r].astype(object) * weight
    acc %= q
    # centre into (-q/2, q/2]
    half = q // 2
    return np.where(acc > half, acc - q, acc)


def fast_base_convert(poly: RnsPoly, target_index: int) -> np.ndarray:
    """Approximate base conversion of ``poly`` (mod Q) to mod ``p_target``.

    Standard Bajard/HPS approximate conversion: the result may be off by a
    small multiple of Q, which keyswitching absorbs into noise (divided by
    the special prime afterwards).  Returns an int64 row mod the target.
    """
    poly = poly.to_coeff()
    primes = [int(p) for p in poly.primes()]
    p_t = int(poly.ctx.all_primes[target_index])
    q = 1
    for p in primes:
        q *= p
    acc = np.zeros(poly.ctx.n, dtype=np.int64)
    for r, p in enumerate(primes):
        qi = q // p
        inv = pow(qi % p, p - 2, p)
        x_hat = poly.data[r] * inv % p
        acc = (acc + x_hat * ((qi) % p_t)) % p_t
    return acc
