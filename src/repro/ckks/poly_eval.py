"""Depth-optimal evaluation of odd polynomials / composite PAFs on ciphertexts.

Mirrors the symbolic schedule of ``repro.paf.depth`` exactly:

* binary power ladder ``x², x⁴, …`` by repeated squaring — ``x^(2^i)``
  lands at level ``L - i``;
* each term ``c_k x^k`` starts from the leaf plaintext product ``c_k·x``
  (one level) and merges in the ladder powers of ``k-1``'s set bits,
  always combining the two *shallowest* operands, landing at depth
  ``ceil(log2(k+1))``;
* a composite consumes the sum of its components' depths (Appendix C);
* the ReLU reconstruction ``(x + x·sign)/2`` folds the ½ into the sign's
  outermost coefficients (free) and spends exactly one extra level on the
  ``x · (0.5 + 0.5·sign)`` product.

Tests assert that the measured level consumption equals the analytic
``mult_depth`` for every registry PAF.
"""

from __future__ import annotations

import heapq
from typing import Optional

import numpy as np

from repro.ckks.evaluator import Ciphertext, CkksEvaluator
from repro.paf.polynomial import CompositePAF, OddPolynomial

__all__ = [
    "eval_odd_poly",
    "eval_composite_paf",
    "eval_paf_relu",
    "eval_paf_max",
]


def _power_ladder(ev: CkksEvaluator, x: Ciphertext, max_power: int) -> dict:
    """``{2^i: ciphertext of x^(2^i)}`` for all needed ladder rungs."""
    ladder = {1: x}
    power = 1
    current = x
    while power * 2 <= max_power:
        current = ev.rescale(ev.square(current))
        power *= 2
        ladder[power] = current
    return ladder


def eval_odd_poly(
    ev: CkksEvaluator, x: Ciphertext, poly: OddPolynomial
) -> Ciphertext:
    """Evaluate an odd polynomial at a ciphertext, depth-optimally."""
    degree = poly.degree
    max_rung = 1
    while max_rung * 2 <= degree - 1 if degree > 1 else False:
        max_rung *= 2
    ladder = _power_ladder(ev, x, max(degree - 1, 1))

    terms: list[Ciphertext] = []
    for idx, c in enumerate(poly.coeffs):
        k = 2 * idx + 1
        if c == 0.0:
            continue
        # leaf: c_k * x (one level via plaintext multiply + rescale)
        leaf = ev.mul_plain_rescale(x, float(c))
        if k == 1:
            terms.append(leaf)
            continue
        # operands: the leaf plus ladder rungs for set bits of k-1;
        # heap-merge the two highest-level (shallowest) operands first
        heap: list[tuple] = [(-leaf.level, 0, leaf)]
        tiebreak = 1
        rem, rung = k - 1, 1
        while rem:
            if rem & 1:
                ct = ladder[rung]
                heap.append((-ct.level, tiebreak, ct))
                tiebreak += 1
            rem >>= 1
            rung *= 2
        heapq.heapify(heap)
        while len(heap) > 1:
            _, _, a = heapq.heappop(heap)
            _, _, b = heapq.heappop(heap)
            lo_op, hi_op = (a, b) if a.level <= b.level else (b, a)
            hi_op = ev.align_to(hi_op, lo_op.level, lo_op.scale)
            prod = ev.rescale(ev.mul(hi_op, lo_op))
            heapq.heappush(heap, (-prod.level, tiebreak, prod))
            tiebreak += 1
        terms.append(heap[0][2])

    if not terms:
        raise ValueError("polynomial had no nonzero terms")
    # Sum at the deepest term's (level, scale); terms with level headroom
    # are aligned exactly (drift correction), same-level terms are within
    # the add tolerance by construction (identical rescale path lengths).
    anchor = min(terms, key=lambda t: t.level)
    acc: Optional[Ciphertext] = None
    for t in terms:
        t = ev.align_to(t, anchor.level, anchor.scale)
        acc = t if acc is None else ev.add(acc, t)
    return acc


def eval_composite_paf(
    ev: CkksEvaluator, x: Ciphertext, paf: CompositePAF
) -> Ciphertext:
    """Evaluate a composite sign PAF on a ciphertext."""
    y = x
    for comp in paf.components:
        y = eval_odd_poly(ev, y, comp)
    return y


def _fold_output_half(paf: CompositePAF) -> CompositePAF:
    """Fold the ReLU reconstruction's ½ into the outermost component."""
    comps = list(paf.components)
    comps[-1] = comps[-1].scaled_output(0.5)
    return CompositePAF(comps, name=paf.name, reported_degree=paf.reported_degree)


def eval_paf_relu(
    ev: CkksEvaluator,
    x: Ciphertext,
    paf: CompositePAF,
    scale: float = 1.0,
) -> Ciphertext:
    """Encrypted ReLU: ``x · (0.5 + 0.5·sign(x/scale))``.

    ``scale`` is the Static-Scaling value: folded into the innermost
    component's coefficients, costing no level.  Total depth:
    ``paf.mult_depth + 1``.
    """
    folded = _fold_output_half(paf.scaled_input(scale) if scale != 1.0 else paf)
    half_sign = eval_composite_paf(ev, x, folded)     # 0.5 * sign(x/scale)
    gate = ev.add_plain(half_sign, 0.5)               # 0.5 + 0.5*sign
    x_down = ev.align_to(x, gate.level, gate.scale)
    return ev.rescale(ev.mul(x_down, gate))


def eval_paf_max(
    ev: CkksEvaluator,
    a: Ciphertext,
    b: Ciphertext,
    paf: CompositePAF,
    scale: float = 1.0,
) -> Ciphertext:
    """Encrypted pairwise max: ``(a+b)/2 + (a-b)·(0.5·sign((a-b)/scale))``."""
    d = ev.sub(a, b)
    folded = _fold_output_half(paf.scaled_input(scale) if scale != 1.0 else paf)
    half_sign = eval_composite_paf(ev, d, folded)     # 0.5*sign(d/scale)
    d_down = ev.align_to(d, half_sign.level, half_sign.scale)
    prod = ev.rescale(ev.mul(d_down, half_sign))      # |d|/2 approx
    s = ev.mul_plain_rescale(ev.add(a, b), 0.5)       # (a+b)/2
    s = ev.align_to(s, prod.level, prod.scale)
    return ev.add(prod, s)
