"""Evaluation of odd polynomials / composite PAFs on ciphertexts.

Two paths, selected per component by its :class:`~repro.ckks.poly_plan.PolyPlan`:

* **Paterson–Stockmeyer** (default where strictly cheaper): baby powers
  ``x, x³, …`` live implicitly as leaf products ``c·x`` merged with the
  shared even rungs ``x², x⁴, …``; blocks of ``window`` consecutive odd
  terms combine through the giant powers ``x^{w·2^r}`` (balanced tree or
  giant-step Horner, whichever the plan chose) — ``O(√degree)``-ish
  nonscalar mults at the *same* level consumption as the ladder.
* **Term-by-term ladder** (the reference implementation, kept behind
  ``reference=True`` exactly like the naive matvec path of
  ``repro.fhe.linear``): binary power ladder by repeated squaring, each
  term ``c_k x^k`` built from its leaf plaintext product plus the ladder
  powers of ``k-1``'s set bits, always combining the two *shallowest*
  operands.

Both paths mirror the symbolic schedule of ``repro.paf.depth`` exactly:

* ``x^(2^i)`` lands at level ``L - i``; a term lands at depth
  ``ceil(log2(k+1))``; a composite consumes the sum of its components'
  depths (Appendix C);
* the ReLU reconstruction ``(x + x·sign)/2`` folds the ½ into the sign's
  outermost coefficients (free) and spends exactly one extra level on the
  ``x · (0.5 + 0.5·sign)`` product.

Every intermediate stays on the *canonical scale* of its level
(``S_{l-1} = S_l² / q_l``), so coefficient plaintexts encode at
deterministic ``(level, scale)`` pairs — the property
``repro.serve.artifact`` exploits to pre-encode them.  Tests assert that
the measured level consumption equals the analytic ``mult_depth`` for
every registry PAF on both paths, and that measured nonscalar-mult counts
match the plan's predictions exactly.
"""

from __future__ import annotations

import heapq
from typing import Optional

import numpy as np

from repro.ckks.evaluator import Ciphertext, CkksEvaluator
from repro.ckks.instrumentation import span as trace_span
from repro.ckks.poly_plan import (
    CompositePlan,
    DensePolyPlan,
    PolyPlan,
    ReluPlan,
    fold_relu_composite,
    plan_composite,
    plan_dense_poly,
    plan_odd_poly,
    plan_paf_relu,
)
from repro.paf.polynomial import CompositePAF, OddPolynomial, Polynomial

__all__ = [
    "eval_odd_poly",
    "eval_composite_paf",
    "eval_paf_relu",
    "eval_paf_max",
    "eval_dense_poly",
]


# ----------------------------------------------------------------------
# reference path: term-by-term binary power ladder
# ----------------------------------------------------------------------
def _power_ladder(ev: CkksEvaluator, x: Ciphertext, max_power: int) -> dict:
    """``{2^i: ciphertext of x^(2^i)}`` for all needed ladder rungs."""
    ladder = {1: x}
    power = 1
    current = x
    while power * 2 <= max_power:
        current = ev.rescale(ev.square(current))
        power *= 2
        ladder[power] = current
    return ladder


def _eval_odd_ladder(
    ev: CkksEvaluator, x: Ciphertext, poly: OddPolynomial
) -> Ciphertext:
    """Term-by-term ladder evaluation (the reference implementation)."""
    degree = poly.degree
    ladder = _power_ladder(ev, x, max(degree - 1, 1))

    terms: list[Ciphertext] = []
    for idx, c in enumerate(poly.coeffs):
        k = 2 * idx + 1
        if c == 0.0:
            continue
        # leaf: c_k * x (one level via plaintext multiply + rescale)
        leaf = ev.mul_plain_rescale(x, float(c))
        if k == 1:
            terms.append(leaf)
            continue
        # operands: the leaf plus ladder rungs for set bits of k-1;
        # heap-merge the two highest-level (shallowest) operands first
        heap: list[tuple] = [(-leaf.level, 0, leaf)]
        tiebreak = 1
        rem, rung = k - 1, 1
        while rem:
            if rem & 1:
                ct = ladder[rung]
                heap.append((-ct.level, tiebreak, ct))
                tiebreak += 1
            rem >>= 1
            rung *= 2
        heapq.heapify(heap)
        while len(heap) > 1:
            _, _, a = heapq.heappop(heap)
            _, _, b = heapq.heappop(heap)
            lo_op, hi_op = (a, b) if a.level <= b.level else (b, a)
            hi_op = ev.align_to(hi_op, lo_op.level, lo_op.scale)
            prod = ev.rescale(ev.mul(hi_op, lo_op))
            heapq.heappush(heap, (-prod.level, tiebreak, prod))
            tiebreak += 1
        terms.append(heap[0][2])

    if not terms:
        raise ValueError("polynomial had no nonzero terms")
    # Sum at the deepest term's (level, scale); terms with level headroom
    # are aligned exactly (drift correction), same-level terms are within
    # the add tolerance by construction (identical rescale path lengths).
    anchor = min(terms, key=lambda t: t.level)
    acc: Optional[Ciphertext] = None
    for t in terms:
        t = ev.align_to(t, anchor.level, anchor.scale)
        acc = t if acc is None else ev.add(acc, t)
    return acc


# ----------------------------------------------------------------------
# Paterson–Stockmeyer path
# ----------------------------------------------------------------------
def _eval_odd_ps(
    ev: CkksEvaluator, x: Ciphertext, plan: PolyPlan
) -> Ciphertext:
    """Execute a compiled Paterson–Stockmeyer plan.

    Performs exactly ``plan.ps_mults`` nonscalar multiplications and
    consumes exactly ``plan.mult_depth`` levels.  Every ciphertext stays
    on its level's canonical scale; operands of each multiplication are
    brought to a common level with :meth:`CkksEvaluator.align_to` (an
    exact drift correction, never an extra nonscalar mult).
    """
    # shared even rungs x^(2^e), e = 1..rung_top (by repeated squaring)
    rungs: dict = {}
    current = x
    for e in range(1, plan.rung_top + 1):
        current = ev.rescale(ev.square(current))
        rungs[e] = current
    # giant powers x^(w·2^r) continue the squaring chain
    giants: list = []
    if plan.giant_count:
        base = rungs[plan.beta - 1] if plan.beta > 1 else x
        g = ev.rescale(ev.square(base))
        giants.append(g)
        for _ in range(plan.giant_count - 1):
            g = ev.rescale(ev.square(g))
            giants.append(g)

    # Alignments are *exact* (rtol=0): adjacent-level canonical scales can
    # drift by under align_to's default tolerance, and skipping the
    # correction there would silently mis-scale a block sum by up to 1% —
    # material for large-coefficient components like the α=7 minimax.  The
    # correction costs one plaintext mult on a descent the operand was
    # making anyway, never a nonscalar mult.
    def mul_align(a: Ciphertext, b: Ciphertext) -> Ciphertext:
        if a.level > b.level:
            a = ev.align_to(a, b.level, b.scale, rtol=0.0)
        elif b.level > a.level:
            b = ev.align_to(b, a.level, a.scale, rtol=0.0)
        return ev.rescale(ev.mul(a, b))

    def add_align(a: Optional[Ciphertext], b: Optional[Ciphertext]):
        if a is None or b is None:
            return b if a is None else a
        if a.level > b.level:
            a = ev.align_to(a, b.level, b.scale, rtol=0.0)
        elif b.level > a.level:
            b = ev.align_to(b, a.level, a.scale, rtol=0.0)
        return ev.add(a, b)

    # Leaves are computed *directly at their plan-scheduled level*: one
    # plaintext product against the (mod-switched) input, encoded at the
    # exact scale that rescales onto the target level's canonical scale.
    # This lands a leaf at any depth for the cost of a depth-1 leaf — no
    # drift correction — and makes the encode coordinates enumerable for
    # the serving artifact's pre-encoded coefficient cache.
    coords = plan.leaf_schedule(ev.ctx.q_chain, x.level, x.scale)

    def leaf_ct(position: int, term) -> Ciphertext:
        enc_level, enc_scale, _, tgt_scale = coords[(position, term.exponent)]
        x_down = ev.mod_switch_to(x, enc_level)
        out = ev.rescale(ev.mul_plain(x_down, term.coeff, scale=enc_scale))
        out.scale = tgt_scale  # exact by construction (up to encode rounding)
        return out

    def block_ct(block) -> Ciphertext:
        acc = None
        for term in block.terms:
            t = leaf_ct(block.position, term)
            for e in term.rungs:                      # ascending merges
                t = mul_align(t, rungs[e])
            acc = add_align(acc, t)
        return acc

    blocks = {b.position: b for b in plan.blocks}
    maxpos = max(blocks)
    if maxpos == 0:
        return block_ct(blocks[0])

    if plan.shape == "horner":
        giant = giants[0]                             # the only giant: x^w
        acc = block_ct(blocks[maxpos])
        for pos in range(maxpos - 1, -1, -1):
            acc = mul_align(giant, acc)
            if pos in blocks:
                acc = add_align(acc, block_ct(blocks[pos]))
        return acc

    span = 1
    while span <= maxpos:
        span *= 2

    def combine(lo: int, span_: int) -> Optional[Ciphertext]:
        if span_ == 1:
            b = blocks.get(lo)
            return block_ct(b) if b is not None else None
        half = span_ // 2
        left = combine(lo, half)
        right = combine(lo + half, half)
        if right is None:
            return left
        prod = mul_align(giants[half.bit_length() - 1], right)
        return add_align(left, prod)

    return combine(0, span)


# ----------------------------------------------------------------------
# public entry points
# ----------------------------------------------------------------------
def eval_odd_poly(
    ev: CkksEvaluator,
    x: Ciphertext,
    poly: OddPolynomial,
    plan: PolyPlan | None = None,
    reference: bool = False,
) -> Ciphertext:
    """Evaluate an odd polynomial at a ciphertext, depth-optimally.

    Follows the compiled :class:`~repro.ckks.poly_plan.PolyPlan`
    (compiled on the fly when not supplied): Paterson–Stockmeyer where it
    strictly saves nonscalar mults, the term-by-term ladder otherwise.
    ``reference=True`` forces the ladder — the differential-testing
    baseline, mirroring the naive matvec path.  Both paths consume
    exactly ``ceil(log2(d+1))`` levels for the highest nonzero degree
    ``d``.
    """
    if plan is None and not reference:
        plan = plan_odd_poly(poly)
    use_ps = not reference and plan.use_ps
    with trace_span(
        ev,
        "poly:ps" if use_ps else "poly:ladder",
        kind="poly",
        degree=poly.degree,
    ) as sp:
        sp.ct_entry(x)
        out = _eval_odd_ps(ev, x, plan) if use_ps else _eval_odd_ladder(ev, x, poly)
        sp.ct_exit(out)
    return out


def eval_composite_paf(
    ev: CkksEvaluator,
    x: Ciphertext,
    paf: CompositePAF,
    plan: CompositePlan | None = None,
    reference: bool = False,
) -> Ciphertext:
    """Evaluate a composite sign PAF on a ciphertext.

    ``plan`` short-circuits per-component compilation (it must have been
    built for this ``paf``'s coefficients); ``reference=True`` forces the
    ladder for every component.
    """
    if plan is None and not reference:
        plan = plan_composite(paf)
    y = x
    for i, comp in enumerate(paf.components):
        comp_plan = plan.components[i] if plan is not None else None
        y = eval_odd_poly(ev, y, comp, plan=comp_plan, reference=reference)
    return y


def eval_paf_relu(
    ev: CkksEvaluator,
    x: Ciphertext,
    paf: CompositePAF,
    scale: float = 1.0,
    plan: ReluPlan | None = None,
    reference: bool = False,
) -> Ciphertext:
    """Encrypted ReLU: ``x · (0.5 + 0.5·sign(x/scale))``.

    ``scale`` is the Static-Scaling value: folded into the innermost
    component's coefficients, costing no level.  Total depth:
    ``paf.mult_depth + 1``.

    ``plan`` short-circuits compilation (``repro.fhe.network`` compiles
    one per activation layer at build time); it must have been built by
    :func:`~repro.ckks.poly_plan.plan_paf_relu` for this exact
    ``(paf, scale)`` pair — a plan folded for a different static scale is
    rejected.  ``reference=True`` forces the term-by-term ladder path.
    """
    if plan is not None and plan.scale != scale:
        raise ValueError(
            f"plan was compiled for static scale {plan.scale}, called with "
            f"{scale}; rebuild it with plan_paf_relu(paf, scale)"
        )
    if plan is None or reference:
        folded = fold_relu_composite(paf, scale)
        comp_plans = None
    else:
        folded = plan.folded
        comp_plans = CompositePlan(plan.components)
    with trace_span(
        ev, "paf:relu", kind="paf", components=len(folded.components)
    ) as sp:
        sp.ct_entry(x)
        # 0.5 * sign(x/scale)
        half_sign = eval_composite_paf(
            ev, x, folded, plan=comp_plans, reference=reference
        )
        gate = ev.add_plain(half_sign, 0.5)           # 0.5 + 0.5*sign
        # exact-scale plans pin the gate product back onto the canonical
        # schedule (rtol 0); the default tolerates sub-percent drift, which
        # is fine at shallow depth but compounds on deep chains
        rtol = 0.0 if plan is not None and plan.exact_scales else 0.01
        x_down = ev.align_to(x, gate.level, gate.scale, rtol=rtol)
        out = ev.rescale(ev.mul(x_down, gate))
        sp.ct_exit(out)
    return out


def _canonical_descent(ev: CkksEvaluator, level: int, scale: float, depth: int):
    """``(level - depth, scale)`` on the canonical rescale schedule."""
    s = scale
    for lvl in range(level, level - depth, -1):
        s = s * s / ev.ctx.q_chain[lvl]
    return level - depth, s


def _eval_dense_ladder(
    ev: CkksEvaluator, x: Ciphertext, poly: Polynomial
) -> Ciphertext:
    """Term-by-term ladder for a dense polynomial (reference path).

    Identical shape to :func:`_eval_odd_ladder` with every exponent
    admitted: bit 0 of ``k-1`` merges the leaf against ``x`` itself
    (even exponents), and the constant ``c₀`` is a free trailing
    plaintext add.

    Every cross-level align is exact (rtol 0): the dense tier runs
    inside deep transformer chains where a tolerated sub-percent drift
    squares at each downstream multiplication and underflows the scale
    to zero long before the chain bottoms out.  With exact aligns every
    intermediate stays on the canonical per-level schedule by induction
    (rungs and leaves are canonical, and products of canonical
    same-level operands are canonical).
    """
    degree = poly.degree
    ladder = _power_ladder(ev, x, max(degree - 1, 1))

    terms: list[Ciphertext] = []
    for k, c in enumerate(poly.coeffs):
        if k == 0 or c == 0.0:
            continue
        leaf = ev.mul_plain_rescale(x, float(c))
        if k == 1:
            terms.append(leaf)
            continue
        heap: list[tuple] = [(-leaf.level, 0, leaf)]
        tiebreak = 1
        rem, rung = k - 1, 1
        while rem:
            if rem & 1:
                ct = ladder[rung]
                heap.append((-ct.level, tiebreak, ct))
                tiebreak += 1
            rem >>= 1
            rung *= 2
        heapq.heapify(heap)
        while len(heap) > 1:
            _, _, a = heapq.heappop(heap)
            _, _, b = heapq.heappop(heap)
            lo_op, hi_op = (a, b) if a.level <= b.level else (b, a)
            hi_op = ev.align_to(hi_op, lo_op.level, lo_op.scale, rtol=0.0)
            prod = ev.rescale(ev.mul(hi_op, lo_op))
            heapq.heappush(heap, (-prod.level, tiebreak, prod))
            tiebreak += 1
        terms.append(heap[0][2])

    anchor = min(terms, key=lambda t: t.level)
    acc: Optional[Ciphertext] = None
    for t in terms:
        t = ev.align_to(t, anchor.level, anchor.scale, rtol=0.0)
        acc = t if acc is None else ev.add(acc, t)
    if poly.coeffs[0] != 0.0:
        acc = ev.add_plain(acc, float(poly.coeffs[0]))
    return acc


def _eval_dense_ps(
    ev: CkksEvaluator, x: Ciphertext, plan: DensePolyPlan
) -> Ciphertext:
    """Execute a compiled :class:`~repro.ckks.poly_plan.DensePolyPlan`.

    Exactly ``plan.ps_mults`` nonscalar multiplications; every operand
    pair aligns exactly (rtol 0) so the canonical per-level scale
    schedule is never left — the dense tier always runs inside deep
    (transformer) chains, where tolerated drift compounds.
    """
    rungs: dict = {0: x}
    current = x
    for e in range(1, plan.rung_top + 1):
        current = ev.rescale(ev.square(current))
        rungs[e] = current
    giant = None
    if plan.giant_count:
        base = rungs.get(plan.beta - 1, x)
        giant = ev.rescale(ev.square(base))           # x^w

    def mul_align(a: Ciphertext, b: Ciphertext) -> Ciphertext:
        if a.level > b.level:
            a = ev.align_to(a, b.level, b.scale, rtol=0.0)
        elif b.level > a.level:
            b = ev.align_to(b, a.level, a.scale, rtol=0.0)
        return ev.rescale(ev.mul(a, b))

    def add_align(a: Optional[Ciphertext], b: Optional[Ciphertext]):
        if a is None or b is None:
            return b if a is None else a
        if a.level > b.level:
            a = ev.align_to(a, b.level, b.scale, rtol=0.0)
        elif b.level > a.level:
            b = ev.align_to(b, a.level, a.scale, rtol=0.0)
        return ev.add(a, b)

    def block_ct(terms) -> tuple:
        """(ciphertext part or None, plaintext constant) of one block.

        Constant parts (local exponent 0 — the window divides the
        term's exponent exactly) stay plaintext here; the caller folds
        them in with a free add or a scalar giant product.
        """
        acc: Optional[Ciphertext] = None
        const = 0.0
        for local, c, term_rungs in terms:
            if local == 0:
                const += c
                continue
            t = ev.mul_plain_rescale(x, c)
            for e in term_rungs:                      # ascending merges
                t = mul_align(t, rungs[e])
            acc = add_align(acc, t)
        return acc, const

    blocks = dict(plan.blocks)
    maxpos = max(blocks)
    if maxpos == 0:
        out, _ = block_ct(blocks[0])                  # block 0 has no constants
    else:
        # Horner over block positions; while every block seen so far was
        # constant-only the accumulator stays plaintext, and its giant
        # product is a scalar mult (uncounted in plan.ps_mults)
        acc, acc_const = block_ct(blocks[maxpos])
        if acc is not None and acc_const:
            acc = ev.add_plain(acc, acc_const)
        for pos in range(maxpos - 1, -1, -1):
            if acc is not None:
                acc = mul_align(giant, acc)
            else:
                acc = ev.mul_plain_rescale(giant, acc_const)
            if pos in blocks:
                b_ct, b_const = block_ct(blocks[pos])
                if b_ct is not None:
                    acc = add_align(acc, b_ct)
                if b_const:
                    acc = ev.add_plain(acc, b_const)
        out = acc
    if plan.constant:
        out = ev.add_plain(out, plan.constant)
    # land exactly at the budgeted depth (the IR level_cost contract):
    # a cheap plan that finished shallow descends the rest exactly
    tgt_level, tgt_scale = _canonical_descent(
        ev, x.level, x.scale, plan.mult_depth
    )
    return ev.align_to(out, tgt_level, tgt_scale, rtol=0.0)


def eval_dense_poly(
    ev: CkksEvaluator,
    x: Ciphertext,
    poly: Polynomial,
    plan: DensePolyPlan | None = None,
    reference: bool = False,
) -> Ciphertext:
    """Evaluate a dense polynomial at a ciphertext, depth-exactly.

    The dense twin of :func:`eval_odd_poly` for the transformer-tier
    activations (GELU, the softmax ``exp``): follows the compiled
    :class:`~repro.ckks.poly_plan.DensePolyPlan` (compiled on the fly
    when not supplied) or, under ``reference=True``, the term-by-term
    ladder.  Both paths consume exactly ``⌈log₂(d+1)⌉`` levels and
    return the canonical scale of the target level — the constant term
    is a free plaintext add.
    """
    if plan is None:
        plan = plan_dense_poly(poly)
    use_ps = not reference and plan.use_ps
    with trace_span(
        ev,
        "poly:dense-ps" if use_ps else "poly:dense-ladder",
        kind="poly",
        degree=poly.degree,
    ) as sp:
        sp.ct_entry(x)
        if use_ps:
            out = _eval_dense_ps(ev, x, plan)
        else:
            out = _eval_dense_ladder(ev, x, poly)
            tgt_level, tgt_scale = _canonical_descent(
                ev, x.level, x.scale, plan.mult_depth
            )
            out = ev.align_to(out, tgt_level, tgt_scale, rtol=0.0)
        sp.ct_exit(out)
    return out


def eval_paf_max(
    ev: CkksEvaluator,
    a: Ciphertext,
    b: Ciphertext,
    paf: CompositePAF,
    scale: float = 1.0,
    reference: bool = False,
) -> Ciphertext:
    """Encrypted pairwise max: ``(a+b)/2 + (a-b)·(0.5·sign((a-b)/scale))``."""
    d = ev.sub(a, b)
    folded = fold_relu_composite(paf, scale)
    half_sign = eval_composite_paf(ev, d, folded, reference=reference)
    d_down = ev.align_to(d, half_sign.level, half_sign.scale)
    prod = ev.rescale(ev.mul(d_down, half_sign))      # |d|/2 approx
    s = ev.mul_plain_rescale(ev.add(a, b), 0.5)       # (a+b)/2
    s = ev.align_to(s, prod.level, prod.scale)
    return ev.add(prod, s)
