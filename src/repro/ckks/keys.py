"""Key generation: secret, public, relinearisation and Galois keys.

Keyswitching uses the RNS-digit hybrid construction (one digit per chain
prime, one special prime ``P``): to switch a polynomial ``d`` known mod
``Q_l = q_0···q_l`` from key ``w`` to key ``s``,

    d ≡ Σ_j D_j · W_j   (mod Q_l),
    D_j = [ d_j · (Q_l/q_j)^{-1} ]_{q_j}   (small digits),
    W_j = Q_l / q_j,

and the key for digit ``j`` is ``ksk_j = (-a_j·s + e_j + P·W_j·w, a_j)``
over the extended basis ``(q_0..q_l, P)``.  The ciphertext side computes
``Σ_j D_j · ksk_j`` and divides by ``P`` — noise is ``Σ_j D_j e_j / P``
with digits bounded by the (30-bit) primes, so it stays tiny.

Because the weights ``W_j`` depend on the level, key components are
generated lazily per level and cached (:class:`KeySwitchFamily`).  The
secret stays inside the :class:`KeyChain` — acceptable for a simulator,
called out in the docs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.ckks.context import CkksContext
from repro.ckks.rns import RnsPoly

__all__ = [
    "SecretKey",
    "PublicKey",
    "KeySwitchKey",
    "KeySwitchFamily",
    "KeyChain",
    "keygen",
]


def _sample_ternary(n: int, rng: np.random.Generator) -> np.ndarray:
    return rng.integers(-1, 2, size=n).astype(np.int64)


def _sample_error(n: int, std: float, rng: np.random.Generator) -> np.ndarray:
    return np.round(rng.normal(0.0, std, size=n)).astype(np.int64)


def _sample_uniform(ctx: CkksContext, prime_indices, rng: np.random.Generator) -> RnsPoly:
    rows = np.stack(
        [
            rng.integers(0, ctx.all_primes[i], size=ctx.n, dtype=np.int64)
            for i in prime_indices
        ]
    )
    return RnsPoly(ctx, rows, prime_indices, is_ntt=True)


@dataclass
class SecretKey:
    """Ternary secret, stored in NTT form over the full extended basis."""

    poly: RnsPoly          # s over all primes (incl. special), NTT domain
    coeffs: np.ndarray     # raw ternary coefficients (for tests/diagnostics)


@dataclass
class PublicKey:
    """Encryption key: ``b = -a·s + e`` over the ciphertext chain."""

    b: RnsPoly
    a: RnsPoly


@dataclass
class KeySwitchKey:
    """One digit's keyswitch component over ``(q_0..q_l, P)``."""

    b: RnsPoly
    a: RnsPoly


class KeySwitchFamily:
    """Per-level keyswitch key sets for one target polynomial ``w``.

    ``w`` is ``s²`` for relinearisation or ``s(X^g)`` for a Galois element;
    stored in coefficient form so it can be reduced onto any basis.
    """

    def __init__(self, ctx: CkksContext, secret: "SecretKey", w_coeffs: np.ndarray, seed: int):
        self.ctx = ctx
        self._secret = secret
        self._w_coeffs = w_coeffs      # big-int (object) or int64 coefficients
        self._rng = np.random.default_rng(seed)
        self._cache: Dict[int, List[KeySwitchKey]] = {}
        self._stacked: Dict[int, tuple] = {}

    def at_level(self, level: int) -> List[KeySwitchKey]:
        if level in self._cache:
            return self._cache[level]
        ctx = self.ctx
        basis = list(range(level + 1)) + [len(ctx.all_primes) - 1]
        basis_primes = [ctx.all_primes[i] for i in basis]
        p_special = ctx.special_prime
        q_primes = [int(p) for p in ctx.primes_at_level(level)]
        q_l = 1
        for p in q_primes:
            q_l *= p

        s_rows = np.stack([self._secret.poly.data[i] for i in basis])
        s_basis = RnsPoly(ctx, s_rows, basis, is_ntt=True)
        if self._w_coeffs.dtype == object:
            w_basis = RnsPoly.from_int_coeffs(ctx, self._w_coeffs, basis).to_ntt()
        else:
            w_basis = RnsPoly.from_small_coeffs(ctx, self._w_coeffs, basis).to_ntt()

        keys = []
        for j, q_j in enumerate(q_primes):
            w_j = q_l // q_j                      # big int weight
            factor = np.array(
                [(p_special * (w_j % p)) % p for p in basis_primes], dtype=np.int64
            )
            a = _sample_uniform(ctx, basis, self._rng)
            e = RnsPoly.from_small_coeffs(
                ctx, _sample_error(ctx.n, ctx.params.error_std, self._rng), basis
            ).to_ntt()
            b = -(a * s_basis) + e + w_basis.scalar_mul(factor)
            keys.append(KeySwitchKey(b=b, a=a))
        self._cache[level] = keys
        return keys

    def stacked_at_level(self, level: int) -> tuple:
        """The level's key components as two ``(digits, level+2, n)``
        tensors ``(b, a)`` — the layout the kernel backends consume for
        the batched keyswitch inner product.  Stacked once per level and
        cached alongside :meth:`at_level`'s key list."""
        stacked = self._stacked.get(level)
        if stacked is None:
            keys = self.at_level(level)
            stacked = (
                np.stack([k.b.data for k in keys]),
                np.stack([k.a.data for k in keys]),
            )
            self._stacked[level] = stacked
        return stacked


@dataclass
class KeyChain:
    """All keys produced by :func:`keygen`."""

    secret: SecretKey
    public: PublicKey
    relin: KeySwitchFamily
    galois: dict = field(default_factory=dict)   # galois element -> family
    galois_seed: int = 0                         # keygen seed, reused when growing

    def galois_element_for_step(self, n: int, step: int) -> int:
        return pow(5, step % (n // 2), 2 * n)

    def ensure_galois_steps(
        self, ctx: CkksContext, steps, seed: int | None = None
    ) -> "KeyChain":
        """Create Galois key families for any rotation steps still missing.

        The BSGS matvec planner (:mod:`repro.fhe.linear`) decides its
        baby/giant step set *after* looking at a model's diagonals, so the
        key set is grown to match a plan rather than guessed up front;
        this is also how tests enable the naive reference path next to a
        BSGS key set.  Idempotent — existing families are kept, and the
        per-element derivation seed defaults to the chain's own keygen
        seed, so the result is bit-identical to having passed the step to
        :func:`keygen` up front.  Include the string ``"conj"`` for the
        conjugation element.
        """
        seed = self.galois_seed if seed is None else seed
        n = ctx.n
        for step in steps:
            g = 2 * n - 1 if step == "conj" else pow(5, int(step) % (n // 2), 2 * n)
            if g in self.galois:
                continue
            s_g = _automorphism_int(self.secret.coeffs, g)
            self.galois[g] = KeySwitchFamily(ctx, self.secret, s_g, seed=seed + 500 + g)
        return self


def keygen(
    ctx: CkksContext,
    seed: int | None = 0,
    galois_steps: tuple = (),
) -> KeyChain:
    """Generate a full key chain.

    ``galois_steps``: slot-rotation step sizes to create Galois keys for
    (element ``5^step mod 2N``); include the string ``"conj"`` for
    conjugation (element ``2N - 1``).
    """
    rng = np.random.default_rng(seed)
    n = ctx.n
    ext = list(range(len(ctx.all_primes)))
    chain = list(range(len(ctx.q_chain)))

    s_coeffs = _sample_ternary(n, rng)
    s_ext = RnsPoly.from_small_coeffs(ctx, s_coeffs, ext).to_ntt()
    secret = SecretKey(poly=s_ext, coeffs=s_coeffs)

    # public key over the ciphertext chain only
    a_pk = _sample_uniform(ctx, chain, rng)
    e_pk = RnsPoly.from_small_coeffs(
        ctx, _sample_error(n, ctx.params.error_std, rng), chain
    ).to_ntt()
    s_chain = RnsPoly(ctx, s_ext.data[: len(chain)].copy(), chain, is_ntt=True)
    public = PublicKey(b=-(a_pk * s_chain) + e_pk, a=a_pk)

    # relinearisation family: target w = s^2 (exact integer coefficients:
    # ternary * ternary convolution fits easily in int64)
    # compute s^2 exactly via big-int CRT-free convolution: use object math
    # on the small ternary coefficients (negacyclic schoolbook via FFT would
    # risk rounding; N is small enough for a single exact convolution here)
    s_sq = _negacyclic_square_exact(s_coeffs)
    relin = KeySwitchFamily(ctx, secret, s_sq, seed=(seed or 0) + 101)

    chain_keys = KeyChain(
        secret=secret, public=public, relin=relin, galois_seed=seed or 0
    )
    chain_keys.ensure_galois_steps(ctx, galois_steps)
    return chain_keys


def _negacyclic_square_exact(s: np.ndarray) -> np.ndarray:
    """Exact ``s²`` in Z[X]/(X^N+1) for small (ternary) ``s`` — int64.

    |coefficients| ≤ N, so int64 is ample.  Uses the doubling convolution
    via numpy correlate on int64 (exact for these magnitudes).
    """
    n = len(s)
    full = np.convolve(s.astype(np.int64), s.astype(np.int64))
    out = full[:n].copy()
    out[: n - 1] -= full[n:]
    return out


def _automorphism_int(s: np.ndarray, g: int) -> np.ndarray:
    """Apply X -> X^g to integer coefficients (exact)."""
    n = len(s)
    idx = np.arange(n, dtype=np.int64)
    dest = idx * g % (2 * n)
    sign = np.where(dest >= n, -1, 1).astype(np.int64)
    dest = np.where(dest >= n, dest - n, dest)
    out = np.zeros_like(s)
    out[dest] = s * sign
    return out
