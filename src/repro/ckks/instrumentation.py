"""Operation accounting for CKKS evaluators.

Wraps a :class:`~repro.ckks.evaluator.CkksEvaluator` and counts every
homomorphic operation — the raw material of the analytic latency model and
of tests asserting that the depth-optimal evaluator performs exactly the
op counts the paper's cost analysis assumes.

Also hosts the :func:`span` tracing hook the encrypted executors call at
layer/executor boundaries.  An evaluator that carries a ``tracer``
attribute (:class:`repro.obs.TracingEvaluator`) gets a real span; every
other evaluator gets the shared no-op :data:`NULL_SPAN`, so tracing is
a single failed attribute lookup per *span site* (per layer, not per
homomorphic op) when disabled — and never touches ciphertext contents
either way.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.ckks.evaluator import Ciphertext, CkksEvaluator

__all__ = ["CountingEvaluator", "span", "NULL_SPAN"]


class _NullSpan:
    """Inert stand-in for :class:`repro.obs.Span` when no tracer is attached.

    ``__enter__`` returns itself so call sites can unconditionally invoke
    the recording methods; all of them discard their arguments.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def ct_entry(self, ct) -> None:
        """No-op twin of :meth:`repro.obs.Span.ct_entry`."""

    def ct_exit(self, ct, level_slack: int | None = None) -> None:
        """No-op twin of :meth:`repro.obs.Span.ct_exit`."""

    def set(self, **attrs) -> None:
        """No-op twin of :meth:`repro.obs.Span.set`."""


#: the shared do-nothing span returned when ``ev`` has no tracer
NULL_SPAN = _NullSpan()


def span(ev, name: str, kind: str = "span", **attrs):
    """Open a tracing span on ``ev``'s attached tracer, if any.

    The instrumented executors (``repro.fhe.network``, ``repro.fhe.linear``,
    ``repro.ckks.poly_eval``) call this at their boundaries::

        with span(ev, "matvec:bsgs", kind="matvec") as sp:
            sp.ct_entry(ct)
            ...
            sp.ct_exit(out)

    With a bare :class:`~repro.ckks.evaluator.CkksEvaluator` (or a
    :class:`CountingEvaluator`) this returns :data:`NULL_SPAN` and the
    whole block is observationally free.
    """
    tracer = getattr(ev, "tracer", None)
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, kind=kind, **attrs)

_COUNTED = (
    "encrypt",
    "decrypt",
    "add",
    "sub",
    "negate",
    "add_plain",
    "mul",
    "mul_plain",
    "rescale",
    "mod_switch_to",
    "rotate",
    "conjugate",
)


class CountingEvaluator:
    """Proxy evaluator recording per-op counts.

    Drop-in for any code that takes a ``CkksEvaluator`` (duck-typed):

    >>> counting = CountingEvaluator(ev)          # doctest: +SKIP
    >>> eval_paf_relu(counting, ct, paf)          # doctest: +SKIP
    >>> counting.counts["mul"]                    # doctest: +SKIP
    """

    def __init__(self, inner: CkksEvaluator):
        self._inner = inner
        self.counts: Counter = Counter()

    def reset(self) -> None:
        self.counts.clear()

    @property
    def nonscalar_mult_count(self) -> int:
        """Ciphertext×ciphertext multiplications (squarings included).

        The currency of polynomial-evaluation cost (each one pays a
        relinearisation keyswitch); the Paterson–Stockmeyer op-count
        regression suite pins this against
        :attr:`repro.ckks.poly_plan.PolyPlan.nonscalar_mults`.
        """
        return self.counts["mul"]

    @property
    def keyswitch_count(self) -> int:
        """Total keyswitch (Galois/relin) applications — the dominant cost.

        Hoisted rotations still pay the key inner product + special-prime
        descent per Galois element, so each counts as one keyswitch; the
        shared digit decomposition is booked separately under
        ``hoist_decompose``.
        """
        c = self.counts
        return c["rotate"] + c["rotate_hoisted"] + c["conjugate"] + c["mul"]

    def __getattr__(self, name):
        attr = getattr(self._inner, name)
        if name in _COUNTED and callable(attr):
            def wrapped(*args, __name=name, __attr=attr, **kwargs):
                self.counts[__name] += 1
                return __attr(*args, **kwargs)

            return wrapped
        return attr

    def rotate_many(self, a: Ciphertext, steps) -> dict:
        """Hoisted rotations: one ``hoist_decompose`` plus one
        ``rotate_hoisted`` per nontrivial step (trivial steps are free
        copies, exactly as the inner evaluator treats them)."""
        steps = list(steps)
        slots = self._inner.ctx.slots
        nontrivial = sum(1 for s in steps if s % slots != 0)
        out = self._inner.rotate_many(a, steps)  # may raise before any work
        if nontrivial:
            self.counts["hoist_decompose"] += 1
            self.counts["rotate_hoisted"] += nontrivial
        return out

    # Composite convenience methods call the inner evaluator's primitives
    # directly, which would bypass the proxy; count their pieces here.
    def square(self, a: Ciphertext) -> Ciphertext:
        self.counts["mul"] += 1
        return self._inner.square(a)

    def mul_rescale(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        self.counts["mul"] += 1
        self.counts["rescale"] += 1
        return self._inner.mul_rescale(a, b)

    def mul_plain_rescale(self, a: Ciphertext, value) -> Ciphertext:
        self.counts["mul_plain"] += 1
        self.counts["rescale"] += 1
        return self._inner.mul_plain_rescale(a, value)

    # align_to may or may not consume ops; count its internals via the
    # wrapped calls it makes on *itself* — route it through this proxy.
    def align_to(self, a: Ciphertext, level: int, scale: float, rtol: float = 0.01):
        if a.level == level or abs(a.scale - scale) / scale <= rtol:
            self.counts["mod_switch_to"] += a.level != level
            return self._inner.align_to(a, level, scale, rtol)
        self.counts["align_correction"] += 1
        self.counts["mul_plain"] += 1
        self.counts["rescale"] += 1
        return self._inner.align_to(a, level, scale, rtol)
