"""From-scratch leveled RNS-CKKS (the paper's FHE substrate).

Negacyclic NTT ring arithmetic over 30-bit prime chains, canonical
embedding encoder, public-key encryption, RNS-digit hybrid keyswitching,
rescaling, slot rotation, and depth-optimal PAF evaluation on ciphertexts.
"""

from repro.ckks.bootstrap import (
    RefreshPlan,
    RefreshPrecisionError,
    canonical_scale,
    coeff_to_slot,
    eval_mod,
    mod_raise,
    plan_refresh,
    refresh,
    slot_to_coeff,
)
from repro.ckks.backend import (
    KernelBackend,
    ReferenceBackend,
    VectorizedBackend,
    available_backends,
    register_backend,
    resolve_backend,
)
from repro.ckks.context import CkksContext, CkksParams
from repro.ckks.encoder import CkksEncoder, Plaintext
from repro.ckks.evaluator import Ciphertext, CkksEvaluator
from repro.ckks.keys import KeyChain, keygen
from repro.ckks.ntt import NttPlan
from repro.ckks.poly_eval import (
    eval_composite_paf,
    eval_odd_poly,
    eval_paf_max,
    eval_paf_relu,
)
from repro.ckks.poly_plan import (
    CompositePlan,
    PolyPlan,
    ReluPlan,
    ladder_nonscalar_mults,
    plan_composite,
    plan_odd_poly,
    plan_paf_relu,
)
from repro.ckks.primes import generate_primes, is_prime
from repro.ckks.rns import RnsPoly, crt_compose_centered, fast_base_convert
from repro.ckks.security import SecurityReport, security_report

__all__ = [
    "KernelBackend",
    "ReferenceBackend",
    "VectorizedBackend",
    "available_backends",
    "register_backend",
    "resolve_backend",
    "CkksParams",
    "CkksContext",
    "CkksEncoder",
    "Plaintext",
    "Ciphertext",
    "CkksEvaluator",
    "KeyChain",
    "keygen",
    "NttPlan",
    "RnsPoly",
    "crt_compose_centered",
    "fast_base_convert",
    "generate_primes",
    "is_prime",
    "eval_odd_poly",
    "eval_composite_paf",
    "eval_paf_relu",
    "eval_paf_max",
    "PolyPlan",
    "CompositePlan",
    "ReluPlan",
    "plan_odd_poly",
    "plan_composite",
    "plan_paf_relu",
    "ladder_nonscalar_mults",
    "SecurityReport",
    "security_report",
    "RefreshPlan",
    "RefreshPrecisionError",
    "canonical_scale",
    "coeff_to_slot",
    "eval_mod",
    "mod_raise",
    "plan_refresh",
    "refresh",
    "slot_to_coeff",
]
