"""CKKS canonical-embedding encoder.

Messages are vectors of ``N/2`` complex (here: real) slot values.  The
encoder maps slots to a real polynomial via the canonical embedding σ:
slot ``j`` is the evaluation of the plaintext polynomial at
``ζ_j = ω^{5^j}`` with ``ω = exp(iπ/N)`` a primitive 2N-th root of unity
(the 5-power orbit makes slot rotations correspond to Galois
automorphisms ``X -> X^{5^k}``).

Encoding computes ``c_k = (2/N) · Re( Σ_j conj(ζ_j^k) z_j )``, scaled by Δ
and rounded; decoding evaluates at the ζ_j and divides by the ciphertext's
tracked scale.  Both are chunked matrix products to bound memory at large N.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ckks.context import CkksContext
from repro.ckks.rns import RnsPoly, crt_compose_centered

__all__ = ["Plaintext", "CkksEncoder"]


@dataclass
class Plaintext:
    """An encoded message: RNS polynomial + the scale it carries."""

    poly: RnsPoly
    scale: float


class CkksEncoder:
    """Encode/decode between slot vectors and ring plaintexts."""

    #: column chunk bounding the complex work matrix to ~32 MB
    _CHUNK = 1024

    #: ring sizes up to this keep the full (N/2, N) embedding basis
    #: cached — 8·N² bytes, so ≤ 32 MB at the threshold; larger rings
    #: fall back to chunked recomputation
    _CACHE_MAX_N = 2048

    def __init__(self, ctx: CkksContext):
        self.ctx = ctx
        n = ctx.n
        m = ctx.slots
        # orbit exponents: 5^j mod 2N for j = 0..m-1
        exps = np.empty(m, dtype=np.int64)
        e = 1
        for j in range(m):
            exps[j] = e
            e = (e * 5) % (2 * n)
        #: angles θ_j with ζ_j = exp(i θ_j)
        self.theta = np.pi * exps.astype(np.float64) / n
        # per-chunk basis caches (sign=-1 for embed, +1 for project);
        # built lazily, exactly the arrays the uncached loop would form
        self._basis_chunks: dict = {}

    def _basis_chunk(self, sign: int, start: int, stop: int) -> np.ndarray:
        """``exp(sign·i·θ_j·k)`` for columns ``start:stop``.

        Recomputing the complex exponentials per encode dominates encode
        cost once the NTTs are vectorised, so small rings cache them.
        The cached arrays are byte-for-byte what the uncached path built,
        and the chunked matmul structure is unchanged — embeddings (and
        therefore ciphertexts) are bit-identical with and without the
        cache.
        """
        key = (sign, start)
        chunk = self._basis_chunks.get(key)
        if chunk is None:
            ks = np.arange(start, stop)
            chunk = np.exp(sign * 1j * np.outer(self.theta, ks))
            if self.ctx.n <= self._CACHE_MAX_N:
                self._basis_chunks[key] = chunk
        return chunk

    # ------------------------------------------------------------------
    def embed(self, values: np.ndarray) -> np.ndarray:
        """Slot vector -> real coefficient vector (unscaled, float)."""
        n = self.ctx.n
        m = self.ctx.slots
        z = np.zeros(m, dtype=np.complex128)
        values = np.asarray(values)
        if values.size > m:
            raise ValueError(f"too many slot values: {values.size} > {m}")
        z[: values.size] = values
        coeffs = np.empty(n, dtype=np.float64)
        for start in range(0, n, self._CHUNK):
            stop = min(start + self._CHUNK, n)
            basis = self._basis_chunk(-1, start, stop)  # conj(ζ_j^k)
            coeffs[start:stop] = (2.0 / n) * np.real(z @ basis)
        return coeffs

    def project(self, coeffs: np.ndarray) -> np.ndarray:
        """Real coefficient vector -> slot values (evaluate at the ζ_j)."""
        n = self.ctx.n
        out = np.zeros(self.ctx.slots, dtype=np.complex128)
        coeffs = np.asarray(coeffs, dtype=np.float64)
        for start in range(0, n, self._CHUNK):
            stop = min(start + self._CHUNK, n)
            basis = self._basis_chunk(1, start, stop)  # ζ_j^k
            out += basis @ coeffs[start:stop]
        return out

    # ------------------------------------------------------------------
    def encode(self, values, level: int, scale: float | None = None) -> Plaintext:
        """Encode a slot vector (or scalar broadcast) at a chain level."""
        scale = float(scale if scale is not None else self.ctx.scale)
        prime_indices = list(range(level + 1))
        values = np.asarray(values, dtype=np.float64)
        if values.ndim == 0:
            # scalar broadcast: constant polynomial — O(1), no embedding
            coeffs = np.zeros(self.ctx.n)
            coeffs[0] = float(values) * scale
        else:
            coeffs = self.embed(values) * scale
        rounded = np.round(coeffs)
        if np.max(np.abs(rounded)) < 2**62:
            poly = RnsPoly.from_small_coeffs(
                self.ctx, rounded.astype(np.int64), prime_indices
            )
        else:  # pragma: no cover - huge scales
            poly = RnsPoly.from_int_coeffs(
                self.ctx, np.array([int(c) for c in rounded], dtype=object), prime_indices
            )
        return Plaintext(poly=poly.to_ntt(), scale=scale)

    def decode(self, poly: RnsPoly, scale: float, num_values: int | None = None) -> np.ndarray:
        """Decode an RNS plaintext back to (real) slot values."""
        big = crt_compose_centered(poly)
        coeffs = big.astype(np.float64)
        slots = np.real(self.project(coeffs)) / scale
        if num_values is not None:
            slots = slots[:num_values]
        return slots
