"""CKKS evaluator: encrypt/decrypt, add, multiply, rescale, relinearise,
mod-switch, rotate and conjugate.

Conventions
-----------
* A :class:`Ciphertext` is ``(c0, c1)`` in NTT domain over the chain primes
  ``q_0..q_level`` with a tracked float ``scale``; decryption computes
  ``c0 + c1·s``.
* Every ciphertext-ciphertext or ciphertext-plaintext multiply doubles the
  scale; :meth:`rescale` divides by the level's top prime and drops it —
  one *level* consumed (the paper's multiplication-depth currency).
* Relinearisation / rotation use single-special-prime hybrid keyswitching
  with approximate RNS base conversion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ckks.context import CkksContext
from repro.ckks.encoder import CkksEncoder, Plaintext
from repro.ckks.keys import KeyChain, _sample_error, _sample_ternary
from repro.ckks.rns import RnsPoly

__all__ = ["Ciphertext", "CkksEvaluator"]

#: relative scale mismatch tolerated by addition (primes are only ≈ Δ)
_SCALE_RTOL = 0.05


@dataclass
class Ciphertext:
    """A CKKS ciphertext at some chain level."""

    c0: RnsPoly
    c1: RnsPoly
    scale: float
    level: int

    def copy(self) -> "Ciphertext":
        return Ciphertext(self.c0.copy(), self.c1.copy(), self.scale, self.level)


class CkksEvaluator:
    """All homomorphic operations for one context + key chain."""

    def __init__(self, ctx: CkksContext, keys: KeyChain, seed: int | None = 1):
        self.ctx = ctx
        self.keys = keys
        self.encoder = CkksEncoder(ctx)
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # encrypt / decrypt
    # ------------------------------------------------------------------
    def encrypt(self, values, level: int | None = None, scale: float | None = None) -> Ciphertext:
        """Encrypt a slot vector (public-key encryption)."""
        level = self.ctx.max_level if level is None else level
        # per-request payloads are one-shot: bypass a caching encoder
        # (repro.serve.artifact.CachingEncoder) rather than churn its LRU
        encode = getattr(self.encoder, "encode_fresh", self.encoder.encode)
        pt = encode(values, level, scale)
        chain = list(range(level + 1))
        n = self.ctx.n
        std = self.ctx.params.error_std
        u = RnsPoly.from_small_coeffs(self.ctx, _sample_ternary(n, self._rng), chain).to_ntt()
        e0 = RnsPoly.from_small_coeffs(self.ctx, _sample_error(n, std, self._rng), chain).to_ntt()
        e1 = RnsPoly.from_small_coeffs(self.ctx, _sample_error(n, std, self._rng), chain).to_ntt()
        pk_b = RnsPoly(self.ctx, self.keys.public.b.data[: level + 1].copy(), chain, True)
        pk_a = RnsPoly(self.ctx, self.keys.public.a.data[: level + 1].copy(), chain, True)
        c0 = pk_b * u + e0 + pt.poly
        c1 = pk_a * u + e1
        return Ciphertext(c0=c0, c1=c1, scale=pt.scale, level=level)

    def decrypt(self, ct: Ciphertext, num_values: int | None = None) -> np.ndarray:
        """Decrypt to (real) slot values."""
        s = self._secret_at(ct.level)
        msg = ct.c0 + ct.c1 * s
        return self.encoder.decode(msg, ct.scale, num_values)

    def _secret_at(self, level: int) -> RnsPoly:
        chain = list(range(level + 1))
        return RnsPoly(self.ctx, self.keys.secret.poly.data[: level + 1].copy(), chain, True)

    # ------------------------------------------------------------------
    # additive ops
    # ------------------------------------------------------------------
    def _check_add(self, a: Ciphertext, b: Ciphertext) -> None:
        if a.level != b.level:
            raise ValueError(f"level mismatch: {a.level} vs {b.level} (mod_switch first)")
        if abs(a.scale - b.scale) > _SCALE_RTOL * max(a.scale, b.scale):
            raise ValueError(f"scale mismatch: {a.scale:.3g} vs {b.scale:.3g}")

    def add(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        self._check_add(a, b)
        return Ciphertext(a.c0 + b.c0, a.c1 + b.c1, a.scale, a.level)

    def sub(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        self._check_add(a, b)
        return Ciphertext(a.c0 - b.c0, a.c1 - b.c1, a.scale, a.level)

    def negate(self, a: Ciphertext) -> Ciphertext:
        return Ciphertext(-a.c0, -a.c1, a.scale, a.level)

    def _as_plaintext(self, value, level: int, scale: float) -> Plaintext:
        """Encode ``value``, or validate an already-encoded :class:`Plaintext`.

        Precomputed plaintexts (e.g. cached Halevi-Shoup diagonals from
        ``repro.serve.artifact``) must live at the ciphertext's chain level;
        the scale is the caller's business (checked where addition requires
        agreement).
        """
        if isinstance(value, Plaintext):
            if value.poly.data.shape[0] != level + 1:
                raise ValueError(
                    f"plaintext encoded for {value.poly.data.shape[0] - 1} "
                    f"levels, ciphertext at level {level}"
                )
            return value
        return self.encoder.encode(value, level, scale)

    def add_plain(self, a: Ciphertext, value) -> Ciphertext:
        """Add a scalar / slot vector / pre-encoded :class:`Plaintext`.

        Raw values are encoded at the ciphertext's scale; a ``Plaintext``
        must already carry a matching scale.
        """
        pt = self._as_plaintext(value, a.level, a.scale)
        if abs(pt.scale - a.scale) > _SCALE_RTOL * max(pt.scale, a.scale):
            raise ValueError(
                f"plaintext scale {pt.scale:.3g} != ciphertext scale {a.scale:.3g}"
            )
        return Ciphertext(a.c0 + pt.poly, a.c1.copy(), a.scale, a.level)

    # ------------------------------------------------------------------
    # multiplicative ops
    # ------------------------------------------------------------------
    def mul_plain(self, a: Ciphertext, value, scale: float | None = None) -> Ciphertext:
        """Multiply by a plaintext scalar/vector/pre-encoded ``Plaintext``.

        The plaintext is encoded at the ciphertext's own scale by default,
        which keeps the per-level scale unique across evaluation paths
        (the canonical-scale invariant: S_{l-1} = S_l^2 / q_l), so terms
        that meet at an addition agree exactly.  A pre-encoded
        ``Plaintext`` is used as-is (its own scale multiplies in).
        """
        pt = self._as_plaintext(value, a.level, scale if scale is not None else a.scale)
        return Ciphertext(
            a.c0 * pt.poly, a.c1 * pt.poly, a.scale * pt.scale, a.level
        )

    def mul(self, a: Ciphertext, b: Ciphertext, relinearize: bool = True) -> Ciphertext:
        """Ciphertext-ciphertext multiply (+ relinearisation)."""
        self._check_mul(a, b)
        d0 = a.c0 * b.c0
        d1 = a.c0 * b.c1 + a.c1 * b.c0
        d2 = a.c1 * b.c1
        scale = a.scale * b.scale
        if not relinearize:
            raise NotImplementedError("degree-2 ciphertexts are not kept around")
        ks0, ks1 = self._keyswitch(d2, self.keys.relin, a.level)
        return Ciphertext(d0 + ks0, d1 + ks1, scale, a.level)

    def square(self, a: Ciphertext) -> Ciphertext:
        return self.mul(a, a)

    def _check_mul(self, a: Ciphertext, b: Ciphertext) -> None:
        if a.level != b.level:
            raise ValueError(f"level mismatch: {a.level} vs {b.level} (mod_switch first)")
        if a.level < 1:
            raise ValueError("out of levels: cannot rescale below level 0")

    # ------------------------------------------------------------------
    # rescale / mod switch
    # ------------------------------------------------------------------
    def rescale(self, a: Ciphertext) -> Ciphertext:
        """Divide by the level's top prime and drop it (one level down)."""
        level = a.level
        if level < 1:
            raise ValueError("cannot rescale at level 0")
        q_last = self.ctx.q_chain[level]

        def down(poly: RnsPoly) -> RnsPoly:
            rows = self.ctx.backend.rescale(poly.to_coeff().data, level)
            return RnsPoly(self.ctx, rows, list(range(level)), is_ntt=False).to_ntt()

        return Ciphertext(
            down(a.c0), down(a.c1), a.scale / q_last, level - 1
        )

    def mod_switch_to(self, a: Ciphertext, level: int) -> Ciphertext:
        """Drop chain primes without dividing (scale unchanged)."""
        if level > a.level:
            raise ValueError(f"cannot mod-switch up ({a.level} -> {level})")
        if level == a.level:
            return a
        keep = level + 1
        return Ciphertext(
            a.c0.drop_rows(keep), a.c1.drop_rows(keep), a.scale, level
        )

    def mul_rescale(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        return self.rescale(self.mul(a, b))

    def mul_plain_rescale(self, a: Ciphertext, value) -> Ciphertext:
        return self.rescale(self.mul_plain(a, value))

    def align_to(
        self, a: Ciphertext, level: int, scale: float, rtol: float = 0.01
    ) -> Ciphertext:
        """Bring ``a`` to (``level``, ``scale``) exactly.

        Rescaling by actual primes (only ≈ Δ) drifts scales apart across
        different evaluation paths; when ``a`` sits above the target level
        the drift is corrected *exactly* by multiplying with the constant
        ``scale·q/(a.scale)`` (a ~Δ-sized integer, encoded precisely) and
        rescaling by ``q`` — landing on the target scale at the target
        level with no extra level consumed beyond the descent itself.
        """
        if a.level < level:
            raise ValueError(f"cannot align upward ({a.level} -> {level})")
        mismatch = abs(a.scale - scale) / scale
        if a.level == level or mismatch <= rtol:
            return Ciphertext(
                *(c.drop_rows(level + 1) for c in (a.c0, a.c1)), a.scale, level
            ) if a.level != level else a
        a = self.mod_switch_to(a, level + 1)
        q_next = self.ctx.q_chain[level + 1]
        correction = scale * q_next / a.scale
        out = self.rescale(self.mul_plain(a, 1.0, scale=correction))
        out.scale = scale  # exact by construction (up to encode rounding)
        return out

    # ------------------------------------------------------------------
    # keyswitching (RNS-digit hybrid, single special prime)
    # ------------------------------------------------------------------
    def _keyswitch(self, d: RnsPoly, family, level: int) -> tuple:
        """Switch poly ``d`` (chain basis at ``level``) through a
        :class:`KeySwitchFamily`; returns the (c0, c1) contribution.

        Digits ``D_j = [d_j · (Q_l/q_j)^{-1}]_{q_j}`` are small (< q_j), so
        after multiplying by the per-digit keys and dividing by the special
        prime the added noise is ``Σ_j D_j e_j / P`` — a few bits.
        """
        return self._apply_keyswitch_keys(
            self._hoist_decompose(d, level), family, level
        )

    def _hoist_decompose(self, d: RnsPoly, level: int) -> np.ndarray:
        """Keyswitch digits of ``d`` in NTT form over the extended basis.

        Returns shape ``(level+1 digits, level+2 basis rows, N)``.  This is
        the expensive half of a keyswitch (inverse NTTs, digit scaling,
        extended-basis lift, forward NTTs) and is *independent of the
        Galois element*: digit decomposition commutes exactly with the
        automorphism (both act coefficient-wise / by signed coefficient
        permutation), and the automorphism is a pure NTT-slot permutation
        (:meth:`CkksContext.galois_ntt_permutation`).  Computing it once
        and permuting per rotation is rotation *hoisting*.

        The digit pipeline itself (decompose, centre, lift, forward
        NTTs) is a kernel-backend concern — per-digit loops on the
        reference backend, one fused batched pass on the vectorized one.
        """
        return self.ctx.backend.hoist_decompose(d.to_coeff().data, level)

    def _apply_keyswitch_keys(
        self, digits: np.ndarray, family, level: int, perm: np.ndarray | None = None
    ) -> tuple:
        """Inner product of decomposed digits with a key family, then the
        divide-by-``P`` descent back onto the chain basis.

        ``perm`` (an NTT-slot permutation) is applied to every digit first —
        this is the per-rotation half of a hoisted Galois application.
        The arithmetic runs in the kernel backend against the family's
        stacked key tensors.
        """
        ctx = self.ctx
        key_b, key_a = family.stacked_at_level(level)
        rows_b, rows_a = ctx.backend.apply_keyswitch(digits, key_b, key_a, level, perm=perm)
        chain = list(range(level + 1))
        return (
            RnsPoly(ctx, rows_b, chain, is_ntt=True),
            RnsPoly(ctx, rows_a, chain, is_ntt=True),
        )

    # ------------------------------------------------------------------
    # rotations
    # ------------------------------------------------------------------
    def rotate(self, a: Ciphertext, steps: int) -> Ciphertext:
        """Rotate slot vector left by ``steps`` (requires the Galois key)."""
        g = pow(5, steps % self.ctx.slots, 2 * self.ctx.n)
        return self._apply_galois(a, g)

    def rotate_many(self, a: Ciphertext, steps) -> dict:
        """Hoisted rotations: one keyswitch decomposition, many Galois maps.

        Returns ``{step: rotated ciphertext}`` for every requested step.
        The expensive digit decomposition of ``c1``
        (:meth:`_hoist_decompose`) is shared across all steps; each
        rotation then only permutes the NTT-form digits, takes the inner
        product with its Galois keys and divides by the special prime —
        the Halevi-Shoup hoisting structure.  Output is bit-identical to
        calling :meth:`rotate` per step (the decomposition commutes
        exactly with the automorphism).

        Trivial steps (multiples of the slot count) come back as copies
        without touching the decomposition.
        """
        two_n = 2 * self.ctx.n
        out: dict = {}
        nontrivial: list = []
        for step in steps:
            g = pow(5, step % self.ctx.slots, two_n)
            if g == 1:
                out[step] = a.copy()
            else:
                nontrivial.append((step, g))
        if not nontrivial:
            return out
        for _, g in nontrivial:
            if g not in self.keys.galois:
                raise KeyError(
                    f"no Galois key for element {g}; pass the step to "
                    "keygen(galois_steps=...)"
                )
        c0_ntt = a.c0.to_ntt()
        digits = self._hoist_decompose(a.c1, a.level)
        for step, g in nontrivial:
            perm = self.ctx.galois_ntt_permutation(g)
            ks0, ks1 = self._apply_keyswitch_keys(
                digits, self.keys.galois[g], a.level, perm=perm
            )
            c0g = RnsPoly(
                self.ctx, c0_ntt.data[:, perm], c0_ntt.prime_indices, is_ntt=True
            )
            out[step] = Ciphertext(c0g + ks0, ks1, a.scale, a.level)
        return out

    def conjugate(self, a: Ciphertext) -> Ciphertext:
        """Complex-conjugate the slots (element 2N-1)."""
        return self._apply_galois(a, 2 * self.ctx.n - 1)

    def _apply_galois(self, a: Ciphertext, g: int) -> Ciphertext:
        if g == 1:
            return a.copy()
        if g not in self.keys.galois:
            raise KeyError(
                f"no Galois key for element {g}; pass the step to keygen(galois_steps=...)"
            )
        c0g = a.c0.to_coeff().automorphism(g).to_ntt()
        c1g = a.c1.to_coeff().automorphism(g).to_ntt()
        ks0, ks1 = self._keyswitch(c1g, self.keys.galois[g], a.level)
        return Ciphertext(c0g + ks0, ks1, a.scale, a.level)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def noise_budget_estimate(self, ct: Ciphertext, reference: np.ndarray) -> float:
        """log2 of the max absolute slot error vs a known reference."""
        got = self.decrypt(ct, num_values=len(np.ravel(reference)))
        err = float(np.max(np.abs(got - np.ravel(reference))))
        return float(np.log2(max(err, 1e-300)))
