"""Prime generation for the RNS-CKKS modulus chain.

All primes satisfy ``p ≡ 1 (mod 2N)`` (so the negacyclic NTT exists) and
``p < 2^30`` (so int64 products of residues never overflow: ``p² < 2^60``).
"""

from __future__ import annotations

__all__ = [
    "is_prime",
    "generate_primes",
    "generate_scale_tracking_primes",
    "primitive_root_of_unity",
]

# Deterministic Miller-Rabin witnesses valid for all n < 3.3e24.
_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_prime(n: int) -> bool:
    """Deterministic Miller-Rabin for the 64-bit range."""
    if n < 2:
        return False
    for p in _MR_WITNESSES:
        if n % p == 0:
            return n == p
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MR_WITNESSES:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_primes(n_ring: int, bit_sizes, max_bits: int = 30) -> list:
    """Distinct NTT-friendly primes *nearest* the requested sizes.

    For each requested size ``b`` we search ``p ≡ 1 (mod 2N)`` outward from
    ``2^b`` in both directions and keep the closest untaken prime.  Scale
    primes therefore straddle ``2^b``, so the per-rescale scale drift
    (``Δ²/q vs Δ``) averages out instead of compounding — without this,
    additions of terms that took different prime paths through a deep
    evaluation diverge by several percent.  Raises if a request exceeds
    ``max_bits`` (int64-safety cap).
    """
    step = 2 * n_ring
    taken: set[int] = set()
    out: list[int] = []
    cap = 2**max_bits
    for bits in bit_sizes:
        if bits > max_bits:
            raise ValueError(f"prime size {bits} bits exceeds the {max_bits}-bit cap")
        if 2**bits <= step:
            raise ValueError(f"2^{bits} too small for ring size N={n_ring}")
        base = (2**bits // step) * step + 1
        found = None
        for k in range(1, 2**bits // step):
            for candidate in (base + k * step, base - k * step):
                if not step < candidate < cap:
                    continue
                if candidate not in taken and is_prime(candidate):
                    found = candidate
                    break
            if found is not None:
                break
        if found is None:
            raise RuntimeError(f"no NTT-friendly prime found near 2^{bits}")
        taken.add(found)
        out.append(found)
    return out


def _nearest_ntt_prime(target: float, n_ring: int, taken: set, max_bits: int = 30) -> int:
    """The untaken NTT-friendly prime closest to ``target``."""
    step = 2 * n_ring
    cap = 2**max_bits
    if target <= step:
        raise ValueError(f"target {target:.3g} too small for ring size N={n_ring}")
    base = (int(target) // step) * step + 1
    for k in range(0, int(target) // step):
        for candidate in (base + k * step, base - k * step):
            if not step < candidate < cap:
                continue
            if candidate not in taken and is_prime(candidate):
                return candidate
    raise RuntimeError(f"no NTT-friendly prime found near {target:.3g}")


def generate_scale_tracking_primes(
    n_ring: int,
    scale_bits: int,
    depth: int,
    first_prime_bits: int = 29,
    special_prime_bits: int = 29,
    max_bits: int = 30,
) -> list:
    """Chain primes chosen to keep the *canonical scale* pinned at ``Δ``.

    :func:`generate_primes` picks every scale prime nearest ``2^b``, which
    bounds the per-level drift but not its compounding: the canonical
    schedule ``S_{l-1} = S_l² / q_l`` *doubles* the relative deviation
    from ``Δ`` at every rescale (``δ' = 2δ - δ_q``), so a chain deeper
    than ~20 levels collapses the scale double-exponentially — deep
    residual networks decrypt garbage.  This generator instead walks the
    schedule while choosing primes: the prime consumed at level ``l`` is
    the NTT prime nearest ``S_l² / Δ``, which cancels the accumulated
    deviation each step and keeps every canonical scale within one prime
    spacing (``2N / Δ``) of ``Δ`` for *any* depth.

    Returns ``[q_0, q_1, .., q_depth, P]`` in chain order (the rescale at
    level ``l`` divides by ``q_l``; fresh ciphertexts start at level
    ``depth``).
    """
    delta = float(2**scale_bits)
    taken: set[int] = set()
    q0 = _nearest_ntt_prime(2**first_prime_bits, n_ring, taken, max_bits)
    taken.add(q0)
    scale_primes: list[int] = [0] * depth
    s = delta
    for lvl in range(depth, 0, -1):  # consumed top-down: q_depth first
        q = _nearest_ntt_prime(s * s / delta, n_ring, taken, max_bits)
        taken.add(q)
        scale_primes[lvl - 1] = q
        s = s * s / q
    special = _nearest_ntt_prime(2**special_prime_bits, n_ring, taken, max_bits)
    return [q0, *scale_primes, special]


def primitive_root_of_unity(order: int, p: int) -> int:
    """A primitive ``order``-th root of unity modulo prime ``p``.

    Requires ``order | p - 1``.  Found by exponentiating random candidates
    to the cofactor and checking the half-order power.
    """
    if (p - 1) % order != 0:
        raise ValueError(f"{order} does not divide p-1 for p={p}")
    cofactor = (p - 1) // order
    for g in range(2, p):
        root = pow(g, cofactor, p)
        if pow(root, order // 2, p) == p - 1:
            return root
    raise RuntimeError(f"no primitive root of order {order} mod {p}")  # pragma: no cover
