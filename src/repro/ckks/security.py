"""Honest security estimation for CKKS parameter sets.

Based on the Homomorphic Encryption Standard tables (Albrecht et al. 2021,
the paper's [Albrecht et al.] reference): the maximum total modulus size
log2(Q·P) per ring degree for 128-bit classical security with ternary
secrets.  The paper's SEAL configuration (N=32768, 881-bit modulus) sits
exactly on this table's 128-bit row.

Small test/benchmark contexts are NOT secure — :func:`security_report`
says so explicitly rather than pretending otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ckks.context import CkksContext

__all__ = ["SecurityReport", "security_report", "MAX_LOGQP_128"]

#: HE-standard maximum log2(QP) for 128-bit security (ternary secret)
MAX_LOGQP_128 = {
    1024: 27,
    2048: 54,
    4096: 109,
    8192: 218,
    16384: 438,
    32768: 881,
}


@dataclass(frozen=True)
class SecurityReport:
    n: int
    log_qp: float
    max_log_qp_128: int | None
    secure_128: bool
    message: str


def security_report(ctx: CkksContext) -> SecurityReport:
    """Classify a context against the HE-standard 128-bit table."""
    import numpy as np

    log_qp = ctx.modulus_bits() + float(np.log2(ctx.special_prime))
    bound = MAX_LOGQP_128.get(ctx.n)
    if bound is None:
        return SecurityReport(
            ctx.n, log_qp, None, False, f"ring degree {ctx.n} not in the HE standard table"
        )
    secure = log_qp <= bound
    if secure:
        msg = f"log2(QP) = {log_qp:.0f} <= {bound}: meets the 128-bit table row"
    else:
        msg = (
            f"log2(QP) = {log_qp:.0f} > {bound}: NOT 128-bit secure — "
            "toy simulation parameters (fine for latency shape, not deployment)"
        )
    return SecurityReport(ctx.n, log_qp, bound, secure, msg)
