"""Tab. 3 — ablation of technique combinations.

Rows (per PAF form):

* ``baseline + DS w/o fine tune``       (replace, no training)
* ``baseline + CT + DS w/o fine tune``  (CT only)
* ``baseline + DS``                     (direct replacement, train others)
* ``baseline + SS``                     (prior work: above + SS conversion)
* ``baseline + CT + PA + AT + DS``      (all techniques, training view)
* ``SMART-PAF: CT + PA + AT + SS``      (HE-deployable)

Panels: replace-ReLU-only and replace-all for ResNet-18 (ImageNet-1k
stand-in); replace-all for VGG-19 (CIFAR-10 stand-in) — matching the
paper's three blocks.  Quick mode runs the ResNet/all block with a reduced
form list; ``REPRO_SCALE=full`` runs everything.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace

from repro.analysis.tables import format_table
from repro.core import SmartPAF
from repro.experiments.common import (
    PAPER_FORMS,
    default_baseline,
    fresh_model,
    is_quick,
    quick_config,
    vgg_cifar_baseline,
)
from repro.paf import get_paf

__all__ = ["run_table3_block", "run_table3", "print_table3_block"]


def run_table3_block(
    baseline,
    kinds: tuple,
    forms=None,
    seed: int = 0,
) -> dict:
    """One Tab. 3 block: all ablation rows for one model/dataset/kinds."""
    forms = forms or PAPER_FORMS
    rows: dict = {}
    for form in forms:
        cell: dict = {}
        def factory(f=form):
            return get_paf(f)

        # --- no-fine-tune rows -------------------------------------
        for label, ct in (("no_ft", False), ("ct_no_ft", True)):
            model = fresh_model(baseline)
            runner = SmartPAF(factory, quick_config().with_techniques(ct=ct), kinds=kinds)
            ds_acc, ss_acc = runner.replace_only(model, baseline.dataset)
            cell[f"{label}_ds"] = ds_acc
            cell[f"{label}_ss"] = ss_acc

        # --- prior-work baseline: direct replacement, train others ---
        model = fresh_model(baseline)
        cfg_b = dc_replace(
            quick_config().with_techniques(ct=False, pa=False, at=False),
            initial_target="other",
        )
        res_b = SmartPAF(factory, cfg_b, kinds=kinds).fit(model, baseline.dataset)
        cell["baseline_ds"] = res_b.ds_accuracy
        cell["baseline_ss"] = res_b.ss_accuracy

        # --- SMART-PAF: CT + PA + AT --------------------------------
        model = fresh_model(baseline)
        cfg_s = quick_config().with_techniques(ct=True, pa=True, at=True)
        res_s = SmartPAF(factory, cfg_s, kinds=kinds).fit(model, baseline.dataset)
        cell["smartpaf_ds"] = res_s.ds_accuracy
        cell["smartpaf_ss"] = res_s.ss_accuracy
        rows[form] = cell
    return {"original_accuracy": baseline.accuracy, "rows": rows}


def run_table3(seed: int = 0) -> dict:
    """All Tab. 3 blocks (reduced form set in quick mode)."""
    forms = PAPER_FORMS if not is_quick() else ["f1f1g1g1", "f1g2"]
    main = default_baseline(seed)
    main_name = f"{main.arch}/{main.dataset.name}/all"
    blocks = {main_name: run_table3_block(main, ("relu", "maxpool"), forms, seed)}
    if not is_quick():
        blocks["resnet18/imagenet-like/relu"] = run_table3_block(
            main, ("relu",), forms, seed
        )
        blocks["vgg19/cifar10-like/all"] = run_table3_block(
            vgg_cifar_baseline(seed), ("relu", "maxpool"), forms, seed
        )
    return blocks


ROW_LABELS = [
    ("no_ft_ds", "baseline + DS w/o fine tune"),
    ("ct_no_ft_ds", "baseline + CT + DS w/o fine tune"),
    ("baseline_ds", "baseline + DS"),
    ("baseline_ss", "baseline + SS (prior work)"),
    ("smartpaf_ds", "baseline + CT + PA + AT + DS"),
    ("smartpaf_ss", "SMART-PAF: CT + PA + AT + SS"),
]


def print_table3_block(name: str, block: dict) -> str:
    forms = list(block["rows"])
    table_rows = []
    for key, label in ROW_LABELS:
        table_rows.append([label] + [block["rows"][f][key] for f in forms])
    return format_table(
        ["technique setup"] + forms,
        table_rows,
        title=(
            f"Table 3 [{name}] — original accuracy "
            f"{block['original_accuracy']:.3f}"
        ),
    )
