"""Fig. 9 — training curves: baseline vs SMART-PAF (f1²∘g1² ReLU).

The paper shows the baseline (direct replacement, regression-initialised
coefficients) starting ~34% below SMART-PAF and decaying across steps,
while SMART-PAF's curve climbs after each progressive replacement, with
SWA / AT event markers.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace

from repro.core import SmartPAF
from repro.experiments.common import (
    default_baseline,
    fresh_model,
    quick_config,
)
from repro.paf import get_paf

__all__ = ["run_fig9", "print_fig9"]


def run_fig9(seed: int = 0, form: str = "f1f1g1g1") -> dict:
    base = default_baseline(seed)

    # baseline: direct replacement + training other layers, no CT/PA/AT
    model_b = fresh_model(base)
    cfg_b = dc_replace(
        quick_config(epochs_per_group=2, max_groups_per_step=2).with_techniques(
            ct=False, pa=False, at=False
        ),
        initial_target="other",
    )
    res_b = SmartPAF(lambda: get_paf(form), cfg_b, kinds=("relu",)).fit(
        model_b, base.dataset
    )

    # SMART-PAF: CT + PA + AT
    model_s = fresh_model(base)
    cfg_s = quick_config(epochs_per_group=2, max_groups_per_step=2).with_techniques(
        ct=True, pa=True, at=True
    )
    res_s = SmartPAF(lambda: get_paf(form), cfg_s, kinds=("relu",)).fit(
        model_s, base.dataset
    )

    return {
        "original_accuracy": base.accuracy,
        "form": form,
        "baseline": {
            "curve": res_b.schedule.curve,
            "events": res_b.schedule.events,
            "final": res_b.ds_accuracy,
        },
        "smartpaf": {
            "curve": res_s.schedule.curve,
            "events": res_s.schedule.events,
            "final": res_s.ds_accuracy,
        },
    }


def print_fig9(result: dict) -> str:
    lines = [
        f"Figure 9: training curves, {result['form']} "
        f"(original {result['original_accuracy']:.3f})"
    ]
    for label in ("baseline", "smartpaf"):
        curve = result[label]["curve"]
        trace = " ".join(f"{v:.2f}" for v in curve)
        lines.append(f"{label:9s} final={result[label]['final']:.3f}  curve: {trace}")
        events = ", ".join(f"{e}@{i}" for i, e in result[label]["events"][:12])
        lines.append(f"          events: {events}")
    return "\n".join(lines)
