"""Appendix C (Tab. 8 / Fig. 10) — multiplication depth walkthrough.

Prints the symbolic depth schedule for ``f1 ∘ g2`` and verifies the
measured level consumption of every registry PAF under CKKS equals its
analytic depth.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.ckks import CkksContext, CkksEvaluator, CkksParams, eval_composite_paf, keygen
from repro.paf import composite_depth_schedule, get_paf, paper_pafs

__all__ = ["run_depth_schedule", "run_measured_depths", "print_appendix_depth"]


def run_depth_schedule(form: str = "f1g2") -> list:
    """The Tab. 8 symbolic schedule: (expression, depth) pairs."""
    paf = get_paf(form)
    return [(s.expr, s.depth) for s in composite_depth_schedule(paf)]


def run_measured_depths(n: int = 1024, include_alpha10: bool = True) -> dict:
    """Measured CKKS level consumption vs analytic depth for each form."""
    params = CkksParams(n=n, scale_bits=25, depth=11)
    ctx = CkksContext(params)
    keys = keygen(ctx, seed=0)
    ev = CkksEvaluator(ctx, keys)
    x = ev.encrypt(np.linspace(-1, 1, ctx.slots))
    out = {}
    for paf in paper_pafs(include_alpha10=include_alpha10):
        ct = eval_composite_paf(ev, x, paf)
        out[paf.name] = {
            "analytic": paf.mult_depth,
            "measured": ctx.max_level - ct.level,
        }
    return out


def print_appendix_depth() -> str:
    sched = run_depth_schedule("f1g2")
    measured = run_measured_depths()
    lines = [
        format_table(
            ["intermediate", "depth"], sched, title="Table 8: f1 ∘ g2 depth schedule"
        ),
        "",
        format_table(
            ["form", "analytic depth", "measured levels"],
            [[k, v["analytic"], v["measured"]] for k, v in measured.items()],
            title="Measured CKKS level consumption (sign PAF only)",
        ),
    ]
    return "\n".join(lines)
