"""Tab. 2 — PAF forms with reported degree and multiplication depth."""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.paf import paf_depth_table, paper_pafs

__all__ = ["run_table2", "PAPER_TABLE2"]

#: the paper's printed (degree, depth) per form
PAPER_TABLE2 = {
    "alpha=10": (27, 10),
    "f1^2 o g1^2": (14, 8),
    "alpha=7": (12, 6),
    "f2 o g3": (12, 6),
    "f2 o g2": (10, 6),
    "f1 o g2": (5, 5),
}


def run_table2() -> dict:
    """Compute the Tab. 2 rows from the PAF registry."""
    rows = paf_depth_table(paper_pafs(include_alpha10=True))
    result = {
        r.name: {
            "degree": r.reported_degree,
            "mult_depth": r.mult_depth,
            "degree_sum": r.degree_sum,
            "components": r.num_components,
        }
        for r in rows
    }
    return result


def print_table2() -> str:
    res = run_table2()
    rows = [
        [name, v["degree"], v["mult_depth"], PAPER_TABLE2[name][0], PAPER_TABLE2[name][1]]
        for name, v in res.items()
    ]
    return format_table(
        ["form", "degree", "mult depth", "paper degree", "paper depth"],
        rows,
        title="Table 2: PAF forms — degree and multiplication depth",
    )
