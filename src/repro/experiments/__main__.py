"""CLI: regenerate paper artefacts without pytest.

Usage::

    python -m repro.experiments table2
    python -m repro.experiments fig7 fig8
    python -m repro.experiments all
    REPRO_SCALE=full python -m repro.experiments table3
"""

from __future__ import annotations

import sys

from repro.experiments import (
    print_appendix_depth,
    print_fig7,
    print_fig8,
    print_fig9,
    print_table2,
    print_table3_block,
    print_table4,
    run_fig7,
    run_fig8,
    run_fig9,
    run_table3,
    run_table4,
)

RUNNERS = {
    "table2": lambda: print_table2(),
    "fig7": lambda: print_fig7(run_fig7()),
    "fig8": lambda: print_fig8(run_fig8()),
    "fig9": lambda: print_fig9(run_fig9()),
    "table3": lambda: "\n\n".join(
        print_table3_block(name, block) for name, block in run_table3().items()
    ),
    "table4": lambda: print_table4(run_table4()),
    "depth": lambda: print_appendix_depth(),
}


def main(argv: list) -> int:
    targets = argv or ["table2"]
    if targets == ["all"]:
        targets = list(RUNNERS)
    unknown = [t for t in targets if t not in RUNNERS]
    if unknown:
        print(f"unknown targets {unknown}; choose from {sorted(RUNNERS)} or 'all'")
        return 2
    for t in targets:
        print(RUNNERS[t]())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
