"""Fig. 7 — Coefficient Tuning vs baseline, post-replacement accuracy
WITHOUT fine-tuning.

Top panel: replace ReLU only; bottom panel: replace all non-polynomial
operators.  The paper reports CT improving 1.05-3.32× with larger gains
for lower-degree PAFs, and the all-non-poly rows sitting well below the
ReLU-only rows (MaxPooling sensitivity, Sec. 5.2).
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.core import SmartPAF
from repro.experiments.common import (
    PAPER_FORMS,
    fresh_model,
    quick_config,
    resnet_imagenet_baseline,
)
from repro.paf import get_paf

__all__ = ["run_fig7", "print_fig7"]


def run_fig7(seed: int = 0, forms=None) -> dict:
    """Returns {form: {panel: {"baseline": acc, "ct": acc}}} (DS accuracy)."""
    base = resnet_imagenet_baseline(seed)
    forms = forms or PAPER_FORMS
    out: dict = {"original_accuracy": base.accuracy, "forms": {}}
    for form in forms:
        per_panel = {}
        for panel, kinds in (("relu_only", ("relu",)), ("all_nonpoly", ("relu", "maxpool"))):
            accs = {}
            for label, ct in (("baseline", False), ("ct", True)):
                model = fresh_model(base)
                cfg = quick_config().with_techniques(ct=ct)
                runner = SmartPAF(lambda f=form: get_paf(f), cfg, kinds=kinds)
                ds_acc, _ = runner.replace_only(model, base.dataset)
                accs[label] = ds_acc
            per_panel[panel] = accs
        out["forms"][form] = per_panel
    return out


def print_fig7(result: dict) -> str:
    rows = []
    for form, panels in result["forms"].items():
        r = panels["relu_only"]
        a = panels["all_nonpoly"]
        rows.append(
            [
                form,
                r["baseline"],
                r["ct"],
                r["ct"] / max(r["baseline"], 1e-9),
                a["baseline"],
                a["ct"],
                a["ct"] / max(a["baseline"], 1e-9),
            ]
        )
    return format_table(
        ["form", "relu base", "relu CT", "gain", "all base", "all CT", "gain"],
        rows,
        title=(
            "Figure 7: post-replacement val acc w/o fine-tune "
            f"(original {result['original_accuracy']:.3f})"
        ),
    )
