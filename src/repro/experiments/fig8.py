"""Fig. 8 — Progressive Approximation vs direct strategies (fine-tuned).

Three strategies per PAF form (ReLU replacement, ResNet-18/ImageNet-1k
stand-in):

* ``direct+direct``      — replace all sites at once, train other layers
  (the prior-work baseline);
* ``direct+progressive`` — replace all at once but train progressively
  (the paper's collapsing green bar);
* ``progressive``        — PA proper: replace one site at a time, fine-tune
  after each (the orange bar).
"""

from __future__ import annotations

from dataclasses import replace as dc_replace

from repro.analysis.tables import format_table
from repro.core import SmartPAF
from repro.experiments.common import (
    PAPER_FORMS,
    default_baseline,
    fresh_model,
    quick_config,
)
from repro.paf import get_paf

__all__ = ["run_fig8", "print_fig8"]

STRATEGIES = {
    # (progressive_replacement, initial_target)
    "direct+direct": (False, "other"),
    "direct+progressive": (False, "paf"),
    "progressive": (True, "paf"),
}


def run_fig8(seed: int = 0, forms=None) -> dict:
    base = default_baseline(seed)
    forms = forms or PAPER_FORMS
    out: dict = {"original_accuracy": base.accuracy, "forms": {}}
    for form in forms:
        per = {}
        for label, (progressive, target) in STRATEGIES.items():
            model = fresh_model(base)
            cfg = dc_replace(
                quick_config().with_techniques(ct=False, at=False),
                progressive=progressive,
                initial_target=target,
            )
            runner = SmartPAF(lambda f=form: get_paf(f), cfg, kinds=("relu",))
            res = runner.fit(model, base.dataset)
            per[label] = res.ds_accuracy
        out["forms"][form] = per
    return out


def print_fig8(result: dict) -> str:
    rows = [
        [form, v["direct+direct"], v["direct+progressive"], v["progressive"]]
        for form, v in result["forms"].items()
    ]
    return format_table(
        ["form", "direct+direct", "direct+prog", "progressive (PA)"],
        rows,
        title=(
            "Figure 8: post-fine-tune val acc by strategy "
            f"(original {result['original_accuracy']:.3f})"
        ),
    )
