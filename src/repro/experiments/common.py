"""Shared experiment infrastructure.

Each paper table/figure has a runner module here; benchmarks, examples and
EXPERIMENTS.md all call the same runners.  Pretrained baselines are cached
per process so a benchmark session pretrains each model once.

Scale: ``quick`` (default — CI-sized synthetic data, reduced widths and
epoch budgets; minutes for the full suite) vs ``full`` (larger synthetic
data and budgets; set ``REPRO_SCALE=full``).  Both exercise identical code
paths; only sizes differ.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.core import SmartPAF, SmartPAFConfig, pretrain
from repro.data.synthetic import Dataset, cifar10_like, imagenet_like
from repro.nn.models import resnet18, small_cnn, vgg19

__all__ = [
    "scale_mode",
    "is_quick",
    "PAPER_FORMS",
    "resnet_imagenet_baseline",
    "vgg_cifar_baseline",
    "smallcnn_cifar_baseline",
    "fresh_model",
    "quick_config",
    "default_baseline",
]

#: the five PAF forms the paper's accuracy tables sweep (Tab. 3 order)
PAPER_FORMS = ["f1f1g1g1", "alpha7", "f2g3", "f2g2", "f1g2"]


def scale_mode() -> str:
    return os.environ.get("REPRO_SCALE", "quick")


def is_quick() -> bool:
    return scale_mode() != "full"


@dataclass
class Baseline:
    """A pretrained model checkpoint + its dataset."""

    arch: str
    kwargs: dict
    state: dict
    dataset: Dataset
    accuracy: float


def _build(arch: str, **kwargs):
    if arch == "resnet18":
        return resnet18(**kwargs)
    if arch == "vgg19":
        return vgg19(**kwargs)
    if arch == "small_cnn":
        return small_cnn(**kwargs)
    raise ValueError(arch)


def fresh_model(baseline: Baseline):
    """A new model instance loaded with the baseline checkpoint."""
    model = _build(baseline.arch, **baseline.kwargs)
    model.load_state_dict(baseline.state)
    return model


@lru_cache(maxsize=None)
def resnet_imagenet_baseline(seed: int = 0) -> Baseline:
    """ResNet-18 on the ImageNet-1k stand-in (the paper's headline pair)."""
    if is_quick():
        ds = imagenet_like(n_train=700, n_val=250, image_size=24, num_classes=10, seed=seed)
        kwargs = dict(num_classes=10, base_width=6, seed=seed + 1)
        epochs = 6
    else:
        ds = imagenet_like(n_train=3000, n_val=800, image_size=32, num_classes=20, seed=seed)
        kwargs = dict(num_classes=20, base_width=12, seed=seed + 1)
        epochs = 15
    model = _build("resnet18", **kwargs)
    acc = pretrain(model, ds, epochs=epochs, lr=2e-3, seed=seed)
    return Baseline("resnet18", kwargs, model.state_dict(), ds, acc)


@lru_cache(maxsize=None)
def vgg_cifar_baseline(seed: int = 0) -> Baseline:
    """VGG-19 on the CIFAR-10 stand-in (the paper's second pair)."""
    if is_quick():
        ds = cifar10_like(n_train=500, n_val=200, image_size=32, seed=seed)
        kwargs = dict(num_classes=10, base_width=4, input_size=32, seed=seed + 1)
        epochs = 5
    else:
        ds = cifar10_like(n_train=2500, n_val=600, image_size=32, seed=seed)
        kwargs = dict(num_classes=10, base_width=8, input_size=32, seed=seed + 1)
        epochs = 12
    model = _build("vgg19", **kwargs)
    acc = pretrain(model, ds, epochs=epochs, lr=1e-3, seed=seed)
    return Baseline("vgg19", kwargs, model.state_dict(), ds, acc)


@lru_cache(maxsize=None)
def smallcnn_cifar_baseline(seed: int = 0) -> Baseline:
    """Small CNN pair for the fastest grid experiments / tests."""
    ds = cifar10_like(n_train=600, n_val=200, image_size=16, seed=seed)
    kwargs = dict(num_classes=10, base_width=8, input_size=16, seed=seed + 1)
    model = _build("small_cnn", **kwargs)
    acc = pretrain(model, ds, epochs=4, lr=2e-3, seed=seed)
    return Baseline("small_cnn", kwargs, model.state_dict(), ds, acc)


def default_baseline(seed: int = 0) -> Baseline:
    """Baseline for the training-heavy runners (Fig. 8/9, Tab. 3/4).

    The ResNet-18 / ImageNet-like pair at both scales: error compounding
    across its 18 non-polynomial sites is what makes the paper's
    degradation/recovery dynamics visible (a 4-site CNN barely degrades).
    Quick mode shrinks the dataset/width, not the topology.
    """
    return resnet_imagenet_baseline(seed)


def quick_config(**overrides) -> SmartPAFConfig:
    """Fine-tuning budget matched to the scale mode."""
    if is_quick():
        return SmartPAFConfig.quick(
            epochs_per_group=overrides.pop("epochs_per_group", 1),
            max_groups_per_step=overrides.pop("max_groups_per_step", 1),
            **overrides,
        )
    return SmartPAFConfig.quick(
        epochs_per_group=overrides.pop("epochs_per_group", 4),
        max_groups_per_step=overrides.pop("max_groups_per_step", 3),
        **overrides,
    )
