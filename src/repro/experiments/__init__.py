"""One runner per paper table/figure (shared by benches and examples)."""

from repro.experiments.appendix_depth import (
    print_appendix_depth,
    run_depth_schedule,
    run_measured_depths,
)
from repro.experiments.common import (
    PAPER_FORMS,
    fresh_model,
    is_quick,
    quick_config,
    resnet_imagenet_baseline,
    scale_mode,
    smallcnn_cifar_baseline,
    vgg_cifar_baseline,
)
from repro.experiments.fig7 import print_fig7, run_fig7
from repro.experiments.fig8 import print_fig8, run_fig8
from repro.experiments.fig9 import print_fig9, run_fig9
from repro.experiments.table2 import PAPER_TABLE2, print_table2, run_table2
from repro.experiments.table3 import print_table3_block, run_table3, run_table3_block
from repro.experiments.table4 import (
    print_table4,
    run_fig1,
    run_latency_table,
    run_table4,
)

__all__ = [
    "PAPER_FORMS",
    "scale_mode",
    "is_quick",
    "resnet_imagenet_baseline",
    "vgg_cifar_baseline",
    "smallcnn_cifar_baseline",
    "fresh_model",
    "quick_config",
    "run_table2",
    "print_table2",
    "PAPER_TABLE2",
    "run_fig7",
    "print_fig7",
    "run_fig8",
    "print_fig8",
    "run_fig9",
    "print_fig9",
    "run_table3",
    "run_table3_block",
    "print_table3_block",
    "run_table4",
    "print_table4",
    "run_fig1",
    "run_latency_table",
    "run_depth_schedule",
    "run_measured_depths",
    "print_appendix_depth",
]
