"""Tab. 4 / Fig. 1 — latency-accuracy comparison vs the 27-degree baseline.

Latency: measured encrypted-ReLU wall clock per PAF on our CKKS (relative
latencies are the reproduced quantity — the paper used SEAL at N=32768 on
a Threadripper).  Accuracy: SMART-PAF SS accuracy from the Tab. 3 pipeline;
the α=10 column is the paper's prior-work baseline.
"""

from __future__ import annotations


from repro.analysis.pareto import ParetoPoint, pareto_frontier
from repro.analysis.tables import format_table
from repro.ckks import CkksParams
from repro.core import SmartPAF
from repro.experiments.common import (
    PAPER_FORMS,
    default_baseline,
    fresh_model,
    is_quick,
    quick_config,
)
from repro.fhe import measure_relu_latency
from repro.paf import get_paf, minimax_alpha10_deg27

__all__ = ["run_latency_table", "run_table4", "print_table4", "run_fig1"]


def _latency_params() -> CkksParams:
    # one context deep enough for the deepest form (alpha10: 11 levels)
    n = 2048 if is_quick() else 8192
    return CkksParams(n=n, scale_bits=25, depth=12)


def run_latency_table(forms=None, repeats: int = 1) -> dict:
    """Encrypted-ReLU latency per form, including the α=10 baseline."""
    params = _latency_params()
    results = {}
    baseline_paf = minimax_alpha10_deg27()
    results["alpha10"] = measure_relu_latency(baseline_paf, params, repeats)
    for form in forms or PAPER_FORMS:
        results[form] = measure_relu_latency(get_paf(form), params, repeats)
    return results


def run_table4(seed: int = 0, forms=None, with_accuracy: bool = True) -> dict:
    forms = forms or (PAPER_FORMS if not is_quick() else ["f1f1g1g1", "f1g2"])
    latency = run_latency_table(forms)
    base_lat = latency["alpha10"].seconds
    out: dict = {"rows": {}, "baseline_latency": base_lat}
    base = default_baseline(seed) if with_accuracy else None
    if base is not None:
        out["original_accuracy"] = base.accuracy
    for form in forms:
        row = {
            "latency_s": latency[form].seconds,
            "speedup": base_lat / latency[form].seconds,
            "mult_depth": latency[form].mult_depth,
            "degree": latency[form].reported_degree,
        }
        if base is not None:
            model = fresh_model(base)
            cfg = quick_config().with_techniques(ct=True, pa=True, at=True)
            res = SmartPAF(lambda f=form: get_paf(f), cfg).fit(model, base.dataset)
            row["ss_accuracy"] = res.ss_accuracy
            row["ds_accuracy"] = res.ds_accuracy
        out["rows"][form] = row
    return out


def print_table4(result: dict) -> str:
    rows = []
    for form, r in result["rows"].items():
        rows.append(
            [
                form,
                r["degree"],
                r["mult_depth"],
                r["latency_s"],
                r["speedup"],
                r.get("ss_accuracy", float("nan")),
            ]
        )
    title = (
        "Table 4: SMART-PAF vs 27-degree minimax "
        f"(baseline ReLU latency {result['baseline_latency']:.3f}s"
    )
    if "original_accuracy" in result:
        title += f", original acc {result['original_accuracy']:.3f}"
    title += ")"
    return format_table(
        ["form", "degree", "depth", "latency (s)", "speedup", "SS acc"], rows, title
    )


def run_fig1(table4: dict) -> dict:
    """Fig. 1: Pareto frontier from the Tab. 4 design points."""
    points = [
        ParetoPoint(form, r["latency_s"], r.get("ss_accuracy", 0.0))
        for form, r in table4["rows"].items()
    ]
    points.append(
        ParetoPoint(
            "alpha10(baseline)",
            table4["baseline_latency"],
            table4.get("original_accuracy", 0.0),
        )
    )
    frontier = pareto_frontier(points)
    return {"points": points, "frontier": frontier}
