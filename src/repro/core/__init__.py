"""SMART-PAF core: the paper's four techniques + scheduling framework.

* :class:`PAFReLU` / :class:`PAFMaxPool2d` — trainable PAF layers with
  Dynamic/Static Scaling;
* surgery — find/replace non-polynomial sites in inference order;
* Coefficient Tuning, Progressive Approximation, Alternate Training —
  via :class:`SmartPAFScheduler` (Fig. 6);
* :class:`SmartPAF` — the end-to-end pipeline facade.
"""

from repro.core.coefficient_tuning import (
    capture_site_inputs,
    coefficient_tune_site,
    tune_paf_for_site,
)
from repro.core.config import SmartPAFConfig
from repro.core.export import (
    export_coefficients,
    format_appendix_table,
    import_coefficients,
    load_coefficients,
    save_coefficients,
)
from repro.core.paf_layer import PAFMaxPool2d, PAFReLU, PAFSign
from repro.core.pipeline import SmartPAF, SmartPAFResult, pretrain
from repro.core.scaling import (
    calibrate_static_scales,
    convert_to_dynamic,
    convert_to_static,
    scale_summary,
)
from repro.core.scheduler import ScheduleResult, SmartPAFScheduler, run_training_group
from repro.core.surgery import (
    NonPolySite,
    find_nonpoly_sites,
    nonpoly_graph,
    replace_all,
    replace_site,
    replaced_layers,
    trace_nonpoly_order,
)
from repro.core.trainer import (
    evaluate_accuracy,
    make_optimizer,
    set_trainable,
    split_parameters,
    train_one_epoch,
)

__all__ = [
    "PAFSign",
    "PAFReLU",
    "PAFMaxPool2d",
    "SmartPAFConfig",
    "SmartPAF",
    "SmartPAFResult",
    "pretrain",
    "SmartPAFScheduler",
    "ScheduleResult",
    "run_training_group",
    "NonPolySite",
    "find_nonpoly_sites",
    "trace_nonpoly_order",
    "replace_site",
    "replace_all",
    "replaced_layers",
    "nonpoly_graph",
    "capture_site_inputs",
    "coefficient_tune_site",
    "tune_paf_for_site",
    "calibrate_static_scales",
    "convert_to_static",
    "convert_to_dynamic",
    "scale_summary",
    "split_parameters",
    "make_optimizer",
    "set_trainable",
    "train_one_epoch",
    "evaluate_accuracy",
    "export_coefficients",
    "import_coefficients",
    "save_coefficients",
    "load_coefficients",
    "format_appendix_table",
]
