"""Model surgery: locate and replace non-polynomial operators.

Finds every ReLU / MaxPool2d site in a model **in inference order** (traced
with probe wrappers on a sample forward pass), and swaps sites for
:class:`~repro.core.paf_layer.PAFReLU` / ``PAFMaxPool2d`` — one at a time
(Progressive Approximation) or all at once (the prior-work baseline).

A networkx DiGraph of the traced operator sequence is exposed for the
analysis tooling (depth/latency aggregation in ``repro.analysis.graph``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import networkx as nx
import numpy as np

from repro.core.paf_layer import PAFMaxPool2d, PAFReLU
from repro.nn.layers import MaxPool2d, ReLU
from repro.nn.module import Module
from repro.nn.tensor import Tensor, no_grad
from repro.paf.polynomial import CompositePAF

__all__ = [
    "NonPolySite",
    "find_nonpoly_sites",
    "trace_nonpoly_order",
    "replace_site",
    "replace_all",
    "replace_transformer_nonpoly",
    "replaced_layers",
    "nonpoly_graph",
]


@dataclass
class NonPolySite:
    """One replaceable non-polynomial operator."""

    name: str          # dotted path, e.g. "layer1.0.relu1"
    kind: str          # "relu" | "maxpool"
    parent: Module     # module owning the attribute
    attr: str          # attribute name on the parent
    order: int         # inference order index

    @property
    def module(self) -> Module:
        return getattr(self.parent, self.attr)


def _definition_order_sites(model: Module) -> list:
    sites = []
    for parent_name, parent in model.named_modules():
        for attr, child in list(parent._modules.items()):
            if isinstance(child, ReLU):
                kind = "relu"
            elif isinstance(child, MaxPool2d):
                kind = "maxpool"
            else:
                continue
            name = f"{parent_name}.{attr}" if parent_name else attr
            sites.append(
                NonPolySite(name=name, kind=kind, parent=parent, attr=attr, order=-1)
            )
    return sites


class _Probe(Module):
    """Wraps a site module to record its first execution index."""

    def __init__(self, inner: Module, record: list, tag: int):
        super().__init__()
        self.inner = inner
        self._record = record
        self._tag = tag

    def forward(self, x: Tensor) -> Tensor:
        self._record.append(self._tag)
        return self.inner(x)


def trace_nonpoly_order(model: Module, sample_input: np.ndarray) -> list:
    """Execution order of non-polynomial sites, traced on a real forward.

    Temporarily wraps each site with a probe, runs one forward pass under
    ``no_grad`` and restores the original modules.
    """
    sites = _definition_order_sites(model)
    record: list[int] = []
    for tag, site in enumerate(sites):
        setattr(site.parent, site.attr, _Probe(site.module, record, tag))
    try:
        was_training = model.training
        model.eval()
        with no_grad():
            model(Tensor(np.asarray(sample_input)))
        model.train(was_training)
    finally:
        for site in sites:
            probe = getattr(site.parent, site.attr)
            setattr(site.parent, site.attr, probe.inner)
    if len(set(record)) != len(sites):
        missing = set(range(len(sites))) - set(record)
        raise RuntimeError(
            f"forward pass did not execute all non-polynomial sites: {missing}"
        )
    return [sites[tag] for tag in record]


def find_nonpoly_sites(
    model: Module,
    sample_input: Optional[np.ndarray] = None,
    kinds: Sequence[str] = ("relu", "maxpool"),
) -> list:
    """Non-polynomial sites in inference order.

    With ``sample_input`` the order is traced on a forward pass; otherwise
    module definition order is used (identical for all models in this repo,
    asserted by tests).  ``kinds`` restricts to ReLU-only replacement
    (Tab. 3's "Replace ReLU" block) or the full set.
    """
    if sample_input is not None:
        sites = trace_nonpoly_order(model, sample_input)
    else:
        sites = _definition_order_sites(model)
    sites = [s for s in sites if s.kind in kinds]
    for i, s in enumerate(sites):
        s.order = i
    return sites


def replace_site(site: NonPolySite, paf: CompositePAF, scale_mode: str = "dynamic") -> Module:
    """Swap one site for its PAF layer; returns the new layer."""
    old = site.module
    if isinstance(old, ReLU):
        new: Module = PAFReLU(paf.copy(), scale_mode=scale_mode)
    elif isinstance(old, MaxPool2d):
        new = PAFMaxPool2d(
            paf.copy(),
            kernel_size=old.kernel_size,
            stride=old.stride,
            padding=old.padding,
            scale_mode=scale_mode,
        )
    else:
        raise TypeError(f"site {site.name} already replaced or not non-polynomial")
    new.training = site.parent.training
    setattr(site.parent, site.attr, new)
    return new


def replace_all(
    model: Module,
    paf: CompositePAF,
    sample_input: Optional[np.ndarray] = None,
    kinds: Sequence[str] = ("relu", "maxpool"),
    scale_mode: str = "dynamic",
) -> list:
    """Direct replacement (the prior-work baseline): all sites at once."""
    sites = find_nonpoly_sites(model, sample_input, kinds)
    return [replace_site(s, paf, scale_mode) for s in sites]


def replaced_layers(model: Module) -> list:
    """All PAF layers currently in the model, with their dotted names."""
    return [
        (name, m)
        for name, m in model.named_modules()
        if isinstance(m, (PAFReLU, PAFMaxPool2d))
    ]


def nonpoly_graph(model: Module, sample_input: Optional[np.ndarray] = None) -> nx.DiGraph:
    """Chain DiGraph of the non-polynomial sites in inference order.

    Nodes carry ``kind`` and ``name``; edges encode execution succession.
    Used by ``repro.analysis.graph`` to aggregate multiplication depth and
    latency along the inference path.
    """
    sites = find_nonpoly_sites(model, sample_input)
    g = nx.DiGraph()
    for s in sites:
        g.add_node(s.order, name=s.name, kind=s.kind)
    for a, b in zip(sites, sites[1:]):
        g.add_edge(a.order, b.order)
    return g


def _padded_interval(values: np.ndarray, margin: float) -> tuple:
    """Observed range widened by ``margin`` of its half-width per side."""
    lo, hi = float(np.min(values)), float(np.max(values))
    centre, half = 0.5 * (lo + hi), 0.5 * (hi - lo)
    half = max(half * (1.0 + margin), 1e-3)
    return (centre - half, centre + half)


def replace_transformer_nonpoly(
    model: Module,
    sample_input: np.ndarray,
    *,
    margin: float = 0.25,
    exp_degree: int = 3,
    exp_squarings: int = 2,
    gelu_degree: int = 8,
    recip_iters: int = 2,
) -> dict:
    """Profile and swap a transformer's softmax / GELU for dense PAFs.

    Runs ``sample_input`` through the model recording every
    :class:`~repro.nn.layers.Softmax` input (attention scores) and
    :class:`~repro.nn.layers.GELU` input (pre-activations), calibrates
    the PAF domains to the observed ranges padded by ``margin``, then
    replaces the modules with :class:`~repro.core.paf_layer.PAFSoftmax`
    / :class:`~repro.core.paf_layer.PAFGELU` in place.  Returns the new
    modules keyed by dotted site name.
    """
    from repro.core.paf_layer import PAFGELU, PAFSoftmax
    from repro.nn.layers import GELU, Softmax
    from repro.paf.transformer import affine_recip_init, exp_paf, gelu_paf

    sites = []
    for parent_name, parent in model.named_modules():
        for attr, child in list(parent._modules.items()):
            if isinstance(child, (Softmax, GELU)):
                name = f"{parent_name}.{attr}" if parent_name else attr
                sites.append((name, parent, attr, child))
    if not sites:
        raise ValueError("model has no Softmax/GELU sites to replace")

    records: dict = {name: [] for name, *_ in sites}

    class _InputProbe(Module):
        def __init__(self, inner, name):
            super().__init__()
            self.inner = inner
            self._name = name

        def forward(self, x: Tensor) -> Tensor:
            records[self._name].append(np.asarray(x.data, dtype=np.float64))
            return self.inner(x)

    for name, parent, attr, child in sites:
        setattr(parent, attr, _InputProbe(child, name))
    try:
        was_training = model.training
        model.eval()
        with no_grad():
            model(Tensor(np.asarray(sample_input)))
        model.train(was_training)
    finally:
        for name, parent, attr, child in sites:
            setattr(parent, attr, child)

    replaced: dict = {}
    for name, parent, attr, child in sites:
        seen = np.concatenate([r.ravel() for r in records[name]])
        stacked = np.concatenate(records[name], axis=0)
        if isinstance(child, Softmax):
            axis = child.axis
            centred = stacked - stacked.mean(axis=axis, keepdims=True)
            exp = exp_paf(
                _padded_interval(centred, margin), exp_degree, exp_squarings
            )
            sums = exp(centred).sum(axis=axis)
            # the sum is positive by construction (even squaring count);
            # pad multiplicatively so the seed interval stays positive
            init = affine_recip_init(
                (float(sums.min()) / (1.0 + margin), float(sums.max()) * (1.0 + margin))
            )
            new: Module = PAFSoftmax(exp, init, recip_iters, axis=axis)
        else:
            new = PAFGELU(gelu_paf(_padded_interval(seen, margin), gelu_degree))
        new.training = parent.training
        setattr(parent, attr, new)
        replaced[name] = new
    return replaced
