"""Training utilities shared by the SMART-PAF techniques.

Implements the split the whole paper revolves around: *PAF coefficients*
vs *parameters of other layers* (convolutions, BN, linear), each trained
with its own hyperparameters (Tab. 5), optionally frozen independently
(Alternate Training).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import SmartPAFConfig
from repro.core.paf_layer import PAFSign
from repro.data.loader import DataLoader
from repro.nn import functional as F
from repro.nn.module import Module
from repro.nn.optim import SGD, Adam
from repro.nn.tensor import Tensor, no_grad

__all__ = [
    "split_parameters",
    "make_optimizer",
    "set_trainable",
    "train_one_epoch",
    "evaluate_accuracy",
    "EpochRecord",
]


def split_parameters(model: Module) -> tuple:
    """(paf_params, other_params): coefficients vs everything else."""
    paf_ids = set()
    paf_params = []
    for m in model.modules():
        if isinstance(m, PAFSign):
            for p in m.parameters():
                if id(p) not in paf_ids:
                    paf_ids.add(id(p))
                    paf_params.append(p)
    other_params = [p for p in model.parameters() if id(p) not in paf_ids]
    return paf_params, other_params


def make_optimizer(model: Module, config: SmartPAFConfig):
    """Two-group optimizer with the Tab. 5 hyperparameters."""
    paf_params, other_params = split_parameters(model)
    groups = []
    if paf_params:
        groups.append(
            {
                "params": paf_params,
                "lr": config.lr_paf,
                "weight_decay": config.weight_decay_paf,
            }
        )
    if other_params:
        groups.append(
            {
                "params": other_params,
                "lr": config.lr_other,
                "weight_decay": config.weight_decay_other,
            }
        )
    if config.optimizer == "adam":
        return Adam(groups, lr=config.lr_other)
    if config.optimizer == "sgd":
        return SGD(groups, lr=config.lr_other)
    raise ValueError(f"unknown optimizer {config.optimizer!r}")


def set_trainable(model: Module, target: str) -> None:
    """Freeze/unfreeze per AT phase.

    ``target``: ``"paf"`` (train PAF coefficients only), ``"other"``
    (train everything except PAF coefficients), or ``"all"``.
    """
    paf_params, other_params = split_parameters(model)
    if target == "paf":
        on, off = paf_params, other_params
    elif target == "other":
        on, off = other_params, paf_params
    elif target == "all":
        on, off = paf_params + other_params, []
    else:
        raise ValueError(f"target must be paf|other|all, got {target!r}")
    for p in on:
        p.requires_grad = True
    for p in off:
        p.requires_grad = False


@dataclass
class EpochRecord:
    """Per-epoch training trace entry (feeds the Fig. 9 curves)."""

    epoch: int
    train_loss: float
    train_acc: float
    val_acc: float
    event: str = ""  # replacement / SWA / AT markers


def train_one_epoch(
    model: Module,
    loader: DataLoader,
    optimizer,
) -> tuple:
    """One epoch of cross-entropy training; returns (mean_loss, train_acc)."""
    model.train()
    losses = []
    correct = 0
    seen = 0
    for xb, yb in loader:
        logits = model(Tensor(xb))
        loss = F.cross_entropy(logits, yb)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        losses.append(loss.item())
        correct += int((logits.data.argmax(axis=1) == yb).sum())
        seen += len(yb)
    return float(np.mean(losses)), correct / seen


def evaluate_accuracy(
    model: Module,
    x: np.ndarray,
    y: np.ndarray,
    batch_size: int = 256,
) -> float:
    """Top-1 accuracy under ``no_grad`` / eval mode (mode is restored)."""
    was_training = model.training
    model.eval()
    correct = 0
    # A collapsed Static-Scaling model legitimately produces inf/NaN
    # activations (Tab. 3's 0% rows); count those as wrong, quietly.
    with no_grad(), np.errstate(invalid="ignore", over="ignore"):
        for start in range(0, len(x), batch_size):
            xb = x[start : start + batch_size]
            yb = y[start : start + batch_size]
            logits = model(Tensor(xb))
            pred = np.nan_to_num(logits.data, nan=-np.inf).argmax(axis=1)
            correct += int((pred == yb).sum())
    model.train(was_training)
    return correct / len(x)
