"""The SMART-PAF scheduling framework (Fig. 6).

One *step* per non-polynomial layer, in inference order (Progressive
Approximation).  Within a step:

1. **Replace** the next site with a PAF (post-CT coefficients if CT is on).
2. **Training group**: train the current target parameters for E epochs,
   apply SWA over the group, keep whichever of {best epoch, SWA} validates
   best.
3. **Accuracy-improvement detection**: if the group improved the step's
   best validation accuracy, update ``best_model`` and run another group
   (arming AT for later).
4. **Overfitting avoidance**: if train acc > val acc + margin, enable
   Dropout and run another group.
5. **Alternate Training**: when no improvement and AT is armed, swap the
   training target (PAF coefficients <-> other layers) and run another
   group.
6. **Step termination**: no improvement and nothing left to try.

Dynamic Scaling is active during all fine-tuning; Static Scaling conversion
is the pipeline's job after all steps finish.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.core.coefficient_tuning import coefficient_tune_site
from repro.core.config import SmartPAFConfig
from repro.core.surgery import NonPolySite, find_nonpoly_sites, replace_site
from repro.core.trainer import (
    EpochRecord,
    evaluate_accuracy,
    make_optimizer,
    set_trainable,
    train_one_epoch,
)
from repro.data.loader import DataLoader
from repro.data.synthetic import Dataset
from repro.nn.layers import Dropout
from repro.nn.module import Module
from repro.nn.swa import SWAAverager
from repro.paf.polynomial import CompositePAF

__all__ = ["ScheduleResult", "SmartPAFScheduler", "run_training_group"]


@dataclass
class ScheduleResult:
    """Full history of a scheduler run (drives Fig. 9 and Tab. 3)."""

    history: list = field(default_factory=list)      # [EpochRecord]
    best_val_acc: float = 0.0
    events: list = field(default_factory=list)       # [(epoch, label)]
    steps: list = field(default_factory=list)        # per-site summaries

    @property
    def curve(self) -> list:
        """Validation-accuracy trace per epoch (the Fig. 9 series)."""
        return [r.val_acc for r in self.history]


def run_training_group(
    model: Module,
    train_loader: DataLoader,
    dataset: Dataset,
    optimizer,
    config: SmartPAFConfig,
    result: ScheduleResult,
    group_label: str = "",
) -> tuple:
    """One Fig.-6 training group: E epochs + SWA, return (best_state, acc).

    The model is left loaded with the best state found (best single epoch
    or the SWA average, whichever validates higher).
    """
    swa = SWAAverager(model) if config.use_swa else None
    best_state = model.state_dict()
    best_acc = -1.0
    for e in range(config.epochs_per_group):
        loss, train_acc = train_one_epoch(model, train_loader, optimizer)
        val_acc = evaluate_accuracy(model, dataset.x_val, dataset.y_val)
        result.history.append(
            EpochRecord(
                epoch=len(result.history),
                train_loss=loss,
                train_acc=train_acc,
                val_acc=val_acc,
                event=group_label if e == 0 else "",
            )
        )
        if val_acc > best_acc:
            best_acc = val_acc
            best_state = model.state_dict()
        if swa is not None:
            swa.update(model)
    last_train_acc = result.history[-1].train_acc if result.history else 0.0
    if swa is not None:
        model.load_state_dict(swa.averaged_state())
        swa_acc = evaluate_accuracy(model, dataset.x_val, dataset.y_val)
        result.events.append((len(result.history) - 1, "SWA"))
        if swa_acc > best_acc:
            best_acc = swa_acc
            best_state = model.state_dict()
    model.load_state_dict(best_state)
    return best_state, best_acc, last_train_acc


class SmartPAFScheduler:
    """Drives the full Fig.-6 flow over all non-polynomial sites."""

    def __init__(
        self,
        model: Module,
        dataset: Dataset,
        paf_factory: Callable[[], CompositePAF],
        config: Optional[SmartPAFConfig] = None,
        kinds: tuple = ("relu", "maxpool"),
    ):
        self.model = model
        self.dataset = dataset
        self.paf_factory = paf_factory
        self.config = config or SmartPAFConfig()
        self.kinds = kinds

    # ------------------------------------------------------------------
    def _calibration_batches(self, n_batches: int = 2):
        bs = self.config.batch_size
        x = self.dataset.x_train
        batches = [x[i * bs : (i + 1) * bs] for i in range(n_batches)]
        return [b for b in batches if len(b)]

    def _enable_dropout(self) -> bool:
        """Raise p on existing Dropout layers; True if any layer changed."""
        changed = False
        for m in self.model.modules():
            if isinstance(m, Dropout) and m.p < self.config.dropout_p:
                m.p = self.config.dropout_p
                changed = True
        return changed

    # ------------------------------------------------------------------
    def run(self) -> ScheduleResult:
        cfg = self.config
        result = ScheduleResult()
        sample = self.dataset.x_train[:2]
        sites = find_nonpoly_sites(self.model, sample, kinds=self.kinds)
        train_loader = DataLoader(
            self.dataset.x_train,
            self.dataset.y_train,
            batch_size=cfg.batch_size,
            shuffle=True,
            seed=cfg.seed,
        )

        if not cfg.progressive:
            # Direct replacement: swap every site up front, then run the
            # group machinery once over the whole model.
            for site in sites:
                self._replace_with_ct(site, result)
            result.events.append((len(result.history), "replace:all"))
            self._run_step(train_loader, result, step_name="all", site=None)
        else:
            for site in sites:
                self._replace_with_ct(site, result)
                result.events.append((len(result.history), f"replace:{site.name}"))
                self._run_step(train_loader, result, step_name=site.name, site=site)

        result.best_val_acc = evaluate_accuracy(
            self.model, self.dataset.x_val, self.dataset.y_val
        )
        return result

    # ------------------------------------------------------------------
    def _replace_with_ct(self, site: NonPolySite, result: ScheduleResult) -> None:
        paf = self.paf_factory()
        if self.config.coefficient_tuning:
            paf = coefficient_tune_site(
                self.model,
                site,
                paf,
                self._calibration_batches(),
                seed=self.config.seed,
            )
        replace_site(site, paf, scale_mode="dynamic")

    # ------------------------------------------------------------------
    def _run_step(
        self,
        train_loader: DataLoader,
        result: ScheduleResult,
        step_name: str,
        site: Optional[NonPolySite],
    ) -> None:
        """The inner Fig.-6 loop for one replacement step."""
        cfg = self.config
        # Fig. 6 trains the PAF coefficients first and lets AT swap to the
        # other layers; the prior-work baseline (Sec. 5.3) instead trains
        # everything except the PAFs — selectable via config.initial_target.
        target = cfg.initial_target
        set_trainable(self.model, target)
        optimizer = make_optimizer(self.model, cfg)

        best_acc = evaluate_accuracy(self.model, self.dataset.x_val, self.dataset.y_val)
        best_state = self.model.state_dict()
        apply_at = False
        groups_run = 0
        while groups_run < cfg.max_groups_per_step:
            groups_run += 1
            _, group_acc, train_acc = run_training_group(
                self.model,
                train_loader,
                self.dataset,
                optimizer,
                cfg,
                result,
                group_label=f"group:{step_name}:{groups_run}",
            )
            if group_acc > best_acc:
                best_acc = group_acc
                best_state = self.model.state_dict()
                apply_at = cfg.alternate_training
                continue  # accuracy improved: launch a new training group
            # no improvement: Fig. 6 fallbacks, in order
            if train_acc > group_acc + cfg.overfit_margin and self._enable_dropout():
                result.events.append((len(result.history) - 1, "dropout"))
                continue
            if apply_at:
                target = "other" if target == "paf" else "paf"
                set_trainable(self.model, target)
                result.events.append((len(result.history) - 1, f"AT:{target}"))
                apply_at = False
                continue
            break  # step termination condition
        self.model.load_state_dict(best_state)
        set_trainable(self.model, "all")
        result.steps.append(
            {"step": step_name, "best_val_acc": best_acc, "groups": groups_run}
        )
