"""Dynamic / Static Scaling management (Sec. 4.5).

During fine-tuning every PAF layer runs in **dynamic** mode (per-batch
max-abs normalisation).  For FHE deployment the model is converted to
**static** mode: each layer's scale freezes to the running max observed on
the training data (value-dependent ops don't exist under FHE).
"""

from __future__ import annotations

import numpy as np

from repro.core.surgery import replaced_layers
from repro.nn.module import Module
from repro.nn.tensor import Tensor, no_grad

__all__ = [
    "calibrate_static_scales",
    "convert_to_static",
    "convert_to_dynamic",
    "scale_summary",
]


def calibrate_static_scales(model: Module, x_batches) -> None:
    """Refresh every PAF layer's running max on calibration batches.

    Run after fine-tuning, before :func:`convert_to_static`, so the frozen
    scales reflect the final weights (training keeps running maxes up to
    date, but early-epoch outliers can inflate them).
    """
    layers = [m for _, m in replaced_layers(model)]
    for layer in layers:
        layer.reset_scales()
        layer.calibrating = True
    was_training = model.training
    model.eval()  # deterministic pass (no dropout); calibrating flag
    try:          # lets _scale_of refresh the running maxes anyway
        with no_grad():
            for xb in x_batches:
                model(Tensor(np.asarray(xb)))
    finally:
        for layer in layers:
            layer.calibrating = False
        model.train(was_training)


def convert_to_static(model: Module) -> list:
    """Switch every PAF layer to Static Scaling; returns (name, scale) pairs."""
    frozen = []
    for name, layer in replaced_layers(model):
        layer.set_static()
        frozen.append((name, layer.static_scale))
    return frozen


def convert_to_dynamic(model: Module) -> None:
    """Back to Dynamic Scaling (resume fine-tuning)."""
    for _, layer in replaced_layers(model):
        layer.set_dynamic()


def scale_summary(model: Module) -> dict:
    """Current scale mode and value per PAF layer."""
    return {
        name: {"mode": layer.scale_mode, "scale": layer.static_scale}
        for name, layer in replaced_layers(model)
    }
