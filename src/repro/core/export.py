"""Export / import of trained per-layer PAF coefficients (appendix B).

The paper's appendix B publishes the post-training coefficients of each
PAF at every ReLU layer (Tables 6-11).  This module serialises the same
artefact for our runs: a JSON document with, per replaced layer, the
component names, coefficient vectors, the static scale, and the PAF form
— enough to reconstruct the FHE-deployable activation functions exactly.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.paf_layer import PAFMaxPool2d
from repro.core.surgery import replaced_layers
from repro.nn.module import Module

__all__ = ["export_coefficients", "import_coefficients", "format_appendix_table"]


def export_coefficients(model: Module) -> dict:
    """Appendix-B style document for every PAF layer in ``model``."""
    doc: dict = {"layers": {}}
    for name, layer in replaced_layers(model):
        sign = layer.sign
        doc["layers"][name] = {
            "kind": "maxpool" if isinstance(layer, PAFMaxPool2d) else "relu",
            "paf_name": sign.paf_name,
            "reported_degree": sign.reported_degree,
            "components": [
                {"name": comp_name, "coeffs": [float(c) for c in param.data]}
                for comp_name, param in zip(
                    sign._component_names, sign.component_params()
                )
            ],
            "scale_mode": layer.scale_mode,
            "static_scales": [float(s) for s in layer.static_scales()],
        }
    return doc


def import_coefficients(model: Module, doc: dict, strict: bool = True) -> list:
    """Load exported coefficients back into a model's PAF layers.

    Returns the layer names that were restored.  With ``strict`` a missing
    or structurally-mismatched layer raises; otherwise it is skipped.
    """
    restored = []
    layers = dict(replaced_layers(model))
    for name, entry in doc["layers"].items():
        layer = layers.get(name)
        if layer is None:
            if strict:
                raise KeyError(f"model has no PAF layer named {name!r}")
            continue
        params = layer.sign.component_params()
        comps = entry["components"]
        if len(params) != len(comps) or any(
            p.shape[0] != len(c["coeffs"]) for p, c in zip(params, comps)
        ):
            if strict:
                raise ValueError(f"component structure mismatch at {name!r}")
            continue
        for p, c in zip(params, comps):
            p.data = np.asarray(c["coeffs"], dtype=np.float64)
        scales = np.asarray(entry["static_scales"], dtype=np.float64)
        if scales.shape == layer.running_max.shape:
            layer.register_buffer("running_max", scales)
        if entry.get("scale_mode") == "static":
            layer.set_static()
        restored.append(name)
    return restored


def save_coefficients(model: Module, path) -> None:
    """Write the export document as JSON."""
    Path(path).write_text(json.dumps(export_coefficients(model), indent=2))


def load_coefficients(model: Module, path, strict: bool = True) -> list:
    """Read a JSON export back into ``model``."""
    return import_coefficients(model, json.loads(Path(path).read_text()), strict)


def format_appendix_table(doc: dict, component_index: int = 0) -> str:
    """Render one component's coefficients across layers (Tab. 9-11 style)."""
    from repro.analysis.tables import format_table

    rows = []
    header_names: list = []
    for i, (name, entry) in enumerate(doc["layers"].items()):
        comp = entry["components"][component_index]
        if not header_names:
            n = len(comp["coeffs"])
            header_names = [f"c{2 * j + 1}" for j in range(n)]
        rows.append([i, name] + comp["coeffs"])
    return format_table(
        ["layer id", "site"] + header_names,
        rows,
        title=f"Post-training coefficients (component {component_index})",
    )
