"""The SMART-PAF pipeline facade.

End-to-end flow matching the paper's evaluation protocol:

1. start from a pretrained model (or pretrain one here);
2. run the Fig.-6 scheduler with the configured technique subset
   (CT / PA / AT; DS is always on during fine-tuning);
3. calibrate and convert to Static Scaling;
4. report both the DS accuracy (the "+ DS" rows of Tab. 3) and the
   HE-deployable SS accuracy (the "+ SS" rows).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.core.config import SmartPAFConfig
from repro.core.scaling import (
    calibrate_static_scales,
    convert_to_dynamic,
    convert_to_static,
)
from repro.core.scheduler import ScheduleResult, SmartPAFScheduler
from repro.core.surgery import replaced_layers
from repro.core.trainer import evaluate_accuracy
from repro.data.loader import DataLoader
from repro.data.synthetic import Dataset
from repro.nn import functional as F
from repro.nn.module import Module
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.paf.polynomial import CompositePAF

__all__ = ["SmartPAFResult", "SmartPAF", "pretrain"]


@dataclass
class SmartPAFResult:
    """Outcome of one SMART-PAF run (one Tab. 3 cell pair)."""

    model: Module
    schedule: ScheduleResult
    ds_accuracy: float            # Dynamic Scaling (training-time) accuracy
    ss_accuracy: float            # Static Scaling (HE-deployable) accuracy
    static_scales: list = field(default_factory=list)
    config: Optional[SmartPAFConfig] = None
    paf_name: str = ""

    def coefficients_by_layer(self) -> dict:
        """Per-layer post-training PAF coefficients (appendix B export)."""
        out = {}
        for name, layer in replaced_layers(self.model):
            out[name] = [p.data.copy() for p in layer.sign.component_params()]
        return out


def pretrain(
    model: Module,
    dataset: Dataset,
    epochs: int = 5,
    lr: float = 2e-3,
    batch_size: int = 64,
    seed: int = 0,
) -> float:
    """Train the original (exact ReLU/MaxPool) model; returns val accuracy.

    Stands in for the paper's pretrained torchvision checkpoints.
    """
    opt = Adam(model.parameters(), lr=lr)
    for epoch in range(epochs):
        loader = DataLoader(
            dataset.x_train,
            dataset.y_train,
            batch_size=batch_size,
            shuffle=True,
            seed=seed + epoch,
        )
        model.train()
        for xb, yb in loader:
            loss = F.cross_entropy(model(Tensor(xb)), yb)
            opt.zero_grad()
            loss.backward()
            opt.step()
    return evaluate_accuracy(model, dataset.x_val, dataset.y_val)


class SmartPAF:
    """High-level API: approximate a model's non-polynomial operators.

    Example
    -------
    >>> from repro.core import SmartPAF, SmartPAFConfig
    >>> from repro.paf import get_paf
    >>> runner = SmartPAF(lambda: get_paf("f1f1g1g1"), SmartPAFConfig.quick())
    >>> result = runner.fit(model, dataset)          # doctest: +SKIP
    >>> result.ss_accuracy                            # doctest: +SKIP
    """

    def __init__(
        self,
        paf_factory: Callable[[], CompositePAF],
        config: Optional[SmartPAFConfig] = None,
        kinds: tuple = ("relu", "maxpool"),
    ):
        self.paf_factory = paf_factory
        self.config = config or SmartPAFConfig()
        self.kinds = kinds

    def fit(self, model: Module, dataset: Dataset) -> SmartPAFResult:
        """Replace + fine-tune + convert to Static Scaling."""
        scheduler = SmartPAFScheduler(
            model, dataset, self.paf_factory, self.config, kinds=self.kinds
        )
        schedule = scheduler.run()

        # DS accuracy: the "+ DS" rows (training-time, not HE-deployable).
        ds_acc = evaluate_accuracy(model, dataset.x_val, dataset.y_val)

        # SS conversion: running-max scales frozen on the FULL training
        # set (Sec. 4.5: "the input running maximum under the training
        # dataset") — partial calibration understates the max and makes
        # validation inputs overflow the PAF range.
        bs = self.config.batch_size
        calib = [
            dataset.x_train[i : i + bs] for i in range(0, len(dataset.x_train), bs)
        ]
        calibrate_static_scales(model, calib)
        scales = convert_to_static(model)
        ss_acc = evaluate_accuracy(model, dataset.x_val, dataset.y_val)

        paf_name = self.paf_factory().name
        return SmartPAFResult(
            model=model,
            schedule=schedule,
            ds_accuracy=ds_acc,
            ss_accuracy=ss_acc,
            static_scales=scales,
            config=self.config,
            paf_name=paf_name,
        )

    def replace_only(self, model: Module, dataset: Dataset) -> tuple:
        """Replacement without fine-tuning (the Fig. 7 "w/o fine tune" axis).

        Returns ``(ds_accuracy, ss_accuracy)`` of the post-replacement
        model (with CT applied if configured).
        """
        from repro.core.surgery import find_nonpoly_sites, replace_site
        from repro.core.coefficient_tuning import coefficient_tune_site

        sites = find_nonpoly_sites(model, dataset.x_train[:2], kinds=self.kinds)
        bs = self.config.batch_size
        calib = [dataset.x_train[:bs], dataset.x_train[bs : 2 * bs]]
        calib = [c for c in calib if len(c)]
        full_calib = [
            dataset.x_train[i : i + bs] for i in range(0, len(dataset.x_train), bs)
        ]
        for site in sites:
            paf = self.paf_factory()
            if self.config.coefficient_tuning:
                paf = coefficient_tune_site(
                    model, site, paf, calib, seed=self.config.seed
                )
            replace_site(site, paf, scale_mode="dynamic")
        ds_acc = evaluate_accuracy(model, dataset.x_val, dataset.y_val)
        calibrate_static_scales(model, full_calib)
        convert_to_static(model)
        ss_acc = evaluate_accuracy(model, dataset.x_val, dataset.y_val)
        convert_to_dynamic(model)
        return ds_acc, ss_acc
