"""Coefficient Tuning (CT) — Sec. 4.2, Fig. 3.

CT replaces the one-size-fits-all PAF initialisation with a per-site refit
against the *profiled input distribution* of that site:

1. start from the traditional-regression coefficients (the registry PAFs);
2. profile the distribution of inputs arriving at the site (scaled into
   the PAF's [-1, 1] domain, as the scale layer will do at run time);
3. refit the coefficients to minimise the sign-approximation error weighted
   by that distribution;
4. install the tuned coefficients at the site.

Result: a closer-to-optimal initialisation (Eq. 3) and higher accuracy
before any fine-tuning (Fig. 7).
"""

from __future__ import annotations


import numpy as np

from repro.core.surgery import NonPolySite
from repro.nn.module import Module
from repro.nn.tensor import Tensor, no_grad
from repro.paf.fitting import fit_composite, fit_last_component, profile_to_weights
from repro.paf.polynomial import CompositePAF

__all__ = ["capture_site_inputs", "tune_paf_for_site", "coefficient_tune_site"]


class _Capture(Module):
    """Pass-through wrapper recording (a sample of) its inputs."""

    def __init__(self, inner: Module, max_samples: int = 20000, seed: int = 0):
        super().__init__()
        self.inner = inner
        self.samples: list[np.ndarray] = []
        self._max = max_samples
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        flat = x.data.reshape(-1)
        if flat.size > self._max:
            idx = self._rng.choice(flat.size, self._max, replace=False)
            flat = flat[idx]
        self.samples.append(flat.copy())
        return self.inner(x)

    def collected(self) -> np.ndarray:
        return np.concatenate(self.samples) if self.samples else np.array([])


def capture_site_inputs(
    model: Module,
    site: NonPolySite,
    x_batches,
    max_samples: int = 20000,
    seed: int = 0,
) -> np.ndarray:
    """Profiled inputs reaching ``site`` on calibration batches.

    The model runs with its *current* state — previously replaced PAF
    layers stay in place, so later sites see the distribution shift caused
    by earlier replacements (the mechanism behind progressive CT).
    """
    cap = _Capture(site.module, max_samples=max_samples, seed=seed)
    setattr(site.parent, site.attr, cap)
    try:
        was_training = model.training
        model.eval()
        with no_grad():
            for xb in x_batches:
                model(Tensor(np.asarray(xb)))
        model.train(was_training)
    finally:
        setattr(site.parent, site.attr, cap.inner)
    samples = cap.collected()
    if samples.size == 0:
        raise RuntimeError(f"no calibration data reached site {site.name}")
    return samples


def tune_paf_for_site(
    paf: CompositePAF,
    samples: np.ndarray,
    kind: str = "relu",
    grid_size: int = 513,
    full_refit: bool = True,
    uniform_floor: float = 0.1,
) -> CompositePAF:
    """Refit ``paf`` to the profiled distribution of one site.

    ``samples`` are raw (unscaled) site inputs; they are normalised by
    their max-abs — exactly what the scale layer does at run time — and a
    KDE over the normalised values weights the regression.  For ``maxpool``
    sites the PAF input is a *difference* of activations, so the profile is
    built from pairwise differences of the samples.

    ``uniform_floor`` blends a uniform component into the profile weights.
    Without it the regression is free to explode wherever the KDE mass is
    ~zero (typically near |z| = 1, reached only by the single max sample);
    an exploding tuned PAF silently amplifies activations layer over layer
    — invisible under Dynamic Scaling (each batch renormalises) but fatal
    after the Static Scaling conversion.
    """
    samples = np.asarray(samples, dtype=np.float64).ravel()
    if kind == "maxpool":
        # The sign PAF sees a - b for window lanes a, b: profile differences.
        half = samples.size // 2
        samples = samples[:half] - samples[half : 2 * half]
    scale = max(float(np.max(np.abs(samples))), 1e-6)
    z = samples / scale
    # Fit on a slightly extended domain: validation inputs routinely exceed
    # the training max by a few percent under Static Scaling, and a
    # high-degree composite left uncontrolled there explodes.
    grid = np.linspace(-1.1, 1.1, grid_size)
    density = profile_to_weights(z, grid)
    # Eq. 2 of the paper regresses the PAF against the *operator output*
    # R(x), not against sign directly.  For ReLU (and pairwise max) the
    # residual is x * (p(x) - sign(x)) / 2, so minimising the operator
    # error == sign regression weighted by density * x^2.  The x^2 factor
    # correctly zeroes the (unapproximable, harmless) origin and keeps the
    # range edges constrained.
    w = density * grid * grid
    # Relative floor: never let the weight dynamic range exceed ~20x, or
    # the fit is free to explode where the profile happens to be empty.
    w = np.maximum(w, uniform_floor * float(w.max()))
    w = w * (np.abs(grid) > 1e-3)
    total = w.sum()
    if total <= 0:
        return paf.copy()
    w = w / total
    tuned = (
        fit_composite(paf, grid, w, iters=40)
        if full_refit
        else fit_last_component(paf, grid, w)
    )
    # Guardrails: tuning must not blow the composite up beyond what the
    # untuned base already does on (a margin around) the domain, and must
    # keep the correct orientation at +/-1.  Low-degree composites natively
    # grow fast outside |z| = 1, so the bound is relative to the base.
    check = np.linspace(-1.25, 1.25, 501)
    base_max = float(np.max(np.abs(paf(check))))
    if float(np.max(np.abs(tuned(check)))) > max(4.0, 2.0 * base_max):
        return paf.copy()
    if not 0.4 <= float(tuned(np.array([1.0]))[0]) <= 1.6:
        return paf.copy()
    return tuned


def coefficient_tune_site(
    model: Module,
    site: NonPolySite,
    paf: CompositePAF,
    x_batches,
    full_refit: bool = True,
    seed: int = 0,
) -> CompositePAF:
    """Profile ``site`` and return the post-CT PAF for it (Fig. 3 steps 1-3)."""
    samples = capture_site_inputs(model, site, x_batches, seed=seed)
    return tune_paf_for_site(paf, samples, kind=site.kind, full_refit=full_refit)
