"""Trainable PAF layers: the FHE-friendly replacements for ReLU / MaxPool.

Each layer owns *trainable coefficient Parameters* (one vector per composite
component, so CT / AT / the scheduler can fine-tune them per replacement
site) and input-scaling stages implementing the paper's Dynamic Scaling /
Static Scaling:

* **dynamic** (training): each PAF invocation's input batch is normalised
  into [-1, 1] by its max-abs value — value-dependent, so only usable
  during fine-tuning;
* **static** (FHE deployment): scales freeze to the running max observed
  over the training data (Sec. 4.5).

The paper adds "an auxiliary layer before each PAF" — *each PAF call* gets
its own scale.  A PAF max-pool performs ``k*k - 1`` nested sign calls whose
difference magnitudes differ per tournament round (later rounds see values
amplified by earlier approximation overshoot), so the layer keeps one scale
slot per round.

The forward pass is built from autograd primitives, so gradients flow to
both the input and the PAF coefficients for free.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor
from repro.paf.polynomial import CompositePAF, OddPolynomial, Polynomial
from repro.paf.transformer import RangeReducedExp, paf_softmax

__all__ = ["PAFSign", "PAFReLU", "PAFMaxPool2d", "PAFGELU", "PAFSoftmax"]

#: guard against pathological scales when all activations are ~0
_MIN_SCALE = 1e-6


class PAFSign(Module):
    """Composite PAF evaluating ``sign`` with trainable coefficients.

    Holds one coefficient Parameter per component; :meth:`forward` evaluates
    the composition with tensor ops (Horner in ``x^2`` per component).
    """

    def __init__(self, paf: CompositePAF):
        super().__init__()
        self.paf_name = paf.name
        self.reported_degree = paf.reported_degree
        self._component_sizes = [c.num_coeffs for c in paf.components]
        self._component_names = [c.name for c in paf.components]
        for i, comp in enumerate(paf.components):
            setattr(self, f"coeffs{i}", Parameter(np.asarray(comp.coeffs)))

    @property
    def num_components(self) -> int:
        return len(self._component_sizes)

    def component_params(self) -> list:
        return [getattr(self, f"coeffs{i}") for i in range(self.num_components)]

    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:
        y = x
        for param in self.component_params():
            n = param.shape[0]
            y2 = y * y
            acc = param[n - 1]
            for i in range(n - 2, -1, -1):
                acc = acc * y2 + param[i]
            y = acc * y
        return y

    # ------------------------------------------------------------------
    # conversion to/from the plain (numpy) CompositePAF
    # ------------------------------------------------------------------
    def to_composite(self) -> CompositePAF:
        """Snapshot current coefficients as a plain CompositePAF."""
        comps = [
            OddPolynomial(p.data.tolist(), name=nm)
            for p, nm in zip(self.component_params(), self._component_names)
        ]
        return CompositePAF(
            comps, name=self.paf_name, reported_degree=self.reported_degree
        )

    def load_composite(self, paf: CompositePAF) -> None:
        """Overwrite coefficients from a CompositePAF (e.g. post-CT)."""
        if [c.num_coeffs for c in paf.components] != self._component_sizes:
            raise ValueError("component structure mismatch")
        for param, comp in zip(self.component_params(), paf.components):
            param.data = np.asarray(comp.coeffs, dtype=np.float64)

    def __repr__(self) -> str:  # pragma: no cover
        return f"PAFSign({self.paf_name})"


class _ScaledPAFBase(Module):
    """Shared DS/SS scale management for PAF ReLU / MaxPool layers.

    ``num_scales`` slots, one per PAF invocation inside the layer (1 for
    ReLU, ``k*k - 1`` for a k×k max-pool tournament).
    """

    def __init__(
        self, paf: CompositePAF, scale_mode: str = "dynamic", num_scales: int = 1
    ):
        super().__init__()
        if scale_mode not in ("dynamic", "static"):
            raise ValueError(f"scale_mode must be dynamic|static, got {scale_mode!r}")
        self.sign = PAFSign(paf)
        self.scale_mode = scale_mode
        self.calibrating = False  # scale_mode-independent running-max refresh
        self.num_scales = num_scales
        self.register_buffer("running_max", np.full(num_scales, _MIN_SCALE))

    # is_nonpolynomial is intentionally absent: these layers are polynomial.

    def _scale_of(self, values: np.ndarray, slot: int = 0) -> float:
        """Scale for one PAF invocation; updates its running max in training."""
        batch_max = float(np.max(np.abs(values)))
        if self.training or self.calibrating:
            if batch_max > float(self.running_max[slot]):
                self.running_max[slot] = batch_max
        if self.scale_mode == "dynamic":
            return max(batch_max, _MIN_SCALE)
        return max(float(self.running_max[slot]), _MIN_SCALE)

    def reset_scales(self) -> None:
        self.register_buffer("running_max", np.full(self.num_scales, _MIN_SCALE))

    def set_static(self, scale: Optional[float] = None) -> None:
        """Freeze to Static Scaling (FHE-deployable)."""
        if scale is not None:
            self.register_buffer(
                "running_max", np.full(self.num_scales, float(scale))
            )
        self.scale_mode = "static"

    def set_dynamic(self) -> None:
        self.scale_mode = "dynamic"

    @property
    def static_scale(self) -> float:
        """Largest frozen scale across the layer's PAF invocations."""
        return max(float(np.max(self.running_max)), _MIN_SCALE)

    def static_scales(self) -> np.ndarray:
        return np.maximum(self.running_max, _MIN_SCALE).copy()


class PAFReLU(_ScaledPAFBase):
    """PAF replacement of ReLU: ``(x + x * sign(x/s)) / 2``.

    The division by the scale ``s`` feeds the PAF its normalised input; the
    ReLU reconstruction itself uses the raw ``x`` (so no multiply-back by
    ``s`` is needed — under FHE the fold is free either way).
    """

    def __init__(self, paf: CompositePAF, scale_mode: str = "dynamic"):
        super().__init__(paf, scale_mode, num_scales=1)

    def forward(self, x: Tensor) -> Tensor:
        s = self._scale_of(x.data, 0)
        # Inputs beyond the frozen static scale legitimately blow the
        # polynomial up (the failure mode Tab. 3's SS rows document for
        # low-degree PAFs); suppress the numpy warning, keep the values.
        with np.errstate(over="ignore", invalid="ignore"):
            z = x * (1.0 / s)
            sgn = self.sign(z)
            return (x + x * sgn) * 0.5

    def __repr__(self) -> str:  # pragma: no cover
        return f"PAFReLU({self.sign.paf_name}, scale={self.scale_mode})"


class PAFMaxPool2d(_ScaledPAFBase):
    """PAF replacement of MaxPool2d: tournament of pairwise PAF-max.

    ``max(a, b) = ((a+b) + (a-b) * sign((a-b)/s)) / 2`` folded over the
    window lanes.  Each tournament round has its own scale slot: later
    rounds see differences amplified by earlier rounds' approximation
    overshoot, so a shared scale would mis-normalise most rounds (the
    error-accumulation mechanism of Sec. 5.4.3).

    Padding uses zeros (FHE has no -inf); the layer typically follows
    BN/ReLU so zero padding is a floor value, and any residual mismatch is
    part of the approximation error the fine-tuning recovers.
    """

    def __init__(
        self,
        paf: CompositePAF,
        kernel_size: int,
        stride: Optional[int] = None,
        padding: int = 0,
        scale_mode: str = "dynamic",
    ):
        super().__init__(
            paf, scale_mode, num_scales=kernel_size * kernel_size - 1
        )
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size
        self.padding = padding

    def _paf_max(self, a: Tensor, b: Tensor, slot: int) -> Tensor:
        with np.errstate(over="ignore", invalid="ignore"):
            d = a - b
            s = self._scale_of(d.data, slot)
            sgn = self.sign(d * (1.0 / s))
            return ((a + b) + d * sgn) * 0.5

    def forward(self, x: Tensor) -> Tensor:
        if self.padding:
            from repro.nn.functional import pad2d

            x = pad2d(x, self.padding)
        k, st = self.kernel_size, self.stride
        n, c, h, w = x.shape
        oh = (h - k) // st + 1
        ow = (w - k) // st + 1
        acc = None
        slot = 0
        for i in range(k):
            for j in range(k):
                lane = x[:, :, i : i + st * oh : st, j : j + st * ow : st]
                if acc is None:
                    acc = lane
                else:
                    acc = self._paf_max(acc, lane, slot)
                    slot += 1
        return acc

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"PAFMaxPool2d({self.sign.paf_name}, k={self.kernel_size}, "
            f"s={self.stride}, p={self.padding}, scale={self.scale_mode})"
        )


class PAFGELU(Module):
    """Dense-polynomial GELU for FHE deployment (inference only).

    Unlike the sign-composites there is no input-scale stage: the fit's
    ``interval`` was calibrated (with margin) on the profiled pre-GELU
    activations, so the polynomial is evaluated on the raw input — the
    exact arithmetic the encrypted :class:`~repro.fhe.ir.PolyNode` runs.
    """

    def __init__(self, poly: Polynomial):
        super().__init__()
        self.poly = poly

    def forward(self, x: Tensor) -> Tensor:
        return Tensor(self.poly(x.data))

    def __repr__(self) -> str:  # pragma: no cover
        lo, hi = self.poly.interval
        return f"PAFGELU(deg={self.poly.degree}, domain=[{lo:.3g}, {hi:.3g}])"


class PAFSoftmax(Module):
    """Mean-stabilised softmax PAF for FHE deployment (inference only).

    Operator-for-operator the encrypted attention lowering: centre the
    scores by their window mean, exponentiate with the range-reduced
    ``exp`` fit, normalise by the affine-seeded Newton reciprocal of the
    exp sum.
    """

    def __init__(
        self,
        exp: RangeReducedExp,
        recip_init: tuple,
        recip_iters: int = 2,
        axis: int = -1,
    ):
        super().__init__()
        self.exp = exp
        self.recip_init = (float(recip_init[0]), float(recip_init[1]))
        self.recip_iters = recip_iters
        self.axis = axis

    def forward(self, x: Tensor) -> Tensor:
        return Tensor(
            paf_softmax(
                x.data, self.exp, self.recip_init, self.recip_iters, self.axis
            )
        )

    def __repr__(self) -> str:  # pragma: no cover
        lo, hi = self.exp.interval
        return (
            f"PAFSoftmax(exp deg={self.exp.poly.degree}"
            f"^2^{self.exp.squarings}, scores=[{lo:.3g}, {hi:.3g}], "
            f"newton={self.recip_iters})"
        )
