"""SMART-PAF configuration (Tab. 5 hyperparameters + scheduler budgets).

The paper's Tab. 5:

================================  =================
Replaced layer                    ReLU & MaxPooling
Optimizer                         Adam
learning rate for PAF             1e-4
learning rate for other layers    1e-5
Weight decay for PAF              0.01
Weight decay for other layers     0.1
BatchNorm Tracking                False
Dropout                           False (scheduler enables on overfitting)
================================  =================

and Sec. 5.1: E = 20 epochs per training group.  Tests and quick benches
shrink the budgets via the ``quick`` constructor; the values themselves are
the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["SmartPAFConfig"]


@dataclass(frozen=True)
class SmartPAFConfig:
    """All knobs of the SMART-PAF pipeline."""

    # --- Tab. 5 training hyperparameters -----------------------------
    optimizer: str = "adam"
    lr_paf: float = 1e-4
    lr_other: float = 1e-5
    weight_decay_paf: float = 0.01
    weight_decay_other: float = 0.1
    batchnorm_tracking: bool = False
    dropout_initial: bool = False

    # --- scheduler budgets (Sec. 5.1 / Fig. 6) -----------------------
    epochs_per_group: int = 20          # E
    max_groups_per_step: int = 6        # safety cap on the Fig. 6 loop
    overfit_margin: float = 0.10        # "train acc > val acc + 10%"
    dropout_p: float = 0.1              # applied when overfitting detected
    use_swa: bool = True
    batch_size: int = 64

    # --- technique toggles (the Tab. 3 ablation axes) -----------------
    coefficient_tuning: bool = True
    progressive: bool = True            # PA; False = direct replacement
    alternate_training: bool = True     # AT
    #: which parameters the first training group targets: "paf" (Fig. 6's
    #: "tunes PAF[i] coefficients") or "other" (the prior-work baseline of
    #: Sec. 5.3, which trains everything except the PAFs).
    initial_target: str = "paf"
    # Dynamic scaling is always used in fine-tuning (Sec. 4.6); Static
    # Scaling conversion happens at deployment via the pipeline.

    seed: int = 0

    @staticmethod
    def paper() -> "SmartPAFConfig":
        """The exact paper configuration."""
        return SmartPAFConfig()

    @staticmethod
    def quick(
        epochs_per_group: int = 2,
        max_groups_per_step: int = 2,
        batch_size: int = 64,
        seed: int = 0,
        **overrides,
    ) -> "SmartPAFConfig":
        """Reduced budgets for tests and fast benchmark runs."""
        return SmartPAFConfig(
            epochs_per_group=epochs_per_group,
            max_groups_per_step=max_groups_per_step,
            batch_size=batch_size,
            seed=seed,
            **overrides,
        )

    def with_techniques(
        self,
        ct: bool | None = None,
        pa: bool | None = None,
        at: bool | None = None,
    ) -> "SmartPAFConfig":
        """Derive an ablation variant (Tab. 3 rows)."""
        kwargs = {}
        if ct is not None:
            kwargs["coefficient_tuning"] = ct
        if pa is not None:
            kwargs["progressive"] = pa
        if at is not None:
            kwargs["alternate_training"] = at
        return replace(self, **kwargs)

    def label(self) -> str:
        """Row label in the Tab. 3 style, e.g. ``baseline + CT + PA + DS``."""
        parts = ["baseline"]
        if self.coefficient_tuning:
            parts.append("CT")
        if self.progressive:
            parts.append("PA")
        if self.alternate_training:
            parts.append("AT")
        parts.append("DS")
        return " + ".join(parts)
