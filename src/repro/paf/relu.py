"""Construct ReLU and Max from a sign-approximating PAF.

Following the paper (Sec. 2.2), given ``s(x) ≈ sign(x)``:

    ReLU(x) ≈ (x + s(x) * x) / 2
    max(x, y) ≈ ((x + y) + (x - y) * s(x - y)) / 2

MaxPooling over a k×k window is a tournament of pairwise ``max`` calls; the
nesting is why MaxPooling is more sensitive to approximation error than ReLU
(Sec. 5.4.3).
"""

from __future__ import annotations

import numpy as np

from repro.paf.polynomial import CompositePAF

__all__ = [
    "paf_relu",
    "paf_max",
    "paf_maxpool2d",
    "relu_mult_depth",
    "maxpool_mult_depth",
]


def paf_relu(x, paf: CompositePAF, scale: float = 1.0):
    """Approximate ``ReLU(x)`` using ``paf ≈ sign``.

    ``scale`` implements Static Scaling: inputs are scaled into the PAF's
    accurate range by ``x/scale`` and the result is scaled back, using
    ``ReLU(x) = scale * ReLU(x / scale)``.
    """
    x = np.asarray(x, dtype=np.float64)
    z = x / scale
    return scale * 0.5 * (z + paf(z) * z)


def paf_max(x, y, paf: CompositePAF, scale: float = 1.0):
    """Approximate elementwise ``max(x, y)`` using ``paf ≈ sign``."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    s = (x + y) / scale
    d = (x - y) / scale
    return scale * 0.5 * (s + d * paf(d))


def paf_maxpool2d(
    x: np.ndarray,
    paf: CompositePAF,
    kernel: int = 2,
    stride: int | None = None,
    scale: float = 1.0,
) -> np.ndarray:
    """Approximate 2D max pooling via a tournament of pairwise PAF-max.

    Parameters
    ----------
    x:
        ``(N, C, H, W)`` input.
    kernel, stride:
        Pooling window and stride (stride defaults to ``kernel``).

    The window elements are reduced with a left fold of :func:`paf_max`,
    matching the "single sliding window requires nested PAF calls" behaviour
    the paper identifies as the error-accumulation mechanism (Sec. 5.4.3).
    """
    stride = stride or kernel
    n, c, h, w = x.shape
    oh = (h - kernel) // stride + 1
    ow = (w - kernel) // stride + 1
    # Gather the window lanes: (k*k, N, C, OH, OW), vectorised.
    lanes = np.empty((kernel * kernel, n, c, oh, ow), dtype=np.float64)
    for i in range(kernel):
        for j in range(kernel):
            lanes[i * kernel + j] = x[
                :, :, i : i + stride * oh : stride, j : j + stride * ow : stride
            ]
    acc = lanes[0]
    for lane in lanes[1:]:
        acc = paf_max(acc, lane, paf, scale=scale)
    return acc


def relu_mult_depth(paf: CompositePAF) -> int:
    """Depth of the PAF-ReLU: sign depth + 1 for the ``x * s(x)`` product.

    The ``/2`` (and any static scale) folds into that final product's
    plaintext constant, so it costs no extra level.
    """
    return paf.mult_depth + 1


def maxpool_mult_depth(paf: CompositePAF, kernel: int = 2) -> int:
    """Depth of a k×k PAF max-pool tournament (left-fold reduction).

    Each pairwise max costs ``depth(sign) + 1`` and the fold is sequential,
    so ``(k*k - 1)`` rounds accumulate.
    """
    rounds = kernel * kernel - 1
    return rounds * (paf.mult_depth + 1)
