"""Distribution-weighted refitting of PAF coefficients (Coefficient Tuning).

This is the regression backend of the paper's Coefficient Tuning (Sec. 4.2):
given the *profiled input distribution* of a particular non-polynomial layer,
refit the PAF so its approximation error is minimised where the data actually
lives, instead of uniformly over a huge range.

Two fitting modes:

* :func:`fit_last_component` — the cheap mode used inside CT: only the
  outermost component's coefficients are refit (linear least squares, since
  the inner components are fixed maps).
* :func:`fit_composite` — Gauss-Newton over *all* component coefficients;
  used when CT needs more recovery (and by tests to verify the optimum).

Both minimise the weighted loss ``sum_i w_i (paf(x_i) - sign(x_i))^2`` with
weights from the profiled histogram.
"""

from __future__ import annotations

import numpy as np

from repro.paf.polynomial import CompositePAF

__all__ = [
    "profile_to_weights",
    "fit_last_component",
    "fit_composite",
    "weighted_sign_mse",
]


def profile_to_weights(
    samples: np.ndarray,
    grid: np.ndarray,
    *,
    bandwidth: float | None = None,
) -> np.ndarray:
    """Estimate distribution weights on ``grid`` from profiled ``samples``.

    A simple Gaussian kernel density estimate, normalised to sum to 1.
    Used to turn a layer's profiled activations into regression weights.
    """
    samples = np.asarray(samples, dtype=np.float64).ravel()
    if samples.size == 0:
        raise ValueError("cannot profile an empty sample set")
    std = float(np.std(samples))
    if bandwidth is None:
        # Silverman's rule of thumb; floor for near-constant samples.
        bandwidth = max(1.06 * std * samples.size ** (-1 / 5), 1e-3)
    # Histogram first so the KDE cost is O(bins * grid) not O(n * grid).
    lo = min(float(grid[0]), float(samples.min()))
    hi = max(float(grid[-1]), float(samples.max()))
    hist, edges = np.histogram(samples, bins=256, range=(lo, hi))
    centers = 0.5 * (edges[:-1] + edges[1:])
    diff = (grid[:, None] - centers[None, :]) / bandwidth
    density = (np.exp(-0.5 * diff**2) * hist[None, :]).sum(axis=1)
    total = density.sum()
    if total <= 0:
        density = np.ones_like(grid)
        total = density.sum()
    return density / total


def weighted_sign_mse(
    paf: CompositePAF, x: np.ndarray, w: np.ndarray | None = None
) -> float:
    """Weighted MSE of ``paf`` against ``sign`` on points ``x``."""
    x = np.asarray(x, dtype=np.float64)
    target = np.sign(x)
    err = paf(x) - target
    if w is None:
        return float(np.mean(err**2))
    w = np.asarray(w, dtype=np.float64)
    return float(np.sum(w * err**2) / np.sum(w))


def fit_last_component(
    paf: CompositePAF,
    x: np.ndarray,
    w: np.ndarray | None = None,
    *,
    ridge: float = 1e-9,
) -> CompositePAF:
    """Refit only the outermost component by weighted linear least squares.

    With the inner components frozen, ``paf(x) = p_k(y)`` where
    ``y = inner(x)`` is a fixed feature map, so the outer coefficients solve
    a weighted linear system against the ``sign(x)`` target.
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    y = x
    for comp in paf.components[:-1]:
        y = comp(y)
    outer = paf.components[-1]
    powers = 2 * np.arange(outer.num_coeffs) + 1
    design = y[:, None] ** powers[None, :]
    target = np.sign(x)
    if w is not None:
        sw = np.sqrt(np.asarray(w, dtype=np.float64).ravel())
        design = design * sw[:, None]
        target = target * sw
    gram = design.T @ design + ridge * np.eye(design.shape[1])
    coeffs = np.linalg.solve(gram, design.T @ target)
    new_outer = outer.with_coeffs(coeffs)
    return CompositePAF(
        list(paf.components[:-1]) + [new_outer],
        name=paf.name,
        reported_degree=paf.reported_degree,
    )


def fit_composite(
    paf: CompositePAF,
    x: np.ndarray,
    w: np.ndarray | None = None,
    *,
    iters: int = 50,
    damping: float = 1e-6,
) -> CompositePAF:
    """Gauss-Newton refit of all component coefficients.

    The Jacobian of ``paf(x)`` w.r.t. the coefficient ``c`` of component
    ``m`` at power ``k`` is ``(prod of outer derivatives) * y_m^k`` where
    ``y_m`` is the value entering component ``m`` — computed exactly via the
    chain rule over the stored intermediate values.
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    target = np.sign(x)
    if w is None:
        w = np.ones_like(x)
    w = np.asarray(w, dtype=np.float64).ravel()
    sw = np.sqrt(w / w.sum())

    current = paf.copy()
    best = current
    best_loss = weighted_sign_mse(current, x, w)
    lm = damping  # Levenberg-Marquardt damping, adapted per iteration
    for _ in range(iters):
        values = current.intermediate_values(x)  # len = comps + 1
        # Downstream derivative products: d paf / d (input of comp m).
        n_comp = len(current.components)
        down = [None] * (n_comp + 1)
        down[n_comp] = np.ones_like(x)
        for m in range(n_comp - 1, -1, -1):
            down[m] = down[m + 1] * current.components[m].derivative(values[m])
        cols = []
        for m, comp in enumerate(current.components):
            y = values[m]
            powers = 2 * np.arange(comp.num_coeffs) + 1
            # d paf / d c_{m,k} = down[m+1] * y^k
            cols.append(down[m + 1][:, None] * y[:, None] ** powers[None, :])
        jac = np.hstack(cols) * sw[:, None]
        resid = (current(x) - target) * sw
        gtg = jac.T @ jac
        grad = jac.T @ resid
        improved = False
        # LM trust-region loop: grow damping until a step improves the loss.
        for _trial in range(12):
            try:
                step = np.linalg.solve(
                    gtg + lm * np.diag(np.maximum(np.diag(gtg), 1e-12)),
                    grad,
                )
            except np.linalg.LinAlgError:
                lm *= 10.0
                continue
            candidate = current.with_flat_coeffs(current.flat_coeffs() - step)
            loss = weighted_sign_mse(candidate, x, w)
            if np.isfinite(loss) and loss < best_loss:
                best, best_loss = candidate, loss
                current = candidate
                lm = max(lm / 3.0, 1e-12)
                improved = True
                break
            lm *= 10.0
        if not improved:
            break
    return best
