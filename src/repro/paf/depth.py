"""Multiplication-depth analysis (paper Appendix C, Tab. 8 / Fig. 10).

CKKS is leveled: every ciphertext-ciphertext or ciphertext-plaintext
multiplication followed by a rescale consumes one level.  The depth of a
degree-``n`` polynomial under exponentiation-by-squaring is
``ceil(log2(n+1))``; a composite's depth is the sum over components.

:func:`depth_schedule` reproduces Tab. 8's walkthrough: the level at which
every intermediate value of an odd polynomial evaluation becomes available,
using the leaf-folded power-ladder strategy that is also
``repro.ckks.poly_eval``'s reference path (so the symbolic schedule and
the measured level consumption agree — asserted in tests).  The default
Paterson–Stockmeyer path consumes the *same* total per component
(``docs/paf-evaluation.md``), so the composite schedule holds for both.

>>> from repro.paf.bases import f_poly
>>> max(step.depth for step in depth_schedule(f_poly(2)))   # degree 5
3
>>> from repro.paf.composite import get_paf
>>> max(step.depth for step in composite_depth_schedule(get_paf("f1g2")))
5
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.paf.polynomial import CompositePAF, OddPolynomial

__all__ = [
    "DepthStep",
    "depth_schedule",
    "composite_depth_schedule",
    "paf_depth_table",
]


@dataclass(frozen=True)
class DepthStep:
    """One intermediate value of a polynomial evaluation and its depth."""

    expr: str
    depth: int


def depth_schedule(poly: OddPolynomial, var: str = "x") -> list:
    """Symbolic schedule of intermediate values for one odd component.

    Strategy (matches ``repro.ckks.poly_eval.eval_odd_poly``):

    * binary power ladder ``x^2, x^4, x^8, ...`` by repeated squaring —
      ``x^(2^i)`` available at depth ``i``;
    * each term ``c_k x^k`` (k odd) starts from the plaintext product
      ``c_k * x`` at depth 1 and multiplies in the ladder powers of the
      binary expansion of ``k - 1``, smallest first; the term lands at depth
      ``ceil(log2(k+1))``;
    * the constant (e.g. the 1/2 of the ReLU reconstruction or a static
      scale) folds into ``c_k`` for free.
    """
    steps: list[DepthStep] = []
    degree = poly.degree
    # Power ladder: rungs up to the largest power of two <= degree - 1
    # (the highest ladder factor any term c_k x^k with k <= degree needs) —
    # identical to the runtime ladder in ``repro.ckks.poly_eval``.
    i = 1
    while degree > 1 and 2**i <= degree - 1:
        steps.append(DepthStep(expr=f"{var}^{2 ** i}", depth=i))
        i += 1
    # Terms.  Each term c_k x^k is a product of the leaf (c_k * x) at depth 1
    # and the ladder powers x^(2^i) for the set bits of k-1 (x^(2^i) is
    # available at depth i).  Combining always the two *shallowest* operands
    # (a balanced merge) lands the term at exactly ceil(log2(k+1)) — the
    # plain left-fold over the ladder is NOT depth-optimal (e.g. k=11).
    for idx, c in enumerate(poly.coeffs):
        k = 2 * idx + 1
        if k == 1:
            steps.append(DepthStep(expr=f"c{k}*{var}", depth=1))
            continue
        operands = [(1, f"c{k}*{var}")]
        rem, i = k - 1, 0
        while rem:
            if rem & 1:
                operands.append((i, f"{var}^{2 ** i}"))
            rem >>= 1
            i += 1
        operands.sort()
        while len(operands) > 1:
            (d1, e1), (d2, e2) = operands[0], operands[1]
            merged = (max(d1, d2) + 1, f"({e1})*({e2})")
            operands = sorted(operands[2:] + [merged])
        steps.append(DepthStep(expr=f"c{k}*{var}^{k}", depth=operands[0][0]))
    steps.append(
        DepthStep(expr=f"{poly.name or 'p'}({var})", depth=poly.mult_depth)
    )
    return steps


def composite_depth_schedule(paf: CompositePAF) -> list:
    """Depth schedule across a whole composite (Tab. 8 for ``f1 ∘ g2``)."""
    steps: list[DepthStep] = []
    base = 0
    var = "x"
    for comp in paf.components:
        for s in depth_schedule(comp, var=var):
            steps.append(DepthStep(expr=s.expr, depth=s.depth + base))
        base += comp.mult_depth
        var = "y" if var == "x" else chr(ord(var) + 1)
    return steps


@dataclass(frozen=True)
class PAFDepthRow:
    """One row of the Tab. 2 reproduction."""

    name: str
    reported_degree: int
    degree_sum: int
    mult_depth: int
    num_components: int


def paf_depth_table(pafs) -> list:
    """Tab. 2: form / degree / multiplication depth for each PAF.

    >>> from repro.paf.composite import get_paf
    >>> row = paf_depth_table([get_paf("f2g3")])[0]
    >>> (row.name, row.reported_degree, row.mult_depth)
    ('f2 o g3', 12, 6)
    """
    rows = []
    for paf in pafs:
        rows.append(
            PAFDepthRow(
                name=paf.name,
                reported_degree=paf.reported_degree,
                degree_sum=paf.degree_sum,
                mult_depth=paf.mult_depth,
                num_components=paf.num_components,
            )
        )
    return rows
