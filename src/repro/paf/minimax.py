"""Minimax approximation of ``sign(x)`` by odd polynomials (Remez exchange).

Lee et al. 2021 build their sign PAFs as *composite minimax* polynomials:
each component is the minimax odd polynomial mapping the current value range
``[tau, 1]`` (by odd symmetry also ``[-1, -tau]``) as close to ``+1`` as
possible; chaining components shrinks the residual error geometrically until
``|p(x) - sign(x)| <= 2^-alpha`` for all ``|x| in [tau, 1]``.

This module implements:

* :func:`remez_odd_sign` — the Remez exchange algorithm specialised to odd
  polynomials approximating the constant 1 on an interval ``[a, b]`` (which
  by oddness is the minimax sign approximation on ``±[a, b]``);
* :func:`minimax_composite` — greedy composite construction for a target
  precision ``alpha`` with prescribed component degrees;
* :func:`minimax_alpha10_deg27` — the depth-10, max-degree-27 baseline used
  by the paper as "α = 10" (Tab. 2, first column).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.paf.polynomial import CompositePAF, OddPolynomial

__all__ = [
    "RemezResult",
    "remez_odd_sign",
    "minimax_composite",
    "minimax_alpha10_deg27",
]


@dataclass(frozen=True)
class RemezResult:
    """Result of a Remez exchange run."""

    poly: OddPolynomial
    error: float          # final equioscillation error (sup-norm on [a, b])
    iterations: int
    converged: bool


def _error_on_grid(coeffs: np.ndarray, grid: np.ndarray) -> np.ndarray:
    """p(grid) - 1 for odd polynomial with odd-power coeffs ``coeffs``."""
    acc = np.full_like(grid, coeffs[-1])
    g2 = grid * grid
    for c in coeffs[-2::-1]:
        acc = acc * g2 + c
    return acc * grid - 1.0


def remez_odd_sign(
    degree: int,
    a: float,
    b: float = 1.0,
    *,
    grid_size: int = 4001,
    max_iter: int = 60,
    tol: float = 1e-12,
) -> RemezResult:
    """Minimax odd polynomial of ``sign`` on ``[-b,-a] ∪ [a,b]``.

    Equivalently (by odd symmetry): the odd polynomial of degree ``degree``
    minimising ``max_{x in [a,b]} |p(x) - 1|``.

    Parameters
    ----------
    degree:
        Odd degree of the approximant; ``k = (degree+1)//2`` free
        coefficients.
    a, b:
        Approximation interval ``0 < a < b``.
    grid_size:
        Size of the dense grid used to locate error extrema.
    """
    if degree % 2 == 0 or degree < 1:
        raise ValueError(f"degree must be a positive odd integer, got {degree}")
    if not 0 < a < b:
        raise ValueError(f"need 0 < a < b, got a={a}, b={b}")

    k = (degree + 1) // 2          # number of free coefficients
    # Chebyshev-like initial reference of k+1 points in [a, b].
    j = np.arange(k + 1)
    ref = 0.5 * (a + b) + 0.5 * (b - a) * np.cos(np.pi * j / k)[::-1]
    grid = np.linspace(a, b, grid_size)

    powers = 2 * np.arange(k) + 1  # 1, 3, 5, ...
    coeffs = np.zeros(k)
    h = np.inf
    converged = False
    for it in range(1, max_iter + 1):
        # Solve the linear equioscillation system:
        #   sum_i c_i x_j^{2i+1} - (-1)^j h = 1     for each reference x_j
        v = ref[:, None] ** powers[None, :]
        signs = ((-1.0) ** np.arange(k + 1))[:, None]
        system = np.hstack([v, -signs])
        sol = np.linalg.solve(system, np.ones(k + 1))
        coeffs, h = sol[:k], sol[k]

        # Locate extrema of the error on the dense grid.
        err = _error_on_grid(coeffs, grid)
        # Candidate extrema: sign changes of the discrete derivative + ends.
        de = np.diff(err)
        idx = np.where(np.sign(de[:-1]) != np.sign(de[1:]))[0] + 1
        candidates = np.unique(np.concatenate([[0], idx, [grid_size - 1]]))
        # Keep the k+1 alternating extrema with the largest |error|.
        cand_err = err[candidates]
        # Group consecutive candidates with the same error sign, keep max |e|.
        sel: list[int] = []
        cur_sign = 0.0
        for ci, ei in zip(candidates, cand_err):
            s = np.sign(ei)
            if s == 0:
                continue
            if s == cur_sign and sel:
                if abs(ei) > abs(err[sel[-1]]):
                    sel[-1] = ci
            else:
                sel.append(ci)
                cur_sign = s
        if len(sel) < k + 1:
            # Degenerate exchange (should not happen for sane inputs);
            # return current best.
            break
        # Keep the k+1 consecutive extrema with the largest min |error|.
        sel_arr = np.array(sel)
        if len(sel_arr) > k + 1:
            best_win, best_score = 0, -np.inf
            for start in range(len(sel_arr) - k):
                window = sel_arr[start : start + k + 1]
                score = np.min(np.abs(err[window]))
                if score > best_score:
                    best_win, best_score = start, score
            sel_arr = sel_arr[best_win : best_win + k + 1]
        new_ref = grid[sel_arr]

        new_h = float(np.max(np.abs(err[sel_arr])))
        if abs(new_h - abs(h)) <= tol * max(1.0, new_h):
            ref = new_ref
            converged = True
            h = new_h
            break
        ref = new_ref
        h = new_h

    final_err = float(np.max(np.abs(_error_on_grid(coeffs, grid))))
    return RemezResult(
        poly=OddPolynomial(coeffs, name=f"mm{degree}"),
        error=final_err,
        iterations=it,
        converged=converged,
    )


def minimax_composite(
    degrees,
    tau: float = 0.01,
    *,
    name: str = "",
    reported_degree: int | None = None,
) -> CompositePAF:
    """Composite minimax sign approximation with prescribed component degrees.

    Component ``i`` is the minimax odd polynomial on the current range
    ``[lo, hi]`` of positive values; after applying it, the range contracts
    to ``[1 - e, 1 + e]`` where ``e`` is its minimax error.  Chaining
    components drives the final error toward 0 (Lee et al. 2021's
    construction).

    Parameters
    ----------
    degrees:
        Component degrees, innermost first (e.g. ``(3, 7, 27)``).
    tau:
        Smallest positive input magnitude the composite must classify;
        the first component approximates on ``[tau, 1]``.
    """
    lo, hi = float(tau), 1.0
    comps = []
    for d in degrees:
        res = remez_odd_sign(d, lo, hi)
        comps.append(res.poly)
        lo, hi = 1.0 - res.error, 1.0 + res.error
    return CompositePAF(
        comps,
        name=name or "minimax-" + "x".join(str(d) for d in degrees),
        reported_degree=reported_degree,
    )


def composite_precision(paf: CompositePAF, tau: float = 0.01, n: int = 20001) -> float:
    """Measured precision ``alpha`` with ``|p(x)-sign(x)| <= 2^-alpha``
    on ``[tau, 1]`` (and by oddness on ``[-1, -tau]``)."""
    x = np.linspace(tau, 1.0, n)
    err = float(np.max(np.abs(paf(x) - 1.0)))
    if err <= 0:
        return np.inf
    return float(-np.log2(err))


_ALPHA10_CACHE: dict = {}


def minimax_alpha10_deg27(tau: float = 1.0 / 64.0) -> CompositePAF:
    """The 27-degree, depth-10 minimax baseline the paper calls "α = 10".

    Lee et al.'s exact α=10 coefficients are not published in the paper, so
    we regenerate an equivalent composite with our Remez: component degrees
    ``(3, 7, 27)`` give multiplication depth ``2 + 3 + 5 = 10`` and max
    component degree 27, matching Tab. 2's (degree 27, depth 10) row.  With
    the default ``tau = 1/64`` (Lee et al. scale network inputs by a fixed
    margin so only ``|x| >= tau`` matters) the measured precision is
    ``alpha ≈ 10.6 >= 10`` — verified in tests.
    """
    key = float(tau)
    if key not in _ALPHA10_CACHE:
        _ALPHA10_CACHE[key] = minimax_composite(
            (3, 7, 27), tau=tau, name="alpha=10", reported_degree=27
        )
    return _ALPHA10_CACHE[key].copy()
