"""AESPA-style quadratic ReLU approximation (related-work baseline, §7).

AESPA (Park et al. 2022) replaces ReLU with a *single quadratic*
``a + b·x + c·x²`` instead of a sign-composite.  The paper argues this
approach's accuracy on small datasets does not transfer to complex ones
and that it offers no MaxPooling story (§7); this module provides the
baseline so those comparisons are runnable here.

The quadratic is fit by least squares against ReLU under a chosen input
density (standard normal by default — the Hermite-expansion view AESPA
takes).  For N(0,1) the closed form is::

    relu(x) ≈ 1/sqrt(2π) + x/2 + (1/(2·sqrt(2π)))·(x² - 1)

A quadratic is *not* odd, so it cannot be expressed as a sign composite;
it gets its own small layer type mirroring :class:`repro.core.PAFReLU`.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor

__all__ = ["hermite_quadratic_coeffs", "quadratic_relu", "QuadraticReLU"]


def hermite_quadratic_coeffs() -> tuple:
    """(a, b, c) minimising E[(a + bx + cx² - relu(x))²] under N(0,1).

    Closed form from the Hermite expansion of ReLU: coefficients of
    H0, H1, H2 are 1/sqrt(2π), 1/2, 1/(2·sqrt(2π))."""
    h0 = 1.0 / np.sqrt(2 * np.pi)
    h1 = 0.5
    h2 = 1.0 / (2 * np.sqrt(2 * np.pi))
    # a + b x + c x^2 with H2(x) = x^2 - 1
    return (h0 - h2, h1, h2)


def quadratic_relu(x, coeffs: tuple | None = None):
    """Evaluate the quadratic ReLU approximation on an ndarray."""
    a, b, c = coeffs or hermite_quadratic_coeffs()
    x = np.asarray(x, dtype=np.float64)
    return a + b * x + c * x * x


class QuadraticReLU(Module):
    """Trainable quadratic ReLU layer (the AESPA baseline).

    Multiplication depth 1 (a single squaring) — the cheapest possible
    replacement, at the cost of unbounded error away from the fitted
    input density.  No scale layer: AESPA relies on the normalisation of
    preceding BN layers, which is exactly the fragility §7 points at.
    """

    def __init__(self, coeffs: tuple | None = None):
        super().__init__()
        a, b, c = coeffs or hermite_quadratic_coeffs()
        self.coeffs = Parameter(np.array([a, b, c]))

    #: depth of a single squaring + affine
    mult_depth = 1

    def forward(self, x: Tensor) -> Tensor:
        a = self.coeffs[0]
        b = self.coeffs[1]
        c = self.coeffs[2]
        return a + b * x + c * (x * x)
