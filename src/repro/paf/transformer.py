"""Dense-polynomial PAFs for transformer blocks: exp/softmax, GELU, rsqrt.

The sign-composite machinery approximates piecewise-linear operators
(ReLU, max); a transformer block needs a second tier of *dense*
polynomial approximations:

* :func:`exp_paf` — a large-interval exponential via Chiang-style range
  reduction: fit a low-degree polynomial ``p(z) ~ exp(z)`` on the
  *shrunk* interval ``[lo / 2^k, hi / 2^k]``, fold the ``1 / 2^k`` input
  scaling into the coefficients (no ciphertext level spent), then square
  the result ``k`` times — ``p(x / 2^k)^(2^k) ~ exp(x)`` over the full
  interval at depth ``deg_depth + k`` instead of the much higher degree
  a direct fit would need.
* :func:`gelu_paf` — a dense fit of the tanh-form GELU used by
  ``repro.nn.functional.gelu``.
* :func:`rsqrt_paf` — a dense fit of ``1 / sqrt(v)`` on a positive
  variance interval, the LayerNorm normaliser.
* :func:`paf_softmax` / :func:`paf_layer_norm` — numpy mirrors of the
  encrypted lowering (mean-stabilised softmax with an affine-seeded
  Newton reciprocal), used both as the *reference model* the encrypted
  transformer is compared against and for calibrating intervals.

All fits are weighted least squares on Chebyshev nodes of the declared
interval; every returned :class:`~repro.paf.polynomial.Polynomial`
carries that interval so :func:`repro.fhe.ir.propagate_intervals` can
check the domain contract at compile time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.paf.polynomial import Polynomial

__all__ = [
    "fit_polynomial",
    "RangeReducedExp",
    "exp_paf",
    "gelu_reference",
    "gelu_paf",
    "rsqrt_paf",
    "affine_recip_init",
    "newton_recip",
    "paf_softmax",
    "paf_layer_norm",
]


def fit_polynomial(
    fn,
    degree: int,
    interval: tuple,
    *,
    name: str = "",
    points: int = 512,
    ridge: float = 1e-12,
) -> Polynomial:
    """Least-squares fit of ``fn`` by a degree-``degree`` polynomial.

    Sampling on Chebyshev nodes of ``interval`` keeps the error from
    piling up at the endpoints the way equispaced least squares does;
    the Vandermonde system is solved in a normalised variable
    ``t in [-1, 1]`` for conditioning and mapped back to raw ``x``
    coefficients afterwards.
    """
    lo, hi = float(interval[0]), float(interval[1])
    if not lo < hi:
        raise ValueError(f"interval must satisfy lo < hi, got ({lo}, {hi})")
    if degree < 1:
        raise ValueError(f"degree must be >= 1, got {degree}")
    k = np.arange(points, dtype=np.float64)
    t = np.cos(np.pi * (2 * k + 1) / (2 * points))  # Chebyshev nodes in (-1, 1)
    x = 0.5 * (hi - lo) * t + 0.5 * (hi + lo)
    y = np.asarray(fn(x), dtype=np.float64)
    design = t[:, None] ** np.arange(degree + 1)[None, :]
    gram = design.T @ design + ridge * np.eye(degree + 1)
    c_t = np.linalg.solve(gram, design.T @ y)
    # map p(t) with t = (x - mid) / half back to coefficients in x
    mid, half = 0.5 * (hi + lo), 0.5 * (hi - lo)
    c_x = np.zeros(degree + 1)
    basis = np.array([1.0])  # coefficients of ((x - mid) / half)^j in x
    for j, cj in enumerate(c_t):
        c_x[: j + 1] += cj * basis
        if j < degree:
            basis = (np.convolve(basis, [-mid, 1.0]) / half)
    if c_x[-1] == 0.0:  # pragma: no cover - degenerate fit target
        c_x[-1] = np.finfo(np.float64).tiny
    return Polynomial(c_x, interval=(lo, hi), name=name)


# ----------------------------------------------------------------------
# exp with Chiang-style range reduction
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RangeReducedExp:
    """``exp(x) ~ poly(x)^(2^squarings)`` over ``poly.interval``.

    ``poly`` already folds the ``x / 2^squarings`` input shrink into its
    coefficients, so evaluating it costs no extra ciphertext level; the
    ``squarings`` repeated squarings stretch the shrunk-domain fit back
    over the full interval.
    """

    poly: Polynomial
    squarings: int

    @property
    def interval(self) -> tuple:
        return self.poly.interval

    @property
    def mult_depth(self) -> int:
        return self.poly.mult_depth + self.squarings

    def __call__(self, x):
        return self.poly(np.asarray(x, dtype=np.float64)) ** (2**self.squarings)


def exp_paf(
    interval: tuple = (-4.0, 2.0), degree: int = 3, squarings: int = 2
) -> RangeReducedExp:
    """Large-interval ``exp`` PAF via range reduction.

    Fits ``p(z) ~ exp(z)`` on the shrunk ``interval / 2^squarings``
    (where a degree-3 polynomial is already accurate), then folds the
    shrink into the coefficients.  The *relative* error of the fit is
    amplified by a factor ``2^squarings`` by the squaring chain, which
    is exactly why shrinking first wins: the shrunk fit's relative
    error falls much faster than the amplification grows.
    """
    if squarings < 0:
        raise ValueError(f"squarings must be >= 0, got {squarings}")
    lo, hi = float(interval[0]), float(interval[1])
    r = float(2**squarings)
    shrunk = fit_polynomial(
        np.exp, degree, (lo / r, hi / r), name="exp-core"
    )
    folded = shrunk.scaled_input(r)
    folded = Polynomial(folded.coeffs, interval=(lo, hi), name="exp")
    return RangeReducedExp(folded, squarings)


# ----------------------------------------------------------------------
# GELU
# ----------------------------------------------------------------------
_GELU_C = 0.044715
_GELU_S = float(np.sqrt(2.0 / np.pi))


def gelu_reference(x):
    """The tanh-form GELU (Hendrycks-Gimpel) the dense fit targets.

    This is the exact formula of ``repro.nn.functional.gelu`` — the PAF
    and the plaintext model approximate the *same* function, so the
    encrypted/plaintext differential is purely arithmetic noise.
    """
    x = np.asarray(x, dtype=np.float64)
    return 0.5 * x * (1.0 + np.tanh(_GELU_S * (x + _GELU_C * x**3)))


def gelu_paf(interval: tuple = (-4.0, 4.0), degree: int = 8) -> Polynomial:
    """Dense polynomial GELU over ``interval`` (default degree 8)."""
    return fit_polynomial(gelu_reference, degree, interval, name="gelu")


# ----------------------------------------------------------------------
# rsqrt (LayerNorm normaliser)
# ----------------------------------------------------------------------
def rsqrt_paf(interval: tuple = (0.25, 4.0), degree: int = 6) -> Polynomial:
    """Dense polynomial ``1 / sqrt(v)`` over a positive interval."""
    lo = float(interval[0])
    if lo <= 0.0:
        raise ValueError(f"rsqrt needs a positive interval, got lo={lo}")
    return fit_polynomial(
        lambda v: 1.0 / np.sqrt(v), degree, interval, name="rsqrt"
    )


# ----------------------------------------------------------------------
# Newton reciprocal (softmax normaliser)
# ----------------------------------------------------------------------
def affine_recip_init(interval: tuple) -> tuple:
    """Least-squares affine seed ``y0 = a + b * s`` for ``1 / s``.

    Newton's iteration ``y <- y * (2 - s * y)`` squares the relative
    error each step, so a seed with relative error ``e`` reaches
    ``e^(2^iters)``; the affine least-squares fit over the calibrated
    sum interval keeps ``e`` well under 1 for the ~4x-wide intervals a
    mean-stabilised softmax produces.
    """
    lo, hi = float(interval[0]), float(interval[1])
    if lo <= 0.0:
        raise ValueError(f"reciprocal seed needs a positive interval, got lo={lo}")
    # Newton contracts the *relative* error e = 1 - s * y, so fit the
    # seed to minimise |1 - s * (a + b * s)| — least squares of the
    # constant 1 in the basis {s, s^2} — rather than |1/s - y|.
    s = np.linspace(lo, hi, 512)
    design = np.stack([s, s * s], axis=1)
    coeffs, *_ = np.linalg.lstsq(design, np.ones_like(s), rcond=None)
    return (float(coeffs[0]), float(coeffs[1]))


def newton_recip(s, init: tuple, iters: int = 2):
    """``1 / s`` by ``iters`` Newton steps from the affine seed."""
    s = np.asarray(s, dtype=np.float64)
    y = init[0] + init[1] * s
    for _ in range(iters):
        y = y * (2.0 - s * y)
    return y


# ----------------------------------------------------------------------
# numpy mirrors of the encrypted lowerings
# ----------------------------------------------------------------------
def paf_softmax(
    scores,
    exp: RangeReducedExp,
    recip_init: tuple,
    recip_iters: int = 2,
    axis: int = -1,
):
    """Mean-stabilised softmax, operator-for-operator as encrypted.

    Subtracting the *mean* (not the max — there is no encrypted max
    without another sign-PAF) centres the scores inside the exp fit's
    interval and leaves the softmax value unchanged; the normaliser is
    the affine-seeded Newton reciprocal of the exp sum.
    """
    z = np.asarray(scores, dtype=np.float64)
    z = z - z.mean(axis=axis, keepdims=True)
    e = exp(z)
    total = e.sum(axis=axis, keepdims=True)
    return e * newton_recip(total, recip_init, recip_iters)


def paf_layer_norm(
    x,
    rsqrt: Polynomial,
    gain=None,
    bias=None,
    axis: int = -1,
    eps: float = 1e-5,
):
    """LayerNorm with the rsqrt PAF as normaliser (numpy mirror)."""
    x = np.asarray(x, dtype=np.float64)
    mean = x.mean(axis=axis, keepdims=True)
    var = np.square(x - mean).mean(axis=axis, keepdims=True)
    out = (x - mean) * rsqrt(var + eps)
    if gain is not None:
        out = out * gain
    if bias is not None:
        out = out + bias
    return out
