"""Polynomial bases used by the paper's PAFs.

Two families:

* ``f_n`` from Cheon, Kim & Kim 2020 ("Efficient homomorphic comparison
  methods with optimal complexity"): closed form

      f_n(x) = sum_{i=0}^{n} (1/4^i) * C(2i, i) * x * (1 - x^2)^i

  ``f_1(x) = 1.5 x - 0.5 x^3``, ``f_2(x) = 1.875 x - 1.25 x^3 + 0.375 x^5``
  — these exact values appear untrained in the paper's appendix Tab. 10/11.

* ``g_n`` — Cheon et al.'s accelerating polynomials (published constants over
  2^10).  ``g_2 = (3334 x - 6108 x^3 + 3796 x^5)/1024`` matches the untrained
  row of the paper's Tab. 11; ``g_3`` matches Tab. 10.

* the minimax composite for precision ``α = 7`` with the paper's exact Tab. 7
  coefficients (Lee et al. 2021).
"""

from __future__ import annotations

import math
from fractions import Fraction


from repro.paf.polynomial import CompositePAF, OddPolynomial

__all__ = [
    "f_poly",
    "g_poly",
    "F1",
    "F2",
    "G1",
    "G2",
    "G3",
    "MINIMAX_ALPHA7",
    "minimax_alpha7",
]


def f_coeffs(n: int) -> list:
    """Odd-power coefficients of Cheon et al.'s ``f_n`` (exact rationals).

    Expanding ``f_n(x) = sum_i 4^{-i} C(2i,i) x (1-x^2)^i`` gives the
    coefficient of ``x^(2j+1)`` as ``sum_{i>=j} 4^{-i} C(2i,i) C(i,j) (-1)^j``.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    coeffs = [Fraction(0)] * (n + 1)
    for i in range(n + 1):
        w = Fraction(math.comb(2 * i, i), 4**i)
        for j in range(i + 1):
            coeffs[j] += w * math.comb(i, j) * (-1) ** j
    return [float(c) for c in coeffs]


def f_poly(n: int) -> OddPolynomial:
    """Cheon et al.'s ``f_n`` as an :class:`OddPolynomial`."""
    return OddPolynomial(f_coeffs(n), name=f"f{n}")


# Cheon et al. 2020 accelerating polynomials g_n, constants over 2^10.
# g2/g3 are confirmed by the untrained rows of the paper's appendix tables
# (3334/1024 = 3.255859375 etc.).
_G_TABLE = {
    1: [2126, -1359],
    2: [3334, -6108, 3796],
    3: [4589, -16577, 25614, -12860],
}


def g_coeffs(n: int) -> list:
    """Odd-power coefficients of Cheon et al.'s ``g_n`` (n in {1, 2, 3})."""
    if n not in _G_TABLE:
        raise ValueError(f"g_n only published for n in {{1,2,3}}, got {n}")
    return [c / 1024.0 for c in _G_TABLE[n]]


def g_poly(n: int) -> OddPolynomial:
    """Cheon et al.'s ``g_n`` as an :class:`OddPolynomial`."""
    return OddPolynomial(g_coeffs(n), name=f"g{n}")


F1 = f_poly(1)
F2 = f_poly(2)
G1 = g_poly(1)
G2 = g_poly(2)
G3 = g_poly(3)


# ----------------------------------------------------------------------
# Minimax composite, α = 7 (Lee et al. 2021), exact Tab. 7 coefficients.
# p7 = p_{7,2} ∘ p_{7,1}, both odd degree-7 polynomials.
# ----------------------------------------------------------------------
_ALPHA7_P1 = [7.304451, -34.68258667, 59.85965347, -31.87552261]
_ALPHA7_P2 = [2.400856, -2.631254435, 1.549126744, -0.331172943]


def minimax_alpha7() -> CompositePAF:
    """The paper's α=7 minimax composite PAF (Tab. 2 / Tab. 7).

    Two degree-7 components; Tab. 2 reports degree 12 and multiplication
    depth 6 (= 2 * ceil(log2 8)).
    """
    p1 = OddPolynomial(_ALPHA7_P1, name="p7_1")
    p2 = OddPolynomial(_ALPHA7_P2, name="p7_2")
    return CompositePAF([p1, p2], name="alpha=7", reported_degree=12)


MINIMAX_ALPHA7 = minimax_alpha7()
