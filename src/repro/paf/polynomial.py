"""Odd polynomials and composite polynomial approximation functions (PAFs).

The paper approximates ``sign(x)`` with *composite* polynomials: a chain of
low-degree odd polynomials applied in sequence (Sec. 2.2, Tab. 2).  Because
``sign`` is odd, every useful component is odd, so we store only the odd-power
coefficients ``c = (c_1, c_3, c_5, ...)`` with

    p(x) = c_1 x + c_3 x^3 + c_5 x^5 + ...

The multiplication depth of a degree-``d`` polynomial evaluated with the
exponentiation-by-squaring strategy is ``ceil(log2(d + 1))`` (Appendix C);
the depth of a composite is the sum of its components' depths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "OddPolynomial",
    "Polynomial",
    "CompositePAF",
    "mult_depth_of_degree",
]


def mult_depth_of_degree(degree: int) -> int:
    """Multiplication depth of evaluating a degree-``degree`` polynomial.

    Contemporary methods use the exponentiation-by-squaring strategy, so a
    polynomial whose highest term is ``a * x**n`` consumes
    ``ceil(log2(n + 1))`` levels (paper, Appendix C).
    """
    if degree < 1:
        raise ValueError(f"degree must be >= 1, got {degree}")
    return math.ceil(math.log2(degree + 1))


@dataclass(frozen=True)
class OddPolynomial:
    """An odd polynomial stored by its odd-power coefficients.

    Parameters
    ----------
    coeffs:
        ``(c_1, c_3, ..., c_{2k+1})`` — coefficient of ``x**(2i+1)`` at
        index ``i``.  Trailing zeros are allowed but affect the reported
        degree, so prefer trimmed coefficient vectors.
    name:
        Optional label used in tables (e.g. ``"f1"``, ``"g2"``).
    """

    coeffs: tuple = field()
    name: str = ""

    def __init__(self, coeffs: Iterable[float], name: str = ""):
        coeffs = tuple(float(c) for c in coeffs)
        if not coeffs:
            raise ValueError("OddPolynomial needs at least one coefficient")
        object.__setattr__(self, "coeffs", coeffs)
        object.__setattr__(self, "name", name)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def degree(self) -> int:
        """Degree of the highest (odd) power."""
        return 2 * (len(self.coeffs) - 1) + 1

    @property
    def mult_depth(self) -> int:
        """Multiplication depth under exponentiation by squaring."""
        return mult_depth_of_degree(self.degree)

    @property
    def num_coeffs(self) -> int:
        return len(self.coeffs)

    def dense_coeffs(self) -> np.ndarray:
        """Full coefficient vector ``[c_0, c_1, ..., c_d]`` (even entries 0)."""
        dense = np.zeros(self.degree + 1)
        dense[1::2] = self.coeffs
        return dense

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def __call__(self, x):
        """Evaluate at ``x`` (scalar or ndarray), Horner in ``x**2``.

        ``p(x) = x * q(x^2)`` with ``q`` evaluated by Horner's rule; this is
        numerically stable and vectorised.
        """
        x = np.asarray(x, dtype=np.float64)
        acc = np.full_like(x, self.coeffs[-1])
        x2 = x * x
        for c in self.coeffs[-2::-1]:
            acc = acc * x2 + c
        return acc * x

    def derivative(self, x):
        """Evaluate ``p'(x)`` — used by trainable PAF layers' backward pass."""
        x = np.asarray(x, dtype=np.float64)
        # p'(x) = sum (2i+1) c_i x^(2i) : even polynomial, Horner in x^2.
        k = len(self.coeffs) - 1
        acc = np.full_like(x, (2 * k + 1) * self.coeffs[-1])
        x2 = x * x
        for i in range(k - 1, -1, -1):
            acc = acc * x2 + (2 * i + 1) * self.coeffs[i]
        return acc

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def scaled_input(self, scale: float) -> "OddPolynomial":
        """Return ``q`` with ``q(x) = p(x / scale)``.

        Used for Static-Scaling folding: dividing the PAF input by ``scale``
        is free under FHE when folded into the innermost component's
        coefficients (``c_i -> c_i / scale**(2i+1)``).
        """
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        new = [c / scale ** (2 * i + 1) for i, c in enumerate(self.coeffs)]
        return OddPolynomial(new, name=self.name)

    def scaled_output(self, scale: float) -> "OddPolynomial":
        """Return ``q`` with ``q(x) = scale * p(x)``."""
        return OddPolynomial([scale * c for c in self.coeffs], name=self.name)

    def with_coeffs(self, coeffs: Sequence[float]) -> "OddPolynomial":
        """Same name, new coefficients (must keep the degree)."""
        if len(tuple(coeffs)) != len(self.coeffs):
            raise ValueError(
                f"expected {len(self.coeffs)} coefficients, got {len(tuple(coeffs))}"
            )
        return OddPolynomial(coeffs, name=self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or "odd-poly"
        terms = " + ".join(
            f"{c:+.6g}*x^{2 * i + 1}" for i, c in enumerate(self.coeffs)
        )
        return f"OddPolynomial<{label}, deg={self.degree}>({terms})"


@dataclass(frozen=True)
class Polynomial:
    """A dense (general, non-odd) polynomial with a declared domain.

    The approximation tier beyond ``sign``-composites: exp, GELU and
    rsqrt fits are general polynomials (they need even powers and a
    constant term), stored by their full coefficient vector

        p(x) = c_0 + c_1 x + ... + c_d x^d

    together with the ``interval`` the fit is valid over — the domain
    contract that :func:`repro.fhe.ir.propagate_intervals` checks
    against the data a layer can actually see.

    Parameters
    ----------
    coeffs:
        ``(c_0, c_1, ..., c_d)`` — coefficient of ``x**i`` at index
        ``i``; the leading coefficient must be nonzero.
    interval:
        ``(lo, hi)`` domain the approximation is declared over.
    name:
        Optional label (e.g. ``"exp"``, ``"gelu"``).
    """

    coeffs: tuple = field()
    interval: tuple = field()
    name: str = ""

    def __init__(self, coeffs: Iterable[float], interval=(-1.0, 1.0), name: str = ""):
        coeffs = tuple(float(c) for c in coeffs)
        if len(coeffs) < 2:
            raise ValueError("Polynomial needs degree >= 1 (two coefficients)")
        if coeffs[-1] == 0.0:
            raise ValueError("leading coefficient must be nonzero (trim first)")
        lo, hi = (float(interval[0]), float(interval[1]))
        if not lo < hi:
            raise ValueError(f"interval must satisfy lo < hi, got ({lo}, {hi})")
        object.__setattr__(self, "coeffs", coeffs)
        object.__setattr__(self, "interval", (lo, hi))
        object.__setattr__(self, "name", name)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def degree(self) -> int:
        return len(self.coeffs) - 1

    @property
    def mult_depth(self) -> int:
        """Depth under exponentiation by squaring: ``ceil(log2(d + 1))``."""
        return mult_depth_of_degree(self.degree)

    def contains(self, interval) -> bool:
        """Whether a propagated data interval sits inside the fit domain."""
        return self.interval[0] <= interval[0] and interval[1] <= self.interval[1]

    # ------------------------------------------------------------------
    # evaluation / transforms
    # ------------------------------------------------------------------
    def __call__(self, x):
        """Evaluate at ``x`` (scalar or ndarray) by Horner's rule."""
        x = np.asarray(x, dtype=np.float64)
        acc = np.full_like(x, self.coeffs[-1])
        for c in self.coeffs[-2::-1]:
            acc = acc * x + c
        return acc

    def scaled_input(self, scale: float) -> "Polynomial":
        """Return ``q`` with ``q(x) = p(x / scale)`` (interval rescaled)."""
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        new = [c / scale**i for i, c in enumerate(self.coeffs)]
        lo, hi = self.interval
        return Polynomial(new, interval=(lo * scale, hi * scale), name=self.name)

    def scaled_output(self, scale: float) -> "Polynomial":
        """Return ``q`` with ``q(x) = scale * p(x)``."""
        return Polynomial(
            [scale * c for c in self.coeffs], interval=self.interval, name=self.name
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or "poly"
        lo, hi = self.interval
        return f"Polynomial<{label}, deg={self.degree}, domain=[{lo:.3g}, {hi:.3g}]>"


class CompositePAF:
    """A composite PAF ``p = p_k ∘ ... ∘ p_1`` approximating ``sign(x)``.

    ``components[0]`` is applied first (innermost), matching the paper's
    appendix convention ``f1 ∘ g2 = g2(f1(x))``.

    Parameters
    ----------
    components:
        Component odd polynomials, innermost first.
    name:
        Label used in tables, e.g. ``"f2 o g3"``.
    reported_degree:
        The degree number the paper's Tab. 2 reports for this form (kept as
        metadata because the paper's "degree" column is a naming convention;
        the structurally meaningful quantity is ``mult_depth``).
    """

    def __init__(
        self,
        components: Sequence[OddPolynomial],
        name: str = "",
        reported_degree: int | None = None,
    ):
        components = list(components)
        if not components:
            raise ValueError("CompositePAF needs at least one component")
        self.components = components
        self.name = name or " o ".join(c.name or "p" for c in components)
        self._reported_degree = reported_degree

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def degree_sum(self) -> int:
        """Sum of the component degrees (the paper's headline degree count)."""
        return sum(c.degree for c in self.components)

    @property
    def degree_product(self) -> int:
        """Total algebraic degree of the expanded composite."""
        prod = 1
        for c in self.components:
            prod *= c.degree
        return prod

    @property
    def reported_degree(self) -> int:
        """Degree as reported in the paper's Tab. 2 (falls back to the sum)."""
        return self._reported_degree if self._reported_degree is not None else self.degree_sum

    @property
    def mult_depth(self) -> int:
        """Total multiplication depth = sum of component depths (Appendix C)."""
        return sum(c.mult_depth for c in self.components)

    @property
    def num_components(self) -> int:
        return len(self.components)

    def num_coeffs(self) -> int:
        return sum(c.num_coeffs for c in self.components)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def __call__(self, x):
        """Approximate ``sign(x)`` (vectorised)."""
        y = np.asarray(x, dtype=np.float64)
        for comp in self.components:
            y = comp(y)
        return y

    def intermediate_values(self, x) -> list:
        """Values after each component — used by depth/accuracy diagnostics."""
        values = [np.asarray(x, dtype=np.float64)]
        for comp in self.components:
            values.append(comp(values[-1]))
        return values

    # ------------------------------------------------------------------
    # coefficient flattening (for trainable layers / optimizers)
    # ------------------------------------------------------------------
    def flat_coeffs(self) -> np.ndarray:
        """All coefficients concatenated innermost-first."""
        return np.concatenate([np.asarray(c.coeffs) for c in self.components])

    def with_flat_coeffs(self, flat: Sequence[float]) -> "CompositePAF":
        """Rebuild the composite from a flat coefficient vector."""
        flat = np.asarray(flat, dtype=np.float64)
        if flat.size != self.num_coeffs():
            raise ValueError(
                f"expected {self.num_coeffs()} coefficients, got {flat.size}"
            )
        comps = []
        offset = 0
        for comp in self.components:
            n = comp.num_coeffs
            comps.append(comp.with_coeffs(flat[offset : offset + n]))
            offset += n
        return CompositePAF(comps, name=self.name, reported_degree=self._reported_degree)

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def scaled_input(self, scale: float) -> "CompositePAF":
        """Fold an input scale ``x -> x/scale`` into the innermost component."""
        comps = [self.components[0].scaled_input(scale)] + list(self.components[1:])
        return CompositePAF(comps, name=self.name, reported_degree=self._reported_degree)

    def copy(self) -> "CompositePAF":
        return CompositePAF(
            list(self.components), name=self.name, reported_degree=self._reported_degree
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompositePAF<{self.name}, degree={self.reported_degree}, "
            f"depth={self.mult_depth}, components={[c.name for c in self.components]}>"
        )
