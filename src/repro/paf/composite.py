"""Registry of the paper's six PAF forms (Tab. 2).

======  =================  ===============  =====================
key     form               reported degree  multiplication depth
======  =================  ===============  =====================
alpha10 minimax α=10       27               10
f1f1g1g1 f1² ∘ g1²         14               8
alpha7  minimax α=7        12               6
f2g3    f2 ∘ g3            12               6
f2g2    f2 ∘ g2            10               6
f1g2    f1 ∘ g2            5                5
======  =================  ===============  =====================

Keys accept several aliases (``"f1^2 o g1^2"``, ``"alpha=7"`` ...).
``get_paf`` always returns a *fresh copy* so callers can train coefficients
without mutating the registry.

>>> get_paf("f2 o g3").mult_depth
6
>>> canonical_key("alpha=7")
'alpha7'
>>> [p.name for p in paper_pafs()]
['f1^2 o g1^2', 'alpha=7', 'f2 o g3', 'f2 o g2', 'f1 o g2']
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.paf.bases import f_poly, g_poly, minimax_alpha7
from repro.paf.minimax import minimax_alpha10_deg27
from repro.paf.polynomial import CompositePAF

__all__ = ["PAF_REGISTRY", "get_paf", "paper_pafs", "canonical_key"]


# Composition order: "f o g" is standard composition f(g(x)) — the g
# (accelerating) polynomials run first, the f (sharpening) polynomials last,
# exactly as in Cheon et al. 2020's construction.  (The paper's Appendix C
# prose says "f1 o g2 = g2(f1(x))", but that order is numerically wrong for
# sign approximation — e.g. g3(f2(1)) misses 1 by 0.25 while f2(g3(1)) is
# within 2^-4 — so we follow the standard/Cheon order.  Multiplication depth
# is identical either way.)


def _f1f1g1g1() -> CompositePAF:
    return CompositePAF(
        [g_poly(1), g_poly(1), f_poly(1), f_poly(1)],
        name="f1^2 o g1^2",
        reported_degree=14,
    )


def _f2g3() -> CompositePAF:
    return CompositePAF([g_poly(3), f_poly(2)], name="f2 o g3", reported_degree=12)


def _f2g2() -> CompositePAF:
    return CompositePAF([g_poly(2), f_poly(2)], name="f2 o g2", reported_degree=10)


def _f1g2() -> CompositePAF:
    return CompositePAF([g_poly(2), f_poly(1)], name="f1 o g2", reported_degree=5)


#: Factories for the paper's PAF forms, keyed by canonical name.
PAF_REGISTRY: Dict[str, Callable[[], CompositePAF]] = {
    "alpha10": minimax_alpha10_deg27,
    "f1f1g1g1": _f1f1g1g1,
    "alpha7": minimax_alpha7,
    "f2g3": _f2g3,
    "f2g2": _f2g2,
    "f1g2": _f1g2,
}

_ALIASES = {
    "alpha=10": "alpha10",
    "a10": "alpha10",
    "minimax27": "alpha10",
    "f1^2og1^2": "f1f1g1g1",
    "f1^2 o g1^2": "f1f1g1g1",
    "f1^2∘g1^2": "f1f1g1g1",
    "f12g12": "f1f1g1g1",
    "alpha=7": "alpha7",
    "a7": "alpha7",
    "f2og3": "f2g3",
    "f2 o g3": "f2g3",
    "f2∘g3": "f2g3",
    "f2og2": "f2g2",
    "f2 o g2": "f2g2",
    "f2∘g2": "f2g2",
    "f1og2": "f1g2",
    "f1 o g2": "f1g2",
    "f1∘g2": "f1g2",
}

#: Registry order used by all tables/figures (highest degree first, as the
#: paper's tables are laid out).
PAPER_ORDER = ["f1f1g1g1", "alpha7", "f2g3", "f2g2", "f1g2"]


def canonical_key(name: str) -> str:
    """Resolve an alias to its canonical registry key.

    >>> canonical_key("f1^2 o g1^2")
    'f1f1g1g1'
    >>> canonical_key("nope")    # doctest: +IGNORE_EXCEPTION_DETAIL
    Traceback (most recent call last):
        ...
    KeyError: unknown PAF
    """
    key = name.strip().lower().replace(" ", "").replace("·", "")
    key = _ALIASES.get(key, key)
    key = _ALIASES.get(name.strip(), key) if key not in PAF_REGISTRY else key
    if key not in PAF_REGISTRY:
        raise KeyError(
            f"unknown PAF {name!r}; known: {sorted(PAF_REGISTRY)} "
            f"(aliases: {sorted(_ALIASES)})"
        )
    return key


def get_paf(name: str) -> CompositePAF:
    """Fetch a fresh copy of a registered PAF by name or alias.

    >>> paf = get_paf("f1g2")
    >>> (paf.reported_degree, paf.mult_depth, paf.num_components)
    (5, 5, 2)
    >>> get_paf("f1g2") is paf        # always a fresh copy
    False
    """
    return PAF_REGISTRY[canonical_key(name)]()


def paper_pafs(include_alpha10: bool = False) -> list:
    """The PAF forms evaluated in the paper's tables, in table order.

    Tab. 3 / Tab. 4 / Fig. 7 / Fig. 8 sweep the five non-α=10 forms;
    pass ``include_alpha10=True`` for Tab. 2 / the latency baseline.
    """
    keys = (["alpha10"] if include_alpha10 else []) + PAPER_ORDER
    return [get_paf(k) for k in keys]
