"""Polynomial Approximated Functions (PAFs) for ``sign(x)``.

The building blocks of the paper: odd polynomials, composite PAFs, the
Cheon et al. f/g bases, minimax (Remez) construction, sign→ReLU/Max
reconstruction, multiplication-depth analysis and the distribution-weighted
coefficient refitting backend used by Coefficient Tuning.
"""

from repro.paf.bases import (
    F1,
    F2,
    G1,
    G2,
    G3,
    MINIMAX_ALPHA7,
    f_poly,
    g_poly,
    minimax_alpha7,
)
from repro.paf.composite import PAF_REGISTRY, canonical_key, get_paf, paper_pafs
from repro.paf.depth import (
    composite_depth_schedule,
    depth_schedule,
    paf_depth_table,
)
from repro.paf.fitting import (
    fit_composite,
    fit_last_component,
    profile_to_weights,
    weighted_sign_mse,
)
from repro.paf.minimax import (
    RemezResult,
    composite_precision,
    minimax_alpha10_deg27,
    minimax_composite,
    remez_odd_sign,
)
from repro.paf.polynomial import (
    CompositePAF,
    OddPolynomial,
    Polynomial,
    mult_depth_of_degree,
)
from repro.paf.quadratic import QuadraticReLU, hermite_quadratic_coeffs, quadratic_relu
from repro.paf.transformer import (
    RangeReducedExp,
    affine_recip_init,
    exp_paf,
    fit_polynomial,
    gelu_paf,
    gelu_reference,
    newton_recip,
    paf_layer_norm,
    paf_softmax,
    rsqrt_paf,
)
from repro.paf.relu import (
    maxpool_mult_depth,
    paf_max,
    paf_maxpool2d,
    paf_relu,
    relu_mult_depth,
)

__all__ = [
    "CompositePAF",
    "OddPolynomial",
    "mult_depth_of_degree",
    "F1",
    "F2",
    "G1",
    "G2",
    "G3",
    "MINIMAX_ALPHA7",
    "f_poly",
    "g_poly",
    "minimax_alpha7",
    "minimax_alpha10_deg27",
    "minimax_composite",
    "remez_odd_sign",
    "composite_precision",
    "RemezResult",
    "PAF_REGISTRY",
    "get_paf",
    "paper_pafs",
    "canonical_key",
    "paf_relu",
    "paf_max",
    "paf_maxpool2d",
    "relu_mult_depth",
    "maxpool_mult_depth",
    "depth_schedule",
    "composite_depth_schedule",
    "paf_depth_table",
    "fit_last_component",
    "fit_composite",
    "profile_to_weights",
    "weighted_sign_mse",
    "QuadraticReLU",
    "hermite_quadratic_coeffs",
    "quadratic_relu",
    "Polynomial",
    "fit_polynomial",
    "RangeReducedExp",
    "exp_paf",
    "gelu_reference",
    "gelu_paf",
    "rsqrt_paf",
    "affine_recip_init",
    "newton_recip",
    "paf_softmax",
    "paf_layer_norm",
]
