"""Level/scale-slack reports over a recorded trace.

Turns the layer spans of a :class:`~repro.obs.trace.Tracer` (or an
exported ``repro-trace-v1`` dict) into the per-layer headroom view the
bootstrapping / level-refresh work is gated on: where the compiled
schedule is tight (minimum remaining level slack), where the measured
scale has drifted furthest off the canonical per-level schedule, and
what each layer paid in keyswitches, nonscalar mults and wall time.

``benchmarks/slack_baseline.json`` pins the per-layer slack of the toy
models; ``tools/check_slack.py`` fails CI when any layer's slack drops
below its baseline — an early warning that a plan change spent schedule
headroom, before the rtol accuracy suites can notice.
"""

from __future__ import annotations

from repro.obs.trace import Tracer

__all__ = ["slack_report", "format_slack_report", "slack_baseline_entry"]


def _layer_rows(trace) -> list:
    """Per-layer observation dicts from a tracer or exported trace."""
    if isinstance(trace, Tracer):
        trace = trace.to_dict()
    rows = []
    for sp in trace.get("spans", []):
        if sp.get("kind") != "layer":
            continue
        ops = sp.get("ops", {})
        attrs = sp.get("attrs", {})
        entry = sp.get("entry") or {}
        exit_ = sp.get("exit") or {}
        rows.append(
            {
                "name": sp["name"],
                "entry_level": entry.get("level"),
                "exit_level": exit_.get("level"),
                "level_slack": attrs.get("level_slack"),
                "scale_drift": exit_.get("scale_drift"),
                "keyswitches": (
                    ops.get("rotate", 0)
                    + ops.get("rotate_hoisted", 0)
                    + ops.get("conjugate", 0)
                    + ops.get("mul", 0)
                ),
                "nonscalar_mults": ops.get("mul", 0),
                "duration_ms": sp.get("duration_ms", 0.0),
            }
        )
    return rows


def slack_report(trace, model: str | None = None) -> dict:
    """Level/scale-slack summary of one traced forward.

    Returns ``{"model", "layers": [...], "min_slack", "tightest",
    "max_abs_drift"}`` where ``tightest`` names every layer sitting at
    the minimum slack — the layers a level-refresh (bootstrapping)
    insertion pass would have to relieve first.
    """
    if model is None and not isinstance(trace, Tracer):
        model = trace.get("model")
    layers = _layer_rows(trace)
    slacks = [r["level_slack"] for r in layers if r["level_slack"] is not None]
    drifts = [abs(r["scale_drift"]) for r in layers if r["scale_drift"] is not None]
    min_slack = min(slacks) if slacks else None
    return {
        "model": model,
        "layers": layers,
        "min_slack": min_slack,
        "tightest": [
            r["name"] for r in layers if r["level_slack"] == min_slack
        ]
        if min_slack is not None
        else [],
        "max_abs_drift": max(drifts) if drifts else None,
    }


def format_slack_report(report: dict) -> str:
    """Aligned text rendering of a :func:`slack_report`."""
    from repro.analysis.tables import format_table

    rows = [
        [
            r["name"],
            _opt(r["entry_level"]),
            _opt(r["exit_level"]),
            _opt(r["level_slack"]),
            f"{r['scale_drift']:+.2e}" if r["scale_drift"] is not None else "-",
            r["keyswitches"],
            r["nonscalar_mults"],
            f"{r['duration_ms']:.1f}",
        ]
        for r in report["layers"]
    ]
    title = "Level/scale slack"
    if report.get("model"):
        title += f" ({report['model']})"
    table = format_table(
        ["layer", "lvl in", "lvl out", "slack", "scale drift", "ks", "ct*ct", "ms"],
        rows,
        title=title,
    )
    lines = [table]
    if report["min_slack"] is not None:
        lines.append(
            f"min slack {report['min_slack']} at: "
            + ", ".join(report["tightest"])
        )
    if report["max_abs_drift"] is not None:
        lines.append(f"max |scale drift| {report['max_abs_drift']:.3e}")
    return "\n".join(lines)


def slack_baseline_entry(report: dict) -> dict:
    """The checked-in baseline record for one model's slack report."""
    return {
        "layers": {
            r["name"]: r["level_slack"]
            for r in report["layers"]
            if r["level_slack"] is not None
        },
        "min_slack": report["min_slack"],
    }


def _opt(value):
    return "-" if value is None else value
