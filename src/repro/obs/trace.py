"""Hierarchical execution tracing for compiled encrypted networks.

A :class:`Tracer` records a tree of :class:`Span` observations.  Each
span carries wall time, the HE-op deltas accumulated while it was open
(keyswitches, nonscalar mults, rescales — diffed from a live
:class:`~repro.ckks.instrumentation.CountingEvaluator` counter), and the
ciphertext state at entry and exit: level, log2(scale), drift of the
actual scale against the canonical per-level schedule
(``S_{l-1} = S_l² / q_l``), and — on layer spans, where the network
knows its static schedule — the remaining *level slack* over what the
downstream layers still need.

Attach a tracer by wrapping any evaluator in :class:`TracingEvaluator`
and passing it where an evaluator goes::

    tev = TracingEvaluator(enc.ev)
    out = enc.forward(ct, ev=tev)
    trace = tev.tracer.to_dict()            # JSON-ready span tree

The instrumented executors discover the tracer through the ``tracer``
attribute via :func:`repro.ckks.instrumentation.span`; an evaluator
without one costs a single failed attribute lookup per span site and
nothing else — tracing is provably non-perturbing (the tracer only ever
*reads* ``ct.level`` / ``ct.scale``), which the differential suite in
``tests/obs`` pins down to bit-identical ciphertext outputs.

The tracer itself needs no cryptography, so span mechanics are plainly
testable:

>>> t = Tracer()
>>> with t.span("forward", kind="forward"):
...     with t.span("layer00:linear", kind="layer") as sp:
...         sp.set(layer=0)
>>> [s.name for s in t.iter_spans()]
['forward', 'layer00:linear']
>>> t.roots[0].children[0].attrs["layer"]
0

One tracer serves one thread (the serving layer attaches one per worker
evaluator).
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field

__all__ = ["Span", "Tracer", "TracingEvaluator", "TRACE_FORMAT"]

#: schema tag written into every exported trace
TRACE_FORMAT = "repro-trace-v1"


@dataclass
class Span:
    """One node of the trace tree."""

    name: str
    kind: str = "span"
    start_s: float = 0.0            #: seconds since the tracer's epoch
    duration_s: float = 0.0
    ops: dict = field(default_factory=dict)     #: HE-op deltas while open
    entry: dict | None = None       #: ciphertext state at entry
    exit: dict | None = None        #: ciphertext state at exit
    attrs: dict = field(default_factory=dict)
    children: list = field(default_factory=list)

    # managed by the owning tracer
    _tracer: "Tracer | None" = field(default=None, repr=False)
    _counts_at: dict | None = field(default=None, repr=False)

    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        self._tracer._open(self)
        return self

    def __exit__(self, *exc) -> bool:
        self._tracer._close(self)
        return False

    # ------------------------------------------------------------------
    def ct_entry(self, ct) -> None:
        """Record the ciphertext state entering this span.

        ``ct`` may be a single ciphertext or a shard list (state is read
        from shard 0 — shards travel at one common level and scale).
        """
        self.entry = self._tracer.ct_state(ct)

    def ct_exit(self, ct, level_slack: int | None = None) -> None:
        """Record the ciphertext state leaving this span.

        ``level_slack`` — levels remaining at exit beyond what the
        downstream schedule still needs — is supplied by callers that
        know the static schedule (``EncryptedNetwork`` layer spans).
        """
        self.exit = self._tracer.ct_state(ct)
        if level_slack is not None:
            self.attrs["level_slack"] = int(level_slack)

    def set(self, **attrs) -> None:
        """Attach free-form attributes to the span."""
        self.attrs.update(attrs)

    # ------------------------------------------------------------------
    @property
    def keyswitches(self) -> int:
        """Keyswitch delta of this span (same accounting as
        :attr:`~repro.ckks.instrumentation.CountingEvaluator.keyswitch_count`)."""
        o = self.ops
        return (
            o.get("rotate", 0)
            + o.get("rotate_hoisted", 0)
            + o.get("conjugate", 0)
            + o.get("mul", 0)
        )

    @property
    def nonscalar_mults(self) -> int:
        return self.ops.get("mul", 0)

    def to_dict(self, span_id: int, parent_id: int | None) -> dict:
        return {
            "id": span_id,
            "parent": parent_id,
            "name": self.name,
            "kind": self.kind,
            "start_ms": self.start_s * 1e3,
            "duration_ms": self.duration_s * 1e3,
            "ops": dict(self.ops),
            "entry": self.entry,
            "exit": self.exit,
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Collects a span tree for one traced execution.

    ``counts`` is a live mapping of HE-op counters to snapshot at span
    boundaries (a :class:`~collections.Counter` shared with a
    ``CountingEvaluator``); ``ctx`` a
    :class:`~repro.ckks.context.CkksContext` used to compute the
    canonical per-level scale schedule for drift accounting.  Both are
    optional — :class:`TracingEvaluator` wires them up.
    """

    def __init__(self, ctx=None, counts=None):
        self.ctx = ctx
        self._counts = counts
        self._sched: dict | None = None
        self.reset()

    def reset(self) -> None:
        """Drop all recorded spans and restart the epoch."""
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._t0 = time.perf_counter()

    # ------------------------------------------------------------------
    # span lifecycle
    # ------------------------------------------------------------------
    def span(self, name: str, kind: str = "span", **attrs) -> Span:
        """Create a span to be opened with a ``with`` block."""
        return Span(name=name, kind=kind, attrs=dict(attrs), _tracer=self)

    def _open(self, sp: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(sp)
        else:
            self.roots.append(sp)
        self._stack.append(sp)
        if self._counts is not None:
            sp._counts_at = dict(self._counts)
        sp.start_s = time.perf_counter() - self._t0

    def _close(self, sp: Span) -> None:
        sp.duration_s = time.perf_counter() - self._t0 - sp.start_s
        if self._counts is not None:
            before = sp._counts_at or {}
            sp.ops = {
                k: int(v) - before.get(k, 0)
                for k, v in self._counts.items()
                if int(v) != before.get(k, 0)
            }
            sp._counts_at = None
        # unwind to (and past) this span even if inner spans leaked open
        while self._stack:
            if self._stack.pop() is sp:
                break

    # ------------------------------------------------------------------
    # ciphertext state
    # ------------------------------------------------------------------
    def scheduled_scale(self, level: int) -> float | None:
        """Canonical scale at ``level`` (``S_{l-1} = S_l²/q_l`` from Δ at
        the top of the chain); ``None`` without a context."""
        if self.ctx is None:
            return None
        if self._sched is None:
            sched = {self.ctx.max_level: self.ctx.scale}
            s = self.ctx.scale
            for lvl in range(self.ctx.max_level, 0, -1):
                s = s * s / self.ctx.q_chain[lvl]
                sched[lvl - 1] = s
            self._sched = sched
        return self._sched.get(level)

    def ct_state(self, ct) -> dict:
        """Level / scale observation of a ciphertext (or shard list)."""
        if isinstance(ct, (list, tuple)):
            ct = ct[0]
        state = {
            "level": int(ct.level),
            "log2_scale": math.log2(ct.scale),
        }
        sched = self.scheduled_scale(ct.level)
        if sched is not None:
            state["scale_drift"] = ct.scale / sched - 1.0
        return state

    # ------------------------------------------------------------------
    # views / export
    # ------------------------------------------------------------------
    def iter_spans(self):
        """All spans, depth-first (parents before children)."""
        stack = list(reversed(self.roots))
        while stack:
            sp = stack.pop()
            yield sp
            stack.extend(reversed(sp.children))

    def layer_spans(self) -> list:
        """The ``kind == "layer"`` spans, in execution order."""
        return [sp for sp in self.iter_spans() if sp.kind == "layer"]

    def to_dict(self, meta: dict | None = None) -> dict:
        """Flatten the span tree into the ``repro-trace-v1`` schema.

        Spans come out depth-first with integer ids and parent links;
        ``meta`` (e.g. ``{"model": "toy_resnet"}``) is merged into the
        trace header alongside the context geometry when available.
        """
        header: dict = {"format": TRACE_FORMAT}
        if self.ctx is not None:
            header["context"] = {
                "n": self.ctx.n,
                "depth": self.ctx.params.depth,
                "scale_bits": self.ctx.params.scale_bits,
                "backend": self.ctx.backend.name,
            }
        if meta:
            header.update(meta)
        spans: list = []

        def walk(sp: Span, parent_id: int | None) -> None:
            span_id = len(spans)
            spans.append(sp.to_dict(span_id, parent_id))
            for child in sp.children:
                walk(child, span_id)

        for root in self.roots:
            walk(root, None)
        header["spans"] = spans
        return header

    def to_json(self, meta: dict | None = None, indent: int = 2) -> str:
        return json.dumps(self.to_dict(meta), indent=indent, sort_keys=False)

    def write_json(self, path, meta: dict | None = None) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json(meta))
            fh.write("\n")


class TracingEvaluator:
    """Evaluator proxy that carries a :class:`Tracer`.

    Composes with (and auto-wraps in) a
    :class:`~repro.ckks.instrumentation.CountingEvaluator`, whose live
    counter feeds the per-span HE-op deltas; every evaluator method is
    delegated untouched, so the homomorphic computation is bit-identical
    with or without the wrapper::

        tev = TracingEvaluator(enc.ev)
        enc.forward_shards(cts, ev=tev)
        tev.tracer.write_json("trace.json", meta={"model": "toy_resnet"})

    ``reset()`` (delegated to the counter) does *not* clear the tracer;
    call ``tracer.reset()`` to start a fresh trace.
    """

    def __init__(self, inner, tracer: Tracer | None = None):
        from repro.ckks.instrumentation import CountingEvaluator

        if not isinstance(inner, CountingEvaluator):
            inner = CountingEvaluator(inner)
        self.counting = inner
        if tracer is None:
            tracer = Tracer(ctx=inner.ctx, counts=inner.counts)
        else:
            tracer.ctx = tracer.ctx or inner.ctx
            if tracer._counts is None:
                tracer._counts = inner.counts
        self.tracer = tracer

    def __getattr__(self, name):
        return getattr(self.counting, name)
