"""Observability for compiled encrypted networks.

Hierarchical execution tracing (:mod:`repro.obs.trace`): wrap any
evaluator in :class:`TracingEvaluator` and every instrumented executor —
:meth:`~repro.fhe.network.EncryptedNetwork.forward` /
``forward_shards`` layer loops, the BSGS matvec, the
Paterson–Stockmeyer PAF path, pools and residual merges — records spans
with wall time, HE-op deltas and ciphertext level/scale state.  Traces
export to JSON (``tools/trace_to_chrome.py`` converts to Chrome
``chrome://tracing`` format) and feed the level/scale-slack report
(:mod:`repro.obs.report`) that CI gates against
``benchmarks/slack_baseline.json``.
"""

from repro.obs.report import (
    format_slack_report,
    slack_baseline_entry,
    slack_report,
)
from repro.obs.trace import TRACE_FORMAT, Span, Tracer, TracingEvaluator

__all__ = [
    "Span",
    "Tracer",
    "TracingEvaluator",
    "TRACE_FORMAT",
    "slack_report",
    "format_slack_report",
    "slack_baseline_entry",
]
