"""Repo-wide fixtures: the kernel-backend axis.

``backend`` parametrizes a test over every registered kernel backend
(``reference``, ``vectorized``, plus anything registered via
:func:`repro.ckks.backend.register_backend`).  All backends are
bit-identical by contract (docs/backends.md), so any correctness test
can take the fixture and run unchanged under each — the conformance
suite (``tests/fhe/test_backend_conformance.py``) pins the contract
itself down to the ciphertext bytes.

Session scope keeps same-backend tests grouped, so module-scoped
fixtures layered on top (e.g. the ckks evaluator runtime) are built
once per backend rather than once per test.
"""

import pytest

from repro.ckks.backend import available_backends


@pytest.fixture(scope="session", params=available_backends())
def backend(request):
    """Name of the kernel backend under test."""
    return request.param
