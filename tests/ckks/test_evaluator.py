"""Homomorphic-correctness tests for the CKKS evaluator and PAF evaluation."""

import numpy as np
import pytest

from repro.ckks import (
    CkksContext,
    CkksEvaluator,
    CkksParams,
    eval_composite_paf,
    eval_odd_poly,
    eval_paf_max,
    eval_paf_relu,
    keygen,
)
from repro.paf import get_paf
from repro.paf.polynomial import OddPolynomial
from repro.paf.relu import relu_mult_depth


@pytest.fixture(scope="module")
def rt(backend):
    # parametrized over every registered kernel backend (tests/conftest.py):
    # the whole homomorphic-correctness suite runs per backend, and the
    # conformance suite separately pins the outputs bit-identical
    ctx = CkksContext(CkksParams(n=1024, scale_bits=25, depth=10, backend=backend))
    keys = keygen(ctx, seed=0, galois_steps=(1, 3, "conj"))
    return ctx, CkksEvaluator(ctx, keys)


@pytest.fixture(scope="module")
def data(rt):
    ctx, _ = rt
    rng = np.random.default_rng(0)
    return rng.uniform(-1, 1, ctx.slots), rng.uniform(-1, 1, ctx.slots)


TOL = 5e-3


class TestBasicHomomorphism:
    def test_encrypt_decrypt(self, rt, data):
        ctx, ev = rt
        x, _ = data
        assert np.abs(ev.decrypt(ev.encrypt(x)) - x).max() < 1e-3

    def test_scalar_broadcast_encrypt(self, rt):
        ctx, ev = rt
        got = ev.decrypt(ev.encrypt(0.37))
        assert np.abs(got - 0.37).max() < 1e-3

    def test_add_sub_negate(self, rt, data):
        ctx, ev = rt
        x, y = data
        cx, cy = ev.encrypt(x), ev.encrypt(y)
        assert np.abs(ev.decrypt(ev.add(cx, cy)) - (x + y)).max() < TOL
        assert np.abs(ev.decrypt(ev.sub(cx, cy)) - (x - y)).max() < TOL
        assert np.abs(ev.decrypt(ev.negate(cx)) + x).max() < TOL

    def test_add_plain(self, rt, data):
        ctx, ev = rt
        x, _ = data
        got = ev.decrypt(ev.add_plain(ev.encrypt(x), 0.25))
        assert np.abs(got - (x + 0.25)).max() < TOL

    def test_mul_rescale(self, rt, data):
        ctx, ev = rt
        x, y = data
        out = ev.mul_rescale(ev.encrypt(x), ev.encrypt(y))
        assert np.abs(ev.decrypt(out) - x * y).max() < TOL
        assert out.level == ctx.max_level - 1

    def test_mul_plain_vector(self, rt, data):
        ctx, ev = rt
        x, y = data
        out = ev.mul_plain_rescale(ev.encrypt(x), y)
        assert np.abs(ev.decrypt(out) - x * y).max() < TOL

    def test_level_mismatch_rejected(self, rt, data):
        ctx, ev = rt
        x, y = data
        cx, cy = ev.encrypt(x), ev.encrypt(y)
        low = ev.mod_switch_to(cx, cx.level - 1)
        with pytest.raises(ValueError):
            ev.add(low, cy)
        with pytest.raises(ValueError):
            ev.mul(low, cy)

    def test_mod_switch_preserves_message(self, rt, data):
        ctx, ev = rt
        x, _ = data
        low = ev.mod_switch_to(ev.encrypt(x), 2)
        assert np.abs(ev.decrypt(low) - x).max() < TOL
        with pytest.raises(ValueError):
            ev.mod_switch_to(low, 5)

    def test_rescale_at_level_zero_rejected(self, rt, data):
        ctx, ev = rt
        x, _ = data
        bottom = ev.mod_switch_to(ev.encrypt(x), 0)
        with pytest.raises(ValueError):
            ev.rescale(bottom)

    def test_rotation(self, rt, data):
        ctx, ev = rt
        x, _ = data
        got = ev.decrypt(ev.rotate(ev.encrypt(x), 3))
        assert np.abs(got - np.roll(x, -3)).max() < TOL

    def test_missing_galois_key_raises(self, rt, data):
        ctx, ev = rt
        x, _ = data
        with pytest.raises(KeyError):
            ev.rotate(ev.encrypt(x), 7)

    def test_conjugate_real_is_identity(self, rt, data):
        ctx, ev = rt
        x, _ = data
        got = ev.decrypt(ev.conjugate(ev.encrypt(x)))
        assert np.abs(got - x).max() < TOL

    def test_deep_squaring_chain(self, rt, data):
        ctx, ev = rt
        x, _ = data
        c, val = ev.encrypt(x), x.copy()
        for _ in range(6):
            c = ev.rescale(ev.square(c))
            val = val * val
        assert np.abs(ev.decrypt(c) - val).max() < 5e-2


class TestHoistedRotations:
    """rotate_many must be *bit-identical* to per-step rotate: the digit
    decomposition commutes exactly with the Galois automorphism."""

    def test_bit_identical_to_rotate(self, rt, data):
        ctx, ev = rt
        x, _ = data
        ct = ev.encrypt(x)
        rots = ev.rotate_many(ct, [0, 1, 3])
        assert set(rots) == {0, 1, 3}
        for step, got in rots.items():
            ref = ev.rotate(ct, step)
            assert np.array_equal(got.c0.data, ref.c0.data)
            assert np.array_equal(got.c1.data, ref.c1.data)

    def test_decrypts_to_rolled_slots(self, rt, data):
        ctx, ev = rt
        x, _ = data
        rots = ev.rotate_many(ev.encrypt(x), [1, 3])
        for step, ct in rots.items():
            assert np.abs(ev.decrypt(ct) - np.roll(x, -step)).max() < TOL

    def test_trivial_steps_are_copies(self, rt, data):
        ctx, ev = rt
        x, _ = data
        ct = ev.encrypt(x)
        rots = ev.rotate_many(ct, [0, ctx.slots])
        for got in rots.values():
            assert got is not ct
            assert np.array_equal(got.c0.data, ct.c0.data)

    def test_works_below_top_level(self, rt, data):
        ctx, ev = rt
        x, _ = data
        ct = ev.rescale(ev.mul_plain(ev.encrypt(x), 0.5))
        got = ev.rotate_many(ct, [3])[3]
        ref = ev.rotate(ct, 3)
        assert np.array_equal(got.c1.data, ref.c1.data)

    def test_missing_key_raises_before_decomposing(self, rt, data):
        ctx, ev = rt
        x, _ = data
        with pytest.raises(KeyError):
            ev.rotate_many(ev.encrypt(x), [1, 7])

    def test_ntt_permutation_matches_coefficient_automorphism(self, rt):
        ctx, _ = rt
        rng = np.random.default_rng(3)
        p_idx = 0
        p = ctx.all_primes[p_idx]
        f = rng.integers(0, p, size=ctx.n).astype(np.int64)
        from repro.ckks.rns import RnsPoly

        poly = RnsPoly(ctx, f[None, :], [p_idx], is_ntt=False)
        for g in (5, 2 * ctx.n - 1, pow(5, 3, 2 * ctx.n)):
            via_coeff = poly.automorphism(g).to_ntt().data[0]
            via_perm = poly.to_ntt().data[0][ctx.galois_ntt_permutation(g)]
            assert np.array_equal(via_coeff, via_perm)


class TestEnsureGaloisSteps:
    def test_adds_missing_and_keeps_existing(self, rt, data):
        ctx, ev = rt
        x, _ = data
        keys = keygen(ctx, seed=0, galois_steps=(1,))
        g1 = keys.galois_element_for_step(ctx.n, 1)
        fam1 = keys.galois[g1]
        keys.ensure_galois_steps(ctx, (1, 2), seed=0)
        assert keys.galois[g1] is fam1              # idempotent for existing
        ev2 = CkksEvaluator(ctx, keys)
        got = ev2.decrypt(ev2.rotate(ev2.encrypt(x), 2))
        assert np.abs(got - np.roll(x, -2)).max() < TOL

    def test_same_keys_as_upfront_keygen(self, rt):
        """Growing the key set later is bit-identical to upfront keygen —
        including for non-zero keygen seeds (the chain remembers its own)."""
        ctx, _ = rt
        grown = keygen(ctx, seed=42, galois_steps=(1,))
        grown.ensure_galois_steps(ctx, (3,))
        upfront = keygen(ctx, seed=42, galois_steps=(1, 3))
        g3 = upfront.galois_element_for_step(ctx.n, 3)
        level = ctx.max_level
        for a, b in zip(grown.galois[g3].at_level(level), upfront.galois[g3].at_level(level)):
            assert np.array_equal(a.b.data, b.b.data)
            assert np.array_equal(a.a.data, b.a.data)


class TestPolyEval:
    def test_odd_poly_matches_plaintext(self, rt, data):
        ctx, ev = rt
        x, _ = data
        poly = OddPolynomial([1.5, -0.5, 0.25, -0.125])  # degree 7
        out = eval_odd_poly(ev, ev.encrypt(x), poly)
        assert np.abs(ev.decrypt(out) - poly(x)).max() < TOL
        assert ctx.max_level - out.level == poly.mult_depth

    def test_degree_one(self, rt, data):
        ctx, ev = rt
        x, _ = data
        poly = OddPolynomial([0.7])
        out = eval_odd_poly(ev, ev.encrypt(x), poly)
        assert np.abs(ev.decrypt(out) - 0.7 * x).max() < TOL
        assert ctx.max_level - out.level == 1

    def test_zero_coefficient_skipped(self, rt, data):
        ctx, ev = rt
        x, _ = data
        poly = OddPolynomial([1.5, 0.0, 0.25])
        out = eval_odd_poly(ev, ev.encrypt(x), poly)
        assert np.abs(ev.decrypt(out) - poly(x)).max() < TOL

    @pytest.mark.parametrize("form", ["f1g2", "f2g2", "f2g3", "alpha7", "f1f1g1g1"])
    def test_composite_matches_plaintext_and_depth(self, rt, data, form):
        ctx, ev = rt
        x, _ = data
        paf = get_paf(form)
        out = eval_composite_paf(ev, ev.encrypt(x), paf)
        assert np.abs(ev.decrypt(out) - paf(x)).max() < 5e-2
        assert ctx.max_level - out.level == paf.mult_depth

    def test_paf_relu_depth_and_value(self, rt, data):
        ctx, ev = rt
        x, _ = data
        paf = get_paf("f1f1g1g1")
        out = eval_paf_relu(ev, ev.encrypt(x), paf)
        ref = 0.5 * (x + paf(x) * x)
        assert np.abs(ev.decrypt(out) - ref).max() < 5e-2
        assert ctx.max_level - out.level == relu_mult_depth(paf)

    def test_paf_relu_with_static_scale(self, rt):
        ctx, ev = rt
        rng = np.random.default_rng(7)
        x = rng.uniform(-4, 4, ctx.slots)
        paf = get_paf("f1f1g1g1")
        out = eval_paf_relu(ev, ev.encrypt(x), paf, scale=4.0)
        ref = 0.5 * (x + paf(x / 4.0) * x)
        assert np.abs(ev.decrypt(out) - ref).max() < 0.2

    def test_paf_max(self, rt, data):
        ctx, ev = rt
        x, y = data
        paf = get_paf("f1g2")
        out = eval_paf_max(ev, ev.encrypt(x), ev.encrypt(y), paf, scale=2.0)
        d = (x - y) / 2.0
        ref = 0.5 * ((x + y) + (x - y) * paf(d))
        assert np.abs(ev.decrypt(out) - ref).max() < 5e-2
