"""Canonical-embedding encoder tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckks.context import CkksContext, CkksParams
from repro.ckks.encoder import CkksEncoder
from repro.ckks.rns import crt_compose_centered


@pytest.fixture(scope="module")
def enc():
    ctx = CkksContext(CkksParams(n=256, scale_bits=25, depth=2))
    return ctx, CkksEncoder(ctx)


class TestEmbedding:
    def test_roundtrip(self, enc):
        ctx, encoder = enc
        rng = np.random.default_rng(0)
        z = rng.uniform(-1, 1, ctx.slots)
        coeffs = encoder.embed(z)
        back = np.real(encoder.project(coeffs))
        np.testing.assert_allclose(back, z, atol=1e-9)

    def test_embedding_is_linear(self, enc):
        ctx, encoder = enc
        rng = np.random.default_rng(1)
        a = rng.uniform(-1, 1, ctx.slots)
        b = rng.uniform(-1, 1, ctx.slots)
        np.testing.assert_allclose(
            encoder.embed(a) + encoder.embed(b),
            encoder.embed(a + b),
            atol=1e-9,
        )

    def test_constant_embeds_to_constant_poly(self, enc):
        ctx, encoder = enc
        coeffs = encoder.embed(np.full(ctx.slots, 0.5))
        assert coeffs[0] == pytest.approx(0.5, abs=1e-9)
        np.testing.assert_allclose(coeffs[1:], 0.0, atol=1e-9)

    def test_too_many_values_rejected(self, enc):
        ctx, encoder = enc
        with pytest.raises(ValueError):
            encoder.embed(np.zeros(ctx.slots + 1))

    def test_encode_decode_roundtrip(self, enc):
        ctx, encoder = enc
        rng = np.random.default_rng(2)
        z = rng.uniform(-2, 2, ctx.slots)
        pt = encoder.encode(z, level=ctx.max_level)
        got = encoder.decode(pt.poly, pt.scale)
        np.testing.assert_allclose(got, z, atol=1e-5)

    def test_scalar_encode_is_constant_poly(self, enc):
        ctx, encoder = enc
        pt = encoder.encode(0.25, level=1)
        coeffs = crt_compose_centered(pt.poly)
        assert int(coeffs[0]) == round(0.25 * ctx.scale)
        assert all(int(c) == 0 for c in coeffs[1:])

    def test_partial_vector_zero_pads(self, enc):
        ctx, encoder = enc
        pt = encoder.encode(np.array([1.0, -1.0]), level=ctx.max_level)
        got = encoder.decode(pt.poly, pt.scale)
        np.testing.assert_allclose(got[:2], [1.0, -1.0], atol=1e-5)
        np.testing.assert_allclose(got[2:], 0.0, atol=1e-5)

    @given(st.floats(min_value=-4, max_value=4, allow_nan=False))
    @settings(max_examples=20, deadline=None)
    def test_scalar_roundtrip_property(self, value):
        ctx = CkksContext(CkksParams(n=64, scale_bits=25, depth=1))
        encoder = CkksEncoder(ctx)
        pt = encoder.encode(value, level=1)
        got = encoder.decode(pt.poly, pt.scale)
        np.testing.assert_allclose(got, value, atol=1e-5)
