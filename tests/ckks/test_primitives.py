"""Tests for primes, NTT and RNS polynomial arithmetic."""

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.ckks.context import CkksContext, CkksParams
from repro.ckks.ntt import NttPlan
from repro.ckks.primes import (
    generate_primes,
    generate_scale_tracking_primes,
    is_prime,
    primitive_root_of_unity,
)
from repro.ckks.rns import RnsPoly, crt_compose_centered, fast_base_convert


class TestPrimes:
    def test_is_prime_small(self):
        assert [is_prime(n) for n in [2, 3, 4, 5, 9, 97]] == [
            True,
            True,
            False,
            True,
            False,
            True,
        ]

    def test_is_prime_carmichael(self):
        assert not is_prime(561)
        assert not is_prime(1_373_653 - 1)

    def test_generated_primes_are_ntt_friendly(self):
        n = 256
        primes = generate_primes(n, [25, 25, 29])
        assert len(set(primes)) == 3
        for p in primes:
            assert is_prime(p)
            assert (p - 1) % (2 * n) == 0
            assert p < 2**30

    def test_primes_straddle_target(self):
        """Nearest-prime search keeps |p - 2^b| small (scale drift control)."""
        primes = generate_primes(1024, [25] * 8)
        offsets = [abs(p - 2**25) / 2**25 for p in primes]
        assert max(offsets) < 0.01

    def test_oversized_request_rejected(self):
        with pytest.raises(ValueError):
            generate_primes(1024, [35])

    def test_scale_tracking_chain_pins_canonical_schedule(self):
        """The adaptive chain keeps S_l ≈ Δ at *every* level of a deep
        chain, where nearest-to-Δ primes collapse double-exponentially."""
        n, bits, depth = 512, 27, 31
        delta = float(2**bits)
        tracked = generate_scale_tracking_primes(n, bits, depth)
        assert len(tracked) == depth + 2 and len(set(tracked)) == depth + 2
        for p in tracked:
            assert is_prime(p) and (p - 1) % (2 * n) == 0 and p < 2**30
        s = delta
        worst = 0.0
        for level in range(depth, 0, -1):
            s = s * s / tracked[level]
            worst = max(worst, abs(s - delta) / delta)
        assert worst < 1e-2  # bounded for any depth (one prime spacing-ish)

        # the nearest-to-Delta chain diverges at this depth — the whole
        # reason scale_tracking exists
        naive = generate_primes(n, [29] + [bits] * depth + [29])
        s = delta
        for level in range(depth, 0, -1):
            s = s * s / naive[level]
        # double-exponential collapse: underflows to 0 (or blows far past Δ)
        assert s == 0.0 or abs(s - delta) / delta > 1.0

    def test_scale_tracking_context_opt_in(self):
        tracked = CkksContext(
            CkksParams(n=256, scale_bits=25, depth=4, scale_tracking=True)
        )
        default = CkksContext(CkksParams(n=256, scale_bits=25, depth=4))
        assert len(tracked.q_chain) == len(default.q_chain) == 5

    def test_primitive_root(self):
        p = generate_primes(64, [25])[0]
        root = primitive_root_of_unity(128, p)
        assert pow(root, 128, p) == 1
        assert pow(root, 64, p) == p - 1


class TestNtt:
    @pytest.fixture(scope="class")
    def plan(self):
        p = generate_primes(64, [25])[0]
        return NttPlan(64, p)

    def test_roundtrip(self, plan):
        rng = np.random.default_rng(0)
        a = rng.integers(0, plan.p, plan.n)
        np.testing.assert_array_equal(plan.inverse(plan.forward(a)), a)

    def test_batch_roundtrip(self, plan):
        rng = np.random.default_rng(1)
        a = rng.integers(0, plan.p, (3, 5, plan.n))
        np.testing.assert_array_equal(plan.inverse(plan.forward(a)), a)

    def test_negacyclic_multiply_matches_naive(self, plan):
        rng = np.random.default_rng(2)
        n, p = plan.n, plan.p
        a = rng.integers(0, p, n)
        b = rng.integers(0, p, n)
        ref = np.zeros(n, dtype=object)
        for i in range(n):
            for j in range(n):
                k, s = i + j, 1
                if k >= n:
                    k, s = k - n, -1
                ref[k] += s * int(a[i]) * int(b[j])
        ref = np.array([int(v) % p for v in ref], dtype=np.int64)
        np.testing.assert_array_equal(plan.negacyclic_multiply(a, b), ref)

    def test_x_times_x_n_minus_1_is_minus_one(self, plan):
        """X * X^(N-1) = X^N = -1 in the negacyclic ring."""
        n, p = plan.n, plan.p
        x = np.zeros(n, dtype=np.int64)
        x[1] = 1
        xn1 = np.zeros(n, dtype=np.int64)
        xn1[n - 1] = 1
        prod = plan.negacyclic_multiply(x, xn1)
        expected = np.zeros(n, dtype=np.int64)
        expected[0] = p - 1
        np.testing.assert_array_equal(prod, expected)

    def test_linearity(self, plan):
        rng = np.random.default_rng(3)
        a = rng.integers(0, plan.p, plan.n)
        b = rng.integers(0, plan.p, plan.n)
        lhs = plan.forward((a + b) % plan.p)
        rhs = (plan.forward(a) + plan.forward(b)) % plan.p
        np.testing.assert_array_equal(lhs, rhs)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            NttPlan(48, 97)


@pytest.fixture(scope="module")
def ctx():
    return CkksContext(CkksParams(n=128, scale_bits=25, depth=3))


class TestRnsPoly:
    def test_add_mul_homomorphism(self, ctx):
        """RNS ops match big-integer ring ops via CRT composition."""
        rng = np.random.default_rng(0)
        chain = list(range(3))
        a = RnsPoly.from_small_coeffs(ctx, rng.integers(-50, 50, ctx.n), chain)
        b = RnsPoly.from_small_coeffs(ctx, rng.integers(-50, 50, ctx.n), chain)
        prod = (a.to_ntt() * b.to_ntt()).to_coeff()
        big = crt_compose_centered(prod)
        # naive negacyclic product of the small inputs
        av = crt_compose_centered(a)
        bv = crt_compose_centered(b)
        n = ctx.n
        ref = np.zeros(n, dtype=object)
        for i in range(n):
            for j in range(n):
                k, s = i + j, 1
                if k >= n:
                    k, s = k - n, -1
                ref[k] += s * int(av[i]) * int(bv[j])
        np.testing.assert_array_equal(big.astype(np.int64), ref.astype(np.int64))

    def test_basis_mismatch_rejected(self, ctx):
        a = RnsPoly.zero(ctx, [0, 1])
        b = RnsPoly.zero(ctx, [0, 1, 2])
        with pytest.raises(ValueError):
            a + b

    def test_domain_mismatch_rejected(self, ctx):
        a = RnsPoly.zero(ctx, [0, 1], is_ntt=True)
        b = RnsPoly.zero(ctx, [0, 1], is_ntt=False)
        with pytest.raises(ValueError):
            a + b

    def test_mul_requires_ntt(self, ctx):
        a = RnsPoly.zero(ctx, [0], is_ntt=False)
        with pytest.raises(ValueError):
            a * a

    def test_neg_add_is_zero(self, ctx):
        rng = np.random.default_rng(1)
        a = RnsPoly.from_small_coeffs(ctx, rng.integers(-9, 9, ctx.n), [0, 1])
        z = a + (-a)
        assert not z.data.any()

    def test_crt_compose_centered_range(self, ctx):
        rng = np.random.default_rng(2)
        coeffs = rng.integers(-1000, 1000, ctx.n)
        a = RnsPoly.from_small_coeffs(ctx, coeffs, [0, 1, 2])
        np.testing.assert_array_equal(
            crt_compose_centered(a).astype(np.int64), coeffs
        )

    def test_fast_base_convert_small_values(self, ctx):
        """For |x| << Q the approximate conversion is exact or off by Q."""
        rng = np.random.default_rng(3)
        coeffs = rng.integers(-1000, 1000, ctx.n)
        a = RnsPoly.from_small_coeffs(ctx, coeffs, [0, 1])
        target = len(ctx.all_primes) - 1
        p_t = ctx.all_primes[target]
        got = fast_base_convert(a, target)
        q = int(ctx.all_primes[0]) * int(ctx.all_primes[1])
        diff = (got - coeffs) % p_t
        allowed = {0} | {q % p_t, (2 * q) % p_t}
        assert set(np.unique(diff)).issubset(allowed)

    def test_automorphism_identity(self, ctx):
        rng = np.random.default_rng(4)
        a = RnsPoly.from_small_coeffs(ctx, rng.integers(-9, 9, ctx.n), [0])
        np.testing.assert_array_equal(a.automorphism(1).data, a.data)

    def test_automorphism_composition(self, ctx):
        """σ_g ∘ σ_h = σ_{gh mod 2N}."""
        rng = np.random.default_rng(5)
        a = RnsPoly.from_small_coeffs(ctx, rng.integers(-9, 9, ctx.n), [0])
        g, h = 5, 25
        lhs = a.automorphism(g).automorphism(h)
        rhs = a.automorphism(g * h % (2 * ctx.n))
        np.testing.assert_array_equal(lhs.data, rhs.data)

    def test_automorphism_requires_coeff_domain(self, ctx):
        a = RnsPoly.zero(ctx, [0], is_ntt=True)
        with pytest.raises(ValueError):
            a.automorphism(5)


class TestContext:
    def test_chain_structure(self, ctx):
        assert len(ctx.q_chain) == 4  # q0 + 3 scale primes
        assert ctx.max_level == 3
        assert ctx.slots == 64

    def test_paper_grade_matches_seal_config(self):
        params = CkksParams.paper_grade()
        assert params.n == 32768
        # the paper's SEAL setting: 881-bit coefficient modulus (we land
        # within ~1% with 30/28-bit primes under the int64 cap)
        total_bits = (
            params.first_prime_bits
            + params.scale_bits * params.depth
            + params.special_prime_bits
        )
        assert abs(total_bits - 881) <= 15

    def test_security_report_flags_toy_params(self):
        from repro.ckks.security import security_report

        toy = CkksContext(CkksParams(n=1024, scale_bits=25, depth=3))
        report = security_report(toy)
        assert not report.secure_128
        assert "NOT" in report.message

    def test_security_report_accepts_standard_row(self):
        from repro.ckks.security import MAX_LOGQP_128

        assert MAX_LOGQP_128[32768] == 881  # the paper's exact setting
