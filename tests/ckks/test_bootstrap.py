"""Level refresh (simplified bootstrapping): properties and conformance.

Three layers of evidence that a refresh is safe to splice into a
compiled network (``docs/bootstrapping.md``):

* **hypothesis properties** over the evalmod pipeline's two halves —
  the CtS/StC linear maps must invert each other exactly (up to encode
  rounding) *without* EvalMod in between, and EvalMod itself must
  approximate ``sin(2π·t)`` on range-reduced wrapped arguments for
  every admissible integer wrap ``I ∈ [-K, K]``;
* **end-to-end gates** — both methods refresh real ciphertexts back to
  their target level on the canonical scale schedule, and the
  precision gate actually trips (``RefreshPrecisionError``) rather
  than passing corrupted ciphertexts downstream;
* **cross-backend conformance** — a refresh, like every other op, must
  be bit-identical across registered kernel backends.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.ckks import CkksContext, CkksEvaluator, CkksParams, keygen
from repro.ckks.backend import available_backends
from repro.ckks.bootstrap import (
    RefreshPrecisionError,
    canonical_scale,
    coeff_to_slot,
    eval_mod,
    plan_refresh,
    refresh,
    slot_to_coeff,
)

# q0/scale = 2^4: comfortably past evalmod's >= 8 floor, and depth 14
# covers the n=32 pipeline (CtS 2 + cos 4 + 5 double angles + StC 1 = 12)
_PARAMS = {n: CkksParams(n=n, scale_bits=25, depth=14) for n in (16, 32)}
_runtime_cache: dict = {}


def runtime(n, method="evalmod"):
    """Shared (ctx, ev, plan) per ring size — keygen dominates otherwise."""
    key = (n, method)
    if key not in _runtime_cache:
        ctx = CkksContext(_PARAMS[n])
        plan = plan_refresh(ctx, method=method)
        ev = CkksEvaluator(
            ctx, keygen(ctx, seed=0, galois_steps=plan.galois_steps())
        )
        _runtime_cache[key] = (ctx, ev, plan)
    return _runtime_cache[key]


vals = st.lists(
    st.floats(min_value=-1.0, max_value=1.0, allow_nan=False, width=32),
    min_size=1,
    max_size=8,
)


class TestCtsStcRoundTrip:
    @given(st.sampled_from([16, 32]), vals)
    @settings(max_examples=10, deadline=None)
    def test_linear_maps_invert(self, n, xs):
        """StC(2^r · CtS(ct)) recovers the message without EvalMod.

        CtS plants ``2π·coeff/(2^r·q0)`` in the slots; undoing the
        range reduction with a plaintext ``2^r`` hands StC exactly the
        small-angle ``sin(2πt) ≈ 2πt`` it expects, so the two maps
        compose to the identity — the trig step is the *only* lossy
        stage of the pipeline.
        """
        ctx, ev, plan = runtime(n)
        v = np.zeros(ctx.slots)
        v[: len(xs)] = xs
        assume(np.max(np.abs(v)) > 1e-3)  # rel-err floor needs signal
        ct = ev.encrypt(v)
        ct_a, ct_b = coeff_to_slot(ev, ct, plan)
        undo = float(2**plan.num_double_angles)
        ct_a = ev.mul_plain_rescale(ct_a, undo)
        ct_b = ev.mul_plain_rescale(ct_b, undo)
        back = slot_to_coeff(ev, ct_a, ct_b, plan, ct.scale)
        got = ev.decrypt(back)
        np.testing.assert_allclose(got, v, atol=2e-3)

    def test_galois_steps_cover_both_maps(self):
        ctx, ev, plan = runtime(16)
        steps = plan.galois_steps()
        assert steps[-1] == "conj"
        assert set(steps[:-1]) >= set(plan.cts_plan.rotation_steps())
        assert set(steps[:-1]) >= set(plan.stc_plan.rotation_steps())


class TestEvalModAccuracy:
    @given(
        st.sampled_from([16, 32]),
        st.lists(
            st.floats(min_value=-0.25, max_value=0.25, allow_nan=False, width=32),
            min_size=1,
            max_size=8,
        ),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=10, deadline=None)
    def test_sin_recovered_for_every_wrap(self, n, ts, wrap_seed):
        """``u = 2π(t + I)/2^r`` must come back as ``sin(2πt)``, any I.

        The whole point of EvalMod: the ``q0·I`` wrap introduced by
        ModRaise is an *unknown* integer in ``[-K, K]`` — the cosine's
        periodicity must delete it for every value, not just small ones.
        """
        ctx, ev, plan = runtime(n)
        t = np.zeros(ctx.slots)
        t[: len(ts)] = ts
        wraps = np.random.default_rng(wrap_seed).integers(
            -plan.mod_k, plan.mod_k + 1, ctx.slots
        )
        u = 2.0 * np.pi * (t + wraps) / 2.0**plan.num_double_angles
        got = ev.decrypt(eval_mod(ev, ev.encrypt(u), plan))
        # stage bound: the Chebyshev fit is worst at maximal wrap |I|=K
        # (~2e-2 there, plus fresh-encryption noise), and must stay
        # under evalmod's end-to-end rtol default of 5e-2
        np.testing.assert_allclose(got, np.sin(2.0 * np.pi * t), atol=3.5e-2)


class TestRefreshEndToEnd:
    @pytest.mark.parametrize("method", ["recrypt", "evalmod"])
    def test_refresh_restores_level_on_canonical_scale(self, method):
        ctx, ev, plan = runtime(32, method)
        rng = np.random.default_rng(5)
        v = rng.uniform(-1.0, 1.0, ctx.slots)
        ct = ev.encrypt(v)
        # burn most of the chain first, as a deep network would
        low = ev.mod_switch_to(ct, 1)
        out = refresh(ev, low, plan)
        assert out.level == plan.target_level > low.level
        assert out.scale == canonical_scale(ctx, out.level)
        got = ev.decrypt(out)
        rel = np.max(np.abs(got - v)) / np.max(np.abs(v))
        assert rel <= plan.rtol

    def test_recrypt_costs_no_pipeline_levels(self):
        ctx, ev, plan = runtime(16, "recrypt")
        assert plan.pipeline_levels == 0
        assert plan.target_level == ctx.max_level
        assert plan.galois_steps() == ()

    def test_precision_gate_trips(self):
        """An unmeetable gate raises instead of passing bad ciphertexts."""
        ctx, ev, _ = runtime(32)
        plan = plan_refresh(ctx, method="evalmod", rtol=1e-12)
        v = np.random.default_rng(6).uniform(-1.0, 1.0, ctx.slots)
        with pytest.raises(RefreshPrecisionError) as exc:
            refresh(ev, ev.encrypt(v), plan)
        assert exc.value.rel_err > exc.value.rtol == 1e-12
        assert exc.value.method == "evalmod"

    def test_evalmod_rejects_scale_crowding_q0(self):
        ctx = CkksContext(CkksParams(n=16, scale_bits=28, depth=14))
        with pytest.raises(ValueError, match="q0/scale"):
            plan_refresh(ctx, method="evalmod")

    def test_unknown_method_rejected(self):
        ctx, _, _ = runtime(16)
        with pytest.raises(ValueError, match="unknown refresh method"):
            plan_refresh(ctx, method="modswitch")


class TestRefreshCostModel:
    """The latency model's refresh pricing must match measured counts.

    ``refresh_op_counts`` is what ``analytic_refresh_cost`` dots with the
    pinned per-op timings; if it drifts from what :func:`refresh`
    actually executes, the compile-time refresh-vs-deepen tradeoff is
    priced on fiction.
    """

    def _measure(self, n, method):
        from repro.ckks.instrumentation import CountingEvaluator

        ctx, ev, plan = runtime(n, method)
        v = np.random.default_rng(7).uniform(-0.25, 0.25, ctx.slots)
        low = ev.mod_switch_to(ev.encrypt(v), 1)
        counting = CountingEvaluator(ev)
        refresh(counting, low, plan)
        return plan, {k: int(c) for k, c in counting.counts.items() if c}

    @pytest.mark.parametrize("n", [16, 32])
    def test_evalmod_model_is_op_exact(self, n):
        from repro.fhe.latency import refresh_op_counts

        plan, measured = self._measure(n, "evalmod")
        assert refresh_op_counts(plan) == measured

    def test_recrypt_model_prices_the_unmetered_encode(self):
        from repro.fhe.latency import refresh_op_counts

        plan, measured = self._measure(16, "recrypt")
        # the gate's two decryptions are evaluator ops; the re-encode at
        # the top of the chain is an encoder call the counting proxy
        # cannot see, priced at the encrypt rate on top of them
        assert measured == {"decrypt": 2}
        assert refresh_op_counts(plan) == {"decrypt": 2, "encrypt": 1}

    def test_evalmod_refresh_costs_more_than_recrypt(self):
        from repro.fhe.latency import REFERENCE_MICROS, analytic_refresh_cost

        ctx, _, evalmod = runtime(32, "evalmod")
        _, _, recrypt = runtime(32, "recrypt")
        assert analytic_refresh_cost(evalmod, REFERENCE_MICROS) > 10 * (
            analytic_refresh_cost(recrypt, REFERENCE_MICROS)
        )


class TestRefreshBackendConformance:
    @pytest.mark.parametrize("method", ["recrypt", "evalmod"])
    def test_refresh_bit_identical_across_backends(self, method):
        """One encryption, every backend: identical refreshed bits.

        The plan is rebuilt per backend so diagonal *encoding* (NTT of
        the plaintext matrices) is conformance-tested too, not just the
        homomorphic pipeline.
        """
        ctx, ev, _ = runtime(32, method)
        v = np.random.default_rng(7).uniform(-1.0, 1.0, ctx.slots)
        ct = ev.encrypt(v)  # shared input: encryption advances an RNG
        orig = ctx.backend.name
        outs = {}
        try:
            for name in available_backends():
                ctx.set_backend(name)
                outs[name] = refresh(ev, ct, plan_refresh(ctx, method=method))
        finally:
            ctx.set_backend(orig)
        assert len(outs) >= 2
        ref = outs["reference"]
        for name, got in outs.items():
            assert got.level == ref.level and got.scale == ref.scale
            assert np.array_equal(got.c0.data, ref.c0.data), name
            assert np.array_equal(got.c1.data, ref.c1.data), name
