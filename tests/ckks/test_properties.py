"""Property-based homomorphism tests for CKKS (hypothesis).

A single small context is shared; hypothesis drives the plaintext values.
Each property asserts the homomorphic identity decrypt(op(Enc(x))) ≈ op(x).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckks import CkksContext, CkksEvaluator, CkksParams, keygen

_ctx = None
_ev = None


def runtime():
    global _ctx, _ev
    if _ev is None:
        _ctx = CkksContext(CkksParams(n=256, scale_bits=25, depth=4))
        _ev = CkksEvaluator(_ctx, keygen(_ctx, seed=0, galois_steps=(1,)))
    return _ctx, _ev


vals = st.lists(
    st.floats(min_value=-1, max_value=1, allow_nan=False, width=32),
    min_size=4,
    max_size=8,
)


class TestHomomorphismProperties:
    @given(vals, vals)
    @settings(max_examples=15, deadline=None)
    def test_addition(self, xs, ys):
        ctx, ev = runtime()
        n = min(len(xs), len(ys))
        x, y = np.array(xs[:n]), np.array(ys[:n])
        got = ev.decrypt(ev.add(ev.encrypt(x), ev.encrypt(y)), num_values=n)
        np.testing.assert_allclose(got, x + y, atol=5e-3)

    @given(vals, vals)
    @settings(max_examples=10, deadline=None)
    def test_multiplication(self, xs, ys):
        ctx, ev = runtime()
        n = min(len(xs), len(ys))
        x, y = np.array(xs[:n]), np.array(ys[:n])
        got = ev.decrypt(ev.mul_rescale(ev.encrypt(x), ev.encrypt(y)), num_values=n)
        np.testing.assert_allclose(got, x * y, atol=5e-3)

    @given(vals, st.floats(min_value=-2, max_value=2, allow_nan=False))
    @settings(max_examples=10, deadline=None)
    def test_plain_scalar_mul(self, xs, c):
        ctx, ev = runtime()
        x = np.array(xs)
        got = ev.decrypt(
            ev.mul_plain_rescale(ev.encrypt(x), c), num_values=len(x)
        )
        np.testing.assert_allclose(got, c * x, atol=5e-3)

    @given(vals)
    @settings(max_examples=10, deadline=None)
    def test_negation_involution(self, xs):
        ctx, ev = runtime()
        x = np.array(xs)
        ct = ev.encrypt(x)
        got = ev.decrypt(ev.negate(ev.negate(ct)), num_values=len(x))
        np.testing.assert_allclose(got, x, atol=5e-3)

    @given(vals)
    @settings(max_examples=8, deadline=None)
    def test_distributivity(self, xs):
        """Enc(x)*(Enc(y)+Enc(z)) ≈ x*(y+z) with y=x, z=-0.5x."""
        ctx, ev = runtime()
        x = np.array(xs)
        cx = ev.encrypt(x)
        cy = ev.encrypt(x)
        cz = ev.encrypt(-0.5 * x)
        got = ev.decrypt(ev.mul_rescale(cx, ev.add(cy, cz)), num_values=len(x))
        np.testing.assert_allclose(got, x * (0.5 * x), atol=5e-3)

    @given(st.integers(min_value=0, max_value=5))
    @settings(max_examples=6, deadline=None)
    def test_rotation_matches_roll(self, shift):
        ctx, ev = runtime()
        rng = np.random.default_rng(shift)
        x = rng.uniform(-1, 1, ctx.slots)
        ct = ev.encrypt(x)
        rotated = ct
        for _ in range(shift):
            rotated = ev.rotate(rotated, 1)
        got = ev.decrypt(rotated)
        np.testing.assert_allclose(got, np.roll(x, -shift), atol=2e-2)
