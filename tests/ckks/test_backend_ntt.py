"""Property-based tests for the limb-batched NTT kernels (hypothesis).

The vectorized backend's :func:`_batched_ntt_forward` /
:func:`_batched_ntt_inverse` are the hot kernels behind every
encrypted op, so their algebra is pinned directly against ground truth,
over hypothesis-driven ring sizes, prime sets, batch shapes and data:

* roundtrip — ``inverse(forward(x)) == x`` exactly;
* reference equality — batched output matches the per-limb
  :class:`~repro.ckks.ntt.NttPlan` (the reference backend's kernel)
  row for row, byte for byte;
* convolution — pointwise products in the NTT domain invert to the
  schoolbook O(n²) negacyclic convolution;
* linearity — ``F(a·x + b·y) == a·F(x) + b·F(y) (mod p)``;
* batch-shape invariance — stacking rows or limbs never changes any
  individual row's transform (this crosses the kernel's internal
  limb-major/broadcast layout threshold, so both code paths are pinned).

Everything is exact integer arithmetic: every assertion is equality,
not tolerance.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckks.backend import _batched_ntt_forward, _batched_ntt_inverse
from repro.ckks.ntt import NttPlan
from repro.ckks.primes import generate_primes

_tables_cache: dict = {}


def tables(n, bits):
    """(primes, plans, psi_rev, psi_inv_rev, n_inv) for ring size ``n``
    and the given per-limb prime bit sizes (memoised — prime search and
    table building dominate the test runtime otherwise)."""
    key = (n, bits)
    if key not in _tables_cache:
        primes = generate_primes(n, list(bits))
        plans = [NttPlan.get(n, p) for p in primes]
        _tables_cache[key] = (
            np.array(primes, dtype=np.int64),
            plans,
            np.stack([pl.psi_rev for pl in plans]),
            np.stack([pl.psi_inv_rev for pl in plans]),
            np.array([pl.n_inv for pl in plans], dtype=np.int64),
        )
    return _tables_cache[key]


def random_rows(seed, batch, primes, n):
    """Canonical residue rows ``(batch, limbs, n)``."""
    rng = np.random.default_rng(seed)
    raw = rng.integers(0, 2**62, size=(batch, primes.size, n))
    return (raw % primes[None, :, None]).astype(np.int64)


# ring size × per-limb prime bits × batch size × data seed.  Batch spans
# 1..4 to cross the limb-major layout threshold; bit sizes straddle the
# scale/special range the real parameter sets use.
cases = st.tuples(
    st.sampled_from([8, 16, 32, 64]),
    st.lists(st.sampled_from([20, 24, 26, 28, 29]), min_size=1, max_size=3).map(tuple),
    st.integers(1, 4),
    st.integers(0, 10_000),
)


def schoolbook_negacyclic(a, b, p, n):
    """O(n²) ground truth: product in Z_p[X]/(X^n + 1), python ints."""
    c = [0] * n
    for i in range(n):
        ai = int(a[i])
        for j in range(n):
            v = ai * int(b[j])
            if i + j < n:
                c[i + j] += v
            else:
                c[i + j - n] -= v
    return np.array([v % p for v in c], dtype=np.int64)


class TestBatchedNttProperties:
    @given(cases)
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_exact(self, case):
        n, bits, batch, seed = case
        primes, _, psi, psi_inv, n_inv = tables(n, bits)
        x = random_rows(seed, batch, primes, n)
        y = _batched_ntt_forward(x, psi, primes, n)
        back = _batched_ntt_inverse(y, psi_inv, n_inv, primes, n)
        assert np.array_equal(back, x)

    @given(cases)
    @settings(max_examples=25, deadline=None)
    def test_matches_per_limb_reference(self, case):
        n, bits, batch, seed = case
        primes, plans, psi, psi_inv, n_inv = tables(n, bits)
        x = random_rows(seed, batch, primes, n)
        fwd = _batched_ntt_forward(x, psi, primes, n)
        inv = _batched_ntt_inverse(fwd, psi_inv, n_inv, primes, n)
        for b in range(batch):
            for i, plan in enumerate(plans):
                assert np.array_equal(fwd[b, i], plan.forward(x[b, i]))
                assert np.array_equal(inv[b, i], plan.inverse(fwd[b, i]))

    @given(cases)
    @settings(max_examples=10, deadline=None)
    def test_pointwise_product_is_negacyclic_convolution(self, case):
        n, bits, _, seed = case
        primes, _, psi, psi_inv, n_inv = tables(n, bits)
        a = random_rows(seed, 1, primes, n)
        b = random_rows(seed + 1, 1, primes, n)
        fa = _batched_ntt_forward(a, psi, primes, n)
        fb = _batched_ntt_forward(b, psi, primes, n)
        prod = fa * fb % primes[None, :, None]  # < 2^60, no overflow
        got = _batched_ntt_inverse(prod, psi_inv, n_inv, primes, n)
        for i, p in enumerate(primes):
            want = schoolbook_negacyclic(a[0, i], b[0, i], int(p), n)
            assert np.array_equal(got[0, i], want)

    @given(cases, st.integers(0, 2**29), st.integers(0, 2**29))
    @settings(max_examples=15, deadline=None)
    def test_linearity(self, case, s, t):
        n, bits, batch, seed = case
        primes, _, psi, _, _ = tables(n, bits)
        x = random_rows(seed, batch, primes, n)
        y = random_rows(seed + 1, batch, primes, n)
        pcol = primes[None, :, None]
        combo = (s % pcol * x + t % pcol * y) % pcol  # each term < 2^60
        lhs = _batched_ntt_forward(combo, psi, primes, n)
        fx = _batched_ntt_forward(x, psi, primes, n)
        fy = _batched_ntt_forward(y, psi, primes, n)
        rhs = (s % pcol * fx + t % pcol * fy) % pcol
        assert np.array_equal(lhs, rhs)

    @given(cases)
    @settings(max_examples=15, deadline=None)
    def test_batch_and_limb_stacking_invariance(self, case):
        n, bits, batch, seed = case
        primes, _, psi, psi_inv, n_inv = tables(n, bits)
        x = random_rows(seed, batch, primes, n)
        full = _batched_ntt_forward(x, psi, primes, n)
        for b in range(batch):
            # one batch row alone transforms identically
            row = _batched_ntt_forward(x[b : b + 1], psi, primes, n)
            assert np.array_equal(row[0], full[b])
        for i in range(primes.size):
            # one limb alone (1-limb tables) transforms identically
            limb = _batched_ntt_forward(
                x[:, i : i + 1, :], psi[i : i + 1], primes[i : i + 1], n
            )
            assert np.array_equal(limb[:, 0], full[:, i])

    @given(cases)
    @settings(max_examples=10, deadline=None)
    def test_no_input_mutation(self, case):
        n, bits, batch, seed = case
        primes, _, psi, psi_inv, n_inv = tables(n, bits)
        x = random_rows(seed, batch, primes, n)
        kept = x.copy()
        y = _batched_ntt_forward(x, psi, primes, n)
        assert np.array_equal(x, kept)
        kept_y = y.copy()
        _batched_ntt_inverse(y, psi_inv, n_inv, primes, n)
        assert np.array_equal(y, kept_y)
