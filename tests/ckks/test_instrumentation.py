"""Tests for the op-counting evaluator + cost-model consistency.

The key assertion: the *measured* op counts of the depth-optimal encrypted
ReLU equal the counts predicted by ``repro.fhe.latency.paf_op_counts`` —
the analytic cost model and the implementation cannot drift apart.
"""

import numpy as np
import pytest

from repro.ckks import CkksContext, CkksEvaluator, CkksParams, eval_paf_relu, keygen
from repro.ckks.instrumentation import CountingEvaluator
from repro.fhe.latency import activation_op_counts, paf_op_counts
from repro.paf import get_paf


@pytest.fixture(scope="module")
def rt():
    ctx = CkksContext(CkksParams(n=256, scale_bits=25, depth=10))
    keys = keygen(ctx, seed=0)
    return ctx, CkksEvaluator(ctx, keys)


class TestCountingEvaluator:
    def test_counts_basic_ops(self, rt):
        ctx, ev = rt
        counting = CountingEvaluator(ev)
        x = np.linspace(-1, 1, ctx.slots)
        a = counting.encrypt(x)
        b = counting.encrypt(x)
        counting.add(a, b)
        counting.rescale(counting.mul(a, b))
        assert counting.counts["encrypt"] == 2
        assert counting.counts["add"] == 1
        assert counting.counts["mul"] == 1
        assert counting.counts["rescale"] == 1

    def test_reset(self, rt):
        ctx, ev = rt
        counting = CountingEvaluator(ev)
        counting.encrypt(np.zeros(ctx.slots))
        counting.reset()
        assert sum(counting.counts.values()) == 0

    def test_passthrough_attributes(self, rt):
        ctx, ev = rt
        counting = CountingEvaluator(ev)
        assert counting.ctx is ctx
        assert counting.encoder is ev.encoder

    @pytest.mark.parametrize("form", ["f1g2", "f2g2", "f1f1g1g1"])
    @pytest.mark.parametrize("reference", [False, True])
    def test_relu_matches_cost_model_counts(self, rt, form, reference):
        """Measured ct-mult / pt-mult counts == the analytic model's,
        on the Paterson–Stockmeyer path and the ladder reference alike."""
        ctx, ev = rt
        paf = get_paf(form)
        counting = CountingEvaluator(ev)
        ct = counting.encrypt(np.linspace(-1, 1, ctx.slots))
        counting.reset()
        eval_paf_relu(counting, ct, paf, reference=reference)
        predicted = activation_op_counts(paf, reference=reference)
        assert counting.counts["mul"] == predicted["ct_mult"]
        assert counting.nonscalar_mult_count == predicted["ct_mult"]
        # pt-mults: the model's leaf products; alignment corrections are
        # extra pt-mults the model books under rescale-noise, so measured
        # pt_mult >= predicted and the difference equals align corrections.
        extra = counting.counts["align_correction"]
        assert counting.counts["mul_plain"] == predicted["pt_mult"] + extra

    def test_ladder_model_alias(self):
        """``paf_op_counts`` is the reference model behind the new API."""
        paf = get_paf("f2g3")
        assert activation_op_counts(paf, reference=True) == paf_op_counts(paf)
