"""ServingMetrics: bounded buffers, gauges, histograms, Prometheus text."""

from collections import Counter

import pytest

from repro.serve.metrics import LATENCY_BUCKETS_MS, ServingMetrics


class TestBoundedBuffers:
    def test_sample_windows_are_bounded(self):
        m = ServingMetrics(max_samples=4)
        for i in range(10):
            m.record_batch(2, 0.01, [float(i), float(i) + 0.5])
        assert len(m.latencies_ms) == 4
        assert len(m.batch_sizes) == 4
        assert len(m.batch_seconds) == 4

    def test_totals_stay_exact_past_the_window(self):
        m = ServingMetrics(max_samples=4)
        for i in range(10):
            m.record_batch(3, 0.01, [10.0])
        s = m.snapshot()
        assert s["requests_total"] == 30
        assert s["batches_total"] == 10
        assert s["mean_batch_size"] == 3.0
        assert s["latency_ms"]["mean"] == 10.0
        assert m.latency_count == 10

    def test_max_latency_survives_eviction(self):
        m = ServingMetrics(max_samples=2)
        m.record_batch(1, 0.01, [500.0])   # evicted from the window...
        m.record_batch(1, 0.01, [1.0])
        m.record_batch(1, 0.01, [2.0])
        assert 500.0 not in m.latencies_ms
        assert m.snapshot()["latency_ms"]["max"] == 500.0  # ...but not the max

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            ServingMetrics(max_samples=0)


class TestGauges:
    def test_in_flight_counts_up_and_down(self):
        m = ServingMetrics()
        assert m.snapshot()["in_flight_batches"] == 0
        m.batch_started()
        m.batch_started()
        assert m.snapshot()["in_flight_batches"] == 2
        m.batch_finished()
        assert m.snapshot()["in_flight_batches"] == 1
        m.batch_finished()
        m.batch_finished()  # spurious finish clamps at zero
        assert m.snapshot()["in_flight_batches"] == 0

    def test_queue_depth_polls_the_bound_callable(self):
        m = ServingMetrics()
        assert m.snapshot()["queue_depth"] == 0  # unbound default
        depth = [7]
        m.bind_queue_depth(lambda: depth[0])
        assert m.snapshot()["queue_depth"] == 7
        depth[0] = 2
        assert m.snapshot()["queue_depth"] == 2

    def test_binding_survives_reset(self):
        m = ServingMetrics()
        m.bind_queue_depth(lambda: 5)
        m.reset()
        assert m.snapshot()["queue_depth"] == 5


class TestLayerHistograms:
    def test_layer_stats_accumulate(self):
        m = ServingMetrics()
        m.record_layer_seconds({"layer00:linear": 0.004, "layer01:paf": 0.030})
        m.record_layer_seconds({"layer00:linear": 0.006})
        s = m.snapshot()["layers"]
        assert s["layer00:linear"]["count"] == 2
        assert s["layer00:linear"]["mean_ms"] == pytest.approx(5.0)
        assert s["layer00:linear"]["max_ms"] == pytest.approx(6.0)
        assert s["layer01:paf"]["count"] == 1

    def test_layer_seconds_via_record_batch(self):
        m = ServingMetrics()
        m.record_batch(1, 0.05, [50.0], layer_seconds={"layer00:linear": 0.05})
        assert m.snapshot()["layers"]["layer00:linear"]["count"] == 1

    def test_histogram_buckets_are_cumulative(self):
        m = ServingMetrics()
        # 4ms and 6ms land in the 5ms and 10ms buckets respectively
        m.record_layer_seconds({"l": 0.004})
        m.record_layer_seconds({"l": 0.006})
        m.record_layer_seconds({"l": 99.0})  # beyond the last bound -> +Inf
        text = m.format_prometheus()
        assert 'layer_latency_ms_bucket{layer="l",le="5"} 1' in text
        assert 'layer_latency_ms_bucket{layer="l",le="10"} 2' in text
        assert 'layer_latency_ms_bucket{layer="l",le="1000"} 2' in text
        assert 'layer_latency_ms_bucket{layer="l",le="+Inf"} 3' in text
        assert 'layer_latency_ms_count{layer="l"} 3' in text


class TestPrometheusText:
    def test_exposition_carries_counters_and_gauges(self):
        m = ServingMetrics()
        m.bind_queue_depth(lambda: 3)
        m.batch_started()
        m.record_batch(
            2, 0.02, [15.0, 17.0], op_counts=Counter(rotate=4, mul=1)
        )
        text = m.format_prometheus()
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "repro_serve_requests_total 2" in text
        assert "repro_serve_batches_total 1" in text
        assert "repro_serve_queue_depth 3" in text
        assert "repro_serve_in_flight_batches 1" in text
        assert "repro_serve_request_latency_ms_count 2" in text
        assert 'repro_serve_he_ops_total{op="rotate"} 4' in text
        assert 'repro_serve_he_ops_total{op="mul"} 1' in text
        assert text.endswith("\n")

    def test_bucket_bounds_match_declared_schedule(self):
        m = ServingMetrics()
        m.record_layer_seconds({"l": 0.001})
        text = m.format_prometheus()
        for bound in LATENCY_BUCKETS_MS:
            assert f'le="{bound:g}"' in text

    def test_custom_prefix(self):
        m = ServingMetrics()
        assert "myapp_requests_total 0" in m.format_prometheus(prefix="myapp")


class TestFormat:
    def test_human_summary_includes_gauges_and_layers(self):
        m = ServingMetrics()
        m.bind_queue_depth(lambda: 1)
        m.record_batch(2, 0.02, [15.0, 17.0], layer_seconds={"l0": 0.01})
        text = m.format()
        assert "queue_depth=1" in text
        assert "in_flight=0" in text
        assert "layer l0" in text


class TestTenantSeries:
    def test_shed_and_error_counters_with_labels(self):
        m = ServingMetrics()
        m.record_shed(2, model="mlp", client="alice")
        m.record_error("poisoned", model="mlp", client="alice")
        m.record_error("worker_crash", 3)
        m.record_batch(2, 0.01, [5.0], model="mlp", client="alice")
        s = m.snapshot()
        assert s["shed_total"] == 2
        assert s["errors"] == {"poisoned": 1, "worker_crash": 3}
        assert s["tenants"]["mlp/alice"] == {
            "requests": 2,
            "batches": 1,
            "errors": 1,
            "shed": 2,
        }
        text = m.format_prometheus()
        assert "repro_serve_shed_total 2" in text
        assert 'repro_serve_request_errors_total{kind="poisoned"} 1' in text
        assert (
            'repro_serve_tenant_requests_total{model="mlp",client="alice"} 2'
            in text
        )

    def test_label_values_are_escaped(self):
        m = ServingMetrics()
        m.record_error('we"ird\nkind', model='m"1', client="a\\b")
        text = m.format_prometheus()
        assert '\\"' in text and "\\n" in text and "\\\\" in text
        # label values stay properly delimited: an even number of
        # *unescaped* quotes per line, and no raw newline inside a value
        import re

        for line in text.splitlines():
            assert len(re.findall(r'(?<!\\)"', line)) % 2 == 0


class TestPrometheusUnderConcurrency:
    def test_concurrent_updates_keep_exposition_parseable(self):
        """Writers hammer every mutator while readers render the
        exposition: each rendered line must parse as a comment or a
        ``name{labels} value`` sample, and gauges never go negative."""
        import re
        import threading

        m = ServingMetrics(max_samples=64)
        depth = [0]
        m.bind_queue_depth(lambda: depth[0])
        sample = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.e+-]+(e[+-][0-9]+)?$"
        )
        failures = []
        stop = threading.Event()

        def writer(seed):
            i = 0
            while not stop.is_set():
                m.batch_started()
                depth[0] = (seed + i) % 7  # gauge source wobbles, stays >= 0
                m.record_batch(
                    2,
                    0.001,
                    [1.0, 2.0],
                    op_counts=Counter(rotate=1),
                    layer_seconds={"l0": 0.001},
                    model=f"m{seed % 2}",
                    client="alice",
                )
                m.record_shed(model=f"m{seed % 2}", client="alice")
                m.record_error("execution", model=f"m{seed % 2}", client="alice")
                m.batch_finished()
                i += 1

        def reader():
            while not stop.is_set():
                text = m.format_prometheus()
                for line in text.splitlines():
                    if line.startswith("#"):
                        continue
                    if not sample.match(line):
                        failures.append(f"unparseable: {line!r}")
                        return
                    value = float(line.rsplit(" ", 1)[1])
                    name = line.split("{")[0].split(" ")[0]
                    if value < 0 and not name.endswith("_ms"):
                        failures.append(f"negative sample: {line!r}")
                        return

        writers = [threading.Thread(target=writer, args=(s,)) for s in range(3)]
        readers = [threading.Thread(target=reader) for _ in range(2)]
        for t in writers + readers:
            t.start()
        import time

        time.sleep(0.4)
        stop.set()
        for t in writers + readers:
            t.join(timeout=5.0)
        assert failures == []
        s = m.snapshot()
        assert s["in_flight_batches"] >= 0
        assert s["queue_depth"] >= 0
        assert s["requests_total"] == 2 * s["batches_total"]
