"""Pure block-layout math + parity with the ciphertext-level packing."""

import numpy as np
import pytest

from repro.serve.packing import (
    BlockLayout,
    layout_for,
    pack_batch,
    split_batches,
    unpack_blocks,
)


class TestBlockLayout:
    def test_geometry(self):
        lay = BlockLayout(size=8, slots=256)
        assert lay.stride == 16
        assert lay.max_batch == 16
        assert lay.offset(3) == 48

    def test_non_divisible_slots(self):
        # 256 // 12 = 21 blocks, 4 trailing slots unused
        lay = BlockLayout(size=6, slots=256)
        assert lay.stride == 12
        assert lay.max_batch == 21
        assert lay.offset(20) + lay.stride == 252

    def test_single_block_when_slots_tight(self):
        # stride exceeds slots: capacity degrades to one request
        lay = BlockLayout(size=6, slots=8)
        assert lay.max_batch == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            BlockLayout(size=0, slots=16)
        with pytest.raises(ValueError):
            BlockLayout(size=32, slots=16)
        with pytest.raises(ValueError):
            BlockLayout(size=4, slots=64).offset(8)


class TestPackUnpack:
    def layout(self):
        return BlockLayout(size=4, slots=32)

    def test_single_vector_replicated(self):
        lay = self.layout()
        x = np.array([1.0, 2.0, 3.0])
        packed = pack_batch([x], lay)
        np.testing.assert_array_equal(packed[:3], x)
        np.testing.assert_array_equal(packed[4:7], x)  # wraparound replica
        assert not packed[8:].any()

    def test_batch_of_max(self):
        lay = self.layout()
        xs = [np.full(4, float(b + 1)) for b in range(lay.max_batch)]
        packed = pack_batch(xs, lay)
        for b in range(lay.max_batch):
            off = lay.offset(b)
            np.testing.assert_array_equal(packed[off : off + 8], [b + 1.0] * 8)

    def test_non_divisible_width(self):
        # input shorter than size: tail of each half-block stays zero
        lay = self.layout()
        packed = pack_batch([[5.0], [7.0]], lay)
        assert packed[0] == 5.0 and packed[4] == 5.0
        assert packed[8] == 7.0 and packed[12] == 7.0
        assert packed.sum() == 24.0

    def test_roundtrip(self):
        lay = BlockLayout(size=5, slots=64)
        rng = np.random.default_rng(0)
        xs = rng.normal(size=(4, 5))
        packed = pack_batch(xs, lay)
        got = unpack_blocks(packed, lay, width=5, batch=4)
        np.testing.assert_array_equal(got, xs)

    def test_unpack_truncated_span(self):
        lay = self.layout()
        packed = pack_batch([[1.0, 2.0], [3.0, 4.0]], lay)
        # only the leading span up to the last needed slot is required
        got = unpack_blocks(packed[:10], lay, width=2, batch=2)
        np.testing.assert_array_equal(got, [[1.0, 2.0], [3.0, 4.0]])
        with pytest.raises(ValueError):
            unpack_blocks(packed[:9], lay, width=2, batch=2)

    def test_rejects_bad_batches(self):
        lay = self.layout()
        with pytest.raises(ValueError):
            pack_batch([], lay)
        with pytest.raises(ValueError):
            pack_batch([np.zeros(4)] * (lay.max_batch + 1), lay)
        with pytest.raises(ValueError):
            pack_batch([np.zeros(5)], lay)
        with pytest.raises(ValueError):
            unpack_blocks(np.zeros(32), lay, width=2, batch=0)


class TestSplitBatches:
    def test_chunks(self):
        assert split_batches(range(7), 3) == [[0, 1, 2], [3, 4, 5], [6]]
        assert split_batches([], 4) == []
        with pytest.raises(ValueError):
            split_batches([1], 0)


class TestParityWithEncryptedNetwork:
    def test_layout_matches_model(self, toy):
        _, enc = toy
        lay = layout_for(enc)
        assert lay.stride == enc.block_stride
        assert lay.max_batch == enc.max_batch

    def test_pack_matches_model(self, toy):
        _, enc = toy
        lay = layout_for(enc)
        rng = np.random.default_rng(3)
        xs = rng.normal(size=(5, 8))
        np.testing.assert_array_equal(pack_batch(xs, lay), enc.pack_batch(xs))
