"""Per-client key registry: isolation, dedup, deterministic derivation."""

import numpy as np
import pytest

from repro.serve.keys import (
    ClientKeyRegistry,
    UnknownClientError,
    client_seed,
    context_signature,
)


class TestRegistration:
    def test_register_is_idempotent(self):
        reg = ClientKeyRegistry()
        assert reg.register("alice") == "alice"
        assert reg.register("alice") == "alice"
        assert reg.clients == ["alice"]

    def test_register_rejects_seed_change(self):
        reg = ClientKeyRegistry()
        reg.register("alice", seed=7)
        reg.register("alice", seed=7)  # same seed fine
        with pytest.raises(ValueError, match="different seed"):
            reg.register("alice", seed=8)

    def test_register_rejects_empty_id(self):
        with pytest.raises(ValueError):
            ClientKeyRegistry().register("")

    def test_contains(self):
        reg = ClientKeyRegistry()
        reg.register("alice")
        assert "alice" in reg
        assert "bob" not in reg

    def test_unknown_client_raises(self, toy):
        _, enc = toy
        with pytest.raises(UnknownClientError):
            ClientKeyRegistry().chain_for("nobody", enc)

    def test_client_seed_deterministic_and_distinct(self):
        assert client_seed("alice") == client_seed("alice")
        assert client_seed("alice") != client_seed("bob")


class TestChains:
    def test_clients_get_distinct_secrets(self, toy):
        _, enc = toy
        reg = ClientKeyRegistry()
        reg.register("alice")
        reg.register("bob")
        a = reg.chain_for("alice", enc)
        b = reg.chain_for("bob", enc)
        assert not np.array_equal(a.secret.coeffs, b.secret.coeffs)
        # neither matches the model's own baked secret
        assert not np.array_equal(a.secret.coeffs, enc.keys.secret.coeffs)

    def test_chain_is_cached_and_covers_model_elements(self, toy):
        _, enc = toy
        reg = ClientKeyRegistry()
        reg.register("alice")
        chain1 = reg.chain_for("alice", enc)
        chain2 = reg.chain_for("alice", enc)
        assert chain1 is chain2
        assert set(enc.keys.galois) <= set(chain1.galois)

    def test_galois_dedup_on_second_pass(self, toy):
        _, enc = toy
        reg = ClientKeyRegistry()
        reg.register("alice")
        reg.chain_for("alice", enc)
        first = reg.stats()
        assert first["galois_generated"] == len(enc.keys.galois)
        assert first["galois_reused"] == 0
        # same model again: every element is already there
        reg.chain_for("alice", enc)
        second = reg.stats()
        assert second["galois_generated"] == first["galois_generated"]
        assert second["galois_reused"] == len(enc.keys.galois)

    def test_deterministic_rederivation(self, toy):
        """A restarted registry derives bit-identical client chains."""
        _, enc = toy
        chains = []
        for _ in range(2):
            reg = ClientKeyRegistry()
            reg.register("alice")
            chains.append(reg.chain_for("alice", enc))
        np.testing.assert_array_equal(
            chains[0].secret.coeffs, chains[1].secret.coeffs
        )

    def test_context_signature_groups_compatible_models(self, toy):
        _, enc = toy
        assert context_signature(enc.ctx) == context_signature(enc.ctx)


class TestEvaluators:
    def test_evaluator_round_trips_under_client_keys(self, toy):
        _, enc = toy
        reg = ClientKeyRegistry()
        reg.register("alice")
        ev = reg.evaluator_for("alice", enc)
        assert ev.encoder is enc.ev.encoder  # shared encoding cache
        x = np.linspace(-1, 1, 8)
        ct = ev.encrypt(x)
        np.testing.assert_allclose(ev.decrypt(ct, num_values=8), x, atol=1e-4)

    def test_cross_client_decrypt_is_garbage(self, toy):
        _, enc = toy
        reg = ClientKeyRegistry()
        reg.register("alice")
        reg.register("bob")
        ev_a = reg.evaluator_for("alice", enc)
        ev_b = reg.evaluator_for("bob", enc)
        x = np.linspace(-1, 1, 8)
        ct = ev_a.encrypt(x)
        wrong = ev_b.decrypt(ct, num_values=8)
        assert np.max(np.abs(wrong - x)) > 1.0  # nowhere near the plaintext

    def test_full_forward_under_client_keys_matches_reference(self, toy):
        model, enc = toy
        from repro.nn.tensor import Tensor

        reg = ClientKeyRegistry()
        reg.register("carol")
        ev = reg.evaluator_for("carol", enc)
        x = np.random.default_rng(11).normal(size=8)
        ct = enc.encrypt_batch([x], ev=ev)
        out = enc.forward(ct, ev=ev)
        logits = enc.decrypt_logits(out, 3, batch=1, ev=ev)[0]
        ref = model(Tensor(x.reshape(1, -1))).data.ravel()
        np.testing.assert_allclose(logits, ref, atol=1e-2)
