"""Block executors: ordering, conformance, bit-identical HE results.

The load-bearing property is at the bottom: a sharded forward scheduled
across threads or forked processes produces ciphertexts *bit-identical*
to serial execution — every HE op in the simulator is deterministic, so
an executor can only change wall time, never a single limb.
"""

import numpy as np
import pytest

from repro.serve.executor import (
    BlockExecutor,
    ProcessBlockExecutor,
    ThreadBlockExecutor,
    make_executor,
)


class TestMakeExecutor:
    def test_names_round_trip(self):
        for name, cls in [
            ("serial", BlockExecutor),
            ("thread", ThreadBlockExecutor),
            ("process", ProcessBlockExecutor),
        ]:
            with make_executor(name) as ex:
                assert type(ex) is cls
                assert ex.name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("gpu")


class TestOrdering:
    def test_serial_preserves_order(self):
        ex = BlockExecutor()
        assert ex.map_blocks([lambda i=i: i * i for i in range(7)]) == [
            i * i for i in range(7)
        ]

    def test_thread_preserves_order(self):
        with ThreadBlockExecutor(workers=4) as ex:
            # stagger completion so order-by-completion would scramble
            import time

            def task(i):
                time.sleep(0.02 * (5 - i) / 5)
                return i

            assert ex.map_blocks([lambda i=i: task(i) for i in range(5)]) == list(
                range(5)
            )

    def test_process_requires_ctx_for_multiple_tasks(self):
        ex = ProcessBlockExecutor(workers=2)
        with pytest.raises(ValueError, match="needs ctx"):
            ex.map_blocks([lambda: None, lambda: None])

    def test_process_single_task_runs_inline(self):
        # <= 1 task short-circuits serially — no ctx, no fork
        assert ProcessBlockExecutor(workers=2).map_blocks([lambda: 42]) == [42]


def _he_tasks(enc, ev, cts):
    """Deterministic per-ciphertext HE chains (the shard-block shape)."""

    def chain(ct):
        out = ev.rotate(ct, 1)
        out = ev.mul_plain(out, 0.5)
        out = ev.rescale(out)
        return ev.add(out, out)

    return [lambda ct=ct: chain(ct) for ct in cts]


class TestBitIdentity:
    @pytest.fixture()
    def he_case(self, toy):
        _, enc = toy
        ev = enc.ev
        rng = np.random.default_rng(5)
        cts = [enc.encrypt_batch([rng.normal(size=8)], ev=ev) for _ in range(4)]
        return enc, ev, cts

    @staticmethod
    def _assert_same(a, b):
        assert len(a) == len(b)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x.c0.data, y.c0.data)
            np.testing.assert_array_equal(x.c1.data, y.c1.data)
            assert (x.scale, x.level) == (y.scale, y.level)

    def test_thread_matches_serial(self, he_case):
        enc, ev, cts = he_case
        serial = BlockExecutor().map_blocks(_he_tasks(enc, ev, cts))
        with ThreadBlockExecutor(workers=4) as ex:
            threaded = ex.map_blocks(_he_tasks(enc, ev, cts), ctx=enc.ctx)
        self._assert_same(serial, threaded)

    def test_process_matches_serial(self, he_case):
        enc, ev, cts = he_case
        serial = BlockExecutor().map_blocks(_he_tasks(enc, ev, cts))
        with ProcessBlockExecutor(workers=2) as ex:
            forked = ex.map_blocks(_he_tasks(enc, ev, cts), ctx=enc.ctx)
        self._assert_same(serial, forked)


@pytest.mark.slow
def test_sharded_forward_bit_identical_across_executors(toy_resnet_artifact):
    """End-to-end: the toy ResNet's shard grid scheduled across thread and
    process pools decrypts to *exactly* the serial logits."""
    art = toy_resnet_artifact
    enc = art.model
    ev = enc.ev
    x = np.random.default_rng(3).normal(size=64)
    cts = enc.encrypt_batch_shards([x], ev=ev)

    def forward(executor=None):
        out = enc.forward_shards(
            cts, encoded=art.encoded_linear, ev=ev, executor=executor
        )[0]
        return enc.decrypt_logits(out, 3, batch=1, ev=ev)[0]

    serial = forward()
    with make_executor("thread", workers=4) as ex:
        np.testing.assert_array_equal(forward(ex), serial)
    with make_executor("process", workers=2) as ex:
        np.testing.assert_array_equal(forward(ex), serial)
