"""Property tests for the SIMD block / grid packing geometry.

Hypothesis sweeps layouts the example-based suite never enumerates:
arbitrary (size, slots) block layouts, ragged batch widths, and
channel-shard counts both under- and over-subscribing the channel axis.
The invariants pinned here are exactly what the serving layer leans on —
no two requests ever share a slot, pack/unpack is lossless, and a
channel-sharded split is a partition of the flat activation.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fhe.packing import GridLayout, MultiGridLayout
from repro.serve.packing import (
    BlockLayout,
    pack_batch,
    split_batches,
    unpack_blocks,
)

# sizes stay small so the sweep is fast; slots = size * 2 * blocks mirrors
# real ring geometries (always enough room for at least one block)
layouts = st.integers(1, 32).flatmap(
    lambda size: st.integers(1, 8).map(
        lambda blocks: BlockLayout(size=size, slots=2 * size * blocks)
    )
)


@st.composite
def packed_batches(draw):
    layout = draw(layouts)
    batch = draw(st.integers(1, layout.max_batch))
    widths = draw(
        st.lists(st.integers(1, layout.size), min_size=batch, max_size=batch)
    )
    rng = np.random.default_rng(draw(st.integers(0, 2**16)))
    xs = [rng.normal(size=w) for w in widths]
    return layout, xs


@given(layouts)
def test_blocks_are_disjoint_and_in_bounds(layout):
    spans = [
        range(layout.offset(b), layout.offset(b) + layout.stride)
        for b in range(layout.max_batch)
    ]
    occupied = [s for span in spans for s in span]
    assert len(set(occupied)) == len(occupied)  # no slot shared
    assert max(occupied) < layout.slots


@given(packed_batches())
@settings(max_examples=200, deadline=None)
def test_pack_unpack_round_trip(case):
    layout, xs = case
    packed = pack_batch(xs, layout)
    width = min(len(x) for x in xs)
    rows = unpack_blocks(packed, layout, width=width, batch=len(xs))
    assert rows.shape == (len(xs), width)
    for row, x in zip(rows, xs):
        np.testing.assert_array_equal(row, x[:width])


@given(packed_batches())
@settings(max_examples=100, deadline=None)
def test_pack_replicates_each_block(case):
    layout, xs = case
    packed = pack_batch(xs, layout)
    for b, x in enumerate(xs):
        off = layout.offset(b)
        np.testing.assert_array_equal(
            packed[off : off + len(x)],
            packed[off + layout.size : off + layout.size + len(x)],
        )
    # trailing unused blocks must stay zero (neighbours never leak)
    for b in range(len(xs), layout.max_batch):
        off = layout.offset(b)
        assert not packed[off : off + layout.stride].any()


@given(st.lists(st.integers(), max_size=40), st.integers(1, 7))
def test_split_batches_partitions_in_order(items, max_batch):
    chunks = split_batches(items, max_batch)
    assert [x for chunk in chunks for x in chunk] == items
    assert all(len(chunk) <= max_batch for chunk in chunks)
    assert all(len(chunk) == max_batch for chunk in chunks[:-1])


grids = st.tuples(
    st.integers(1, 12),  # channels
    st.integers(1, 6),   # height
    st.integers(1, 6),   # width
)


@given(grids, st.integers(1, 16))
def test_multigrid_split_partitions_channels(chw, num_shards):
    c, h, w = chw
    mg = MultiGridLayout.split(c, h, w, num_shards)
    assert mg.num_shards == min(num_shards, c)
    assert mg.total_channels == c
    # a balanced contiguous split: sizes differ by at most one
    sizes = [g.channels for g in mg.shards]
    assert max(sizes) - min(sizes) <= 1
    # every global channel maps to exactly one (shard, local) cell
    seen = set()
    for ch in range(c):
        s, local = mg.shard_of(ch)
        assert 0 <= local < mg.shards[s].channels
        seen.add((s, local))
    assert len(seen) == c


@given(grids, st.integers(1, 16), st.integers(0, 2**16))
def test_multigrid_split_concat_round_trip(chw, num_shards, seed):
    c, h, w = chw
    mg = MultiGridLayout.split(c, h, w, num_shards)
    values = np.random.default_rng(seed).normal(size=c * h * w)
    parts = mg.split_values(values)
    assert len(parts) == mg.num_shards
    np.testing.assert_array_equal(np.concatenate(parts), values)
    # each part is exactly its shard's element count
    assert [len(p) for p in parts] == [g.num_elements for g in mg.shards]


@given(grids, st.integers(1, 3), st.integers(1, 3))
def test_grid_pool_keeps_positions_injective_and_nested(chw, kernel, stride):
    c, h, w = chw
    if kernel > h or kernel > w:
        return  # invalid pool for this grid; constructor rejects it
    dense = GridLayout.dense(c, h, w)
    pooled = dense.pooled(kernel, stride)
    pos = pooled.positions().ravel()
    assert len(np.unique(pos)) == pos.size  # injective (checked, but pin it)
    # pooled positions are a subset of the dense grid's slots
    assert set(pos.tolist()) <= set(dense.positions().ravel().tolist())
