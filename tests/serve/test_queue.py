"""Admission queue: batching, flush-on-timeout, worker pool plumbing."""

import threading
import time

import numpy as np
import pytest

from repro.serve.queue import BatchQueue, QueueClosed, Request, WorkerPool


def _req(v=0.0):
    return Request(x=np.array([v]))


class TestBatchQueue:
    def test_full_batch_returns_without_waiting(self):
        q = BatchQueue(max_batch_size=3, max_wait_ms=10_000)
        for i in range(3):
            q.put(_req(i))
        t0 = time.perf_counter()
        batch = q.next_batch()
        assert [r.x[0] for r in batch] == [0.0, 1.0, 2.0]
        assert time.perf_counter() - t0 < 1.0  # did not sit out the 10s window
        assert len(q) == 0

    def test_flush_on_timeout_serves_partial_batch(self):
        q = BatchQueue(max_batch_size=8, max_wait_ms=40)
        q.put(_req(1.0))
        t0 = time.perf_counter()
        batch = q.next_batch()
        elapsed = time.perf_counter() - t0
        assert len(batch) == 1
        assert elapsed < 5.0  # flushed at ~max_wait, not held for a full batch

    def test_empty_poll_returns_empty(self):
        q = BatchQueue(max_batch_size=2, max_wait_ms=5)
        assert q.next_batch(poll_timeout=0.01) == []

    def test_overflow_spills_into_next_batch(self):
        q = BatchQueue(max_batch_size=2, max_wait_ms=5)
        for i in range(5):
            q.put(_req(i))
        sizes = [len(q.next_batch()) for _ in range(3)]
        assert sizes == [2, 2, 1]

    def test_put_after_close_raises(self):
        q = BatchQueue(max_batch_size=2, max_wait_ms=5)
        q.put(_req())
        q.close()
        with pytest.raises(QueueClosed):
            q.put(_req())
        # pending requests still drain after close
        assert len(q.next_batch()) == 1

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BatchQueue(max_batch_size=0)
        with pytest.raises(ValueError):
            BatchQueue(max_batch_size=1, max_wait_ms=-1)


class TestWorkerPool:
    def test_drains_and_stops(self):
        q = BatchQueue(max_batch_size=4, max_wait_ms=5)
        seen = []
        done = threading.Event()

        def handler(batch, worker_index):
            seen.extend(r.x[0] for r in batch)
            if len(seen) >= 6:
                done.set()

        pool = WorkerPool(q, handler, num_workers=2)
        pool.start()
        for i in range(6):
            q.put(_req(i))
        assert done.wait(timeout=5.0)
        pool.stop(timeout=5.0)
        assert sorted(seen) == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]

    def test_stop_fails_unserved_requests_instead_of_hanging(self):
        q = BatchQueue(max_batch_size=1, max_wait_ms=1)

        def handler(batch, worker_index):
            for r in batch:
                r.future.set_result(r.x[0])
            time.sleep(0.3)

        pool = WorkerPool(q, handler, num_workers=1)
        pool.start()
        reqs = [_req(i) for i in range(6)]
        for r in reqs:
            q.put(r)
        pool.stop(timeout=0.05)
        # every future resolved one way or the other — nobody hangs forever
        assert all(r.future.done() for r in reqs)
        failed = [r for r in reqs if r.future.exception() is not None]
        assert failed, "drain timeout should have left failed requests"
        assert all(isinstance(r.future.exception(), QueueClosed) for r in failed)

    def test_handler_exception_reaches_future(self):
        q = BatchQueue(max_batch_size=1, max_wait_ms=1)

        def handler(batch, worker_index):
            raise RuntimeError("boom")

        pool = WorkerPool(q, handler, num_workers=1)
        pool.start()
        req = _req()
        q.put(req)
        with pytest.raises(RuntimeError, match="boom"):
            req.future.result(timeout=5.0)
        pool.stop(timeout=5.0)
