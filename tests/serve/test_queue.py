"""Admission queue: batching, flush-on-timeout, grouping, shedding,
bounded shutdown, worker pool plumbing."""

import threading
import time

import numpy as np
import pytest

from repro.serve.queue import (
    BatchQueue,
    QueueClosed,
    QueueOverflow,
    Request,
    WorkerPool,
)


def _req(v=0.0, client="default", model="default"):
    return Request(x=np.array([v]), client_id=client, model_name=model)


class TestBatchQueue:
    def test_full_batch_returns_without_waiting(self):
        q = BatchQueue(max_batch_size=3, max_wait_ms=10_000)
        for i in range(3):
            q.put(_req(i))
        t0 = time.perf_counter()
        batch = q.next_batch()
        assert [r.x[0] for r in batch] == [0.0, 1.0, 2.0]
        assert time.perf_counter() - t0 < 1.0  # did not sit out the 10s window
        assert len(q) == 0

    def test_flush_on_timeout_serves_partial_batch(self):
        q = BatchQueue(max_batch_size=8, max_wait_ms=40)
        q.put(_req(1.0))
        t0 = time.perf_counter()
        batch = q.next_batch()
        elapsed = time.perf_counter() - t0
        assert len(batch) == 1
        assert elapsed < 5.0  # flushed at ~max_wait, not held for a full batch

    def test_empty_poll_returns_empty(self):
        q = BatchQueue(max_batch_size=2, max_wait_ms=5)
        assert q.next_batch(poll_timeout=0.01) == []

    def test_overflow_spills_into_next_batch(self):
        q = BatchQueue(max_batch_size=2, max_wait_ms=5)
        for i in range(5):
            q.put(_req(i))
        sizes = [len(q.next_batch()) for _ in range(3)]
        assert sizes == [2, 2, 1]

    def test_put_after_close_raises(self):
        q = BatchQueue(max_batch_size=2, max_wait_ms=5)
        q.put(_req())
        q.close()
        with pytest.raises(QueueClosed):
            q.put(_req())
        # pending requests still drain after close
        assert len(q.next_batch()) == 1

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BatchQueue(max_batch_size=0)
        with pytest.raises(ValueError):
            BatchQueue(max_batch_size=1, max_wait_ms=-1)


class TestGroupedAdmission:
    def test_batches_never_mix_groups(self):
        q = BatchQueue(max_batch_size=8, max_wait_ms=5)
        for i in range(3):
            q.put(_req(i, client="alice"))
        for i in range(3):
            q.put(_req(10 + i, client="bob"))
        got = [q.next_batch(), q.next_batch()]
        for batch in got:
            assert len({r.group for r in batch}) == 1
        clients = {batch[0].client_id for batch in got}
        assert clients == {"alice", "bob"}

    def test_oldest_group_served_first(self):
        q = BatchQueue(max_batch_size=8, max_wait_ms=1)
        q.put(_req(0, client="alice"))
        time.sleep(0.01)
        q.put(_req(1, client="bob"))
        assert q.next_batch()[0].client_id == "alice"
        assert q.next_batch()[0].client_id == "bob"

    def test_per_group_capacity_callable(self):
        q = BatchQueue(
            max_batch_size=lambda group: 1 if group[0] == "small" else 4,
            max_wait_ms=5,
        )
        for i in range(2):
            q.put(_req(i, model="small"))
        for i in range(4):
            q.put(_req(i, model="big"))
        sizes = {}
        for _ in range(3):
            batch = q.next_batch()
            sizes.setdefault(batch[0].model_name, []).append(len(batch))
        assert sizes == {"small": [1, 1], "big": [4]}

    def test_pending_by_group(self):
        q = BatchQueue(max_batch_size=4, max_wait_ms=5)
        q.put(_req(0, client="alice"))
        q.put(_req(1, client="alice"))
        q.put(_req(2, client="bob", model="m2"))
        assert q.pending_by_group() == {
            ("default", "alice"): 2,
            ("m2", "bob"): 1,
        }


class TestBoundedAdmission:
    def test_overflow_sheds_nonblocking(self):
        q = BatchQueue(max_batch_size=4, max_wait_ms=5, max_pending=2)
        q.put(_req(0))
        q.put(_req(1))
        with pytest.raises(QueueOverflow):
            q.put(_req(2))
        assert len(q) == 2  # the shed request was never admitted

    def test_blocking_put_waits_for_capacity(self):
        q = BatchQueue(max_batch_size=1, max_wait_ms=1, max_pending=1)
        q.put(_req(0))
        admitted = threading.Event()

        def producer():
            q.put(_req(1), block=True, timeout=5.0)
            admitted.set()

        t = threading.Thread(target=producer)
        t.start()
        time.sleep(0.05)
        assert not admitted.is_set()  # backpressure: held until a drain
        q.next_batch()
        assert admitted.wait(timeout=5.0)
        t.join()

    def test_blocking_put_times_out(self):
        q = BatchQueue(max_batch_size=1, max_wait_ms=1, max_pending=1)
        q.put(_req(0))
        with pytest.raises(QueueOverflow):
            q.put(_req(1), block=True, timeout=0.05)


class TestShutdown:
    def test_shutdown_is_idempotent(self):
        q = BatchQueue(max_batch_size=2, max_wait_ms=5)
        req = _req()
        q.put(req)
        first = q.shutdown(drain_timeout=0.05)
        assert [r.x[0] for r in first] == [0.0]
        assert isinstance(req.future.exception(), QueueClosed)
        # second and third calls: no error, nothing further to fail
        assert q.shutdown(drain_timeout=0.05) == []
        assert q.shutdown(drain_timeout=0.05) == []

    def test_shutdown_waits_for_concurrent_drain(self):
        q = BatchQueue(max_batch_size=1, max_wait_ms=1)
        for i in range(3):
            q.put(_req(i))

        def consumer():
            while True:
                batch = q.next_batch(poll_timeout=0.05)
                for r in batch:
                    r.future.set_result(r.x[0])
                if not batch and q.closed:
                    return

        t = threading.Thread(target=consumer)
        t.start()
        leftovers = q.shutdown(drain_timeout=5.0)
        t.join(timeout=5.0)
        assert leftovers == []  # the consumer got them all within the bound

    def test_shutdown_bounded_when_nobody_drains(self):
        q = BatchQueue(max_batch_size=2, max_wait_ms=5)
        reqs = [_req(i) for i in range(4)]
        for r in reqs:
            q.put(r)
        t0 = time.perf_counter()
        leftovers = q.shutdown(drain_timeout=0.2)
        assert time.perf_counter() - t0 < 2.0
        assert len(leftovers) == 4
        assert all(isinstance(r.future.exception(), QueueClosed) for r in reqs)

    def test_shutdown_skips_already_resolved_futures(self):
        q = BatchQueue(max_batch_size=2, max_wait_ms=5)
        req = _req()
        req.future.set_result("early")
        q.put(req)
        q.shutdown(drain_timeout=0.05)
        assert req.future.result() == "early"  # not clobbered by QueueClosed


class TestWorkerPool:
    def test_drains_and_stops(self):
        q = BatchQueue(max_batch_size=4, max_wait_ms=5)
        seen = []
        done = threading.Event()

        def handler(batch, worker_index):
            seen.extend(r.x[0] for r in batch)
            if len(seen) >= 6:
                done.set()

        pool = WorkerPool(q, handler, num_workers=2)
        pool.start()
        for i in range(6):
            q.put(_req(i))
        assert done.wait(timeout=5.0)
        pool.stop(timeout=5.0)
        assert sorted(seen) == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]

    def test_stop_fails_unserved_requests_instead_of_hanging(self):
        q = BatchQueue(max_batch_size=1, max_wait_ms=1)

        def handler(batch, worker_index):
            for r in batch:
                r.future.set_result(r.x[0])
            time.sleep(0.3)

        pool = WorkerPool(q, handler, num_workers=1)
        pool.start()
        reqs = [_req(i) for i in range(6)]
        for r in reqs:
            q.put(r)
        pool.stop(timeout=0.05)
        # every future resolved one way or the other — nobody hangs forever
        assert all(r.future.done() for r in reqs)
        failed = [r for r in reqs if r.future.exception() is not None]
        assert failed, "drain timeout should have left failed requests"
        assert all(isinstance(r.future.exception(), QueueClosed) for r in failed)

    def test_handler_exception_reaches_future(self):
        q = BatchQueue(max_batch_size=1, max_wait_ms=1)

        def handler(batch, worker_index):
            raise RuntimeError("boom")

        pool = WorkerPool(q, handler, num_workers=1)
        pool.start()
        req = _req()
        q.put(req)
        with pytest.raises(RuntimeError, match="boom"):
            req.future.result(timeout=5.0)
        pool.stop(timeout=5.0)
