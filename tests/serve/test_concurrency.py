"""Concurrency and fault-injection stress suite for the serving stack.

Two halves:

* **Stub-model stress** — a no-crypto stand-in network whose "logits"
  echo each request's unique id, so lost, duplicated or cross-wired
  responses are directly observable while threads hammer submit /
  shutdown / metrics under seeded schedules.
* **Fault-injection graceful degradation** (real toy MLP) — every
  failure the :class:`~repro.serve.faults.FaultInjector` can script
  (worker crash, poisoned request, key-mismatch submission, queue
  overflow, slow worker) must surface as an *explicit per-request
  error* — never a silent hang — with the server still serving
  afterwards.
"""

import threading
import time
from concurrent.futures import CancelledError
from types import SimpleNamespace

import numpy as np
import pytest

from repro.serve import (
    FaultInjector,
    InferenceServer,
    KeyMismatchError,
    ModelArtifact,
    PoisonedRequestError,
    QueueOverflow,
    UnknownClientError,
    UnknownModelError,
    WorkerCrashError,
)
from repro.serve.queue import QueueClosed

SEED = 0xC0FFEE


class StubNetwork:
    """No-crypto network: forward is identity (plus optional delay), so
    ``decrypt_logits`` returns each request's own payload and the tests
    can match every response to the exact request that produced it."""

    sharded = False
    input_splits = None

    def __init__(self, backend="stub", size=8, max_batch=4, delay=0.0):
        self.size = size
        self.max_batch = max_batch
        self.delay = delay
        self.ctx = SimpleNamespace(backend=SimpleNamespace(name=backend))
        self.ev = SimpleNamespace(encoder=SimpleNamespace())

    def fresh_evaluator(self, seed=1):
        return SimpleNamespace(encoder=self.ev.encoder)

    def encrypt_batch(self, xs, ev=None):
        return [np.asarray(x) for x in xs]

    def forward(self, xs, encoded=None, ev=None):
        if self.delay:
            time.sleep(self.delay)
        return xs

    def decrypt_logits(self, xs, num_classes, batch=1, ev=None):
        return np.stack([x[:num_classes] for x in xs])


def _stub_server(models=("a", "b"), workers=3, **kw):
    arts = {
        name: ModelArtifact(StubNetwork(backend=f"{name}-backend"))
        for name in models
    }
    defaults = dict(max_wait_ms=1.0, num_workers=workers, warm=False)
    defaults.update(kw)
    return InferenceServer(arts, num_classes=3, **defaults)


class TestStubStress:
    def test_no_lost_duplicated_or_crossed_responses(self):
        """200 requests from 4 threads across 2 models: every future
        resolves with exactly its own payload, exactly once."""
        rng = np.random.default_rng(SEED)
        per_thread = 50
        with _stub_server() as srv:
            futures = {}
            lock = threading.Lock()

            def client(tid):
                local_rng = np.random.default_rng(SEED + tid)
                for i in range(per_thread):
                    req_id = tid * 1000 + i
                    x = np.full(8, float(req_id))
                    model = "a" if local_rng.random() < 0.5 else "b"
                    fut = srv.submit(x, model=model)
                    with lock:
                        futures[req_id] = (fut, model)

            threads = [
                threading.Thread(target=client, args=(tid,)) for tid in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            assert len(futures) == 4 * per_thread  # nothing lost on submit
            for req_id, (fut, model) in futures.items():
                res = fut.result(timeout=30)
                assert res.logits[0] == float(req_id)  # not cross-wired
                assert res.model == model
        snap = srv.metrics.snapshot()
        assert snap["requests_total"] == 4 * per_thread
        assert snap["errors"] == {}
        _ = rng  # seeded schedule documented above

    def test_batches_never_mix_models(self):
        with _stub_server(max_wait_ms=20.0, workers=1) as srv:
            futs = [
                srv.submit(np.full(8, float(i)), model="a" if i % 2 else "b")
                for i in range(8)
            ]
            for i, fut in enumerate(futs):
                res = fut.result(timeout=30)
                assert res.model == ("a" if i % 2 else "b")

    def test_submit_shutdown_race_nobody_hangs(self):
        """Threads submit while another stops the server: every admitted
        future resolves — a result or an explicit error, never a hang."""
        srv = _stub_server(workers=2, max_wait_ms=1.0)
        srv.start()
        futures = []
        lock = threading.Lock()
        stop_now = threading.Event()

        def client(tid):
            i = 0
            while not stop_now.is_set() and i < 500:
                x = np.full(8, float(tid * 1000 + i))
                try:
                    fut = srv.submit(x, model="a")
                except RuntimeError:
                    break  # server stopped: explicit, fine
                with lock:
                    futures.append(fut)
                i += 1

        threads = [threading.Thread(target=client, args=(t,)) for t in range(3)]
        for t in threads:
            t.start()
        time.sleep(0.05)
        stop_now.set()
        srv.stop(timeout=5.0)
        for t in threads:
            t.join(timeout=5.0)
        srv.stop(timeout=5.0)  # idempotent
        deadline = time.perf_counter() + 10.0
        for fut in futures:
            assert fut.done() or time.perf_counter() < deadline
            try:
                fut.result(timeout=10.0)
            except (QueueClosed, CancelledError):
                pass  # explicit shutdown error — the contract

    def test_metrics_hammering_during_serving(self):
        """Concurrent metrics_text()/snapshot() readers never throw and
        always see a parseable exposition while requests flow."""
        errors = []
        with _stub_server(workers=2) as srv:
            done = threading.Event()

            def reader():
                while not done.is_set():
                    try:
                        text = srv.metrics_text()
                        for line in text.splitlines():
                            assert line.startswith(("#", "repro_serve_"))
                        srv.metrics.snapshot()
                    except Exception as exc:  # noqa: BLE001 - collecting
                        errors.append(exc)
                        return

            readers = [threading.Thread(target=reader) for _ in range(2)]
            for t in readers:
                t.start()
            for i in range(60):
                srv.submit(np.full(8, float(i)), model="a")
            srv.predict(np.full(8, 1.0), model="b")
            done.set()
            for t in readers:
                t.join(timeout=5.0)
        assert errors == []

    def test_overflow_sheds_explicitly_and_recovers(self):
        stub = StubNetwork(delay=0.05, max_batch=1)
        srv = InferenceServer(
            ModelArtifact(stub),
            num_classes=3,
            max_wait_ms=1.0,
            num_workers=1,
            max_pending=2,
            warm=False,
        )
        with srv:
            admitted, shed = [], 0
            for i in range(12):
                try:
                    admitted.append(srv.submit(np.full(8, float(i))))
                except QueueOverflow:
                    shed += 1
            assert shed > 0  # the bound actually bit
            for fut in admitted:
                fut.result(timeout=30)  # every admitted request completes
            # after the backlog drains the server accepts again
            assert srv.predict(np.full(8, 99.0), timeout=30).logits[0] == 99.0
        snap = srv.metrics.snapshot()
        assert snap["shed_total"] == shed
        assert snap["tenants"]["default/default"]["shed"] == shed

    def test_unknown_model_and_client_rejected_at_the_door(self):
        with _stub_server() as srv:
            with pytest.raises(UnknownModelError):
                srv.submit(np.zeros(8))  # two models hosted: name required
            with pytest.raises(UnknownModelError):
                srv.submit(np.zeros(8), model="nope")
            with pytest.raises(UnknownClientError):
                srv.submit(np.zeros(8), model="a", client_id="ghost")
            with pytest.raises(ValueError):
                srv.submit(np.full(8, np.nan), model="a")
            with pytest.raises(ValueError):
                srv.submit(np.zeros(99), model="a")


class TestFaultInjection:
    """Real toy MLP under scripted faults — deterministic ordinals, no
    clocks, no RNG in the injector."""

    @pytest.fixture()
    def served(self, toy):
        _, enc = toy
        self.faults = FaultInjector()
        srv = InferenceServer(
            ModelArtifact(enc),
            num_classes=3,
            max_wait_ms=2.0,
            num_workers=1,
            fault_injector=self.faults,
        )
        with srv:
            yield srv

    def test_poisoned_request_fails_alone(self, served, toy):
        model, _ = toy
        from repro.nn.tensor import Tensor

        rng = np.random.default_rng(SEED)
        xs = [rng.normal(size=8) for _ in range(3)]
        self.faults.poison_request(1)  # the second submission
        futs = served.predict_many(xs[:1])  # batch 0: clean
        fut_poisoned = served.submit(xs[1])
        fut_neighbor = served.submit(xs[2])
        with pytest.raises(PoisonedRequestError):
            fut_poisoned.result(timeout=30)
        # the neighbour sharing the batch still gets correct logits
        res = fut_neighbor.result(timeout=30)
        ref = model(Tensor(xs[2].reshape(1, -1))).data.ravel()
        np.testing.assert_allclose(res.logits, ref, atol=1e-2)
        assert futs[0].logits is not None
        assert served.metrics.snapshot()["errors"]["poisoned"] == 1

    def test_worker_crash_fails_batch_then_recovers(self, served):
        rng = np.random.default_rng(SEED)
        self.faults.crash_worker(1)  # second batch crashes mid-handling
        served.predict(rng.normal(size=8), timeout=30)  # batch 0 fine
        with pytest.raises(WorkerCrashError):
            served.predict(rng.normal(size=8), timeout=30)  # batch 1
        after = served.predict(rng.normal(size=8), timeout=30)  # batch 2
        assert np.all(np.isfinite(after.logits))
        assert served.metrics.snapshot()["errors"]["worker_crash"] == 1
        assert self.faults.stats()["fired"]["crash"] == 1

    def test_key_mismatch_detected_not_garbage(self, served):
        """A batch encrypted under the wrong keys must raise
        KeyMismatchError — not silently return garbage logits."""
        rng = np.random.default_rng(SEED)
        self.faults.mismatch_keys(0)
        with pytest.raises(KeyMismatchError):
            served.predict(rng.normal(size=8), timeout=60)
        # the very next batch (correct keys) serves normally
        res = served.predict(rng.normal(size=8), timeout=60)
        assert np.all(np.isfinite(res.logits))
        assert served.metrics.snapshot()["errors"]["key_mismatch"] == 1

    def test_slow_worker_delays_but_completes(self, served):
        rng = np.random.default_rng(SEED)
        self.faults.slow_worker(0, seconds=0.2)
        t0 = time.perf_counter()
        res = served.predict(rng.normal(size=8), timeout=60)
        assert time.perf_counter() - t0 >= 0.2
        assert np.all(np.isfinite(res.logits))
        assert self.faults.stats()["fired"]["slow"] == 1

    def test_every_fault_is_explicit_and_server_survives_all(self, toy):
        """The acceptance sweep: crash, poison, mismatch and overflow in
        one server lifetime, each surfacing as its own exception class,
        with a clean request served after every injection."""
        _, enc = toy
        # batch ordinals: a fully-poisoned batch never reaches the worker
        # body, so it consumes no ordinal — the crash lands on batch 1
        faults = (
            FaultInjector().poison_request(1).crash_worker(1).mismatch_keys(2)
        )
        srv = InferenceServer(
            ModelArtifact(enc),
            num_classes=3,
            max_wait_ms=2.0,
            num_workers=1,
            fault_injector=faults,
            max_pending=None,
        )
        rng = np.random.default_rng(SEED)
        with srv:
            x = lambda: rng.normal(size=8)  # noqa: E731
            srv.predict(x(), timeout=60)  # batch 0 / submission 0: clean
            with pytest.raises(PoisonedRequestError):
                srv.predict(x(), timeout=60)  # submission 1 poisoned
            with pytest.raises(WorkerCrashError):
                srv.predict(x(), timeout=60)  # batch 2 crashes
            with pytest.raises(KeyMismatchError):
                srv.predict(x(), timeout=60)  # batch 3 wrong keys
            final = srv.predict(x(), timeout=60)
            assert np.all(np.isfinite(final.logits))
        errors = srv.metrics.snapshot()["errors"]
        assert errors == {"poisoned": 1, "worker_crash": 1, "key_mismatch": 1}
        fired = faults.stats()["fired"]
        assert fired == {"poison": 1, "crash": 1, "mismatch": 1}
