"""Shared fixtures: compiled toy models for the whole serve suite."""

import pytest

from repro.fhe.toy import compiled_toy, compiled_toy_resnet
from repro.serve.artifact import ModelArtifact


@pytest.fixture(scope="session")
def toy():
    """(plain model, compiled EncryptedNetwork) — 8 -> 6 -> 3 MLP with an f1∘g2 PAF."""
    return compiled_toy(with_model=True)


@pytest.fixture(scope="session")
def toy_resnet_artifact():
    """Warmed artifact of the sharded toy ResNet (the executor/scale cases)."""
    art = ModelArtifact(compiled_toy_resnet())
    art.warm()
    return art
