"""Shared fixtures: one compiled toy model for the whole serve suite."""

import numpy as np
import pytest

from repro.ckks import CkksParams
from repro.core import calibrate_static_scales, convert_to_static, replace_all
from repro.fhe import compile_mlp
from repro.nn.models import mlp
from repro.paf import get_paf


@pytest.fixture(scope="session")
def toy():
    """(plain model, compiled EncryptedMLP) — 8 -> 6 -> 3 MLP with an f1∘g2 PAF."""
    rng = np.random.default_rng(0)
    model = mlp(8, hidden=(6,), num_classes=3, seed=0)
    replace_all(model, get_paf("f1g2"), np.zeros((1, 8)))
    calibrate_static_scales(model, [rng.normal(size=(64, 8))])
    convert_to_static(model)
    enc = compile_mlp(model, CkksParams(n=512, scale_bits=25, depth=9), seed=0)
    model.eval()
    return model, enc
