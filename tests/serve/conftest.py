"""Shared fixtures: one compiled toy model for the whole serve suite."""

import pytest

from repro.fhe.toy import compiled_toy


@pytest.fixture(scope="session")
def toy():
    """(plain model, compiled EncryptedMLP) — 8 -> 6 -> 3 MLP with an f1∘g2 PAF."""
    return compiled_toy(with_model=True)
