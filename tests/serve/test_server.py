"""InferenceServer end-to-end: batched == sequential, edge batches, metrics."""

import numpy as np
import pytest

from repro.nn import Tensor, no_grad
from repro.serve import InferenceServer, ModelArtifact


class TestBatchedEqualsSequential:
    def test_property_batched_matches_sequential_predicts(self, toy):
        """B random inputs through the server == B sequential predicts."""
        _, enc = toy
        rng = np.random.default_rng(11)
        B = 5
        xs = rng.normal(size=(B, 8))
        sequential = [
            enc.decrypt_logits(enc.forward(enc.encrypt_input(x)), 3) for x in xs
        ]
        with InferenceServer(
            ModelArtifact(enc), num_classes=3, max_batch_size=B, max_wait_ms=200
        ) as srv:
            results = srv.predict_many(xs)
        for res, seq in zip(results, sequential):
            np.testing.assert_allclose(res.logits, seq, atol=1e-3)
            assert res.prediction == int(np.argmax(seq))
        # the burst was actually served as one SIMD batch
        assert all(res.batch_size == B for res in results)
        assert srv.metrics.snapshot()["batches_total"] == 1

    def test_single_request_batch(self, toy):
        """B=1: a lone request is flushed on timeout and served solo."""
        _, enc = toy
        x = np.full(8, 0.25)
        expected = enc.decrypt_logits(enc.forward(enc.encrypt_input(x)), 3)
        with InferenceServer(
            ModelArtifact(enc), num_classes=3, max_batch_size=4, max_wait_ms=20
        ) as srv:
            res = srv.predict(x, timeout=60.0)
        assert res.batch_size == 1
        np.testing.assert_allclose(res.logits, expected, atol=1e-3)

    def test_full_capacity_batch_matches_plaintext(self, toy):
        """B = max_batch fills every slot block; logits track the plain model."""
        model, enc = toy
        rng = np.random.default_rng(13)
        xs = rng.normal(size=(enc.max_batch, 8))
        with no_grad():
            plain = model(Tensor(xs)).data
        preds = enc.predict_batch(xs, num_classes=3)
        logits = enc.decrypt_logits(
            enc.forward(enc.encrypt_batch(xs)), 3, batch=enc.max_batch
        )
        np.testing.assert_allclose(logits, plain, atol=0.05)
        assert preds.shape == (enc.max_batch,)

    def test_oversized_batch_rejected(self, toy):
        _, enc = toy
        with pytest.raises(ValueError):
            enc.encrypt_batch([np.zeros(8)] * (enc.max_batch + 1))
        with pytest.raises(ValueError):
            enc.decrypt_logits(None, 3, batch=enc.max_batch + 1)


class TestServerPlumbing:
    def test_submit_before_start_raises(self, toy):
        _, enc = toy
        srv = InferenceServer(ModelArtifact(enc), num_classes=3, warm=False)
        with pytest.raises(RuntimeError):
            srv.submit(np.zeros(8))

    def test_bad_inputs_rejected_at_the_door(self, toy):
        """Wrong width / NaN fail at submit — they must not poison a batch."""
        _, enc = toy
        with InferenceServer(
            ModelArtifact(enc), num_classes=3, max_batch_size=2, max_wait_ms=100
        ) as srv:
            with pytest.raises(ValueError):
                srv.submit(np.zeros(enc.size + 1))
            with pytest.raises(ValueError):
                srv.submit(np.full(8, np.nan))
            # a well-formed neighbour is unaffected
            res = srv.predict(np.ones(8), timeout=60.0)
        assert res.batch_size == 1

    def test_metrics_and_instrumentation(self, toy):
        _, enc = toy
        with InferenceServer(
            ModelArtifact(enc),
            num_classes=3,
            max_batch_size=4,
            max_wait_ms=20,
            instrument=True,
        ) as srv:
            srv.predict_many(np.zeros((3, 8)))
        snap = srv.metrics.snapshot()
        assert snap["requests_total"] == 3
        assert snap["throughput_rps"] > 0
        assert snap["latency_ms"]["p95"] >= snap["latency_ms"]["p50"] > 0
        # HE-op accounting flowed through the CountingEvaluator proxy
        assert snap["he_ops"]["rotate"] > 0
        assert snap["he_ops"]["mul_plain"] > 0
        assert snap["he_ops"]["rescale"] > 0

    def test_cancelled_future_does_not_poison_neighbours(self, toy):
        _, enc = toy
        with InferenceServer(
            ModelArtifact(enc), num_classes=3, max_batch_size=2, max_wait_ms=150
        ) as srv:
            f_cancel = srv.submit(np.zeros(8))
            f_cancel.cancel()
            f_ok = srv.submit(np.ones(8))
            res = f_ok.result(timeout=60.0)
        assert f_cancel.cancelled()
        assert res.logits.shape == (3,)

    def test_stop_is_terminal(self, toy):
        _, enc = toy
        srv = InferenceServer(ModelArtifact(enc), num_classes=3, warm=False)
        srv.start()
        srv.stop()
        srv.stop()  # idempotent
        with pytest.raises(RuntimeError):
            srv.start()

    def test_max_batch_clamped_to_capacity(self, toy):
        _, enc = toy
        srv = InferenceServer(
            ModelArtifact(enc), num_classes=3, max_batch_size=10_000, warm=False
        )
        assert srv.max_batch_size == enc.max_batch


class TestTracedServing:
    def test_trace_feeds_layer_histograms_and_last_trace(self, toy):
        _, enc = toy
        with InferenceServer(
            ModelArtifact(enc),
            num_classes=3,
            max_batch_size=4,
            max_wait_ms=20,
            trace=True,
        ) as srv:
            results = srv.predict_many(np.zeros((3, 8)))
        assert all(res.logits.shape == (3,) for res in results)
        snap = srv.metrics.snapshot()
        # trace implies instrument: op accounting still flows
        assert snap["he_ops"]["rotate"] > 0
        # per-layer durations landed in the latency histograms
        assert set(snap["layers"]) == {
            f"layer{i:02d}:{layer.kind}" for i, layer in enumerate(enc.layers)
        }
        assert all(s["count"] >= 1 for s in snap["layers"].values())
        # the last batch's span tree is kept for inspection
        assert srv.last_trace["format"] == "repro-trace-v1"
        names = [sp["name"] for sp in srv.last_trace["spans"]]
        assert names[0] == "forward"
        assert srv.last_trace["batch_size"] == 3

    def test_metrics_text_exposes_gauges_and_histograms(self, toy):
        _, enc = toy
        with InferenceServer(
            ModelArtifact(enc), num_classes=3, max_wait_ms=20, trace=True
        ) as srv:
            srv.predict(np.ones(8), timeout=60.0)
            text = srv.metrics_text()
        assert "repro_serve_queue_depth 0" in text
        assert "repro_serve_in_flight_batches 0" in text
        assert "repro_serve_requests_total 1" in text
        assert 'repro_serve_layer_latency_ms_bucket{layer="layer00:linear"' in text
        assert 'repro_serve_layer_latency_ms_count{layer="layer01:paf"} 1' in text

    def test_traced_serving_matches_untraced(self, toy):
        # encryption is randomized, so server-level logits agree to
        # noise precision; the bit-level guarantee is pinned by
        # tests/obs/test_differential.py on a shared ciphertext
        _, enc = toy
        x = np.linspace(-1, 1, 8)
        kwargs = dict(num_classes=3, max_wait_ms=20)
        with InferenceServer(ModelArtifact(enc), **kwargs) as srv:
            plain = srv.predict(x, timeout=60.0)
        with InferenceServer(ModelArtifact(enc), trace=True, **kwargs) as srv:
            traced = srv.predict(x, timeout=60.0)
        np.testing.assert_allclose(plain.logits, traced.logits, atol=1e-3)
        assert plain.prediction == traced.prediction


class TestMultiTenantServing:
    def test_registered_clients_get_correct_logits_under_own_keys(self, toy):
        """Two tenants with distinct secrets share one worker pool and
        one encoding cache — and both decrypt to the plaintext model's
        logits."""
        from repro.serve import ClientKeyRegistry

        model, enc = toy
        reg = ClientKeyRegistry()
        srv = InferenceServer(
            ModelArtifact(enc),
            num_classes=3,
            max_wait_ms=2.0,
            num_workers=2,
            key_registry=reg,
        )
        srv.register_client("alice")
        srv.register_client("bob")
        rng = np.random.default_rng(17)
        xs = [rng.normal(size=8) for _ in range(3)]
        with srv:
            results = [
                srv.predict(xs[0], client_id="alice", timeout=60),
                srv.predict(xs[1], client_id="bob", timeout=60),
                srv.predict(xs[2], timeout=60),  # default tenant
            ]
        with no_grad():
            refs = [model(Tensor(x.reshape(1, -1))).data.ravel() for x in xs]
        for res, ref in zip(results, refs):
            np.testing.assert_allclose(res.logits, ref, atol=1e-2)
        assert [r.client_id for r in results] == ["alice", "bob", "default"]
        # both tenants' chains were derived, with galois material per client
        stats = reg.stats()
        assert stats["clients"] == 2
        assert stats["chains"] == 2

    def test_multi_model_server_routes_and_reports(self, toy):
        _, enc = toy
        srv = InferenceServer(
            {"m1": ModelArtifact(enc), "m2": ModelArtifact(enc)},
            num_classes={"m1": 3, "m2": 3},
            max_wait_ms=2.0,
        )
        rng = np.random.default_rng(5)
        with srv:
            r1 = srv.predict(rng.normal(size=8), model="m1", timeout=60)
            r2 = srv.predict(rng.normal(size=8), model="m2", timeout=60)
        assert (r1.model, r2.model) == ("m1", "m2")
        assert srv.artifact is None  # no single-model alias with two models
        text = srv.metrics_text()
        assert 'model="m1"' in text and 'model="m2"' in text
        snap = srv.metrics.snapshot()
        assert snap["tenants"]["m1/default"]["requests"] == 1
        assert snap["tenants"]["m2/default"]["requests"] == 1

    def test_single_model_surface_unchanged(self, toy):
        """Back-compat: the one-model constructor keeps its old attrs and
        its old metrics_text backend line."""
        _, enc = toy
        srv = InferenceServer(ModelArtifact(enc), num_classes=3)
        assert srv.model is enc
        assert srv.artifact is not None
        assert srv.max_batch_size == enc.max_batch
        line = f'repro_serve_backend_info{{backend="{srv.backend}"}} 1'
        assert line in srv.metrics_text()

    def test_num_classes_dict_must_cover_models(self, toy):
        _, enc = toy
        with pytest.raises(ValueError, match="missing models"):
            InferenceServer(
                {"a": ModelArtifact(enc), "b": ModelArtifact(enc)},
                num_classes={"a": 3},
            )


class TestUncompiledModelRouting:
    """A bare ``repro.nn`` module routes through ``ModelArtifact.compile``."""

    def test_bare_module_compiles_and_serves(self, toy):
        from repro.fhe.toy import TOY_PARAMS

        model, _ = toy
        with InferenceServer(
            model, num_classes=3, params=TOY_PARAMS, warm=False, max_wait_ms=20
        ) as srv:
            res = srv.submit(np.zeros(8)).result()
        assert res.logits.shape == (3,)

    def test_bare_module_without_params_rejected(self, toy):
        model, _ = toy
        with pytest.raises(ValueError, match="params"):
            InferenceServer(model, num_classes=3)
