"""Encoding caches: correctness of cached plaintexts and steady-state hits."""

import numpy as np
import pytest

from repro.ckks import CkksContext, CkksParams
from repro.ckks.encoder import CkksEncoder, Plaintext
from repro.serve.artifact import CachingEncoder, ModelArtifact, PlaintextCache


@pytest.fixture(scope="module")
def encoder():
    return CkksEncoder(CkksContext(CkksParams(n=512, scale_bits=25, depth=3)))


class TestPlaintextCache:
    def test_hit_returns_identical_plaintext(self, encoder):
        cache = PlaintextCache(encoder)
        v = np.arange(8.0)
        a = cache.encode(v, level=2, scale=2.0**25)
        b = cache.encode(v, level=2, scale=2.0**25)
        assert a is b
        assert cache.hits == 1 and cache.misses == 1

    def test_cached_equals_fresh_encode(self, encoder):
        cache = PlaintextCache(encoder)
        v = np.linspace(-1, 1, 16)
        pt = cache.encode(v, level=1, scale=2.0**25)
        fresh = encoder.encode(v, 1, 2.0**25)
        np.testing.assert_array_equal(pt.poly.data, fresh.poly.data)

    def test_key_distinguishes_level_and_scale(self, encoder):
        cache = PlaintextCache(encoder)
        v = np.ones(4)
        cache.encode(v, level=1, scale=2.0**25)
        cache.encode(v, level=2, scale=2.0**25)
        cache.encode(v, level=2, scale=2.0**24)
        assert cache.misses == 3 and cache.hits == 0

    def test_scalar_values(self, encoder):
        cache = PlaintextCache(encoder)
        cache.encode(0.5, level=1)
        cache.encode(0.5, level=1)
        assert cache.hits == 1

    def test_lru_eviction_bounds_entries(self, encoder):
        cache = PlaintextCache(encoder, max_entries=4)
        for i in range(10):
            cache.encode(float(i), level=0, scale=2.0**20)
        assert len(cache) == 4
        # most recent entries survive
        cache.encode(9.0, level=0, scale=2.0**20)
        assert cache.hits == 1


class TestCachingEncoder:
    def test_delegates_and_caches(self, encoder):
        cache = PlaintextCache(encoder)
        wrapped = CachingEncoder(encoder, cache)
        assert wrapped.ctx is encoder.ctx           # delegation
        pt = wrapped.encode(np.ones(4), 1, 2.0**25)
        assert isinstance(pt, Plaintext)
        wrapped.encode(np.ones(4), 1, 2.0**25)
        assert cache.hits == 1


class TestModelArtifact:
    def test_encoded_linear_matches_raw_path(self, toy):
        _, enc = toy
        art = ModelArtifact(enc, cache_activations=False)
        rng = np.random.default_rng(7)
        xs = rng.normal(size=(3, 8))
        ct_raw = enc.forward(enc.encrypt_batch(xs))
        ct_pre = art.forward(enc.encrypt_batch(xs))
        raw = enc.decrypt_logits(ct_raw, 3, batch=3)
        pre = enc.decrypt_logits(ct_pre, 3, batch=3)
        np.testing.assert_allclose(pre, raw, atol=1e-3)

    def test_steady_state_does_zero_encoding(self, toy):
        _, enc = toy
        art = ModelArtifact(enc, cache_activations=False).warm()
        misses_after_warm = art.cache.misses
        for _ in range(2):
            art.forward(enc.encrypt_batch([np.ones(8)]))
        assert art.cache.misses == misses_after_warm  # no fresh encodes at all
        # steady state short-circuits on the per-layer memo, one hit per layer
        assert len(art._linear_memo) == len(enc.matvec_plans)

    def test_warm_populates_all_linear_layers(self, toy):
        _, enc = toy
        art = ModelArtifact(enc, cache_activations=False).warm()
        n_diags = sum(
            len(inner) for g in enc.linear_groups.values() for inner in g.values()
        ) + sum(len(d) for d in enc.linear_diagonals.values())
        n_bias = len(enc.linear_bias_slots)
        assert len(art.cache) == n_diags + n_bias

    def test_encoded_payload_follows_matvec_plan(self, toy):
        """BSGS layers get grouped {giant: {baby: Plaintext}} payloads
        whose shape mirrors the pre-rotated raw groups."""
        _, enc = toy
        art = ModelArtifact(enc, cache_activations=False)
        i = next(iter(enc.linear_groups))
        ct = enc.encrypt_batch([np.zeros(8)])
        payload, _ = art.encoded_linear(i, ct.level, ct.scale)
        raw = enc.linear_groups[i]
        assert {g: set(inner) for g, inner in payload.items()} == {
            g: set(inner) for g, inner in raw.items()
        }
        for inner in payload.values():
            for pt in inner.values():
                assert isinstance(pt, Plaintext)

    def test_stats_shape(self, toy):
        _, enc = toy
        art = ModelArtifact(enc, cache_activations=False)
        stats = art.stats()
        assert set(stats) == {"entries", "hits", "misses", "hit_rate"}


class TestActivationPrewarm:
    """Pre-encoded PAF coefficient cache (the activation-plan path)."""

    def test_layer_input_levels_schedule(self, toy):
        from repro.paf.relu import relu_mult_depth

        _, enc = toy
        levels = enc.layer_input_levels()
        level = enc.ctx.max_level
        for i, plan in sorted(enc.matvec_plans.items() | enc.paf_plans.items()):
            assert levels[i] == level
            level -= 1 if i in enc.matvec_plans else relu_mult_depth(
                enc.layers[i].paf
            )

    def test_prewarm_counts_and_steady_state_hits(self, toy):
        _, enc = toy
        original_encoder = enc.ev.encoder
        try:
            art = ModelArtifact(enc, cache_activations=True)
            expected = sum(
                plan.num_leaves + 1 for plan in enc.paf_plans.values()
            )
            count = art.prewarm_activations()
            assert count == expected
            assert len(art.cache) == expected       # nothing else encoded yet
            art.warm()
            # every prewarmed constant was consumed from the cache (the
            # evaluator's encodes matched the plan's (value, level, scale)
            # coordinates key-for-key)
            assert art.cache.hits >= count
            for value, level, scale in art.activation_encodings(
                next(iter(enc.paf_plans))
            ):
                hits = art.cache.hits
                art.cache.encode(value, level, scale)
                assert art.cache.hits == hits + 1
            # steady state: a further forward encodes nothing fresh —
            # activation constants and alignment corrections included
            misses_after_warm = art.cache.misses
            art.forward(enc.encrypt_batch([np.ones(8)]))
            assert art.cache.misses == misses_after_warm
        finally:
            enc.ev.encoder = original_encoder

    def test_prewarmed_forward_bit_identical(self, toy):
        _, enc = toy
        original_encoder = enc.ev.encoder
        try:
            ct = enc.encrypt_batch([np.linspace(-1, 1, 8)])
            plain_art = ModelArtifact(enc, cache_activations=False)
            out_a = plain_art.forward(ct)
            warm_art = ModelArtifact(enc, cache_activations=True)
            warm_art.prewarm_activations()
            out_b = warm_art.forward(ct)
            # cached plaintexts are bit-identical to fresh encodes, so the
            # whole encrypted forward is too
            assert np.array_equal(out_a.c0.data, out_b.c0.data)
            assert np.array_equal(out_a.c1.data, out_b.c1.data)
        finally:
            enc.ev.encoder = original_encoder


class TestPersistence:
    def test_export_import_entries_round_trip(self, toy):
        _, enc = toy
        art = ModelArtifact(enc)
        art.warm()
        entries = art.cache.export_entries()
        assert len(entries) == len(art.cache)
        art2 = ModelArtifact(enc)
        assert art2.cache.import_entries(enc.ctx, entries) == len(entries)
        # an imported plaintext is bit-identical to the original
        key = entries[0][0]
        pt_a = art.cache._entries[key]
        pt_b = art2.cache._entries[key]
        np.testing.assert_array_equal(pt_a.poly.data, pt_b.poly.data)
        assert pt_a.scale == pt_b.scale

    def test_save_load_cache_warm_starts(self, toy, tmp_path):
        _, enc = toy
        art = ModelArtifact(enc)
        art.warm()
        path = tmp_path / "toy.cache"
        saved = art.save_cache(path)
        assert saved == len(art.cache)

        cold = ModelArtifact(enc)
        assert cold.load_cache(path) == saved
        # the per-layer memo was rebuilt: a forward hits only the cache
        misses_before = cold.cache.misses
        x = np.random.default_rng(2).normal(size=8)
        ct = enc.encrypt_batch([x])
        cold.forward(ct)
        assert cold.cache.misses == misses_before

    def test_loaded_forward_bit_identical(self, toy, tmp_path):
        _, enc = toy
        art = ModelArtifact(enc)
        art.warm()
        path = tmp_path / "toy.cache"
        art.save_cache(path)
        warm2 = ModelArtifact(enc)
        warm2.load_cache(path)
        x = np.random.default_rng(3).normal(size=8)
        ct = enc.encrypt_batch([x])  # one encryption, two forwards
        a = enc.decrypt_logits(art.forward(ct), 3, batch=1)
        b = enc.decrypt_logits(warm2.forward(ct), 3, batch=1)
        np.testing.assert_array_equal(a, b)

    def test_fingerprint_is_stable_and_model_sensitive(self, toy):
        _, enc = toy
        art = ModelArtifact(enc)
        assert art.fingerprint() == ModelArtifact(enc).fingerprint()

    def test_load_rejects_other_models_cache(self, toy, tmp_path):
        from repro.fhe.toy import compiled_toy_cnn
        from repro.serve import ArtifactMismatchError

        _, enc = toy
        art = ModelArtifact(enc)
        art.warm()
        path = tmp_path / "toy.cache"
        art.save_cache(path)
        other = ModelArtifact(compiled_toy_cnn())
        with pytest.raises(ArtifactMismatchError, match="different compiled model"):
            other.load_cache(path)

    def test_load_rejects_foreign_format(self, toy, tmp_path):
        import pickle

        from repro.serve import ArtifactMismatchError

        _, enc = toy
        path = tmp_path / "bogus.cache"
        with open(path, "wb") as fh:
            pickle.dump({"format": "something-else", "entries": []}, fh)
        with pytest.raises(ArtifactMismatchError):
            ModelArtifact(enc).load_cache(path)


class TestUnifiedCompile:
    """``ModelArtifact.compile`` dispatches on model type; old names shim."""

    def test_compile_dispatches_mlp_and_matches_direct(self, toy):
        from repro.fhe.toy import TOY_PARAMS

        model, enc = toy
        art = ModelArtifact.compile(model, TOY_PARAMS, cache_activations=False)
        assert [type(n) for n in art.model.graph.nodes] == [
            type(n) for n in enc.graph.nodes
        ]
        x = np.linspace(-1, 1, 8)
        got = art.model.ev.decrypt(
            art.forward(art.model.encrypt_batch([x])), num_values=3
        )
        want = enc.ev.decrypt(enc.forward(enc.encrypt_batch([x])), num_values=3)
        # independent compile -> fresh keys and encryption randomness;
        # only the approximation, not the bits, is shared
        np.testing.assert_allclose(got, want, atol=1e-3)

    def test_loose_kwargs_warn_and_fold_into_policy(self, toy):
        from repro.fhe.toy import TOY_PARAMS

        model, _ = toy
        with pytest.warns(DeprecationWarning, match="policy=CompilePolicy"):
            art = ModelArtifact.compile(
                model, TOY_PARAMS, seed=1, cache_activations=False
            )
        assert isinstance(art, ModelArtifact)
        assert art.model.policy.seed == 1

    def test_policy_and_loose_kwargs_together_rejected(self, toy):
        from repro.fhe.ir import CompilePolicy
        from repro.fhe.toy import TOY_PARAMS

        model, _ = toy
        with pytest.raises(ValueError, match="not both"):
            ModelArtifact.compile(
                model, TOY_PARAMS, seed=1, policy=CompilePolicy()
            )

    def test_policy_carries_compile_options(self, toy):
        from repro.fhe.ir import CompilePolicy
        from repro.fhe.toy import TOY_PARAMS

        model, _ = toy
        art = ModelArtifact.compile(
            model,
            TOY_PARAMS,
            policy=CompilePolicy(seed=2),
            cache_activations=False,
        )
        assert art.model.policy.seed == 2

    def test_per_family_classmethods_removed(self):
        assert not hasattr(ModelArtifact, "compile_cnn")
        assert not hasattr(ModelArtifact, "compile_resnet")
