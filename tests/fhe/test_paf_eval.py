"""Differential suite: Paterson–Stockmeyer vs ladder vs plaintext PAF.

Every registry PAF is evaluated on ciphertexts along both activation
paths and decrypted against the plaintext ``paf_relu`` reference; the
paths must agree with each other (they compute the same polynomial) and
with the plaintext within the CKKS noise bar, and the level consumption
of the new path must equal the analytic ``mult_depth`` exactly.

Random odd polynomials (hypothesis) run end-to-end on a small ring so the
plan executor is exercised far beyond the registry's coefficient shapes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckks import (
    CkksContext,
    CkksEvaluator,
    CkksParams,
    eval_composite_paf,
    eval_odd_poly,
    eval_paf_max,
    eval_paf_relu,
    keygen,
    plan_odd_poly,
    plan_paf_relu,
)
from repro.paf import PAF_REGISTRY, get_paf
from repro.paf.polynomial import OddPolynomial
from repro.paf.relu import paf_relu, relu_mult_depth

ALL_FORMS = sorted(PAF_REGISTRY)
#: the paper's low-degree forms — tight noise bars hold at test-grade Δ=2^25
LOW_DEGREE_FORMS = sorted(set(ALL_FORMS) - {"alpha10"})


@pytest.fixture(scope="module")
def rt():
    """One deep context covering every registry PAF (alpha10 needs 11)."""
    ctx = CkksContext(CkksParams(n=256, scale_bits=25, depth=11))
    keys = keygen(ctx, seed=0)
    return ctx, CkksEvaluator(ctx, keys)


class TestRegistryDifferential:
    @pytest.mark.parametrize("form", LOW_DEGREE_FORMS)
    def test_relu_ps_vs_ladder_vs_plaintext(self, rt, form):
        ctx, ev = rt
        paf = get_paf(form)
        rng = np.random.default_rng(7)
        x = rng.uniform(-1, 1, ctx.slots)
        ct = ev.encrypt(x)
        out_ps = eval_paf_relu(ev, ct, paf)
        out_ladder = eval_paf_relu(ev, ct, paf, reference=True)
        got_ps = ev.decrypt(out_ps)
        got_ladder = ev.decrypt(out_ladder)
        ref = paf_relu(x, paf)
        # the two encrypted paths compute the same polynomial: they agree
        # with each other within noise, and with the plaintext reference
        np.testing.assert_allclose(got_ps, got_ladder, atol=5e-2)
        np.testing.assert_allclose(got_ps, ref, atol=5e-2)
        # the new path matches the analytic depth schedule exactly
        assert ctx.max_level - out_ps.level == relu_mult_depth(paf)
        assert out_ps.level == out_ladder.level

    @pytest.mark.parametrize("form", ALL_FORMS)
    def test_sign_level_consumption_equals_mult_depth(self, rt, form):
        ctx, ev = rt
        paf = get_paf(form)
        x = np.linspace(-1, 1, ctx.slots)
        out = eval_composite_paf(ev, ev.encrypt(x), paf)
        assert ctx.max_level - out.level == paf.mult_depth

    def test_alpha10_ps_far_more_accurate_than_ladder(self, rt):
        """The α=10 baseline's degree-27 minimax component carries
        coefficients up to ~2.7e3, which dominate the noise budget at
        test-grade Δ=2^25 — exactly the head-room problem that motivates
        the paper's low-degree PAFs (it needs the 881-bit paper-grade
        moduli).  The Paterson–Stockmeyer blocks cancel partial sums
        early (Horner-style), keeping its error orders of magnitude below
        the term-by-term ladder's even here."""
        ctx, ev = rt
        paf = get_paf("alpha10")
        rng = np.random.default_rng(7)
        x = rng.uniform(-1, 1, ctx.slots)
        ct = ev.encrypt(x)
        out_ps = eval_paf_relu(ev, ct, paf)
        out_ladder = eval_paf_relu(ev, ct, paf, reference=True)
        ref = paf_relu(x, paf)
        err_ps = np.abs(ev.decrypt(out_ps) - ref).max()
        err_ladder = np.abs(ev.decrypt(out_ladder) - ref).max()
        assert err_ps < 2.0          # bounded despite the coefficient spread
        assert err_ps < err_ladder / 50.0
        assert ctx.max_level - out_ps.level == relu_mult_depth(paf)
        assert out_ps.level == out_ladder.level

    @pytest.mark.parametrize("form", ["f1g2", "f2g3"])
    def test_static_scale_folding(self, rt, form):
        ctx, ev = rt
        paf = get_paf(form)
        rng = np.random.default_rng(3)
        x = rng.uniform(-4, 4, ctx.slots)
        ct = ev.encrypt(x)
        got = ev.decrypt(eval_paf_relu(ev, ct, paf, scale=4.0))
        got_ref = ev.decrypt(eval_paf_relu(ev, ct, paf, scale=4.0, reference=True))
        np.testing.assert_allclose(got, got_ref, atol=0.2)
        np.testing.assert_allclose(got, paf_relu(x, paf, scale=4.0), atol=0.2)

    def test_precompiled_plan_is_bit_identical(self, rt):
        """Passing the plan explicitly (the network path) changes nothing."""
        ctx, ev = rt
        paf = get_paf("f2g2")
        x = np.linspace(-1, 1, ctx.slots)
        ct = ev.encrypt(x)
        plan = plan_paf_relu(paf)
        a = eval_paf_relu(ev, ct, paf, plan=plan)
        b = eval_paf_relu(ev, ct, paf)
        assert np.array_equal(a.c0.data, b.c0.data)
        assert np.array_equal(a.c1.data, b.c1.data)

    def test_plan_for_wrong_scale_rejected(self, rt):
        """A plan folded for one static scale cannot silently evaluate at
        another — the fold would be dropped and the output wrong."""
        ctx, ev = rt
        paf = get_paf("f1g2")
        ct = ev.encrypt(np.linspace(-1, 1, ctx.slots))
        plan = plan_paf_relu(paf)                    # scale 1.0
        with pytest.raises(ValueError, match="static scale"):
            eval_paf_relu(ev, ct, paf, scale=4.0, plan=plan)

    def test_paf_max_reference_flag(self, rt):
        ctx, ev = rt
        paf = get_paf("f1g2")
        rng = np.random.default_rng(5)
        x = rng.uniform(-1, 1, ctx.slots)
        y = rng.uniform(-1, 1, ctx.slots)
        cta, ctb = ev.encrypt(x), ev.encrypt(y)
        got = ev.decrypt(eval_paf_max(ev, cta, ctb, paf, scale=2.0))
        got_ref = ev.decrypt(
            eval_paf_max(ev, cta, ctb, paf, scale=2.0, reference=True)
        )
        np.testing.assert_allclose(got, got_ref, atol=5e-2)


class TestHypothesisRandomPolynomials:
    @given(
        num_coeffs=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        sparsity=st.floats(min_value=0.0, max_value=0.7),
    )
    @settings(max_examples=12, deadline=None)
    def test_ps_matches_ladder_and_plaintext(self, rt, num_coeffs, seed, sparsity):
        ctx, ev = rt
        rng = np.random.default_rng(seed)
        # bounded coefficients keep intermediate values inside the scale
        # headroom — the property under test is structural equivalence
        coeffs = rng.uniform(-2, 2, num_coeffs)
        coeffs[rng.random(num_coeffs) < sparsity] = 0.0
        if not np.any(coeffs):
            coeffs[0] = 1.0
        poly = OddPolynomial(coeffs)
        x = rng.uniform(-1, 1, ctx.slots)
        ct = ev.encrypt(x)
        out_ps = eval_odd_poly(ev, ct, poly)
        out_ladder = eval_odd_poly(ev, ct, poly, reference=True)
        np.testing.assert_allclose(
            ev.decrypt(out_ps), ev.decrypt(out_ladder), atol=5e-2
        )
        np.testing.assert_allclose(ev.decrypt(out_ps), poly(x), atol=5e-2)
        # both paths land on the same level; the ladder's scale may sit up
        # to ~1% off the canonical one (align_to skips sub-rtol drift
        # corrections there), while the PS path aligns exactly
        assert out_ps.level == out_ladder.level
        assert abs(out_ps.scale - out_ladder.scale) < 0.011 * out_ladder.scale
        plan = plan_odd_poly(poly)
        assert ctx.max_level - out_ps.level == plan.mult_depth
