"""The typed graph IR: structure validation, intervals, round-trip.

The api_redesign contract in three parts:

* **structural validation**: residual taps/merges must pair like
  brackets, projection merges need a main-branch level gap;
* **domain-interval propagation**: the bounds each polynomial planner
  checks its declared approximation domain against;
* **round-trip equivalence**: the typed-IR executor against a pinned
  straight-line twin of the pre-redesign string-``kind`` loop — same
  caches, same primitives, same order.  Ciphertexts must be
  bit-identical and :class:`CountingEvaluator` totals equal, in both
  plan and reference modes: the redesign moved *dispatch*, not math.

Plus the deprecation shims the redesign left behind (``EncryptedMLP``,
boolean ``forward(reference=)``).
"""

import numpy as np
import pytest

from repro.ckks.instrumentation import CountingEvaluator
from repro.ckks.poly_eval import eval_paf_relu
from repro.fhe.ir import (
    AttentionNode,
    Graph,
    MatvecNode,
    MergeNode,
    PafNode,
    PolyNode,
    ResidualTapNode,
    propagate_intervals,
)
from repro.fhe.linear import encrypted_matvec, encrypted_matvec_bsgs
from repro.paf.polynomial import Polynomial


def _eye_node(size=4):
    return MatvecNode(weight=np.eye(size))


# ----------------------------------------------------------------------
# structural validation
# ----------------------------------------------------------------------
class TestGraphValidation:
    def test_total_depth_sums_level_costs(self):
        g = Graph([_eye_node(), PolyNode(poly=Polynomial((0.0, 1.0, 1.0)))], size=4)
        assert g.total_depth() == 1 + 2

    def test_merge_without_tap_rejected(self):
        with pytest.raises(ValueError, match="no open residual tap"):
            Graph([_eye_node(), MergeNode(tap=0)], size=4)

    def test_unmerged_tap_rejected(self):
        with pytest.raises(ValueError, match="never merged"):
            Graph([ResidualTapNode(), _eye_node()], size=4)

    def test_projection_merge_needs_level_gap(self):
        proj = MergeNode(tap=0, blocks=[[np.eye(4)]])
        with pytest.raises(ValueError, match="depth of >= 1"):
            Graph([ResidualTapNode(), proj], size=4)

    def test_balanced_residual_accepted(self):
        g = Graph(
            [ResidualTapNode(), _eye_node(), MergeNode(tap=0)], size=4
        )
        assert g.total_depth() == 1

    def test_input_levels_descend_by_cost(self):
        g = Graph([_eye_node(), PolyNode(poly=Polynomial((0.0, 1.0, 1.0)))], size=4)
        levels = g.input_levels(10)
        assert levels == {0: 10, 1: 9}


# ----------------------------------------------------------------------
# domain-interval propagation
# ----------------------------------------------------------------------
class TestIntervalPropagation:
    def test_matvec_interval_is_row_wise_bound(self):
        w = np.array([[1.0, -2.0], [0.5, 0.5]])
        node = MatvecNode(weight=w)
        g = Graph([node], size=2)
        (got,) = propagate_intervals(g, (-1.0, 1.0))
        # row 0: |1| + |-2| = 3 → [-3, 3]; row 1 tighter
        assert got == (-3.0, 3.0)

    def test_poly_interval_is_range_over_domain(self):
        node = PolyNode(poly=Polynomial((0.0, 0.0, 1.0)))  # x^2
        g = Graph([node], size=2)
        (got,) = propagate_intervals(g, (-2.0, 1.0))
        # grid-sampled range: the minimum lands near (not exactly on) 0
        assert got[0] == pytest.approx(0.0, abs=1e-5)
        assert got[1] == pytest.approx(4.0)

    def test_intervals_recorded_on_nodes(self):
        node = _eye_node(2)
        g = Graph([node], size=2)
        propagate_intervals(g, (-1.5, 2.5))
        assert node.interval == (-1.5, 2.5)

    def test_attention_bounded_by_projected_values(self, toy_transformer):
        _, enc = toy_transformer
        att = next(n for n in enc.graph.nodes if isinstance(n, AttentionNode))
        propagate_intervals(enc.graph, (-3.0, 3.0))
        lo, hi = att.interval
        assert lo < 0 < hi and hi - lo < 200.0  # finite, conservative


# ----------------------------------------------------------------------
# round-trip equivalence vs the pre-redesign execution order
# ----------------------------------------------------------------------
def _legacy_forward(enc, ct, ev, reference=False):
    """Straight-line twin of the pre-redesign string-``kind`` loop.

    Pinned copy of the old ``EncryptedNetwork.forward`` body for
    linear/paf stacks (the only kinds the pre-IR MLP path executed):
    replicate-then-matvec per linear layer, ``eval_paf_relu`` per
    activation, reading the same compiled caches the IR executor reads.
    """
    for i, node in enumerate(enc.graph.nodes):
        if isinstance(node, MatvecNode):
            if i > 0:
                ct = enc._replicate(ct, ev)
            bsgs = enc.matvec_plans[i].use_bsgs and not reference
            bias_slots = enc.linear_bias_slots.get(i)
            if bsgs:
                ct = encrypted_matvec_bsgs(
                    ev, ct, groups=enc.linear_groups[i], bias_slots=bias_slots
                )
            else:
                ct = encrypted_matvec(
                    ev, ct, diagonals=enc.linear_diagonals[i], bias_slots=bias_slots
                )
        elif isinstance(node, PafNode):
            ct = eval_paf_relu(
                ev,
                ct,
                node.paf,
                scale=node.scale,
                plan=enc.paf_plans[i],
                reference=reference,
            )
        else:  # pragma: no cover - the MLP graph has no other kinds
            raise AssertionError(f"unexpected node {type(node).__name__}")
    return ct


def _assert_bit_identical(a, b):
    assert a.level == b.level and a.scale == b.scale
    assert np.array_equal(a.c0.data, b.c0.data)
    assert np.array_equal(a.c1.data, b.c1.data)


class TestRoundTripEquivalence:
    @pytest.mark.parametrize("mode", ["plan", "reference"])
    def test_ir_executor_bit_identical_to_legacy(self, toy_reference_enc, mode):
        enc = toy_reference_enc
        rng = np.random.default_rng(7)
        ct = enc.encrypt_input(rng.normal(0.0, 1.0, 8))
        reference = mode == "reference"

        counting_ir = CountingEvaluator(enc.ev)
        out_ir = enc.forward(ct, ev=counting_ir, mode=mode)

        counting_legacy = CountingEvaluator(enc.ev)
        out_legacy = _legacy_forward(enc, ct, counting_legacy, reference=reference)

        _assert_bit_identical(out_ir, out_legacy)
        assert counting_ir.counts == counting_legacy.counts

    def test_decrypted_logits_agree_across_modes(self, toy_reference_enc):
        enc = toy_reference_enc
        rng = np.random.default_rng(8)
        x = rng.normal(0.0, 1.0, 8)
        ct = enc.encrypt_input(x)
        lp = enc.ev.decrypt(enc.forward(ct, mode="plan"), num_values=3)
        lr = enc.ev.decrypt(enc.forward(ct, mode="reference"), num_values=3)
        np.testing.assert_allclose(lp, lr, rtol=1e-3, atol=1e-3)


# ----------------------------------------------------------------------
# deprecation shims
# ----------------------------------------------------------------------
class TestDeprecationShims:
    def test_encrypted_mlp_alias_warns(self):
        import repro.fhe.network as network

        with pytest.warns(DeprecationWarning, match="EncryptedMLP"):
            alias = network.EncryptedMLP
        assert alias is network.EncryptedNetwork

    def test_boolean_reference_kwarg_warns(self, toy_reference_enc):
        enc = toy_reference_enc
        ct = enc.encrypt_input(np.zeros(8))
        with pytest.warns(DeprecationWarning, match="mode="):
            out = enc.forward(ct, reference=True)
        want = enc.forward(ct, mode="reference")
        _assert_bit_identical(out, want)

    def test_mode_and_reference_together_rejected(self, toy_reference_enc):
        enc = toy_reference_enc
        ct = enc.encrypt_input(np.zeros(8))
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="not both"):
                enc.forward(ct, mode="plan", reference=False)

    def test_unknown_mode_rejected(self, toy_reference_enc):
        enc = toy_reference_enc
        ct = enc.encrypt_input(np.zeros(8))
        with pytest.raises(ValueError, match="mode must be"):
            enc.forward(ct, mode="naive")
