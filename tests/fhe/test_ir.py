"""The typed graph IR: structure validation, intervals, round-trip.

The api_redesign contract in three parts:

* **structural validation**: residual taps/merges must pair like
  brackets, projection merges need a main-branch level gap;
* **domain-interval propagation**: the bounds each polynomial planner
  checks its declared approximation domain against;
* **round-trip equivalence**: the typed-IR executor against a pinned
  straight-line twin of the pre-redesign string-``kind`` loop — same
  caches, same primitives, same order.  Ciphertexts must be
  bit-identical and :class:`CountingEvaluator` totals equal, in both
  plan and reference modes: the redesign moved *dispatch*, not math.

Plus the :class:`CompilePolicy` surface the refresh redesign added —
validation, refresh placement, and the one-release loose-kwarg shim on
``compile_network``.
"""

import numpy as np
import pytest

from repro.ckks.instrumentation import CountingEvaluator
from repro.ckks.poly_eval import eval_paf_relu
from repro.fhe.ir import (
    AttentionNode,
    CompilePolicy,
    Graph,
    MatvecNode,
    MergeNode,
    PafNode,
    PolyNode,
    RefreshNode,
    ResidualTapNode,
    apply_refresh_policy,
    compile_network,
    propagate_intervals,
)
from repro.fhe.linear import encrypted_matvec, encrypted_matvec_bsgs
from repro.paf.polynomial import Polynomial


def _eye_node(size=4):
    return MatvecNode(weight=np.eye(size))


# ----------------------------------------------------------------------
# structural validation
# ----------------------------------------------------------------------
class TestGraphValidation:
    def test_total_depth_sums_level_costs(self):
        g = Graph([_eye_node(), PolyNode(poly=Polynomial((0.0, 1.0, 1.0)))], size=4)
        assert g.total_depth() == 1 + 2

    def test_merge_without_tap_rejected(self):
        with pytest.raises(ValueError, match="no open residual tap"):
            Graph([_eye_node(), MergeNode(tap=0)], size=4)

    def test_unmerged_tap_rejected(self):
        with pytest.raises(ValueError, match="never merged"):
            Graph([ResidualTapNode(), _eye_node()], size=4)

    def test_projection_merge_needs_level_gap(self):
        proj = MergeNode(tap=0, blocks=[[np.eye(4)]])
        with pytest.raises(ValueError, match="depth of >= 1"):
            Graph([ResidualTapNode(), proj], size=4)

    def test_balanced_residual_accepted(self):
        g = Graph(
            [ResidualTapNode(), _eye_node(), MergeNode(tap=0)], size=4
        )
        assert g.total_depth() == 1

    def test_input_levels_descend_by_cost(self):
        g = Graph([_eye_node(), PolyNode(poly=Polynomial((0.0, 1.0, 1.0)))], size=4)
        levels = g.input_levels(10)
        assert levels == {0: 10, 1: 9}


# ----------------------------------------------------------------------
# domain-interval propagation
# ----------------------------------------------------------------------
class TestIntervalPropagation:
    def test_matvec_interval_is_row_wise_bound(self):
        w = np.array([[1.0, -2.0], [0.5, 0.5]])
        node = MatvecNode(weight=w)
        g = Graph([node], size=2)
        (got,) = propagate_intervals(g, (-1.0, 1.0))
        # row 0: |1| + |-2| = 3 → [-3, 3]; row 1 tighter
        assert got == (-3.0, 3.0)

    def test_poly_interval_is_range_over_domain(self):
        node = PolyNode(poly=Polynomial((0.0, 0.0, 1.0)))  # x^2
        g = Graph([node], size=2)
        (got,) = propagate_intervals(g, (-2.0, 1.0))
        # grid-sampled range: the minimum lands near (not exactly on) 0
        assert got[0] == pytest.approx(0.0, abs=1e-5)
        assert got[1] == pytest.approx(4.0)

    def test_intervals_recorded_on_nodes(self):
        node = _eye_node(2)
        g = Graph([node], size=2)
        propagate_intervals(g, (-1.5, 2.5))
        assert node.interval == (-1.5, 2.5)

    def test_attention_bounded_by_projected_values(self, toy_transformer):
        _, enc = toy_transformer
        att = next(n for n in enc.graph.nodes if isinstance(n, AttentionNode))
        propagate_intervals(enc.graph, (-3.0, 3.0))
        lo, hi = att.interval
        assert lo < 0 < hi and hi - lo < 200.0  # finite, conservative


# ----------------------------------------------------------------------
# round-trip equivalence vs the pre-redesign execution order
# ----------------------------------------------------------------------
def _legacy_forward(enc, ct, ev, reference=False):
    """Straight-line twin of the pre-redesign string-``kind`` loop.

    Pinned copy of the old ``EncryptedNetwork.forward`` body for
    linear/paf stacks (the only kinds the pre-IR MLP path executed):
    replicate-then-matvec per linear layer, ``eval_paf_relu`` per
    activation, reading the same compiled caches the IR executor reads.
    """
    for i, node in enumerate(enc.graph.nodes):
        if isinstance(node, MatvecNode):
            if i > 0:
                ct = enc._replicate(ct, ev)
            bsgs = enc.matvec_plans[i].use_bsgs and not reference
            bias_slots = enc.linear_bias_slots.get(i)
            if bsgs:
                ct = encrypted_matvec_bsgs(
                    ev, ct, groups=enc.linear_groups[i], bias_slots=bias_slots
                )
            else:
                ct = encrypted_matvec(
                    ev, ct, diagonals=enc.linear_diagonals[i], bias_slots=bias_slots
                )
        elif isinstance(node, PafNode):
            ct = eval_paf_relu(
                ev,
                ct,
                node.paf,
                scale=node.scale,
                plan=enc.paf_plans[i],
                reference=reference,
            )
        else:  # pragma: no cover - the MLP graph has no other kinds
            raise AssertionError(f"unexpected node {type(node).__name__}")
    return ct


def _assert_bit_identical(a, b):
    assert a.level == b.level and a.scale == b.scale
    assert np.array_equal(a.c0.data, b.c0.data)
    assert np.array_equal(a.c1.data, b.c1.data)


class TestRoundTripEquivalence:
    @pytest.mark.parametrize("mode", ["plan", "reference"])
    def test_ir_executor_bit_identical_to_legacy(self, toy_reference_enc, mode):
        enc = toy_reference_enc
        rng = np.random.default_rng(7)
        ct = enc.encrypt_input(rng.normal(0.0, 1.0, 8))
        reference = mode == "reference"

        counting_ir = CountingEvaluator(enc.ev)
        out_ir = enc.forward(ct, ev=counting_ir, mode=mode)

        counting_legacy = CountingEvaluator(enc.ev)
        out_legacy = _legacy_forward(enc, ct, counting_legacy, reference=reference)

        _assert_bit_identical(out_ir, out_legacy)
        assert counting_ir.counts == counting_legacy.counts

    def test_decrypted_logits_agree_across_modes(self, toy_reference_enc):
        enc = toy_reference_enc
        rng = np.random.default_rng(8)
        x = rng.normal(0.0, 1.0, 8)
        ct = enc.encrypt_input(x)
        lp = enc.ev.decrypt(enc.forward(ct, mode="plan"), num_values=3)
        lr = enc.ev.decrypt(enc.forward(ct, mode="reference"), num_values=3)
        np.testing.assert_allclose(lp, lr, rtol=1e-3, atol=1e-3)


# ----------------------------------------------------------------------
# compile policy: validation, refresh placement, loose-kwarg shim
# ----------------------------------------------------------------------
class TestCompilePolicy:
    def test_unknown_mode_rejected(self, toy_reference_enc):
        enc = toy_reference_enc
        ct = enc.encrypt_input(np.zeros(8))
        with pytest.raises(ValueError, match="mode must be"):
            enc.forward(ct, mode="naive")

    def test_bad_refresh_string_rejected(self):
        with pytest.raises(ValueError, match="refresh must be"):
            CompilePolicy(refresh="sometimes")

    def test_bad_refresh_positions_rejected(self):
        with pytest.raises(ValueError, match="non-negative node"):
            CompilePolicy(refresh=(2, -1))

    def test_bad_refresh_method_rejected(self):
        with pytest.raises(ValueError, match="refresh_method"):
            CompilePolicy(refresh_method="modraise")

    def test_refresh_list_normalised_to_tuple(self):
        assert CompilePolicy(refresh=[3, 1]).refresh == (3, 1)

    def test_loose_kwargs_warn_and_fold_into_policy(self, paf_mlp_model):
        from repro.fhe.toy import TOY_PARAMS

        with pytest.warns(DeprecationWarning, match="policy=CompilePolicy"):
            enc = compile_network(paf_mlp_model, TOY_PARAMS, seed=1)
        assert enc.policy.seed == 1

    def test_loose_kwargs_and_policy_together_rejected(self, paf_mlp_model):
        from repro.fhe.toy import TOY_PARAMS

        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="not both"):
                compile_network(
                    paf_mlp_model, TOY_PARAMS, seed=1, policy=CompilePolicy()
                )

    def test_policy_compile_matches_explicit_kwargs(self, paf_mlp_model):
        from repro.fhe.toy import TOY_PARAMS

        enc = compile_network(
            paf_mlp_model, TOY_PARAMS, policy=CompilePolicy(seed=3)
        )
        assert enc.policy.seed == 3
        assert not any(isinstance(n, RefreshNode) for n in enc.graph.nodes)


@pytest.fixture(scope="module")
def paf_mlp_model():
    """A small PAF-replaced MLP ready for ``compile_network``."""
    from repro.core import calibrate_static_scales, convert_to_static, replace_all
    from repro.nn.models import mlp
    from repro.paf import get_paf

    rng = np.random.default_rng(0)
    model = mlp(8, hidden=(6,), num_classes=3, seed=0)
    replace_all(model, get_paf("f1g2"), np.zeros((1, 8)))
    calibrate_static_scales(model, [rng.normal(size=(64, 8))])
    convert_to_static(model)
    model.eval()
    return model


def _poly_chain(n, depth_each=2):
    """``n`` PolyNodes costing ``depth_each`` levels apiece."""
    poly = Polynomial((0.0, 1.0, 1.0))  # degree 2 -> 2 levels
    return [PolyNode(poly=poly) for _ in range(n)]


class TestRefreshPlacement:
    def test_fitting_graph_gets_no_refresh(self):
        g = Graph(_poly_chain(2), size=4)
        assert apply_refresh_policy(g, 10, CompilePolicy()) == ()
        assert not any(isinstance(n, RefreshNode) for n in g.nodes)

    def test_never_policy_skips_even_when_too_deep(self):
        g = Graph(_poly_chain(6), size=4)
        assert apply_refresh_policy(g, 5, CompilePolicy(refresh="never")) == ()

    def test_auto_inserts_latest_possible_refresh(self):
        # 6 nodes x 2 levels = 12 > 9; refreshed budget 9-1=8 covers four
        # nodes, so the greedy search refreshes right before node 4
        g = Graph(_poly_chain(6), size=4)
        inserted = apply_refresh_policy(
            g, 9, CompilePolicy(), pipeline_levels=1
        )
        assert inserted == (4,)
        assert isinstance(g.nodes[4], RefreshNode)
        assert g.nodes[4].level_cost() == 0
        assert g.metadata["refresh"]["positions"] == [4]

    def test_auto_inserts_multiple_refreshes_for_very_deep_chains(self):
        g = Graph(_poly_chain(10), size=4)  # 20 levels over a 6-chain
        inserted = apply_refresh_policy(
            g, 6, CompilePolicy(), pipeline_levels=0
        )
        assert len(inserted) >= 3
        level, budget = 6, 6
        for node in g.nodes:
            if isinstance(node, RefreshNode):
                level = budget
            level -= node.level_cost()
            assert level >= 0  # placement actually rescues the descent

    def test_refresh_never_lands_inside_residual_bracket(self):
        poly = Polynomial((0.0, 1.0, 1.0))
        nodes = [
            ResidualTapNode(),
            PolyNode(poly=poly),
            PolyNode(poly=poly),
            MergeNode(tap=0),
            PolyNode(poly=poly),
        ]
        g = Graph(nodes, size=4)  # 6 levels of cost
        inserted = apply_refresh_policy(g, 5, CompilePolicy())
        # only legal boundary past the deficit is after the merge
        assert inserted == (4,)
        assert isinstance(g.nodes[4], RefreshNode)
        # the merge's tap still points at the (unshifted) tap node
        merge = next(n for n in g.nodes if isinstance(n, MergeNode))
        assert isinstance(g.nodes[merge.tap], ResidualTapNode)

    def test_merge_tap_shifts_past_insertion(self):
        poly = Polynomial((0.0, 1.0, 1.0))
        nodes = [
            PolyNode(poly=poly),
            PolyNode(poly=poly),
            ResidualTapNode(),
            PolyNode(poly=poly),
            MergeNode(tap=2),
        ]
        g = Graph(nodes, size=4)
        inserted = apply_refresh_policy(g, 7, CompilePolicy(refresh=(2,)))
        assert inserted == (2,)
        merge = next(n for n in g.nodes if isinstance(n, MergeNode))
        assert merge.tap == 3
        assert isinstance(g.nodes[merge.tap], ResidualTapNode)

    def test_segment_deeper_than_budget_rejected(self):
        g = Graph(_poly_chain(4), size=4)
        with pytest.raises(ValueError, match="deepen the chain"):
            apply_refresh_policy(g, 3, CompilePolicy(), pipeline_levels=3)

    def test_explicit_positions_out_of_range_rejected(self):
        g = Graph(_poly_chain(2), size=4)
        with pytest.raises(ValueError, match="exceed the graph"):
            apply_refresh_policy(g, 10, CompilePolicy(refresh=(7,)))
