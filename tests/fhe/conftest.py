"""Shared fixtures: the compiled toy model for the fhe suite.

The canonical 8 -> 6 -> 3 toy build lives in :mod:`repro.fhe.toy`
(shared with ``tests/serve`` and the benchmarks); here it is compiled
twice — with ``reference_keys=True`` (BSGS *and* naive Galois keys, for
differential / op-count tests) and in production form (BSGS keys only).
"""

import pytest

from repro.fhe.toy import compiled_toy


@pytest.fixture(scope="session")
def toy_reference_enc():
    """Compiled toy with Galois keys for both matvec paths."""
    return compiled_toy(reference_keys=True)


@pytest.fixture(scope="session")
def toy_plain_enc():
    """Compiled toy in production form (BSGS plans/keys only)."""
    return compiled_toy()
