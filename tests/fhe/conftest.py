"""Shared fixtures: the compiled toy models for the fhe suite.

The canonical 8 -> 6 -> 3 MLP and the trained 2-conv CNN builds live in
:mod:`repro.fhe.toy` (shared with ``tests/serve`` and the benchmarks).
The MLP is compiled twice — with ``reference_keys=True`` (BSGS *and*
naive Galois keys, for differential / op-count tests) and in production
form (BSGS keys only); the CNN once, in production form, session-scoped
because keygen plus one encrypted forward is seconds, not milliseconds.
"""

import pytest

from repro.fhe.toy import (
    compiled_toy,
    compiled_toy_cnn,
    compiled_toy_resnet,
    compiled_toy_transformer,
    compiled_toy_transformer_stacked,
)


@pytest.fixture(scope="session")
def toy_reference_enc():
    """Compiled toy with Galois keys for both matvec paths."""
    return compiled_toy(reference_keys=True)


@pytest.fixture(scope="session")
def toy_plain_enc():
    """Compiled toy in production form (BSGS plans/keys only)."""
    return compiled_toy()


@pytest.fixture(scope="session")
def toy_cnn():
    """(plain model, compiled EncryptedNetwork) — the trained 2-conv CNN."""
    return compiled_toy_cnn(with_model=True)


@pytest.fixture(scope="session")
def toy_transformer():
    """(PAF-approximated plain model, compiled EncryptedNetwork) — the
    trained single-block toy transformer, with naive Galois keys for
    the reference differential."""
    return compiled_toy_transformer(with_model=True, reference_keys=True)


@pytest.fixture(scope="session")
def toy_transformer_stacked():
    """(PAF-approximated plain model, compiled EncryptedNetwork) — the
    trained 2-block stacked transformer, compiled through the auto
    refresh policy (the depth-wall demo)."""
    return compiled_toy_transformer_stacked(with_model=True)


@pytest.fixture(scope="session")
def toy_resnet():
    """(plain model, compiled sharded EncryptedNetwork) — the trained
    2-block toy ResNet, channels across 2 ciphertexts."""
    return compiled_toy_resnet(with_model=True)
