"""Property tests (hypothesis) for diagonal extraction and BSGS planning.

Pure geometry — no crypto: ``diagonals_of`` must round-trip back to the
matrix, ``required_rotation_steps`` must name exactly the Galois keys the
naive path touches, and a ``MatvecPlan`` must cover every nonzero
diagonal exactly once with its baby/giant factoring while never costing
more keyswitches than the naive path it replaces.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fhe.linear import (
    MatvecPlan,
    bsgs_diagonals,
    diagonals_of,
    plan_matvec,
    required_rotation_steps,
)

SLOTS = 64

matrices = st.builds(
    lambda out_dim, in_dim, seed, sparsity: _random_matrix(
        out_dim, in_dim, seed, sparsity
    ),
    out_dim=st.integers(min_value=1, max_value=8),
    in_dim=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    sparsity=st.floats(min_value=0.0, max_value=0.9),
)

diag_sets = st.builds(
    lambda size, seed, count: (
        size,
        np.random.default_rng(seed).choice(size, size=min(count, size), replace=False),
    ),
    size=st.integers(min_value=1, max_value=48),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    count=st.integers(min_value=1, max_value=48),
)


def _random_matrix(out_dim, in_dim, seed, sparsity):
    rng = np.random.default_rng(seed)
    w = rng.normal(size=(out_dim, in_dim))
    w[rng.random(w.shape) < sparsity] = 0.0
    if not np.any(w):
        w[0, 0] = 1.0  # the all-zero case is rejected upfront, tested separately
    return w


class TestDiagonalGeometry:
    @given(matrices)
    @settings(max_examples=40, deadline=None)
    def test_diagonals_reassemble_matrix(self, w):
        """Round-trip: scattering diag_d[i] back to W[i, (i+d) % size]
        reproduces the zero-padded matrix exactly."""
        out_dim, in_dim = w.shape
        size = max(out_dim, in_dim)
        diags = diagonals_of(w, SLOTS)
        rebuilt = np.zeros((size, size))
        for d, vec in diags.items():
            for i in range(size):
                rebuilt[i, (i + d) % size] = vec[i]
        padded = np.zeros((size, size))
        padded[:out_dim, :in_dim] = w
        np.testing.assert_array_equal(rebuilt, padded)

    @given(matrices, st.integers(min_value=1, max_value=4))
    @settings(max_examples=25, deadline=None)
    def test_block_tiling_replicates_every_diagonal(self, w, num_blocks):
        size = max(w.shape)
        stride = 2 * size
        if (num_blocks - 1) * stride + size > SLOTS:
            num_blocks = 1
        base = diagonals_of(w, SLOTS)
        tiled = diagonals_of(w, SLOTS, num_blocks=num_blocks, block_stride=stride)
        assert set(tiled) == set(base)
        for d, vec in tiled.items():
            for b in range(num_blocks):
                np.testing.assert_array_equal(
                    vec[b * stride : b * stride + size], base[d][:size]
                )

    @given(matrices)
    @settings(max_examples=40, deadline=None)
    def test_required_steps_are_exactly_nonzero_diagonals(self, w):
        """The naive key set covers exactly the nonzero diagonal indices."""
        steps = required_rotation_steps(w, SLOTS)
        diags = diagonals_of(w, SLOTS)
        assert sorted(steps) == sorted(d for d in diags if d != 0)
        assert 0 not in steps


class TestPlanProperties:
    @given(diag_sets)
    @settings(max_examples=50, deadline=None)
    def test_plan_partitions_every_diagonal_once(self, size_and_ds):
        """Each planned diagonal factors uniquely as giant + baby."""
        size, ds = size_and_ds
        plan = plan_matvec(ds, size)
        babies = set(plan.baby_steps)
        giants = set(plan.giant_steps)
        seen = set()
        for d in ds:
            b = int(d) % plan.n1
            g = int(d) - b
            assert b in babies and g in giants
            assert g % plan.n1 == 0
            assert (g, b) not in seen
            seen.add((g, b))

    @given(diag_sets)
    @settings(max_examples=50, deadline=None)
    def test_key_set_covers_exactly_the_planned_steps(self, size_and_ds):
        """rotation_steps() is precisely what the executor will rotate by:
        nonzero babies + nonzero giants for BSGS, nonzero diagonals
        otherwise — nothing missing, nothing unused."""
        size, ds = size_and_ds
        plan = plan_matvec(ds, size)
        if plan.use_bsgs:
            used = {int(d) % plan.n1 for d in ds} | {
                int(d) - int(d) % plan.n1 for d in ds
            }
        else:
            used = {int(d) for d in ds}
        assert set(plan.rotation_steps()) == used - {0}
        assert plan.keyswitches == len(used - {0})

    @given(diag_sets)
    @settings(max_examples=50, deadline=None)
    def test_plan_never_costs_more_than_naive(self, size_and_ds):
        size, ds = size_and_ds
        plan = plan_matvec(ds, size)
        assert plan.keyswitches <= plan.naive_keyswitches
        if plan.use_bsgs:
            assert plan.bsgs_keyswitches < plan.naive_keyswitches
        assert 1 <= plan.n1 <= size
        assert plan.n1 * plan.n2 >= len(ds)  # the grid covers every diagonal

    @given(matrices)
    @settings(max_examples=30, deadline=None)
    def test_groups_are_rolled_diagonals(self, w):
        """bsgs_diagonals: rolling each group entry back by its giant step
        recovers the original diagonal, and the grouping is a bijection."""
        size = max(w.shape)
        diags = diagonals_of(w, SLOTS)
        plan = plan_matvec(diags.keys(), size)
        groups = bsgs_diagonals(diags, plan)
        covered = []
        for g, inner in groups.items():
            for b, vec in inner.items():
                covered.append(g + b)
                np.testing.assert_array_equal(np.roll(vec, -g), diags[g + b])
        assert sorted(covered) == sorted(diags)

    def test_empty_diagonals_rejected(self):
        with pytest.raises(ValueError, match="no nonzero diagonals"):
            plan_matvec([], 8)

    def test_out_of_range_diagonals_rejected(self):
        with pytest.raises(ValueError):
            plan_matvec([9], 8)
        with pytest.raises(ValueError):
            plan_matvec([-1], 8)

    def test_large_size_scan_window_still_optimal_for_dense(self):
        """size > 256 uses the √size scan window; for dense diagonals the
        optimum lives there, so cost stays ~2√D."""
        size = 512
        plan = plan_matvec(range(size), size)
        assert plan.use_bsgs
        assert plan.bsgs_keyswitches <= 2 * int(np.sqrt(size)) + 2
