"""Cross-backend conformance: the bit-identity contract, end to end.

Every registered kernel backend must be an *exact* drop-in
(docs/backends.md): the same encrypted input pushed through the same
compiled network must yield bit-identical output ciphertexts, identical
HE-op totals, and identical decrypted plaintexts.  Modular integer
arithmetic is exact, so this is an equality contract, not a tolerance
one — each toy model's forward runs once per backend on **one**
encryption (encryption draws from an advancing RNG, so re-encrypting
per backend would compare unrelated ciphertexts) and the outputs are
compared byte for byte.
"""

import numpy as np
import pytest

from repro.ckks.backend import available_backends
from repro.ckks.instrumentation import CountingEvaluator
from repro.nn.tensor import Tensor


def forward_under_each_backend(enc, run):
    """``run(counting_ev)`` once per registered backend on the *same*
    input; the entry backend is restored afterwards.

    Returns ``{backend: (output shard list, op-count dict)}``.
    """
    ctx = enc.ctx
    orig = ctx.backend.name
    results = {}
    try:
        for name in available_backends():
            ctx.set_backend(name)
            counting = CountingEvaluator(enc.ev)
            results[name] = (run(counting), dict(counting.counts))
    finally:
        ctx.set_backend(orig)
    return results


def decrypt_under_each_backend(enc, results, num_classes):
    """Decrypt each backend's output shard 0 *under that backend*."""
    ctx = enc.ctx
    orig = ctx.backend.name
    logits = {}
    try:
        for name, (cts, _) in results.items():
            ctx.set_backend(name)
            logits[name] = enc.decrypt_logits(cts[0], num_classes)
    finally:
        ctx.set_backend(orig)
    return logits


def assert_bit_identical(results):
    """Every backend's ciphertexts and op totals must equal reference's."""
    assert len(results) >= 2, "conformance needs at least two backends"
    (ref_name, (ref_cts, ref_counts)), *rest = list(results.items())
    assert ref_counts, "forward recorded no HE ops — nothing was compared"
    for name, (cts, counts) in rest:
        assert counts == ref_counts, (
            f"{name} vs {ref_name}: HE-op totals differ — backends may "
            f"only change how residue arithmetic executes, never which "
            f"ops run: {counts} != {ref_counts}"
        )
        assert len(cts) == len(ref_cts)
        for i, (a, b) in enumerate(zip(ref_cts, cts)):
            assert np.array_equal(a.c0.data, b.c0.data) and np.array_equal(
                a.c1.data, b.c1.data
            ), f"{name} vs {ref_name}: output shard {i} is not bit-identical"
            assert a.level == b.level and a.scale == b.scale


class TestForwardConformance:
    def test_registry_has_both_builtin_backends(self):
        names = available_backends()
        assert "reference" in names and "vectorized" in names

    def test_toy_mlp(self, toy_plain_enc):
        enc = toy_plain_enc
        x = np.random.default_rng(21).normal(size=8)
        ct = enc.encrypt_input(x)  # one encryption shared by all backends
        results = forward_under_each_backend(
            enc, lambda ev: [enc.forward(ct, ev=ev)]
        )
        assert_bit_identical(results)
        logits = decrypt_under_each_backend(enc, results, 3)
        ref = logits["reference"]
        assert all(np.array_equal(got, ref) for got in logits.values())

    def test_toy_cnn(self, toy_cnn):
        model, enc = toy_cnn
        x = np.random.default_rng(22).normal(size=(1, 1, 8, 8))
        ct = enc.encrypt_input(x.ravel())
        results = forward_under_each_backend(
            enc, lambda ev: [enc.forward(ct, ev=ev)]
        )
        assert_bit_identical(results)
        logits = decrypt_under_each_backend(enc, results, 3)
        assert all(
            np.array_equal(got, logits["reference"]) for got in logits.values()
        )
        # and the (shared) decryption matches the plaintext model
        plain = model(Tensor(x)).data.ravel()
        np.testing.assert_allclose(logits["reference"], plain, rtol=1e-3, atol=1e-4)

    def test_toy_resnet_shards(self, toy_resnet):
        model, enc = toy_resnet
        x = np.random.default_rng(23).normal(size=64)
        cts = enc.encrypt_input_shards(x)  # one encryption, both backends
        results = forward_under_each_backend(
            enc, lambda ev: enc.forward_shards(cts, ev=ev)
        )
        assert_bit_identical(results)
        logits = decrypt_under_each_backend(enc, results, 3)
        assert all(
            np.array_equal(got, logits["reference"]) for got in logits.values()
        )
        plain = model(Tensor(x.reshape(1, 1, 8, 8))).data.ravel()
        np.testing.assert_allclose(logits["reference"], plain, rtol=1e-3, atol=1e-4)

    def test_set_backend_restores_and_rejects_unknown(self, toy_plain_enc):
        ctx = toy_plain_enc.ctx
        orig = ctx.backend.name
        with pytest.raises(ValueError):
            ctx.set_backend("no-such-backend")
        assert ctx.backend.name == orig
