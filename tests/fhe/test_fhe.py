"""Tests for encrypted linear algebra, the MLP compiler and latency harness."""

import numpy as np
import pytest

from repro.ckks import CkksContext, CkksParams, CkksEvaluator, keygen
from repro.fhe import (
    analytic_relu_cost,
    compile_mlp,
    diagonals_of,
    encrypted_matvec,
    measure_op_micros,
    measure_relu_latency,
    paf_op_counts,
    required_rotation_steps,
)
from repro.nn.models import mlp
from repro.paf import get_paf, paper_pafs


class TestDiagonals:
    def test_reconstruct_matrix(self):
        rng = np.random.default_rng(0)
        w = rng.normal(size=(4, 4))
        diags = diagonals_of(w, slots=16)
        rebuilt = np.zeros((4, 4))
        for d, vec in diags.items():
            for i in range(4):
                rebuilt[i, (i + d) % 4] = vec[i]
        np.testing.assert_allclose(rebuilt, w)

    def test_sparse_matrix_skips_zero_diagonals(self):
        w = np.eye(4)
        diags = diagonals_of(w, slots=8)
        assert list(diags) == [0]

    def test_too_large_rejected(self):
        with pytest.raises(ValueError):
            diagonals_of(np.zeros((100, 100)), slots=64)

    def test_required_rotation_steps(self):
        w = np.eye(4)
        assert required_rotation_steps(w, 8) == []


class TestEncryptedMatvec:
    @pytest.fixture(scope="class")
    def rt(self):
        ctx = CkksContext(CkksParams(n=512, scale_bits=25, depth=3))
        rng = np.random.default_rng(0)
        w = rng.normal(size=(6, 6))
        steps = required_rotation_steps(w, ctx.slots)
        keys = keygen(ctx, seed=0, galois_steps=tuple(steps))
        return ctx, CkksEvaluator(ctx, keys), w

    def test_matches_plaintext(self, rt):
        ctx, ev, w = rt
        rng = np.random.default_rng(1)
        x = rng.normal(size=6)
        packed = np.zeros(ctx.slots)
        packed[:6] = x
        packed[6:12] = x
        out = encrypted_matvec(ev, ev.encrypt(packed), w)
        got = ev.decrypt(out, num_values=6)
        np.testing.assert_allclose(got, w @ x, atol=5e-3)

    def test_bias(self, rt):
        ctx, ev, w = rt
        rng = np.random.default_rng(2)
        x = rng.normal(size=6)
        b = rng.normal(size=6)
        packed = np.zeros(ctx.slots)
        packed[:6] = x
        packed[6:12] = x
        out = encrypted_matvec(ev, ev.encrypt(packed), w, bias=b)
        got = ev.decrypt(out, num_values=6)
        np.testing.assert_allclose(got, w @ x + b, atol=5e-3)

    def test_consumes_one_level(self, rt):
        ctx, ev, w = rt
        packed = np.zeros(ctx.slots)
        ct = ev.encrypt(packed)
        out = encrypted_matvec(ev, ct, w)
        assert out.level == ct.level - 1


class TestCompileMlp:
    def test_rejects_exact_relu(self):
        model = mlp(8, hidden=(4,), num_classes=3, seed=0)
        with pytest.raises(TypeError):
            compile_mlp(model, CkksParams(n=512, scale_bits=25, depth=10))

    def test_depth_validation(self):
        from repro.core import replace_all

        model = mlp(8, hidden=(4,), num_classes=3, seed=0)
        replace_all(model, get_paf("f1f1g1g1"), np.zeros((1, 8)))
        with pytest.raises(ValueError):
            compile_mlp(model, CkksParams(n=512, scale_bits=25, depth=3))

    def test_end_to_end_agrees_with_plaintext(self):
        from repro.core import calibrate_static_scales, convert_to_static, replace_all
        from repro.nn import Tensor, no_grad

        rng = np.random.default_rng(0)
        model = mlp(8, hidden=(6,), num_classes=3, seed=0)
        replace_all(model, get_paf("f1g2"), np.zeros((1, 8)))
        x_cal = rng.normal(size=(64, 8))
        calibrate_static_scales(model, [x_cal])
        convert_to_static(model)
        enc = compile_mlp(model, CkksParams(n=512, scale_bits=25, depth=9), seed=0)
        model.eval()
        x = rng.normal(size=(3, 8))
        with no_grad():
            plain = model(Tensor(x)).data
        for i in range(3):
            logits = enc.decrypt_logits(enc.forward(enc.encrypt_input(x[i])), 3)
            np.testing.assert_allclose(logits, plain[i], atol=0.05)
            assert enc.predict(x[i], 3) == int(plain[i].argmax())


class TestLatencyHarness:
    def test_measure_relu_latency_levels(self):
        paf = get_paf("f1g2")
        res = measure_relu_latency(paf, CkksParams(n=512, scale_bits=25, depth=7))
        assert res.seconds > 0
        assert res.levels_consumed == paf.mult_depth + 1
        assert res.max_error < 0.05

    def test_depth_too_small_rejected(self):
        with pytest.raises(ValueError):
            measure_relu_latency(
                get_paf("f1f1g1g1"), CkksParams(n=512, scale_bits=25, depth=3)
            )

    def test_latency_ordering_follows_depth(self):
        params = CkksParams(n=512, scale_bits=25, depth=10)
        deep = measure_relu_latency(get_paf("f1f1g1g1"), params).seconds
        shallow = measure_relu_latency(get_paf("f1g2"), params).seconds
        assert shallow < deep

    def test_op_counts_positive_and_ordered(self):
        counts = {p.name: paf_op_counts(p) for p in paper_pafs(include_alpha10=True)}
        assert counts["alpha=10"]["ct_mult"] > counts["f1 o g2"]["ct_mult"]
        for c in counts.values():
            assert c["ct_mult"] > 0 and c["pt_mult"] > 0

    def test_cost_model_positive(self):
        micros = {"ct_mult": 1e-3, "pt_mult": 1e-4, "rescale": 5e-4}
        cost = analytic_relu_cost(get_paf("f2g2"), micros)
        assert cost > 0
