"""Tests for encrypted linear algebra, the MLP compiler and latency harness."""

import numpy as np
import pytest

from repro.ckks import CkksContext, CkksEvaluator, CkksParams, keygen
from repro.fhe import (
    analytic_relu_cost,
    compile_mlp,
    diagonals_of,
    encrypted_matvec,
    measure_op_micros,
    measure_relu_latency,
    paf_op_counts,
    required_rotation_steps,
)
from repro.nn.models import mlp
from repro.paf import get_paf, paper_pafs


class TestDiagonals:
    def test_reconstruct_matrix(self):
        rng = np.random.default_rng(0)
        w = rng.normal(size=(4, 4))
        diags = diagonals_of(w, slots=16)
        rebuilt = np.zeros((4, 4))
        for d, vec in diags.items():
            for i in range(4):
                rebuilt[i, (i + d) % 4] = vec[i]
        np.testing.assert_allclose(rebuilt, w)

    def test_sparse_matrix_skips_zero_diagonals(self):
        w = np.eye(4)
        diags = diagonals_of(w, slots=8)
        assert list(diags) == [0]

    def test_too_large_rejected(self):
        with pytest.raises(ValueError):
            diagonals_of(np.zeros((100, 100)), slots=64)

    def test_required_rotation_steps(self):
        w = np.eye(4)
        assert required_rotation_steps(w, 8) == []


class TestEncryptedMatvec:
    @pytest.fixture(scope="class")
    def rt(self):
        ctx = CkksContext(CkksParams(n=512, scale_bits=25, depth=3))
        rng = np.random.default_rng(0)
        w = rng.normal(size=(6, 6))
        steps = required_rotation_steps(w, ctx.slots)
        keys = keygen(ctx, seed=0, galois_steps=tuple(steps))
        return ctx, CkksEvaluator(ctx, keys), w

    def test_matches_plaintext(self, rt):
        ctx, ev, w = rt
        rng = np.random.default_rng(1)
        x = rng.normal(size=6)
        packed = np.zeros(ctx.slots)
        packed[:6] = x
        packed[6:12] = x
        out = encrypted_matvec(ev, ev.encrypt(packed), w)
        got = ev.decrypt(out, num_values=6)
        np.testing.assert_allclose(got, w @ x, atol=5e-3)

    def test_bias(self, rt):
        ctx, ev, w = rt
        rng = np.random.default_rng(2)
        x = rng.normal(size=6)
        b = rng.normal(size=6)
        packed = np.zeros(ctx.slots)
        packed[:6] = x
        packed[6:12] = x
        out = encrypted_matvec(ev, ev.encrypt(packed), w, bias=b)
        got = ev.decrypt(out, num_values=6)
        np.testing.assert_allclose(got, w @ x + b, atol=5e-3)

    def test_consumes_one_level(self, rt):
        ctx, ev, w = rt
        packed = np.zeros(ctx.slots)
        ct = ev.encrypt(packed)
        out = encrypted_matvec(ev, ct, w)
        assert out.level == ct.level - 1

    def test_all_zero_weight_rejected_upfront(self, rt):
        """An all-zero matrix fails validation before any homomorphic op
        runs (it used to raise only after looping over zero diagonals)."""
        from repro.ckks.instrumentation import CountingEvaluator
        from repro.fhe import encrypted_matvec_bsgs

        ctx, ev, _ = rt
        counting = CountingEvaluator(ev)
        ct = counting.encrypt(np.zeros(ctx.slots))
        counting.reset()
        for fn in (encrypted_matvec, encrypted_matvec_bsgs):
            with pytest.raises(ValueError, match="no nonzero diagonals"):
                fn(counting, ct, np.zeros((4, 4)))
            with pytest.raises(ValueError, match="no nonzero diagonals"):
                fn(counting, ct, **{"diagonals" if fn is encrypted_matvec else "groups": {}})
        assert sum(counting.counts.values()) == 0  # nothing executed

    def test_missing_weight_and_diagonals_rejected(self, rt):
        from repro.fhe import encrypted_matvec_bsgs

        ctx, ev, _ = rt
        ct = ev.encrypt(np.zeros(ctx.slots))
        with pytest.raises(ValueError, match="need either"):
            encrypted_matvec(ev, ct)
        with pytest.raises(ValueError, match="need either"):
            encrypted_matvec_bsgs(ev, ct)


class TestCompileMlp:
    def test_rejects_exact_relu(self):
        model = mlp(8, hidden=(4,), num_classes=3, seed=0)
        with pytest.raises(TypeError):
            compile_mlp(model, CkksParams(n=512, scale_bits=25, depth=10))

    def test_depth_validation(self):
        from repro.core import replace_all

        model = mlp(8, hidden=(4,), num_classes=3, seed=0)
        replace_all(model, get_paf("f1f1g1g1"), np.zeros((1, 8)))
        with pytest.raises(ValueError):
            compile_mlp(model, CkksParams(n=512, scale_bits=25, depth=3))

    def test_end_to_end_agrees_with_plaintext(self):
        from repro.core import calibrate_static_scales, convert_to_static, replace_all
        from repro.nn import Tensor, no_grad

        rng = np.random.default_rng(0)
        model = mlp(8, hidden=(6,), num_classes=3, seed=0)
        replace_all(model, get_paf("f1g2"), np.zeros((1, 8)))
        x_cal = rng.normal(size=(64, 8))
        calibrate_static_scales(model, [x_cal])
        convert_to_static(model)
        enc = compile_mlp(model, CkksParams(n=512, scale_bits=25, depth=9), seed=0)
        model.eval()
        x = rng.normal(size=(3, 8))
        with no_grad():
            plain = model(Tensor(x)).data
        for i in range(3):
            logits = enc.decrypt_logits(enc.forward(enc.encrypt_input(x[i])), 3)
            np.testing.assert_allclose(logits, plain[i], atol=0.05)
            assert enc.predict(x[i], 3) == int(plain[i].argmax())


class TestLatencyHarness:
    def test_measure_relu_latency_levels(self):
        paf = get_paf("f1g2")
        res = measure_relu_latency(paf, CkksParams(n=512, scale_bits=25, depth=7))
        assert res.seconds > 0
        assert res.levels_consumed == paf.mult_depth + 1
        assert res.max_error < 0.05

    def test_depth_too_small_rejected(self):
        with pytest.raises(ValueError):
            measure_relu_latency(
                get_paf("f1f1g1g1"), CkksParams(n=512, scale_bits=25, depth=3)
            )

    def test_latency_ordering_follows_depth(self):
        params = CkksParams(n=512, scale_bits=25, depth=10)
        deep = measure_relu_latency(get_paf("f1f1g1g1"), params).seconds
        shallow = measure_relu_latency(get_paf("f1g2"), params).seconds
        assert shallow < deep

    def test_op_counts_positive_and_ordered(self):
        counts = {p.name: paf_op_counts(p) for p in paper_pafs(include_alpha10=True)}
        assert counts["alpha=10"]["ct_mult"] > counts["f1 o g2"]["ct_mult"]
        for c in counts.values():
            assert c["ct_mult"] > 0 and c["pt_mult"] > 0

    def test_cost_model_positive(self):
        micros = {"ct_mult": 1e-3, "pt_mult": 1e-4, "rescale": 5e-4}
        cost = analytic_relu_cost(get_paf("f2g2"), micros)
        assert cost > 0

    def test_matvec_cost_model_counts(self):
        from repro.fhe import analytic_matvec_cost, matvec_op_counts, plan_matvec

        plan = plan_matvec(range(16), 16)
        assert matvec_op_counts(plan) == {
            "rotate": 3,            # giant steps
            "rotate_hoisted": 3,    # baby steps sharing one decomposition
            "hoist_decompose": 1,
            "pt_mult": 16,
            "rescale": 1,
        }
        naive = plan_matvec([0, 1], 2)   # too small: BSGS cannot win
        assert not naive.use_bsgs
        assert matvec_op_counts(naive) == {
            "rotate": 1,
            "rotate_hoisted": 0,
            "hoist_decompose": 0,
            "pt_mult": 2,
            "rescale": 1,
        }
        micros = {
            "rotate": 1e-2,
            "rotate_hoisted": 2e-3,
            "hoist_decompose": 8e-3,
            "pt_mult": 1e-4,
            "rescale": 5e-4,
        }
        assert analytic_matvec_cost(plan, micros) > analytic_matvec_cost(naive, micros)

    def test_measure_op_micros_includes_rotations(self):
        micros = measure_op_micros(CkksParams(n=256, scale_bits=25, depth=4), repeats=1)
        assert micros["rotate"] > 0 and micros["rotate_hoisted"] > 0
        assert micros["hoist_decompose"] >= 0
        # the marginal hoisted rotation skips the decomposition entirely,
        # sitting well below a standalone rotate; assert with a wide margin
        # so a CI scheduler hiccup cannot flip a wall-clock inequality
        assert micros["rotate_hoisted"] < 2 * micros["rotate"]
